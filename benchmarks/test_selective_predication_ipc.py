"""Selective predicated execution: IPC and resource effects (section 5).

The paper's summary claims the same predictor "enables a very efficient
implementation of if-conversion for an out-of-order processor": instructions
with confidently-false predicates are cancelled at rename (removing their
resource consumption) and confidently-true predictions remove the
multiple-definition dependences.  The prior work it reuses ([16]) reports an
11 % IPC gain over earlier predicated-execution techniques.

This benchmark measures, on the if-converted binaries: IPC under
conservative handling, under the predicate scheme without selective
predication, and under the full selective scheme — plus the fraction of
fetched instructions cancelled at rename (the resource saving itself).
"""

from conftest import emit

from repro.experiments.selective_ipc import run_selective_ipc


def test_selective_predication_ipc(benchmark, shared_runner):
    result = benchmark.pedantic(
        run_selective_ipc, kwargs={"runner": shared_runner}, rounds=1, iterations=1
    )

    lines = [result.render(), "", "cancelled-at-rename fraction per benchmark:"]
    for name, fraction in result.cancelled_fraction.items():
        lines.append(f"  {name:10s} {100 * fraction:6.2f}%")
    emit("Selective predicated execution - IPC on if-converted code", "\n".join(lines), name="selective_ipc")

    # Selective predication must actually remove work from the pipeline...
    assert any(fraction > 0.0 for fraction in result.cancelled_fraction.values())
    # ... and must not wreck performance relative to conservative handling.
    assert result.speedup_over_conservative > 0.9

    benchmark.extra_info["speedup_over_conservative"] = round(
        result.speedup_over_conservative, 4
    )
    benchmark.extra_info["speedup_over_non_selective"] = round(
        result.speedup_over_non_selective, 4
    )
    benchmark.extra_info["paper_reference_gain"] = 1.11
