"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper over the full
22-program synthetic suite.  The instruction budget per benchmark defaults
to a value that keeps the whole harness in the minutes range on a laptop;
set ``REPRO_BENCH_INSTRUCTIONS`` (e.g. 100000) for a longer, more stable run
and ``REPRO_BENCH_BENCHMARKS`` (comma-separated names) to restrict the
benchmark set.
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover
        sys.path.insert(0, _SRC)

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.experiments.setup import ExperimentProfile, profile_from_environment

#: Default per-benchmark instruction budget of the harness.
DEFAULT_BENCH_INSTRUCTIONS = 20_000


def bench_profile() -> ExperimentProfile:
    """The profile used by every benchmark in this directory."""
    default = ExperimentProfile(
        name="bench",
        instructions_per_benchmark=DEFAULT_BENCH_INSTRUCTIONS,
        benchmarks=None,  # full 22-program suite
        profile_budget=10_000,
    )
    return profile_from_environment(default)


@pytest.fixture(scope="session")
def shared_runner() -> ExperimentRunner:
    """One runner for the whole harness, so compiled binaries are reused."""
    return ExperimentRunner(bench_profile())


#: Directory where every benchmark also archives its rendered result block.
RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "results")


def emit(title: str, body: str, name: str = "") -> None:
    """Print a result block and archive it under ``results/``.

    The print is visible with ``pytest -s`` (or on failures); the archived
    copy makes the regenerated tables available even when pytest captures
    stdout, so a plain ``pytest benchmarks/ --benchmark-only`` run leaves the
    per-figure tables in ``results/*.txt``.

    ``name`` is the canonical file name of the report (matching the names
    ``repro all`` writes, see :data:`repro.experiments.suite.REPORT_TITLES`)
    so the harness and the CLI update the *same* files; it defaults to a
    slug of the title.
    """
    from repro.stats.reporting import report_block, report_slug

    block = report_block(title, body)
    print(f"\n{block}", flush=True)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    slug = name or report_slug(title)
    with open(os.path.join(RESULTS_DIR, f"{slug}.txt"), "w", encoding="utf-8") as handle:
        handle.write(block)
