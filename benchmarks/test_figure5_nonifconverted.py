"""Figure 5: branch misprediction rate on non-if-converted code.

Paper result being reproduced: over the 22 SPEC2000 programs, the 148 KB
predicate predictor achieves better accuracy than the 148 KB conventional
two-level predictor on all but three benchmarks, with an average accuracy
increase of 1.86 %.

Shape checks performed here: the predicate predictor wins on a clear
majority of benchmarks and is better on average; a small number of
exceptions is allowed (the paper itself has three).
"""

from conftest import emit

from repro.experiments.figure5 import run_figure5


def test_figure5_branch_misprediction_rates(benchmark, shared_runner):
    result = benchmark.pedantic(
        run_figure5, kwargs={"runner": shared_runner}, rounds=1, iterations=1
    )

    emit("Figure 5 - misprediction rates (non-if-converted binaries)", result.render(), name="figure5")

    benchmarks = result.table.benchmarks()
    assert len(benchmarks) == len(shared_runner.benchmarks())

    # Average accuracy increase is positive (paper: +1.86%).
    assert result.average_accuracy_increase > 0.0
    # The predicate predictor wins on a clear majority of programs
    # (paper: all but three).
    assert result.predicate_wins >= len(benchmarks) - max(3, len(benchmarks) // 4)
    # Misprediction rates stay in a SPEC-plausible range.
    for name in benchmarks:
        assert 0.0 <= result.table.value(name, "conventional") < 0.30
        assert 0.0 <= result.table.value(name, "predicate-predictor") < 0.30

    benchmark.extra_info["avg_accuracy_increase_pct"] = round(
        100 * result.average_accuracy_increase, 3
    )
    benchmark.extra_info["predicate_wins"] = result.predicate_wins
    benchmark.extra_info["paper_avg_accuracy_increase_pct"] = 1.86
