"""Ablation: global-history corruption cost (section 3.3).

The predicate predictor's global history is speculatively updated by compare
instructions and only repaired later, so compares fetched inside the
corruption window predict with stale bits.  The paper bounds this negative
effect (together with aliasing) at under 0.4–0.5 % on average; this ablation
isolates the history component by comparing the realistic scheme against an
oracle-history variant on the if-converted binaries.
"""

from conftest import emit

from repro.experiments.ablations import run_history_ablation


def test_ablation_history_corruption(benchmark, shared_runner):
    result = benchmark.pedantic(
        run_history_ablation, kwargs={"runner": shared_runner}, rounds=1, iterations=1
    )
    emit("Ablation - global-history corruption", result.render(), name="ablation_history")

    corruption_cost = -result.average_advantage  # oracle minus realistic
    # The corruption window costs accuracy (non-negative) but stays a small
    # effect, consistent with the paper's bound on the negative effects.
    assert corruption_cost >= -0.002
    assert corruption_cost < 0.03

    benchmark.extra_info["history_corruption_cost_pct"] = round(100 * corruption_cost, 3)
    benchmark.extra_info["paper_negative_effects_bound_pct"] = 0.5
