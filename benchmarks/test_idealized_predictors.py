"""Idealized-predictor study (sections 4.2 and 4.3).

Paper result being reproduced: with idealized predictors (no alias
conflicts, perfect global-history update) the predicate predictor is
consistently more accurate than the conventional predictor on *every*
benchmark — by 2.24 % on average for non-if-converted code and by almost 2 %
for if-converted code — because the idealization removes exactly the two
negative side effects of predicate prediction.
"""

from conftest import emit

from repro.experiments.idealized import run_idealized_study
from repro.experiments.runner import BASELINE, IF_CONVERTED


def test_idealized_nonifconverted(benchmark, shared_runner):
    result = benchmark.pedantic(
        run_idealized_study,
        kwargs={"flavour": BASELINE, "runner": shared_runner},
        rounds=1,
        iterations=1,
    )
    emit("Idealized predictors - non-if-converted code", result.render(), name="idealized_baseline")

    benchmarks = result.table.benchmarks()
    assert result.average_accuracy_increase > 0.0
    # "consistently achieves better accuracy for all benchmarks" — allow ties.
    assert result.predicate_wins >= len(benchmarks) - max(2, len(benchmarks) // 8)

    benchmark.extra_info["avg_accuracy_increase_pct"] = round(
        100 * result.average_accuracy_increase, 3
    )
    benchmark.extra_info["paper_avg_pct"] = 2.24


def test_idealized_ifconverted(benchmark, shared_runner):
    result = benchmark.pedantic(
        run_idealized_study,
        kwargs={"flavour": IF_CONVERTED, "runner": shared_runner},
        rounds=1,
        iterations=1,
    )
    emit("Idealized predictors - if-converted code", result.render(), name="idealized_if_converted")

    assert result.average_accuracy_increase > 0.0
    benchmark.extra_info["avg_accuracy_increase_pct"] = round(
        100 * result.average_accuracy_increase, 3
    )
    benchmark.extra_info["paper_avg_pct"] = 2.0
