"""Figure 6a and 6b: prediction accuracy on if-converted code.

Paper results being reproduced:

* Figure 6a — with if-converted binaries, the 148 KB predicate predictor has
  the lowest misprediction rate on every benchmark but one (twolf), with an
  average accuracy increase of 1.5 % over the best other scheme, and the
  144 KB PEP-PA predictor performs *worse* than the conventional predictor
  on the out-of-order core.
* Figure 6b — the accuracy difference between the predicate predictor and
  the conventional predictor splits into an early-resolved contribution
  (~0.5 % average) and a correlation contribution (~1 % average); the
  correlation bucket may be negative for individual benchmarks because it
  also absorbs the scheme's negative effects.
"""

import pytest

from conftest import emit

from repro.experiments.figure6 import run_figure6

_CACHE = {}


def _figure6(shared_runner):
    if "result" not in _CACHE:
        _CACHE["result"] = run_figure6(runner=shared_runner)
    return _CACHE["result"]


def test_figure6a_misprediction_rates(benchmark, shared_runner):
    result = benchmark.pedantic(
        _figure6, args=(shared_runner,), rounds=1, iterations=1
    )
    emit("Figure 6a - misprediction rates (if-converted binaries)", result.render(), name="figure6")

    benchmarks = result.table.benchmarks()
    # The predicate predictor is the most accurate scheme on (nearly) every
    # benchmark; the paper allows itself one exception.
    assert result.predicate_best_count >= len(benchmarks) - max(2, len(benchmarks) // 8)
    # ... and better than the best other scheme on average (paper: +1.5%).
    assert result.average_increase_over_best > 0.0
    # PEP-PA does not beat the conventional predictor on average (the
    # paper's "surprising" finding on an out-of-order core).
    assert result.table.mean("pep-pa") >= result.table.mean("conventional")

    benchmark.extra_info["avg_increase_over_best_pct"] = round(
        100 * result.average_increase_over_best, 3
    )
    benchmark.extra_info["paper_avg_increase_pct"] = 1.5
    benchmark.extra_info["predicate_best_count"] = result.predicate_best_count


def test_figure6b_accuracy_breakdown(benchmark, shared_runner):
    result = _figure6(shared_runner)

    def _breakdown_summary():
        early = result.average_early_resolved_improvement
        correlation = result.average_correlation_improvement
        return early, correlation

    early, correlation = benchmark.pedantic(_breakdown_summary, rounds=1, iterations=1)

    lines = [f"{'benchmark':12s} {'early-resolved':>15s} {'correlation':>12s}"]
    for item in result.breakdown:
        lines.append(
            f"{item.benchmark:12s} {100 * item.early_resolved_improvement:15.2f} "
            f"{100 * item.correlation_improvement:12.2f}"
        )
    lines.append(
        f"{'average':12s} {100 * early:15.2f} {100 * correlation:12.2f}"
    )
    emit("Figure 6b - accuracy difference breakdown (percentage points)", "\n".join(lines), name="figure6b")

    # Both contributions exist and their sum equals the total improvement.
    assert early >= 0.0
    total = sum(b.total_improvement for b in result.breakdown) / len(result.breakdown)
    assert total == pytest.approx(early + correlation, abs=1e-9)
    assert total > 0.0

    benchmark.extra_info["avg_early_resolved_pct"] = round(100 * early, 3)
    benchmark.extra_info["avg_correlation_pct"] = round(100 * correlation, 3)
    benchmark.extra_info["paper_early_resolved_pct"] = 0.5
    benchmark.extra_info["paper_correlation_pct"] = 1.0
