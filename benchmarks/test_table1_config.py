"""Table 1: architectural parameters of the simulated processor.

This benchmark verifies (and prints) that the live default configuration of
the simulator reproduces Table 1 of the paper, and measures how long it
takes to instantiate the full machine (core + memory hierarchy + all three
prediction schemes at their paper sizes).
"""

from conftest import emit

from repro.experiments.setup import (
    make_conventional_scheme,
    make_peppa_scheme,
    make_predicate_scheme,
    paper_table1,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline import OutOfOrderCore


def _build_machine():
    core = OutOfOrderCore(memory=MemoryHierarchy())
    schemes = (
        make_conventional_scheme(),
        make_peppa_scheme(),
        make_predicate_scheme(),
    )
    return core, schemes


def test_table1_configuration(benchmark):
    core, schemes = benchmark.pedantic(_build_machine, rounds=3, iterations=1)

    table = paper_table1()
    body = "\n".join(f"{key:28s} {value}" for key, value in table.items())
    emit("Table 1 - main architectural parameters", body, name="table1")

    # Table 1 headline values.
    assert "6 instructions" in table["Fetch Width"]
    assert "256 entries" in table["Reorder Buffer"]
    assert "120 cycles" in table["Main Memory"]

    # Predictor budgets: ~148 KB conventional second level and predicate
    # predictor, 144 KB PEP-PA, 4 KB first level.
    conventional, peppa, predicate = schemes
    assert 148 <= conventional.predictor.size_report().total_kib <= 160
    assert abs(peppa.predictor.size_report().total_kib - 144) < 1
    assert 140 <= predicate.predictor.size_report().total_kib <= 156

    benchmark.extra_info["conventional_kib"] = round(
        conventional.predictor.size_report().total_kib, 1
    )
    benchmark.extra_info["predicate_kib"] = round(
        predicate.predictor.size_report().total_kib, 1
    )
