"""Ablation: single dual-hashed PVT vs statically split PVT (section 3.3).

The paper argues that splitting the perceptron vector table per predicate
target would waste capacity ("one of the destination predicate registers is
often the read-only predicate register p0") and therefore uses one table
with two hash functions.  This ablation measures that design choice on the
if-converted binaries.
"""

from conftest import emit

from repro.experiments.ablations import run_pvt_ablation


def test_ablation_pvt_organisation(benchmark, shared_runner):
    result = benchmark.pedantic(
        run_pvt_ablation, kwargs={"runner": shared_runner}, rounds=1, iterations=1
    )
    emit("Ablation - PVT organisation", result.render(), name="ablation_pvt")

    # The paper's design point (dual-hash single table) should not lose to
    # the split organisation on average.
    assert result.average_advantage >= -0.002

    benchmark.extra_info["dual_hash_advantage_pct"] = round(
        100 * result.average_advantage, 3
    )
