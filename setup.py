"""Setuptools shim.

The offline environment has no ``wheel`` package, so PEP 517 editable
installs are unavailable; this shim lets ``pip install -e . --no-build-isolation
--no-use-pep517`` (and plain ``python setup.py develop``) work.
"""

from setuptools import setup

setup(
    # numpy backs the columnar TracePack trace representation (struct-of-
    # arrays traces, vectorized statistics).  It is an *extra*, not a hard
    # requirement: every consumer falls back to the object-based reference
    # path without it (see repro.emulator.tracepack.pack_supported), which
    # keeps plain installs working on the offline hosts this repo targets.
    extras_require={"fast": ["numpy>=1.22"]},
)
