"""Setuptools shim.

The offline environment has no ``wheel`` package, so PEP 517 editable
installs are unavailable; this shim lets ``pip install -e . --no-build-isolation
--no-use-pep517`` (and plain ``python setup.py develop``) work.
"""

from setuptools import setup

setup()
