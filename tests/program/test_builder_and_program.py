"""Tests for the program builder, layout and data segment."""

import pytest

from repro.isa import GR, PR, CompareRelation
from repro.isa.opcodes import Opcode
from repro.program import ProgramBuilder
from repro.program.program import DATA_BASE, TEXT_BASE


class TestProgramBuilder:
    def test_routines_registered(self):
        pb = ProgramBuilder("prog")
        pb.routine("main").block("entry").append
        pb.routine("helper")
        program = pb.program
        assert set(program.routines) == {"main", "helper"}
        assert program.entry_routine.name == "main"

    def test_duplicate_routine_rejected(self):
        pb = ProgramBuilder("prog")
        pb.routine("main")
        with pytest.raises(ValueError):
            pb.routine("main")

    def test_emit_helpers_produce_expected_opcodes(self):
        pb = ProgramBuilder("prog")
        rb = pb.routine("main")
        rb.block("entry")
        assert rb.addi(GR(1), GR(2), 3).opcode is Opcode.ADDI
        assert rb.add(GR(1), GR(2), GR(3)).opcode is Opcode.ADD
        assert rb.xor(GR(1), GR(2), GR(3)).opcode is Opcode.XOR
        assert rb.shl(GR(1), GR(2), 3).opcode is Opcode.SHLI
        assert rb.shl(GR(1), GR(2), GR(3)).opcode is Opcode.SHL
        assert rb.mul(GR(1), GR(2), GR(3)).opcode is Opcode.MUL
        assert rb.movi(GR(1), 9).opcode is Opcode.MOVI
        assert rb.load(GR(1), GR(2)).opcode is Opcode.LD
        assert rb.store(GR(1), GR(2)).opcode is Opcode.ST
        assert rb.fadd(GR(1), GR(2), GR(3)).opcode is Opcode.FADD
        assert rb.nop().opcode is Opcode.NOP

    def test_emit_without_block_raises(self):
        pb = ProgramBuilder("prog")
        rb = pb.routine("main")
        with pytest.raises(RuntimeError):
            rb.nop()

    def test_block_switching(self):
        pb = ProgramBuilder("prog")
        rb = pb.routine("main")
        first = rb.block("a")
        rb.nop()
        rb.block("b")
        rb.nop()
        rb.block("a")
        rb.nop()
        assert len(first) == 2
        assert [b.label for b in rb.routine.blocks] == ["a", "b"]


class TestDataSegment:
    def test_array_placement(self):
        pb = ProgramBuilder("prog")
        base = pb.array("values", [10, 20, 30])
        assert base >= DATA_BASE
        assert pb.program.data.words[base] == 10
        assert pb.program.data.words[base + 16] == 30

    def test_arrays_do_not_overlap(self):
        pb = ProgramBuilder("prog")
        a = pb.array("a", list(range(100)))
        b = pb.array("b", list(range(10)))
        assert b >= a + 100 * 8

    def test_duplicate_array_name_rejected(self):
        pb = ProgramBuilder("prog")
        pb.array("a", [1])
        with pytest.raises(ValueError):
            pb.array("a", [2])

    def test_array_base_lookup(self):
        pb = ProgramBuilder("prog")
        base = pb.array("a", [1, 2])
        assert pb.array_base("a") == base


class TestLayout:
    def _simple_program(self):
        pb = ProgramBuilder("prog")
        rb = pb.routine("main")
        rb.block("entry")
        rb.movi(GR(1), 1)
        rb.movi(GR(2), 2)
        rb.block("next")
        rb.cmp(CompareRelation.EQ, PR(6), PR(7), GR(1), GR(2))
        rb.br_ret()
        return pb.finish()

    def test_layout_assigns_addresses(self):
        program = self._simple_program()
        assert program.laid_out
        addresses = [inst.address for inst in program.instructions()]
        assert all(a is not None for a in addresses)
        assert addresses[0] == TEXT_BASE

    def test_addresses_unique_and_increasing(self):
        program = self._simple_program()
        addresses = [inst.address for inst in program.instructions()]
        assert addresses == sorted(addresses)
        assert len(set(addresses)) == len(addresses)

    def test_block_addresses_set(self):
        program = self._simple_program()
        for routine in program.routines.values():
            for block in routine.blocks:
                assert block.address is not None

    def test_layout_is_deterministic(self):
        first = [i.address for i in self._simple_program().instructions()]
        second = [i.address for i in self._simple_program().instructions()]
        assert first == second

    def test_size_property(self):
        program = self._simple_program()
        assert program.size == 4

    def test_routine_lookup_helpers(self):
        program = self._simple_program()
        routine = program.routine("main")
        assert routine.block("next").label == "next"
        assert routine.block_index("next") == 1
        with pytest.raises(KeyError):
            routine.block("missing")
        with pytest.raises(KeyError):
            routine.block_index("missing")
