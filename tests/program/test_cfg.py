"""Tests for the control-flow graph and its region detection."""

from repro.isa import GR, PR, CompareRelation
from repro.program import ProgramBuilder
from repro.program.cfg import ControlFlowGraph


def _hammock_routine():
    pb = ProgramBuilder("hammock")
    rb = pb.routine("main")
    rb.block("head")
    rb.cmp(CompareRelation.GT, PR(6), PR(7), GR(1), 5)
    rb.br_cond("join", qp=PR(7))
    rb.block("body")
    rb.addi(GR(2), GR(2), 1)
    rb.block("join")
    rb.br_ret()
    pb.finish(layout=False)
    return rb.routine


def _diamond_routine():
    pb = ProgramBuilder("diamond")
    rb = pb.routine("main")
    rb.block("head")
    rb.cmp(CompareRelation.GT, PR(6), PR(7), GR(1), 5)
    rb.br_cond("else_side", qp=PR(7))
    rb.block("then_side")
    rb.addi(GR(2), GR(2), 1)
    rb.br("join")
    rb.block("else_side")
    rb.addi(GR(3), GR(3), 1)
    rb.block("join")
    rb.br_ret()
    pb.finish(layout=False)
    return rb.routine


def _escape_routine():
    pb = ProgramBuilder("escape")
    rb = pb.routine("main")
    rb.block("head")
    rb.cmp(CompareRelation.GT, PR(6), PR(7), GR(1), 5)
    rb.br_cond("cont", qp=PR(7))
    rb.block("esc")
    rb.addi(GR(2), GR(2), 1)
    rb.br_ret()
    rb.block("cont")
    rb.addi(GR(3), GR(3), 1)
    rb.br_ret()
    pb.finish(layout=False)
    return rb.routine


class TestEdges:
    def test_hammock_edges(self):
        cfg = _hammock_routine().cfg
        assert set(cfg.successors("head")) == {"body", "join"}
        assert cfg.successors("body") == ["join"]
        assert set(cfg.predecessors("join")) == {"head", "body"}

    def test_taken_and_fallthrough(self):
        cfg = _hammock_routine().cfg
        assert cfg.taken_successor("head") == "join"
        assert cfg.fallthrough_successor("head") == "body"

    def test_return_has_no_successors(self):
        cfg = _hammock_routine().cfg
        assert cfg.successors("join") == []

    def test_reachable_blocks(self):
        cfg = _diamond_routine().cfg
        assert set(cfg.reachable_blocks()) == {"head", "then_side", "else_side", "join"}

    def test_call_edge_to_fallthrough(self):
        pb = ProgramBuilder("caller")
        helper = pb.routine("helper")
        helper.block("h")
        helper.br_ret()
        rb = pb.routine("main")
        rb.block("a")
        rb.br_call("helper")
        rb.block("b")
        rb.br_ret()
        pb.finish(layout=False)
        cfg = rb.routine.cfg
        edges = cfg.out_edges("a")
        assert len(edges) == 1
        assert edges[0].kind == "call-return"
        assert edges[0].dst == "b"


class TestDiamondDetection:
    def test_detect_hammock(self):
        cfg = _hammock_routine().cfg
        region = cfg.diamond_region("head")
        assert region is not None
        assert region.then_side == "body"
        assert region.else_side is None
        assert region.join == "join"
        assert region.then_on_taken_path is False

    def test_detect_full_diamond(self):
        cfg = _diamond_routine().cfg
        region = cfg.diamond_region("head")
        assert region is not None
        assert region.then_side == "then_side"
        assert region.else_side == "else_side"
        assert region.join == "join"

    def test_non_branch_block_not_detected(self):
        cfg = _hammock_routine().cfg
        assert cfg.diamond_region("body") is None

    def test_escape_is_not_a_diamond(self):
        cfg = _escape_routine().cfg
        assert cfg.diamond_region("head") is None


class TestEscapeDetection:
    def test_detect_escape_with_return(self):
        cfg = _escape_routine().cfg
        region = cfg.escape_hammock("head")
        assert region is not None
        assert region.escape == "esc"
        assert region.continuation == "cont"

    def test_plain_hammock_is_not_escape(self):
        cfg = _hammock_routine().cfg
        assert cfg.escape_hammock("head") is None

    def test_diamond_is_not_escape(self):
        # The then-side jumps to the join, which is not "leaving the region".
        cfg = _diamond_routine().cfg
        assert cfg.escape_hammock("head") is None


class TestRebuild:
    def test_duplicate_labels_rejected(self):
        from repro.program.basic_block import BasicBlock

        blocks = [BasicBlock("a"), BasicBlock("a")]
        try:
            ControlFlowGraph(blocks)
            assert False, "expected ValueError"
        except ValueError:
            pass
