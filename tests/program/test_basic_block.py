"""Tests for basic blocks."""

from repro.isa.branches import BranchInstruction, BranchKind
from repro.isa.instructions import ALUInstruction, NopInstruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import Label
from repro.isa.registers import GR, PR
from repro.program.basic_block import BasicBlock


def _alu():
    return ALUInstruction(Opcode.ADD, GR(1), GR(2), GR(3))


class TestAppend:
    def test_append_sets_block_and_slot(self):
        block = BasicBlock("bb0")
        first = block.append(_alu())
        second = block.append(_alu())
        assert first.block_label == "bb0" and first.slot == 0
        assert second.slot == 1
        assert len(block) == 2

    def test_extend(self):
        block = BasicBlock("bb0")
        block.extend([_alu(), _alu(), _alu()])
        assert [i.slot for i in block] == [0, 1, 2]

    def test_insert_renumbers(self):
        block = BasicBlock("bb0")
        block.extend([_alu(), _alu()])
        inserted = block.insert(1, NopInstruction())
        assert block.instructions[1] is inserted
        assert [i.slot for i in block] == [0, 1, 2]

    def test_remove_renumbers(self):
        block = BasicBlock("bb0")
        a, b, c = _alu(), _alu(), _alu()
        block.extend([a, b, c])
        block.remove(b)
        assert block.instructions == [a, c]
        assert [i.slot for i in block] == [0, 1]

    def test_replace_instructions(self):
        block = BasicBlock("bb0")
        block.extend([_alu(), _alu()])
        replacement = [_alu()]
        block.replace_instructions(replacement)
        assert list(block) == replacement
        assert replacement[0].block_label == "bb0"


class TestTerminator:
    def test_no_terminator(self):
        block = BasicBlock("bb0")
        block.append(_alu())
        assert block.terminator is None
        assert block.falls_through

    def test_conditional_terminator_falls_through(self):
        block = BasicBlock("bb0")
        block.append(BranchInstruction(BranchKind.COND, Label("x"), qp=PR(6)))
        assert block.terminator is not None
        assert block.falls_through

    def test_unconditional_terminator_does_not_fall_through(self):
        block = BasicBlock("bb0")
        block.append(BranchInstruction(BranchKind.UNCOND, Label("x")))
        assert not block.falls_through

    def test_plain_return_does_not_fall_through(self):
        block = BasicBlock("bb0")
        block.append(BranchInstruction(BranchKind.RET))
        assert not block.falls_through

    def test_guarded_return_falls_through(self):
        block = BasicBlock("bb0")
        block.append(BranchInstruction(BranchKind.RET, qp=PR(3)))
        assert block.falls_through

    def test_branches_property_includes_interior_region_branches(self):
        block = BasicBlock("bb0")
        region_branch = BranchInstruction(BranchKind.UNCOND, Label("x"), qp=PR(4))
        block.append(region_branch)
        block.append(_alu())
        assert region_branch in block.branches
        assert block.terminator is None
