"""Tests for program validation."""

import pytest

from repro.isa import GR, PR, CompareRelation
from repro.isa.branches import BranchInstruction, BranchKind
from repro.isa.instructions import MoveInstruction
from repro.isa.operands import Label
from repro.program import ProgramBuilder, ValidationError, validate_program


def _well_formed():
    pb = ProgramBuilder("ok")
    rb = pb.routine("main")
    rb.block("entry")
    rb.movi(GR(1), 3)
    rb.cmp(CompareRelation.GT, PR(6), PR(7), GR(1), 0)
    rb.br_cond("entry", qp=PR(6))
    rb.block("exit")
    rb.br_ret()
    return pb.finish(layout=False)


class TestValidProgram:
    def test_well_formed_passes(self):
        validate_program(_well_formed())

    def test_predicated_region_branch_mid_block_allowed(self):
        pb = ProgramBuilder("region")
        rb = pb.routine("main")
        rb.block("entry")
        rb.br_ret(qp=PR(3))
        rb.movi(GR(1), 1)
        rb.br_ret()
        program = pb.finish(layout=False)
        validate_program(program)


class TestInvalidPrograms:
    def test_missing_entry_routine(self):
        pb = ProgramBuilder("bad", entry="does-not-exist")
        rb = pb.routine("main")
        rb.block("entry")
        rb.br_ret()
        with pytest.raises(ValidationError):
            validate_program(pb.finish(layout=False))

    def test_branch_to_unknown_label(self):
        pb = ProgramBuilder("bad")
        rb = pb.routine("main")
        rb.block("entry")
        rb.cmp(CompareRelation.GT, PR(6), PR(7), GR(1), 0)
        rb.br_cond("nowhere", qp=PR(6))
        rb.block("exit")
        rb.br_ret()
        with pytest.raises(ValidationError) as err:
            validate_program(pb.finish(layout=False))
        assert "nowhere" in str(err.value)

    def test_call_to_unknown_routine(self):
        pb = ProgramBuilder("bad")
        rb = pb.routine("main")
        rb.block("entry")
        rb.br_call("missing")
        rb.br_ret()
        with pytest.raises(ValidationError) as err:
            validate_program(pb.finish(layout=False))
        assert "missing" in str(err.value)

    def test_unpredicated_branch_mid_block(self):
        pb = ProgramBuilder("bad")
        rb = pb.routine("main")
        block = rb.block("entry")
        block.append(BranchInstruction(BranchKind.UNCOND, Label("entry")))
        rb.movi(GR(1), 1)
        with pytest.raises(ValidationError) as err:
            validate_program(pb.finish(layout=False))
        assert "middle of a basic block" in str(err.value)

    def test_fall_off_end_of_routine(self):
        pb = ProgramBuilder("bad")
        rb = pb.routine("main")
        rb.block("entry")
        rb.movi(GR(1), 1)
        with pytest.raises(ValidationError) as err:
            validate_program(pb.finish(layout=False))
        assert "fall" in str(err.value)

    def test_write_to_hardwired_register(self):
        pb = ProgramBuilder("bad")
        rb = pb.routine("main")
        block = rb.block("entry")
        block.append(MoveInstruction(GR(0), 5))
        rb.br_ret()
        with pytest.raises(ValidationError) as err:
            validate_program(pb.finish(layout=False))
        assert "hard-wired" in str(err.value)

    def test_compare_may_target_p0(self):
        pb = ProgramBuilder("ok")
        rb = pb.routine("main")
        rb.block("entry")
        rb.cmp(CompareRelation.GT, PR(0), PR(7), GR(1), 0)
        rb.br_ret()
        validate_program(pb.finish(layout=False))

    def test_multiple_problems_reported(self):
        pb = ProgramBuilder("bad")
        rb = pb.routine("main")
        rb.block("entry")
        rb.br_call("missing")
        rb.cmp(CompareRelation.GT, PR(6), PR(7), GR(1), 0)
        rb.br_cond("nowhere", qp=PR(6))
        rb.block("tail")
        rb.movi(GR(1), 1)
        with pytest.raises(ValidationError) as err:
            validate_program(pb.finish(layout=False))
        assert len(err.value.problems) >= 2
