"""End-to-end: the HTTP daemon, the client, and cross-client coalescing.

Boots a real :class:`ServeHTTPServer` on an ephemeral port, talks to it
through :class:`repro.client.ServeClient`, and pins the acceptance
criterion: two clients submitting the same rob-scaling sweep concurrently
share one set of simulations — the engine stats of one job show
``simulations_run == 0``.
"""

from __future__ import annotations

import threading

import pytest

from repro.client import ServeClient, ServeError
from repro.engine.store import ArtifactStore
from repro.serve import make_server, serve_until_shutdown
from repro.serve.service import ExperimentService

#: Small but real: rob-scaling at 2000 instructions is 24 simulations
#: (4 rob sizes x 2 schemes x 3 benchmarks) over 3 builds/traces.
ROB_SCALING = {"scenario": "rob-scaling", "instructions": 2000}


@pytest.fixture
def server(tmp_path):
    store = ArtifactStore(str(tmp_path / "cache"))
    service = ExperimentService(store, jobs=1, workers=2, default_instructions=2000)
    server = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(
        target=serve_until_shutdown, args=(server, False), daemon=True
    )
    thread.start()
    yield server
    server.shutdown()
    thread.join(timeout=10)
    assert not thread.is_alive()


@pytest.fixture
def client(server):
    port = server.server_address[1]
    return ServeClient(f"http://127.0.0.1:{port}", timeout=120)


class TestAPI:
    def test_health(self, client):
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["version"] == "v1"
        assert payload["workers_lost"] == 0
        assert payload["jobs_timed_out"] == 0
        assert payload["quarantined"] == {"count": 0, "bytes": 0}
        assert payload["recovered_jobs"] == 0

    def test_unknown_routes_are_404(self, client):
        for path in ("/v1/nope", "/v2/jobs", "/v1/jobs/nope"):
            with pytest.raises(ServeError) as excinfo:
                client._request(path)
            assert excinfo.value.status == 404

    def test_invalid_submission_is_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.submit({"cells": [{"benchmark": "no-such-workload"}]})
        assert excinfo.value.status == 400
        assert "unknown workload" in excinfo.value.message

    def test_result_before_completion_is_409(self, client):
        job = client.submit(ROB_SCALING)
        try:
            client.result(job["id"])
        except ServeError as error:
            assert error.status == 409
        # else: the job finished before we asked — also a valid outcome.
        client.wait(job["id"], timeout=120)

    def test_cells_job_lifecycle(self, client):
        job = client.submit(
            {
                "cells": [
                    {"benchmark": "gzip", "scheme": "conventional"},
                    {"benchmark": "gzip", "scheme": "predicate"},
                ],
                "instructions": 1500,
            }
        )
        assert job["state"] in ("queued", "running")
        done = client.wait(job["id"], timeout=120)
        assert done["state"] == "done", done["error"]
        assert done["planned"] == {"builds": 1, "traces": 1, "simulations": 2}
        assert done["stats"]["simulations_run"] == 2

        table = client.result(job["id"])
        assert "gzip" in table and "IPC" in table

        raw = client.result(job["id"], format="json")
        assert raw["id"] == job["id"]
        assert len(raw["cells"]) == 2
        for row in raw["cells"]:
            assert row["instructions"] == 1500
            assert row["ipc"] > 0

        listed = client.jobs()
        assert job["id"] in {entry["id"] for entry in listed}

    def test_store_stats_endpoint(self, client):
        job = client.submit(
            {"cells": [{"benchmark": "gzip"}], "instructions": 1500}
        )
        client.wait(job["id"], timeout=120)
        stats = client.store_stats()
        assert stats["kinds"]["total"]["count"] >= 3  # binary + trace + result
        assert stats["max_store_bytes"] is None
        assert stats["evicted"] == {"count": 0, "bytes": 0}


class TestCoalescing:
    def test_concurrent_duplicate_sweeps_share_one_simulation_set(self, client):
        # The acceptance criterion, over the wire: submit the same
        # rob-scaling sweep twice back-to-back (two scheduler workers, so
        # they race), and the engine stats must show that only one job ran
        # simulations while the other was served via coalescing + store.
        first = client.submit(ROB_SCALING)
        second = client.submit(ROB_SCALING)
        a = client.wait(first["id"], timeout=300)
        b = client.wait(second["id"], timeout=300)
        assert a["state"] == "done", a["error"]
        assert b["state"] == "done", b["error"]

        planned = a["planned"]["simulations"]
        assert planned == 24
        runs = sorted([a["stats"]["simulations_run"], b["stats"]["simulations_run"]])
        assert runs[0] == 0  # the coalesced job ran nothing new
        assert sum(runs) == planned  # and nothing was simulated twice
        coalesced = a["coalesced_keys"] + b["coalesced_keys"]
        assert coalesced == planned

        # Both clients get the same rendered sweep (the trailing "engine:"
        # accounting line legitimately differs: one ran, one loaded).
        def body(report):
            return [line for line in report.splitlines() if not line.startswith("engine:")]

        table_a = client.result(first["id"])
        table_b = client.result(second["id"])
        assert "rob-scaling" in table_a
        assert body(table_a) == body(table_b)
