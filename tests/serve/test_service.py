"""The experiment service scheduler: submission validation and coalescing.

Exercises :class:`repro.serve.service.ExperimentService` in-process (no
HTTP): eager document validation mirrors the scenario loader's behaviour,
duplicate concurrent submissions coalesce onto one set of simulations, and
job completion drives size-gated store eviction.
"""

from __future__ import annotations

import pytest

from repro.engine.store import ArtifactStore
from repro.serve.service import (
    DONE,
    FAILED,
    ExperimentService,
    SubmitError,
    parse_submission,
)

#: A tiny but real two-cell document (distinct schemes, one benchmark).
TWO_CELLS = {
    "cells": [
        {"benchmark": "gzip", "scheme": "conventional"},
        {"benchmark": "gzip", "scheme": "predicate"},
    ],
    "instructions": 1500,
}


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "cache"))


@pytest.fixture
def service(store):
    service = ExperimentService(store, jobs=1, workers=2)
    yield service
    service.shutdown(wait=True, timeout=10)


class TestParseSubmission:
    def test_cells_document(self):
        parsed = parse_submission(TWO_CELLS)
        assert parsed.kind == "cells"
        assert len(parsed.requests) == 2
        assert parsed.instructions == 1500
        labels = {request.label for request in parsed.requests}
        assert labels == {"conventional@table1", "predicate@table1"}

    def test_scenario_by_name(self):
        parsed = parse_submission({"scenario": "rob-scaling", "instructions": 2000})
        assert parsed.kind == "scenario"
        assert parsed.scenario.instructions == 2000
        assert parsed.requests

    def test_inline_scenario_document(self):
        document = {
            "scenario": {
                "scenario": {
                    "name": "inline-test",
                    "benchmarks": ["gzip"],
                    "instructions": 1500,
                    "schemes": ["conventional"],
                },
                "axes": {"pipeline": {"rob_entries": [64, 256]}},
            },
        }
        parsed = parse_submission(document)
        assert parsed.kind == "scenario"
        assert parsed.scenario.name == "inline-test"

    @pytest.mark.parametrize(
        "document, match",
        [
            ({}, "exactly one of"),
            ({"scenario": "x", "cells": []}, "exactly one of"),
            ({"cells": [], "extra": 1}, "unknown job document key"),
            ({"cells": []}, "non-empty list"),
            ({"cells": [{"benchmark": "no-such-workload"}]}, "unknown workload"),
            ({"cells": [{"benchmark": "gzip", "flavour": "bogus"}]}, "flavour"),
            ({"cells": [{"benchmark": "gzip", "scheme": "bogus"}]}, "scheme kind"),
            ({"cells": [{"benchmark": "gzip", "wat": 1}]}, "unknown key"),
            ({"cells": [{"benchmark": "gzip"}], "instructions": 0}, "positive"),
            ({"cells": [{"benchmark": "gzip"}], "instructions": True}, "positive"),
            ({"scenario": "no-such-scenario"}, "no-such-scenario"),
            (
                {"cells": [{"benchmark": "gzip", "machine": {"bogus_param": 1}}]},
                "machine",
            ),
            (
                {"cells": [{"benchmark": "gzip"}, {"benchmark": "gzip"}]},
                "duplicate",
            ),
        ],
    )
    def test_invalid_documents_rejected(self, document, match):
        with pytest.raises(SubmitError, match=match):
            parse_submission(document)

    def test_new_scheme_kinds_accepted(self):
        document = {
            "cells": [
                {"benchmark": "gzip", "scheme": {"kind": "wish"}},
                {
                    "benchmark": "gzip",
                    "scheme": {"kind": "conventional", "options": {"second_level": "tage"}},
                },
                {"benchmark": "gzip", "scheme": "predicate-aware"},
            ]
        }
        parsed = parse_submission(document)
        assert {request.scheme.kind for request in parsed.requests} == {
            "wish",
            "conventional",
            "predicate-aware",
        }

    def test_scheme_options_probed_at_submit_time(self):
        document = {
            "cells": [
                {
                    "benchmark": "gzip",
                    "scheme": {"kind": "predicate", "options": {"bogus_option": 3}},
                }
            ]
        }
        with pytest.raises(SubmitError, match="scheme"):
            parse_submission(document)


class TestService:
    def test_needs_a_store(self):
        with pytest.raises(ValueError, match="ArtifactStore"):
            ExperimentService(None)

    def test_submit_runs_to_done(self, service):
        record = service.submit(TWO_CELLS)
        finished = service.wait(record.id, timeout=120)
        assert finished.state == DONE, finished.error
        assert finished.planned["simulations"] == 2
        assert finished.stats["simulations_run"] == 2
        assert len(finished.result_json) == 2
        assert "gzip" in finished.result_text
        assert finished.timings

    def test_unknown_job_id_raises(self, service):
        with pytest.raises(KeyError):
            service.job("nope")

    def test_failed_submission_raises_not_queues(self, service):
        with pytest.raises(SubmitError):
            service.submit({"cells": [{"benchmark": "no-such"}]})
        assert service.list_jobs() == []

    def test_concurrent_duplicates_coalesce(self, service):
        # Two identical submissions racing on two workers: one claims and
        # simulates, the other waits on the in-flight keys and is then
        # served entirely from the store — the acceptance criterion.
        first = service.submit(TWO_CELLS)
        second = service.submit(TWO_CELLS)
        a = service.wait(first.id, timeout=120)
        b = service.wait(second.id, timeout=120)
        assert a.state == DONE, a.error
        assert b.state == DONE, b.error
        runs = sorted([a.stats["simulations_run"], b.stats["simulations_run"]])
        assert runs == [0, 2]
        coalesced = a.coalesced_keys + b.coalesced_keys
        assert coalesced == 2  # the loser waited on both keys
        # Both jobs return the same physical results.
        assert a.result_json == b.result_json

    def test_sequential_duplicate_is_a_pure_cache_hit(self, service):
        first = service.wait(service.submit(TWO_CELLS).id, timeout=120)
        assert first.state == DONE, first.error
        second = service.wait(service.submit(TWO_CELLS).id, timeout=120)
        assert second.state == DONE, second.error
        assert second.stats["simulations_run"] == 0
        assert second.stats["results_loaded"] == 2
        assert second.coalesced_keys == 0  # nothing in flight, plain cache

    def test_eviction_runs_after_jobs(self, store):
        service = ExperimentService(store, workers=1, max_store_bytes=1024)
        try:
            record = service.wait(service.submit(TWO_CELLS).id, timeout=120)
            assert record.state == DONE, record.error
            stats = service.store_stats()
            assert stats["kinds"]["total"]["bytes"] <= 1024
            assert stats["evicted"]["count"] > 0
            assert stats["max_store_bytes"] == 1024
        finally:
            service.shutdown(wait=True, timeout=10)

    def test_execution_error_marks_job_failed(self, service, monkeypatch):
        import repro.serve.service as service_mod

        def boom(*args, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(service_mod, "run_cells", boom)
        record = service.wait(service.submit(TWO_CELLS).id, timeout=120)
        assert record.state == FAILED
        assert "engine exploded" in record.error
        # The failed job released its claims: a fresh submission still runs.
        monkeypatch.undo()
        retry = service.wait(service.submit(TWO_CELLS).id, timeout=120)
        assert retry.state == DONE, retry.error

    def test_store_stats_shape(self, service):
        stats = service.store_stats()
        assert set(stats) == {
            "root", "kinds", "max_store_bytes", "evicted", "inflight_keys",
        }
        assert stats["inflight_keys"] == 0
        assert stats["evicted"] == {"count": 0, "bytes": 0}
