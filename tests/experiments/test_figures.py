"""Structural tests of the figure/experiment harness on a tiny profile.

These tests verify that every experiment produces well-formed results and
that the headline quantities are computed consistently; the *shape* of the
results against the paper is checked by the integration tests and measured
by the benchmark harness.
"""

import pytest

from repro.experiments import (
    run_figure5,
    run_figure6,
    run_history_ablation,
    run_idealized_study,
    run_pvt_ablation,
    run_selective_ipc,
)
from repro.experiments.runner import BASELINE, IF_CONVERTED, ExperimentRunner
from repro.experiments.setup import ExperimentProfile


@pytest.fixture(scope="module")
def tiny_profile():
    return ExperimentProfile(
        name="tiny",
        instructions_per_benchmark=2_500,
        benchmarks=["gzip", "swim"],
        profile_budget=2_500,
    )


@pytest.fixture(scope="module")
def shared_runner(tiny_profile):
    return ExperimentRunner(tiny_profile)


class TestFigure5:
    def test_structure(self, tiny_profile, shared_runner):
        result = run_figure5(runner=shared_runner)
        assert set(result.table.benchmarks()) == {"gzip", "swim"}
        assert set(result.table.columns) == {"conventional", "predicate-predictor"}
        assert result.predicate_wins + result.conventional_wins <= 2
        for benchmark in result.table.benchmarks():
            assert 0.0 <= result.table.value(benchmark, "conventional") <= 1.0
        assert "accuracy increase" in result.render()
        assert result.early_resolved["gzip"] >= 0.0


class TestFigure6:
    def test_structure(self, tiny_profile, shared_runner):
        result = run_figure6(runner=shared_runner)
        assert set(result.table.columns) == {
            "pep-pa", "conventional", "predicate-predictor",
        }
        assert len(result.breakdown) == 2
        for item in result.breakdown:
            total = item.total_improvement
            assert total == pytest.approx(
                item.early_resolved_improvement + item.correlation_improvement
            )
        assert 0 <= result.predicate_best_count <= 2
        rendered = result.render()
        assert "Figure 6b" in rendered


class TestIdealized:
    def test_both_flavours(self, tiny_profile, shared_runner):
        baseline = run_idealized_study(BASELINE, runner=shared_runner)
        converted = run_idealized_study(IF_CONVERTED, runner=shared_runner)
        assert baseline.flavour == BASELINE
        assert converted.flavour == IF_CONVERTED
        assert baseline.table.benchmarks() == ["gzip", "swim"]
        assert "Idealized" in baseline.render() or "idealized" in baseline.render()

    def test_unknown_flavour_rejected(self, shared_runner):
        with pytest.raises(ValueError):
            run_idealized_study("debug", runner=shared_runner)


class TestAblations:
    def test_pvt_ablation(self, shared_runner):
        result = run_pvt_ablation(runner=shared_runner)
        assert "dual-hash single PVT" in result.table.columns
        assert "split PVT" in result.table.columns
        assert "design" in result.render()

    def test_history_ablation(self, shared_runner):
        result = run_history_ablation(runner=shared_runner)
        assert "oracle history" in result.table.columns


class TestSelectiveIPC:
    def test_structure(self, shared_runner):
        result = run_selective_ipc(runner=shared_runner)
        assert result.speedup_over_conservative > 0.0
        assert result.speedup_over_non_selective > 0.0
        for benchmark, fraction in result.cancelled_fraction.items():
            assert 0.0 <= fraction <= 1.0
        assert "IPC" in result.render()
