"""Tests for experiment configuration and the runner."""

import pytest

from repro.experiments.runner import BASELINE, IF_CONVERTED, ExperimentRunner
from repro.experiments.setup import (
    FAST_PROFILE,
    PAPER_PROFILE,
    ExperimentProfile,
    make_conventional_scheme,
    make_peppa_scheme,
    make_predicate_scheme,
    paper_table1,
    profile_from_environment,
)


class TestTable1:
    def test_contains_every_row_of_the_paper_table(self):
        table = paper_table1()
        for key in (
            "Fetch Width",
            "Issue Queues",
            "Reorder Buffer",
            "L1D",
            "L1I",
            "L2 unified",
            "DTLB",
            "ITLB",
            "Main Memory",
            "Multilevel Branch Predictor",
            "Predicate Predictor",
        ):
            assert key in table

    def test_headline_values(self):
        table = paper_table1()
        assert "6 instructions" in table["Fetch Width"]
        assert "256 entries" in table["Reorder Buffer"]
        assert "120 cycles" in table["Main Memory"]
        assert "148KB" in table["Predicate Predictor"].replace("~", "")


class TestProfiles:
    def test_fast_profile_is_small(self):
        assert FAST_PROFILE.instructions_per_benchmark < PAPER_PROFILE.instructions_per_benchmark
        assert FAST_PROFILE.benchmarks is not None

    def test_with_benchmarks(self):
        profile = PAPER_PROFILE.with_benchmarks(["gzip"])
        assert profile.benchmarks == ["gzip"]
        assert profile.instructions_per_benchmark == PAPER_PROFILE.instructions_per_benchmark

    def test_environment_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", "1234")
        monkeypatch.setenv("REPRO_BENCH_BENCHMARKS", "gzip, swim")
        profile = profile_from_environment()
        assert profile.instructions_per_benchmark == 1234
        assert profile.benchmarks == ["gzip", "swim"]

    def test_environment_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_INSTRUCTIONS", raising=False)
        monkeypatch.delenv("REPRO_BENCH_BENCHMARKS", raising=False)
        profile = profile_from_environment()
        assert profile.instructions_per_benchmark == PAPER_PROFILE.instructions_per_benchmark


class TestSchemeFactories:
    def test_sizes_match_paper_budgets(self):
        conventional = make_conventional_scheme()
        peppa = make_peppa_scheme()
        predicate = make_predicate_scheme()
        assert 148 <= conventional.predictor.size_report().total_kib <= 160
        assert abs(peppa.predictor.size_report().total_kib - 144) < 1
        assert 140 <= predicate.predictor.size_report().total_kib <= 156

    def test_option_plumbing(self):
        scheme = make_predicate_scheme(
            selective_predication=False, ideal_no_alias=True, perfect_history=True
        )
        assert scheme.options.selective_predication is False
        assert scheme.options.ideal_no_alias is True
        assert scheme.options.perfect_history is True

    def test_split_pvt_option(self):
        scheme = make_predicate_scheme(split_pvt=True)
        assert scheme.predictor.config.split_pvt is True


class TestExperimentRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        profile = ExperimentProfile(
            name="tiny", instructions_per_benchmark=1_500,
            benchmarks=["gzip"], profile_budget=1_500,
        )
        return ExperimentRunner(profile)

    def test_benchmarks_come_from_profile(self, runner):
        assert runner.benchmarks() == ["gzip"]

    def test_binary_and_trace_caching(self, runner):
        first = runner.binary("gzip", BASELINE)
        second = runner.binary("gzip", BASELINE)
        assert first is second
        trace_a = runner.trace("gzip", BASELINE)
        trace_b = runner.trace("gzip", BASELINE)
        assert trace_a is trace_b
        assert len(trace_a) == 1_500

    def test_flavours_differ(self, runner):
        baseline = runner.binary("gzip", BASELINE)
        converted = runner.binary("gzip", IF_CONVERTED)
        assert baseline.metadata["predication_enabled"] is False
        assert converted.metadata["predication_enabled"] is True

    def test_unknown_flavour_rejected(self, runner):
        with pytest.raises(ValueError):
            runner.binary("gzip", "debug")

    def test_run_schemes_share_trace(self, runner):
        runs = runner.run_schemes(
            "gzip",
            BASELINE,
            {"conv": make_conventional_scheme, "pred": make_predicate_scheme},
        )
        assert runs["conv"].result.accuracy.branches == runs["pred"].result.accuracy.branches
        assert runs["conv"].benchmark == "gzip"

    def test_drop_trace(self, runner):
        runner.trace("gzip", BASELINE)
        runner.drop_trace("gzip", BASELINE)
        assert ("gzip", BASELINE) not in runner._traces
