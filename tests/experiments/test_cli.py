"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_commands(self):
        parser = build_parser()
        for command in ("table1", "list", "figure5", "figure6", "ablations", "ipc"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_simulate_arguments(self):
        args = build_parser().parse_args(
            ["--instructions", "500", "simulate", "gzip", "--scheme", "conventional"]
        )
        assert args.instructions == 500
        assert args.benchmark == "gzip"
        assert args.scheme == "conventional"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_prints_suite(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "gzip" in output and "swim" in output

    def test_table1_prints_configuration(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "Reorder Buffer" in output and "256 entries" in output

    def test_simulate_runs_small_budget(self, capsys):
        code = main(
            ["--instructions", "1500", "simulate", "swim", "--scheme", "predicate"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "misprediction rate" in output
        assert "IPC" in output

    def test_simulate_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["--instructions", "1000", "simulate", "doom3"])

    def test_figure5_on_subset(self, capsys):
        code = main(
            ["--instructions", "1200", "--benchmarks", "swim", "figure5"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Figure 5" in output
        assert "swim" in output
