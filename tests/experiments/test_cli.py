"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_commands(self):
        parser = build_parser()
        for command in ("table1", "list", "figure5", "figure6", "ablations", "ipc"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_simulate_arguments(self):
        args = build_parser().parse_args(
            ["--instructions", "500", "simulate", "gzip", "--scheme", "conventional"]
        )
        assert args.instructions == 500
        assert args.benchmark == "gzip"
        assert args.scheme == "conventional"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_prints_suite(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "gzip" in output and "swim" in output

    def test_table1_prints_configuration(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "Reorder Buffer" in output and "256 entries" in output

    def test_simulate_runs_small_budget(self, capsys):
        code = main(
            ["--instructions", "1500", "simulate", "swim", "--scheme", "predicate"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "misprediction rate" in output
        assert "IPC" in output

    def test_simulate_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["--instructions", "1000", "simulate", "doom3"])

    def test_figure5_on_subset(self, capsys):
        code = main(
            ["--instructions", "1200", "--benchmarks", "swim", "figure5"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Figure 5" in output
        assert "swim" in output

    def test_unknown_benchmark_lists_registry_and_suggests(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--instructions", "1000", "--benchmarks", "gzpi", "figure5"])
        message = str(excinfo.value)
        assert "did you mean: gzip" in message
        assert "twolf" in message  # the registry listing

    def test_simulate_spec_file_path(self, capsys, tmp_path):
        import json

        spec = tmp_path / "mini.json"
        spec.write_text(
            json.dumps(
                {
                    "workload": {"name": "mini", "category": "int", "seed": 2},
                    "easy_branches": [{"bias": 0.9}],
                }
            )
        )
        assert main(["--instructions", "1000", "simulate", str(spec)]) == 0
        output = capsys.readouterr().out
        assert "misprediction rate" in output


class TestWorkloadsCommand:
    def test_list_shows_builtins_and_library(self, capsys):
        assert main(["workloads", "list"]) == 0
        output = capsys.readouterr().out
        assert "gzip" in output and "builtin" in output
        assert "branchy" in output and "library" in output
        assert "fingerprint" in output

    def test_describe_builtin(self, capsys):
        assert main(["workloads", "describe", "twolf"]) == 0
        output = capsys.readouterr().out
        assert "origin               builtin" in output
        assert "xor" in output  # twolf's exception-benchmark correlation

    def test_describe_requires_exactly_one(self):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["workloads", "describe"])

    def test_describe_unknown_suggests(self):
        with pytest.raises(SystemExit, match="did you mean: gzip"):
            main(["workloads", "describe", "gzpi"])

    def test_validate_reports_ok_and_fail(self, capsys, tmp_path):
        import json

        good = tmp_path / "good.json"
        good.write_text(
            json.dumps(
                {
                    "workload": {"name": "good", "category": "int", "seed": 2},
                    "easy_branches": [{"bias": 0.9}],
                }
            )
        )
        assert main(["workloads", "validate", str(good)]) == 0
        assert "ok  " in capsys.readouterr().out

        bad = tmp_path / "bad.json"
        bad.write_text('{"workload": {"name": "bad"}}')
        with pytest.raises(SystemExit) as excinfo:
            main(["workloads", "validate", str(good), str(bad)])
        message = str(excinfo.value)
        assert "ok  " in message and "FAIL" in message

    def test_validate_requires_a_target(self):
        with pytest.raises(SystemExit, match="at least one"):
            main(["workloads", "validate"])

    def test_validate_trace_file(self, capsys, tmp_path):
        trace = tmp_path / "cap.trace"
        trace.write_text("0x10 T\n0x10 N\n" * 40)
        assert main(["workloads", "validate", str(trace)]) == 0
        assert "ok  " in capsys.readouterr().out
