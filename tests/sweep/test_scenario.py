"""Scenario parsing: formats, validation errors, and normalization."""

from __future__ import annotations

import json
import sys

import pytest

from repro.pipeline.config import PipelineConfig
from repro.pipeline.machine import MachineSpec, overridable_fields
from repro.sweep.scenario import (
    DEFAULT_INSTRUCTIONS,
    ScenarioError,
    builtin_scenario_names,
    load_scenario,
    load_scenario_file,
    parse_scenario,
)
from repro.sweep.spec import SweepSpec

HAVE_TOMLLIB = sys.version_info >= (3, 11)


def minimal_document(**header):
    base = {"name": "t", "benchmarks": ["gzip"]}
    base.update(header)
    return {"scenario": base, "axes": {"pipeline": {"rob_entries": [64, 128]}}}


class TestParsing:
    def test_minimal_document_parses(self):
        scenario = parse_scenario(minimal_document())
        assert scenario.name == "t"
        assert scenario.flavour == "if-converted"
        assert scenario.instructions == DEFAULT_INSTRUCTIONS
        assert scenario.schemes == ("conventional", "pep-pa", "predicate")
        assert [axis.name for axis in scenario.axes] == ["rob_entries"]

    def test_json_file_round_trip(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(minimal_document()))
        scenario = load_scenario_file(str(path))
        assert scenario.name == "t"

    @pytest.mark.skipif(not HAVE_TOMLLIB, reason="tomllib needs Python 3.11+")
    def test_toml_file_round_trip(self, tmp_path):
        path = tmp_path / "scenario.toml"
        path.write_text(
            '[scenario]\nname = "t"\nbenchmarks = ["gzip"]\n'
            "[axes.pipeline]\nrob_entries = [64, 128]\n"
        )
        scenario = load_scenario_file(str(path))
        assert scenario.name == "t"
        assert scenario.axes[0].display == ("64", "128")

    def test_composite_axis_positions(self):
        document = minimal_document()
        document["axes"]["pipeline"] = {
            "penalty": [
                {"branch_mispredict_penalty": 5, "predicate_mispredict_penalty": 5},
                {"branch_mispredict_penalty": 20, "predicate_mispredict_penalty": 20},
            ]
        }
        scenario = parse_scenario(document)
        assert scenario.axes[0].display == ("5", "20")
        points = SweepSpec(scenario).points()
        assert points[1].machine.overrides() == {
            "branch_mispredict_penalty": 20,
            "predicate_mispredict_penalty": 20,
        }


class TestMalformedInput:
    def test_malformed_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ScenarioError, match="invalid JSON"):
            load_scenario_file(str(path))

    @pytest.mark.skipif(not HAVE_TOMLLIB, reason="tomllib needs Python 3.11+")
    def test_malformed_toml(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("[scenario\nname=")
        with pytest.raises(ScenarioError, match="invalid TOML"):
            load_scenario_file(str(path))

    def test_unsupported_extension(self, tmp_path):
        path = tmp_path / "scenario.yaml"
        path.write_text("name: t")
        with pytest.raises(ScenarioError, match="unsupported scenario extension"):
            load_scenario_file(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(ScenarioError, match="cannot read scenario file"):
            load_scenario_file(str(tmp_path / "nope.json"))

    def test_unknown_scenario_name(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            load_scenario("definitely-not-a-scenario")


class TestValidation:
    def test_unknown_top_level_section(self):
        document = minimal_document()
        document["extras"] = {}
        with pytest.raises(ScenarioError, match="unknown top-level section"):
            parse_scenario(document)

    def test_unknown_scenario_key(self):
        with pytest.raises(ScenarioError, match="unknown \\[scenario\\] key"):
            parse_scenario(minimal_document(benchmark="gzip"))

    def test_missing_name(self):
        document = minimal_document()
        del document["scenario"]["name"]
        with pytest.raises(ScenarioError, match="non-empty string 'name'"):
            parse_scenario(document)

    def test_unknown_config_field_in_axis(self):
        document = minimal_document()
        document["axes"]["pipeline"] = {"rob_size": [64, 128]}
        with pytest.raises(ScenarioError, match="unknown machine parameter 'rob_size'"):
            parse_scenario(document)

    def test_unknown_config_field_in_base(self):
        document = minimal_document()
        document["base"] = {"pipeline": {"robs": 12}}
        with pytest.raises(ScenarioError, match="unknown machine parameter 'robs'"):
            parse_scenario(document)

    def test_non_list_axis(self):
        document = minimal_document()
        document["axes"]["pipeline"] = {"rob_entries": 64}
        with pytest.raises(ScenarioError, match="non-empty list"):
            parse_scenario(document)

    def test_duplicate_axis_values(self):
        document = minimal_document()
        document["axes"]["pipeline"] = {"rob_entries": [64, 64]}
        with pytest.raises(ScenarioError, match="duplicate values"):
            parse_scenario(document)

    def test_invalid_config_value_rejected(self):
        document = minimal_document()
        document["axes"]["pipeline"] = {"rob_entries": [0]}
        with pytest.raises(ScenarioError, match="reorder buffer"):
            parse_scenario(document)

    def test_unknown_scheme_kind(self):
        with pytest.raises(ScenarioError, match="unknown scheme kind"):
            parse_scenario(minimal_document(schemes=["perceptron"]))

    def test_unknown_flavour(self):
        with pytest.raises(ScenarioError, match="unknown flavour"):
            parse_scenario(minimal_document(flavour="optimized"))

    def test_unknown_benchmark(self):
        # The registry's message lists the available workloads and (for
        # near-misses) suggests close matches.
        with pytest.raises(ScenarioError, match="unknown workload"):
            parse_scenario(minimal_document(benchmarks=["spec2017"]))

    def test_misspelled_benchmark_gets_a_suggestion(self):
        with pytest.raises(ScenarioError, match="did you mean: gzip"):
            parse_scenario(minimal_document(benchmarks=["gzpi"]))

    def test_non_string_benchmark_entry_rejected(self):
        # Including unhashable entries, which would otherwise slip past as a
        # raw TypeError from the duplicate set() check.
        with pytest.raises(ScenarioError, match="must be strings"):
            parse_scenario(minimal_document(benchmarks=[["gzip"]]))
        with pytest.raises(ScenarioError, match="must be strings"):
            parse_scenario(minimal_document(benchmarks=[7]))

    def test_spec_file_benchmark_accepted(self, tmp_path):
        import json

        spec = tmp_path / "mini.json"
        spec.write_text(
            json.dumps(
                {
                    "workload": {"name": "mini", "category": "int", "seed": 1},
                    "easy_branches": [{"bias": 0.9}],
                }
            )
        )
        scenario = parse_scenario(minimal_document(benchmarks=[str(spec)]))
        assert scenario.benchmarks == (str(spec),)

    def test_invalid_spec_file_benchmark_rejected(self, tmp_path):
        spec = tmp_path / "broken.json"
        spec.write_text('{"workload": {"name": "broken"}}')
        with pytest.raises(ScenarioError, match="category"):
            parse_scenario(minimal_document(benchmarks=[str(spec)]))

    def test_bad_instruction_budget(self):
        with pytest.raises(ScenarioError, match="positive integer"):
            parse_scenario(minimal_document(instructions=-5))

    def test_scheme_axis_non_integer_value(self):
        # "16" would collapse onto 16's display label and then crash inside
        # a worker's scheme build — rejected at load time instead.
        document = minimal_document(schemes=["predicate"])
        document["axes"] = {"scheme": {"entries": [16, "16"]}}
        with pytest.raises(ScenarioError, match="values must be integers"):
            parse_scenario(document)

    def test_scheme_axis_non_positive_value(self):
        document = minimal_document(schemes=["predicate"])
        document["axes"] = {"scheme": {"entries": [0]}}
        with pytest.raises(ScenarioError, match="not a positive integer"):
            parse_scenario(document)

    def test_scheme_axis_bool_for_geometry_option(self):
        # True would silently become a 1-entry table; geometry options take
        # integers only.
        document = minimal_document(schemes=["predicate"])
        document["axes"] = {"scheme": {"entries": [True, 3634]}}
        with pytest.raises(ScenarioError, match="values must be integers"):
            parse_scenario(document)

    def test_scheme_axis_int_for_flag_option(self):
        document = minimal_document(schemes=["predicate"])
        document["axes"] = {"scheme": {"split_pvt": [0, 1]}}
        with pytest.raises(ScenarioError, match="feature flag"):
            parse_scenario(document)

    def test_flag_scheme_axis_parses(self):
        document = minimal_document(schemes=["predicate"])
        document["axes"] = {"scheme": {"split_pvt": [False, True]}}
        assert parse_scenario(document).axes[0].display == ("False", "True")

    def test_duplicate_schemes_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate scheme"):
            parse_scenario(minimal_document(schemes=["predicate", "predicate"]))

    def test_duplicate_benchmarks_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate benchmark"):
            parse_scenario(minimal_document(benchmarks=["gzip", "gzip"]))

    def test_scheme_axis_option_unknown_to_every_factory(self):
        document = minimal_document(schemes=["pep-pa"])
        document["axes"] = {"scheme": {"entries": [256, 512]}}
        with pytest.raises(
            ScenarioError, match="not an option of any scenario scheme"
        ):
            parse_scenario(document)

    def test_scheme_axis_option_known_to_some_factories_parses(self):
        # pep-pa takes no `entries`; predicate does.  The axis parses and
        # pep-pa simply ignores it (its cells collapse per point).
        document = minimal_document(schemes=["pep-pa", "predicate"])
        document["axes"] = {"scheme": {"entries": [256, 512]}}
        scenario = parse_scenario(document)
        assert scenario.axes[0].display == ("256", "512")

    def test_choice_scheme_axis_parses(self):
        document = minimal_document(schemes=["conventional", "wish"])
        document["axes"] = {"scheme": {"second_level": ["perceptron", "tage"]}}
        scenario = parse_scenario(document)
        assert scenario.axes[0].display == ("perceptron", "tage")

    def test_choice_scheme_axis_unknown_value_rejected(self):
        document = minimal_document(schemes=["conventional"])
        document["axes"] = {"scheme": {"second_level": ["perceptron", "ltage"]}}
        with pytest.raises(ScenarioError, match="values must be among"):
            parse_scenario(document)

    def test_choice_scheme_axis_non_string_value_rejected(self):
        document = minimal_document(schemes=["conventional"])
        document["axes"] = {"scheme": {"second_level": ["perceptron", 2]}}
        with pytest.raises(ScenarioError, match="values must be among"):
            parse_scenario(document)

    def test_base_shadowed_by_axis(self):
        document = minimal_document()
        document["base"] = {"pipeline": {"rob_entries": 128}}
        with pytest.raises(ScenarioError, match="both \\[base.pipeline\\] and an axis"):
            parse_scenario(document)

    def test_ragged_composite_positions_rejected(self):
        # {branch penalty} vs {predicate penalty} would both display as
        # "20", collide in the result-collection labels, and silently drop
        # one machine's results — rejected up front.
        document = minimal_document()
        document["axes"]["pipeline"] = {
            "penalty": [
                {"branch_mispredict_penalty": 20},
                {"predicate_mispredict_penalty": 20},
            ]
        }
        with pytest.raises(ScenarioError, match="must set the same field"):
            parse_scenario(document)

    def test_scenario_name_is_filename_safe(self):
        for bad in ("my/sweep", "../x", "a b"):
            with pytest.raises(ScenarioError, match="may only contain"):
                parse_scenario(minimal_document(name=bad))

    def test_two_axes_sweeping_one_field(self):
        # A composite axis whose positions also set a field swept by another
        # axis would be silently shadowed by merge order — rejected instead.
        document = minimal_document()
        document["axes"]["pipeline"]["window"] = [
            {"rob_entries": 32, "int_queue_entries": 16},
            {"rob_entries": 48, "int_queue_entries": 24},
        ]
        with pytest.raises(ScenarioError, match="swept by both axis"):
            parse_scenario(document)

    def test_pipeline_and_scheme_axes_may_not_share_a_name(self):
        # Report grouping keys on (axis name, display): a shared name would
        # pool both axes' cells into each other's tables.
        document = minimal_document(schemes=["predicate"])
        document["axes"]["pipeline"] = {
            "entries": [{"rob_entries": 64}, {"rob_entries": 128}]
        }
        document["axes"]["scheme"] = {"entries": [64, 128]}
        with pytest.raises(ScenarioError, match="more than one axis"):
            parse_scenario(document)

    def test_axes_required(self):
        document = minimal_document()
        document["axes"] = {}
        with pytest.raises(ScenarioError, match="at least one"):
            parse_scenario(document)


class TestBuiltins:
    def test_builtin_names(self):
        assert builtin_scenario_names() == [
            "custom-workload",
            "fetch-width",
            "mispredict-penalty",
            "predictor-budget",
            "rob-scaling",
            "scheme-shootout",
        ]

    @pytest.mark.skipif(not HAVE_TOMLLIB, reason="tomllib needs Python 3.11+")
    @pytest.mark.parametrize(
        "name",
        [
            "custom-workload",
            "fetch-width",
            "mispredict-penalty",
            "predictor-budget",
            "rob-scaling",
            "scheme-shootout",
        ],
    )
    def test_builtins_parse_and_expand(self, name):
        scenario = load_scenario(name)
        assert scenario.name == name
        spec = SweepSpec(scenario)
        assert len(spec.points()) >= 2
        assert spec.cell_count() == (
            len(spec.benchmarks()) * len(spec.points()) * len(scenario.schemes)
        )


class TestMachineSpec:
    def test_unknown_field(self):
        with pytest.raises(ValueError, match="unknown machine parameter"):
            MachineSpec.make(robs=64)

    def test_non_integer_value(self):
        with pytest.raises(ValueError, match="must be an integer"):
            MachineSpec.make(rob_entries="large")

    def test_default_valued_override_is_dropped(self):
        default = PipelineConfig()
        assert MachineSpec.make(rob_entries=default.rob_entries) == MachineSpec()
        assert MachineSpec.make(rob_entries=default.rob_entries).is_default()

    def test_build_config_applies_overrides(self):
        config = MachineSpec.make(rob_entries=64, fetch_width=2).build_config()
        assert (config.rob_entries, config.fetch_width) == (64, 2)

    def test_describe(self):
        assert MachineSpec().describe() == "table1"
        assert MachineSpec.make(rob_entries=64).describe() == "rob_entries=64"

    def test_overridable_fields_are_config_fields(self):
        defaults = overridable_fields()
        config = PipelineConfig()
        for name, default in defaults.items():
            assert getattr(config, name) == default
