"""The ``repro sweep`` command: listing, running, writing, overrides."""

from __future__ import annotations

import os
import sys

import pytest

from repro.cli import main

HAVE_TOMLLIB = sys.version_info >= (3, 11)

needs_tomllib = pytest.mark.skipif(
    not HAVE_TOMLLIB, reason="built-in scenarios are TOML (Python 3.11+)"
)


class TestSweepCommand:
    def test_list_scenarios(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        assert "rob-scaling" in out
        assert "rob_entries" in out  # the sweepable-parameter listing

    def test_bare_sweep_lists_too(self, capsys):
        assert main(["sweep"]) == 0
        assert "built-in scenarios" in capsys.readouterr().out

    def test_unknown_scenario_exits_cleanly(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["sweep", "no-such-scenario"])

    @needs_tomllib
    def test_non_positive_instruction_override_rejected(self):
        with pytest.raises(SystemExit, match="positive integer"):
            main(["--instructions", "0", "sweep", "rob-scaling", "--no-write"])

    @needs_tomllib
    def test_run_writes_report_and_rerun_hits_cache(self, tmp_path, capsys):
        output_dir = str(tmp_path / "results")
        argv = [
            "--instructions",
            "1500",
            "--benchmarks",
            "gzip",
            "sweep",
            "rob-scaling",
            "--output-dir",
            output_dir,
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        path = os.path.join(output_dir, "sweep_rob_scaling.txt")
        assert os.path.exists(path)
        assert f"wrote {path}" in out
        assert "ran 8 simulations (0 cached)" in out

        # The rerun rebuilds nothing: every simulate job is served from the
        # persistent artifact store (the conftest points REPRO_CACHE_DIR at
        # this test's scratch directory).
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "ran 0 simulations (8 cached)" in out

    @needs_tomllib
    def test_jobs_accepted_after_subcommand(self, tmp_path, capsys):
        # The acceptance-criterion form: `repro sweep rob-scaling --jobs 4`.
        output_dir = str(tmp_path / "results")
        argv = [
            "--instructions",
            "1000",
            "--benchmarks",
            "gzip",
            "sweep",
            "rob-scaling",
            "--output-dir",
            output_dir,
            "--jobs",
            "2",
        ]
        assert main(argv) == 0
        assert os.path.exists(os.path.join(output_dir, "sweep_rob_scaling.txt"))

    @needs_tomllib
    def test_no_write(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        argv = [
            "--instructions",
            "1000",
            "--benchmarks",
            "gzip",
            "sweep",
            "predictor-budget",
            "--no-write",
        ]
        assert main(argv) == 0
        assert "entries" in capsys.readouterr().out
        assert not os.path.exists(tmp_path / "results")
