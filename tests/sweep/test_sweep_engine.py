"""The sweep ↔ engine contract: config tokens, cache keys, end-to-end runs."""

from __future__ import annotations

import pytest

from repro.engine import ExecutionEngine, MachineSpec, SchemeSpec, machine_fingerprint
from repro.engine.jobs import IF_CONVERTED
from repro.engine.planner import make_build_job, make_simulate_job, make_trace_job
from repro.engine.store import RESULTS, ArtifactStore
from repro.experiments.setup import ExperimentProfile
from repro.sweep.scenario import Scenario, parse_scenario
from repro.sweep.runner import run_sweep, sweep_profile
from repro.sweep.report import ascii_bars, render_sweep
from repro.sweep.spec import SweepSpec

PROFILE = ExperimentProfile(
    name="sweep-test",
    instructions_per_benchmark=2_000,
    benchmarks=["gzip"],
    profile_budget=2_000,
)


def tiny_scenario(**header) -> Scenario:
    base = {
        "name": "tiny",
        "benchmarks": ["gzip"],
        "schemes": ["predicate"],
        "instructions": 2_000,
    }
    base.update(header)
    return parse_scenario(
        {"scenario": base, "axes": {"pipeline": {"rob_entries": [64, 256]}}}
    )


class TestConfigToken:
    def test_token_stable_for_default_valued_overrides(self):
        # The round-trip property: the token changes iff an *effective*
        # parameter changes.
        assert machine_fingerprint(MachineSpec()) == machine_fingerprint(
            MachineSpec.make(rob_entries=256)
        )

    def test_token_changes_with_effective_parameter(self):
        assert machine_fingerprint(MachineSpec()) != machine_fingerprint(
            MachineSpec.make(rob_entries=64)
        )
        assert machine_fingerprint(MachineSpec.make(rob_entries=64)) != machine_fingerprint(
            MachineSpec.make(rob_entries=128)
        )

    def test_default_machine_key_matches_plain_simulate_key(self):
        # A Table 1-default sweep cell must reuse cached Table 1 artifacts:
        # its simulate key has to be byte-identical to the key a non-sweep
        # run plans for the same cell.
        engine = ExecutionEngine(PROFILE)
        build = make_build_job("gzip", IF_CONVERTED, engine.factory)
        trace = make_trace_job(build, 2_000)
        scheme = SchemeSpec.make("predicate")
        plain = make_simulate_job(trace, scheme)
        defaulted = make_simulate_job(
            trace, scheme, MachineSpec.make(rob_entries=256)
        )
        assert plain.key == defaulted.key

    def test_distinct_machines_distinct_keys(self):
        engine = ExecutionEngine(PROFILE)
        build = make_build_job("gzip", IF_CONVERTED, engine.factory)
        trace = make_trace_job(build, 2_000)
        scheme = SchemeSpec.make("predicate")
        small = make_simulate_job(trace, scheme, MachineSpec.make(rob_entries=64))
        large = make_simulate_job(trace, scheme, MachineSpec.make(rob_entries=128))
        assert small.key != large.key
        # The machine never leaks into the trace key: every machine of a
        # sweep replays the one cached trace of its cell.
        assert small.trace_key == large.trace_key == trace.key


class TestCacheSeparation:
    def test_two_rob_sizes_two_artifacts_different_ipc(self, tmp_path):
        # Regression test for the acceptance criterion: same benchmark and
        # scheme, two rob_entries values -> two simulate artifacts in the
        # store, with genuinely different IPC.
        store = ArtifactStore(str(tmp_path / "cache"))
        engine = ExecutionEngine(PROFILE, store=store)
        scheme = SchemeSpec.make("predicate")
        tiny = engine.simulate(
            "gzip", IF_CONVERTED, scheme, machine=MachineSpec.make(rob_entries=8)
        )
        large = engine.simulate("gzip", IF_CONVERTED, scheme)
        assert engine.stats.simulations_run == 2
        assert store.stats()[RESULTS]["count"] == 2
        assert tiny.metrics.ipc != large.metrics.ipc

    def test_default_sweep_cell_reuses_cached_table1_artifact(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        scheme = SchemeSpec.make("predicate")
        # A plain (non-sweep) run populates the store...
        warm = ExecutionEngine(PROFILE, store=store)
        warm.simulate("gzip", IF_CONVERTED, scheme)
        assert warm.stats.simulations_run == 1
        # ... and the Table 1-default point of a sweep is served from it.
        cold = ExecutionEngine(PROFILE, store=store)
        cold.simulate(
            "gzip", IF_CONVERTED, scheme, machine=MachineSpec.make(rob_entries=256)
        )
        assert cold.stats.simulations_run == 0
        assert cold.stats.results_loaded == 1

    def test_machine_config_actually_reaches_the_core(self):
        # An 8-entry window must hurt: the override is not just a cache-key
        # ornament.
        engine = ExecutionEngine(PROFILE)
        scheme = SchemeSpec.make("predicate")
        tiny = engine.simulate(
            "gzip", IF_CONVERTED, scheme, machine=MachineSpec.make(rob_entries=8)
        )
        full = engine.simulate("gzip", IF_CONVERTED, scheme)
        assert tiny.metrics.ipc < full.metrics.ipc


class TestSchemeOptionNormalization:
    def test_default_valued_scheme_option_builds_plain_spec(self):
        # Mirrors MachineSpec normalization: the Table 1 point of a
        # predictor-budget axis (entries = 3634) must produce the plain
        # scheme spec — same token, same cache key, cached figure artifacts
        # reused.
        scenario = parse_scenario(
            {
                "scenario": {
                    "name": "budget",
                    "benchmarks": ["gzip"],
                    "schemes": ["conventional", "predicate"],
                    "instructions": 2_000,
                },
                "axes": {"scheme": {"entries": [16, 3634]}},
            }
        )
        spec = SweepSpec(scenario)
        default_point = next(
            p for p in spec.points() if dict(p.scheme_options)["entries"] == 3634
        )
        small_point = next(
            p for p in spec.points() if dict(p.scheme_options)["entries"] == 16
        )
        for kind in scenario.schemes:
            assert spec.scheme_spec(kind, default_point) == SchemeSpec.make(kind)
            assert spec.scheme_spec(kind, small_point) == SchemeSpec.make(
                kind, entries=16
            )

    def test_default_valued_boolean_option_builds_plain_spec(self):
        # Boolean factory flags normalize too: split_pvt=False IS the
        # default predicate scheme, so its point must reuse cached plain-
        # scheme artifacts instead of keying a duplicate.
        scenario = parse_scenario(
            {
                "scenario": {
                    "name": "pvt",
                    "benchmarks": ["gzip"],
                    "schemes": ["predicate"],
                    "instructions": 2_000,
                },
                "axes": {"scheme": {"split_pvt": [False, True]}},
            }
        )
        spec = SweepSpec(scenario)
        off, on = spec.points()
        assert spec.scheme_spec("predicate", off) == SchemeSpec.make("predicate")
        assert spec.scheme_spec("predicate", on) == SchemeSpec.make(
            "predicate", split_pvt=True
        )

    def test_run_sweep_rejects_mismatched_engine_budget(self):
        scenario = tiny_scenario()
        wrong = ExecutionEngine(
            ExperimentProfile(
                name="wrong",
                instructions_per_benchmark=9_999,
                benchmarks=["gzip"],
                profile_budget=2_000,
            )
        )
        with pytest.raises(ValueError, match="sweep_profile"):
            run_sweep(scenario, engine=wrong)

    def test_run_sweep_rejects_mismatched_profile_budget(self):
        # Same instruction budget, different profiling budget: different
        # if-conversion decisions, different binaries — rejected.
        scenario = tiny_scenario()
        wrong = ExecutionEngine(
            ExperimentProfile(
                name="wrong",
                instructions_per_benchmark=scenario.instructions,
                benchmarks=["gzip"],
                profile_budget=500,
            )
        )
        with pytest.raises(ValueError, match="profile_budget"):
            run_sweep(scenario, engine=wrong)


class TestRunSweep:
    def test_end_to_end_and_rerun_hits_cache(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        scenario = tiny_scenario()
        engine = ExecutionEngine(sweep_profile(scenario), store=store)
        run = run_sweep(scenario, engine=engine)
        # 2 points x 1 scheme x 1 benchmark.
        assert len(run.results) == 2
        assert engine.stats.simulations_run == 2

        again = ExecutionEngine(sweep_profile(scenario), store=store)
        rerun = run_sweep(scenario, engine=again)
        assert again.stats.simulations_run == 0
        assert again.stats.results_loaded == 2
        ipc = {point.describe(): result.metrics.ipc for (_, point, _), result in run.results.items()}
        ipc_again = {
            point.describe(): result.metrics.ipc
            for (_, point, _), result in rerun.results.items()
        }
        assert ipc == ipc_again

    def test_parallel_matches_serial(self, tmp_path):
        scenario = tiny_scenario(benchmarks=["gzip", "twolf"])
        serial = run_sweep(scenario, engine=ExecutionEngine(sweep_profile(scenario)))
        parallel = run_sweep(
            scenario,
            engine=ExecutionEngine(sweep_profile(scenario), jobs=2),
        )
        def key(run):
            return {
                (scheme, point.describe(), benchmark): result.metrics.ipc
                for (scheme, point, benchmark), result in run.results.items()
            }

        assert key(serial) == key(parallel)

    def test_report_renders_every_axis_value(self):
        scenario = tiny_scenario()
        run = run_sweep(scenario, engine=ExecutionEngine(sweep_profile(scenario)))
        report = render_sweep(run)
        assert "sweep: tiny" in report
        assert "rob_entries" in report
        assert " 64 |" in report  # the ASCII plot rows
        assert "engine:" in report

    def test_scheme_axis_changes_results_and_keys(self, tmp_path):
        scenario = parse_scenario(
            {
                "scenario": {
                    "name": "budget",
                    "benchmarks": ["gzip"],
                    "schemes": ["predicate"],
                    "instructions": 2_000,
                },
                "axes": {"scheme": {"entries": [16, 3634]}},
            }
        )
        store = ArtifactStore(str(tmp_path / "cache"))
        engine = ExecutionEngine(sweep_profile(scenario), store=store)
        run = run_sweep(scenario, engine=engine)
        assert engine.stats.simulations_run == 2
        assert store.stats()[RESULTS]["count"] == 2
        rates = {
            point.describe(): result.accuracy.misprediction_rate
            for (_, point, _), result in run.results.items()
        }
        # A 16-entry table aliases differently than 3634 entries; at this
        # tiny budget the direction is noisy, but the results (and their
        # cache keys, via the scheme token) must be distinct.
        assert rates["entries=16"] != rates["entries=3634"]


class TestAsciiBars:
    def test_bars_scale_to_peak(self):
        lines = ascii_bars([("a", 1.0), ("b", 2.0)])
        assert lines[1].count("#") == 40
        assert lines[0].count("#") == 20

    def test_zero_values(self):
        lines = ascii_bars([("a", 0.0)])
        assert "#" not in lines[0]
