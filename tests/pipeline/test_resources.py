"""Tests for pipeline resource models."""

import pytest

from repro.isa.opcodes import FunctionalUnitClass
from repro.isa.registers import GR, PR
from repro.pipeline.resources import (
    FunctionalUnitPool,
    RegisterTimingTable,
    SlidingWindowResource,
    StoreForwardingTable,
)


class TestSlidingWindowResource:
    def test_no_constraint_until_full(self):
        window = SlidingWindowResource("rob", capacity=3)
        for release in (10, 20, 30):
            assert window.earliest_allocation(5) == 5
            window.allocate(release)

    def test_full_window_delays_allocation(self):
        window = SlidingWindowResource("rob", capacity=2)
        window.allocate(100)
        window.allocate(200)
        assert window.earliest_allocation(5) == 100
        window.allocate(300)
        assert window.earliest_allocation(5) == 200

    def test_desired_cycle_after_release_not_delayed(self):
        window = SlidingWindowResource("iq", capacity=1)
        window.allocate(50)
        assert window.earliest_allocation(80) == 80

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowResource("bad", capacity=0)


class TestFunctionalUnitPool:
    def test_single_unit_serialises(self):
        pool = FunctionalUnitPool({FunctionalUnitClass.INT_MUL: 1})
        first = pool.acquire(FunctionalUnitClass.INT_MUL, 10)
        second = pool.acquire(FunctionalUnitClass.INT_MUL, 10)
        assert first == 10
        assert second == 11  # fully pipelined: next cycle

    def test_two_units_issue_same_cycle(self):
        pool = FunctionalUnitPool({FunctionalUnitClass.INT_ALU: 2})
        assert pool.acquire(FunctionalUnitClass.INT_ALU, 7) == 7
        assert pool.acquire(FunctionalUnitClass.INT_ALU, 7) == 7
        assert pool.acquire(FunctionalUnitClass.INT_ALU, 7) == 8

    def test_ready_cycle_respected(self):
        pool = FunctionalUnitPool({FunctionalUnitClass.INT_ALU: 1})
        assert pool.acquire(FunctionalUnitClass.INT_ALU, 42) == 42

    def test_utilisation_counts(self):
        pool = FunctionalUnitPool({FunctionalUnitClass.BRANCH_UNIT: 1})
        pool.acquire(FunctionalUnitClass.BRANCH_UNIT, 0)
        pool.acquire(FunctionalUnitClass.BRANCH_UNIT, 5)
        assert pool.utilisation()["branch_unit"] == 2


class TestRegisterTimingTable:
    def test_unwritten_registers_ready_at_zero(self):
        table = RegisterTimingTable()
        assert table.ready_cycle(GR(5)) == 0

    def test_hardwired_always_ready(self):
        table = RegisterTimingTable()
        table.set_ready(GR(0), 100)
        assert table.ready_cycle(GR(0)) == 0

    def test_last_writer_wins(self):
        table = RegisterTimingTable()
        table.set_ready(GR(3), 10)
        table.set_ready(GR(3), 25)
        assert table.ready_cycle(GR(3)) == 25

    def test_ready_for_takes_maximum(self):
        table = RegisterTimingTable()
        table.set_ready(GR(1), 5)
        table.set_ready(PR(6), 17)
        assert table.ready_for([GR(1), PR(6), GR(2)]) == 17


class TestStoreForwardingTable:
    def test_forward_recent_store(self):
        table = StoreForwardingTable(window=100)
        table.record_store(0x1000, data_ready_cycle=50)
        assert table.forwarding_cycle(0x1000, load_issue_cycle=60) == 50

    def test_word_granularity(self):
        table = StoreForwardingTable(window=100)
        table.record_store(0x1000, 50)
        assert table.forwarding_cycle(0x1004, 60) == 50

    def test_old_store_not_forwarded(self):
        table = StoreForwardingTable(window=10)
        table.record_store(0x1000, 5)
        assert table.forwarding_cycle(0x1000, 100) is None

    def test_unknown_address(self):
        table = StoreForwardingTable(window=10)
        assert table.forwarding_cycle(0x2000, 5) is None
