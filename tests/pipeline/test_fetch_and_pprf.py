"""Tests for the fetch engine and the predicate physical register file."""

from repro.emulator import Emulator
from repro.pipeline.config import PipelineConfig
from repro.pipeline.fetch import FetchEngine
from repro.pipeline.pprf import PredicatePhysicalRegisterFile

from tests.conftest import build_counting_loop


def _trace(budget=200):
    program, _ = build_counting_loop()
    return list(Emulator(program).run(budget))


class TestFetchEngine:
    def test_width_limit_per_cycle(self):
        config = PipelineConfig(fetch_width=3)
        fetch = FetchEngine(config, memory=None)
        trace = _trace(60)
        cycles = [fetch.fetch(dyn) for dyn in trace]
        from collections import Counter

        per_cycle = Counter(cycles)
        assert max(per_cycle.values()) <= 3

    def test_taken_branch_ends_group(self):
        config = PipelineConfig(fetch_width=6)
        fetch = FetchEngine(config, memory=None)
        trace = _trace(60)
        cycles = [fetch.fetch(dyn) for dyn in trace]
        for index, dyn in enumerate(trace[:-1]):
            if dyn.is_branch and dyn.taken:
                assert cycles[index + 1] > cycles[index]

    def test_fetch_cycles_monotonic(self):
        fetch = FetchEngine(PipelineConfig(), memory=None)
        trace = _trace(100)
        cycles = [fetch.fetch(dyn) for dyn in trace]
        assert cycles == sorted(cycles)

    def test_redirect_blocks_following_instructions(self):
        fetch = FetchEngine(PipelineConfig(), memory=None)
        trace = _trace(30)
        fetch.fetch(trace[0])
        fetch.redirect(500)
        assert fetch.fetch(trace[1]) >= 500
        assert fetch.redirects == 1

    def test_refetch_current(self):
        fetch = FetchEngine(PipelineConfig(), memory=None)
        trace = _trace(10)
        first = fetch.fetch(trace[0])
        refetched = fetch.refetch_current(trace[0], resume_cycle=first + 50)
        assert refetched >= first + 50


class TestPPRF:
    def test_allocation_maps_logical_register(self):
        pprf = PredicatePhysicalRegisterFile()
        entry = pprf.allocate(6, producer_pc=0x4000, producer_slot=0, producer_seq=1)
        assert pprf.current(6) is entry
        assert pprf.current(7) is None
        assert len(pprf) == 1

    def test_new_allocation_shadows_old(self):
        pprf = PredicatePhysicalRegisterFile()
        first = pprf.allocate(6, 0x4000, 0, 1)
        second = pprf.allocate(6, 0x4010, 0, 2)
        assert pprf.current(6) is second
        assert first.physical_id != second.physical_id
        assert pprf.allocations == 2

    def test_value_at_prefers_computed_when_available(self):
        pprf = PredicatePhysicalRegisterFile()
        entry = pprf.allocate(6, 0x4000, 0, 1)
        entry.predicted_value = True
        entry.predicted_cycle = 10
        assert entry.value_at(12) is True
        entry.computed_value = False
        entry.computed_cycle = 20
        assert entry.value_at(15) is True      # prediction still in effect
        assert entry.value_at(20) is False     # computed value available
        assert entry.is_resolved_at(20)
        assert not entry.is_resolved_at(19)

    def test_live_entries(self):
        pprf = PredicatePhysicalRegisterFile()
        pprf.allocate(6, 0x4000, 0, 1)
        pprf.allocate(7, 0x4000, 1, 1)
        assert len(pprf.live_entries()) == 2
