"""Tests for the out-of-order core timing model."""

from repro.core import ConventionalScheme, PredicatePredictionScheme
from repro.core.predicate_scheme import PredicateSchemeOptions
from repro.emulator import Emulator
from repro.pipeline import OutOfOrderCore, PipelineConfig
from repro.pipeline.uop import RenameDecision


def _run(program, scheme=None, budget=2_000, config=None, keep_uops=True):
    scheme = scheme or ConventionalScheme()
    core = OutOfOrderCore(config=config)
    trace = Emulator(program).run(budget)
    return core.run(trace, scheme, program_name=program.name, keep_uops=keep_uops)


class TestTimestampInvariants:
    def test_stage_order_per_uop(self, counting_loop):
        program, _ = counting_loop
        result = _run(program)
        for uop in result.uops:
            assert uop.fetch_cycle <= uop.decode_cycle <= uop.rename_cycle
            assert uop.rename_cycle <= uop.commit_cycle
            if not uop.cancelled:
                assert uop.issue_cycle <= uop.complete_cycle < uop.commit_cycle

    def test_fetch_and_commit_in_order(self, counting_loop):
        program, _ = counting_loop
        result = _run(program)
        fetches = [u.fetch_cycle for u in result.uops]
        commits = [u.commit_cycle for u in result.uops]
        assert fetches == sorted(fetches)
        assert commits == sorted(commits)

    def test_commit_width_respected(self, counting_loop):
        program, _ = counting_loop
        config = PipelineConfig(commit_width=2)
        result = _run(program, config=config)
        from collections import Counter

        per_cycle = Counter(u.commit_cycle for u in result.uops)
        assert max(per_cycle.values()) <= 2

    def test_data_dependences_respected(self, counting_loop):
        program, _ = counting_loop
        result = _run(program)
        # The compare consuming the loaded value must complete after the load.
        by_seq = {u.dyn.seq: u for u in result.uops}
        for uop in result.uops:
            if uop.dyn.is_conditional_branch and uop.dyn.guard_producer_seq >= 0:
                producer = by_seq.get(uop.dyn.guard_producer_seq)
                if producer is not None:
                    assert uop.complete_cycle >= producer.complete_cycle

    def test_cycles_and_ipc(self, counting_loop):
        program, _ = counting_loop
        result = _run(program)
        assert result.metrics.cycles > 0
        assert result.metrics.committed_instructions == len(result.uops)
        assert 0.05 < result.ipc < 6.0


class TestBranchHandlingCosts:
    def test_mispredictions_cost_cycles(self, diamond_program):
        program, _, _ = diamond_program
        fast = _run(program, config=PipelineConfig(branch_mispredict_penalty=1))
        slow_scheme = ConventionalScheme()
        slow = _run(program, scheme=slow_scheme, config=PipelineConfig(branch_mispredict_penalty=40))
        assert slow.metrics.cycles > fast.metrics.cycles

    def test_branch_counts_match_scheme_records(self, diamond_program):
        program, _, _ = diamond_program
        result = _run(program)
        assert result.metrics.conditional_branches == result.accuracy.branches
        assert result.metrics.branch_mispredictions == result.accuracy.mispredictions

    def test_metrics_summary_keys(self, counting_loop):
        program, _ = counting_loop
        result = _run(program)
        summary = result.metrics.summary()
        for key in ("cycles", "ipc", "branch_misprediction_rate", "mpki"):
            assert key in summary


class TestPredicationHandling:
    def test_conventional_scheme_is_conservative(self, counting_loop):
        program, _ = counting_loop
        result = _run(program)
        predicated = [u for u in result.uops if u.inst.is_predicated and not u.is_branch]
        assert predicated
        assert all(u.rename_decision is RenameDecision.CONSERVATIVE for u in predicated)
        assert result.metrics.cancelled_at_rename == 0

    def test_selective_scheme_cancels_false_predicates(self, counting_loop):
        program, _ = counting_loop
        scheme = PredicatePredictionScheme(PredicateSchemeOptions(confidence_bits=1))
        result = _run(program, scheme=scheme)
        assert result.metrics.cancelled_at_rename > 0

    def test_nullified_instructions_counted(self, counting_loop):
        program, _ = counting_loop
        result = _run(program)
        assert result.metrics.nullified_instructions > 0
        assert (
            result.metrics.nullified_instructions
            + result.metrics.executed_instructions
            == result.metrics.committed_instructions
        )


class TestResultObject:
    def test_uops_not_kept_by_default(self, counting_loop):
        program, _ = counting_loop
        core = OutOfOrderCore()
        result = core.run(Emulator(program).run(500), ConventionalScheme())
        assert result.uops is None

    def test_result_names(self, counting_loop):
        program, _ = counting_loop
        result = _run(program)
        assert result.program_name == program.name
        assert result.scheme_name == "conventional"
        assert 0.0 <= result.misprediction_rate <= 1.0
