"""Tests for pipeline metrics and the scheme API defaults."""

from repro.emulator import Emulator
from repro.pipeline.metrics import PipelineMetrics
from repro.pipeline.scheme_api import (
    BranchHandling,
    BranchHandlingScheme,
    PredicatedHandling,
)
from repro.pipeline.uop import RenameDecision
from repro.pipeline import OutOfOrderCore

from tests.conftest import build_counting_loop


class TestPipelineMetrics:
    def test_zero_division_safety(self):
        metrics = PipelineMetrics()
        assert metrics.ipc == 0.0
        assert metrics.useful_ipc == 0.0
        assert metrics.branch_misprediction_rate == 0.0
        assert metrics.mpki == 0.0

    def test_derived_quantities(self):
        metrics = PipelineMetrics(
            cycles=100,
            committed_instructions=200,
            executed_instructions=150,
            conditional_branches=40,
            branch_mispredictions=4,
        )
        assert metrics.ipc == 2.0
        assert metrics.useful_ipc == 1.5
        assert metrics.branch_misprediction_rate == 0.1
        assert metrics.mpki == 20.0

    def test_repr_contains_ipc(self):
        metrics = PipelineMetrics(cycles=10, committed_instructions=20)
        assert "ipc=2.000" in repr(metrics)


class _MinimalScheme(BranchHandlingScheme):
    """A scheme that exercises the default hook implementations."""

    name = "minimal"

    def on_branch_rename(self, dyn, fetch_cycle, rename_cycle, guard_ready_cycle):
        return BranchHandling(final_prediction=True)


class TestSchemeAPIDefaults:
    def test_default_predicated_handling_is_conservative(self):
        scheme = _MinimalScheme()
        handling = scheme.on_predicated_rename(None, 0, 0, 0)
        assert handling.decision is RenameDecision.CONSERVATIVE
        assert not handling.mispredicted

    def test_predicated_handling_mispredicted_flag(self):
        assert PredicatedHandling(RenameDecision.CANCEL, flush_discovery_cycle=5).mispredicted
        assert not PredicatedHandling(RenameDecision.CANCEL).mispredicted

    def test_branch_handling_defaults(self):
        handling = BranchHandling(final_prediction=False)
        assert handling.fetch_prediction is None
        assert not handling.override_flush
        assert not handling.early_resolved

    def test_describe_defaults_to_name(self):
        assert _MinimalScheme().describe() == "minimal"

    def test_minimal_scheme_runs_through_pipeline(self):
        program, _ = build_counting_loop()
        scheme = _MinimalScheme()
        result = OutOfOrderCore().run(Emulator(program).run(500), scheme, "minimal")
        # The minimal scheme always predicts taken; the loop-back branch is
        # taken on every instance but the last, so accuracy is high but the
        # scheme records nothing (it never calls accuracy.record).
        assert result.metrics.conditional_branches > 0
