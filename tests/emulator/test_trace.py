"""Tests for trace statistics."""

from repro.emulator import collect_trace, trace_statistics
from repro.emulator.trace import branch_outcome_stream, per_site_outcomes

from tests.conftest import build_counting_loop, build_diamond_program


class TestTraceStatistics:
    def test_counts_add_up(self):
        program, _ = build_counting_loop()
        trace = collect_trace(program, 10_000)
        stats = trace_statistics(trace)
        assert stats.fetched == len(trace)
        assert stats.executed + stats.nullified == stats.fetched
        assert stats.compares > 0
        assert stats.loads > 0
        assert stats.conditional_branches > 0

    def test_branch_site_bias(self):
        program, _, _ = build_diamond_program()
        trace = collect_trace(program, 10_000)
        stats = trace_statistics(trace)
        # The loop-back branch is heavily taken; the data branch is not.
        biases = sorted(site.bias for site in stats.branch_sites.values())
        assert biases[-1] > 0.85
        assert biases[0] < 0.85

    def test_hard_branch_fraction(self):
        program, _, _ = build_diamond_program()
        stats = trace_statistics(collect_trace(program, 10_000))
        assert 0.0 < stats.hard_branch_fraction(bias_threshold=0.9) < 1.0

    def test_guard_distance_recorded(self):
        program, _ = build_counting_loop()
        stats = trace_statistics(collect_trace(program, 10_000))
        assert stats.guard_distances
        assert stats.mean_guard_distance >= 1.0

    def test_nullification_rate(self):
        program, _ = build_counting_loop()
        stats = trace_statistics(collect_trace(program, 10_000))
        assert 0.0 < stats.nullification_rate < 0.5

    def test_outcome_stream_helpers(self):
        program, _, _ = build_diamond_program()
        trace = collect_trace(program, 10_000)
        outcomes = branch_outcome_stream(trace)
        per_site = per_site_outcomes(trace)
        assert len(outcomes) == sum(len(v) for v in per_site.values())
        assert set(per_site)  # keyed by PC

    def test_empty_trace(self):
        stats = trace_statistics([])
        assert stats.fetched == 0
        assert stats.conditional_branch_fraction == 0.0
        assert stats.mean_guard_distance == 0.0
