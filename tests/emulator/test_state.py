"""Tests for the architectural state."""

from repro.emulator.state import ArchState
from repro.isa.registers import BR, FR, GR, PR
from repro.program import ProgramBuilder


class TestInitialState:
    def test_general_registers_zero(self):
        state = ArchState()
        assert state.read(GR(5)) == 0

    def test_p0_true_others_false(self):
        state = ArchState()
        assert state.read(PR(0)) is True
        assert state.read(PR(5)) is False

    def test_for_program_loads_data(self):
        pb = ProgramBuilder("p")
        base = pb.array("a", [7, 8])
        rb = pb.routine("main")
        rb.block("entry")
        rb.br_ret()
        program = pb.finish()
        state = ArchState.for_program(program)
        assert state.memory.read_word(base) == 7
        assert state.memory.read_word(base + 8) == 8


class TestReadsAndWrites:
    def test_write_general(self):
        state = ArchState()
        assert state.write(GR(3), 11)
        assert state.read(GR(3)) == 11

    def test_write_wraps_to_64_bits(self):
        state = ArchState()
        state.write(GR(3), 2**64 + 5)
        assert state.read(GR(3)) == 5

    def test_write_predicate_bool(self):
        state = ArchState()
        state.write(PR(6), 1)
        assert state.read(PR(6)) is True

    def test_write_float(self):
        state = ArchState()
        state.write(FR(33), 2.5)
        assert state.read(FR(33)) == 2.5

    def test_write_branch_register(self):
        state = ArchState()
        state.write(BR(1), 0x4000)
        assert state.read(BR(1)) == 0x4000

    def test_hardwired_writes_discarded(self):
        state = ArchState()
        assert state.write(GR(0), 99) is False
        assert state.read(GR(0)) == 0
        assert state.write(PR(0), False) is False
        assert state.read(PR(0)) is True

    def test_snapshot_predicates(self):
        state = ArchState()
        state.write(PR(6), True)
        snapshot = state.snapshot_predicates()
        assert snapshot[6] is True
        assert snapshot[0] is True
