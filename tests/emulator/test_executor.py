"""Tests for the functional executor."""

from repro.emulator import Emulator
from repro.isa import GR, PR, CompareRelation, CompareType
from repro.program import ProgramBuilder, validate_program


class TestStraightLineExecution:
    def test_counting_loop_result(self, counting_loop):
        program, expected = counting_loop
        emulator = Emulator(program)
        list(emulator.run(10_000))
        assert emulator.halted
        assert emulator.state.general[13] == expected

    def test_diamond_counts(self, diamond_program):
        program, highs, lows = diamond_program
        emulator = Emulator(program)
        list(emulator.run(10_000))
        assert emulator.state.general[20] == highs
        assert emulator.state.general[21] == lows

    def test_budget_limits_fetch(self, counting_loop):
        program, _ = counting_loop
        emulator = Emulator(program)
        trace = list(emulator.run(10))
        assert len(trace) == 10
        assert not emulator.halted

    def test_store_and_load_roundtrip(self):
        pb = ProgramBuilder("st")
        base = pb.array("buf", [0, 0])
        rb = pb.routine("main")
        rb.block("entry")
        rb.movi(GR(1), base)
        rb.movi(GR(2), 77)
        rb.store(GR(2), GR(1), offset=8)
        rb.load(GR(3), GR(1), offset=8)
        rb.br_ret()
        program = pb.finish()
        emulator = Emulator(program)
        list(emulator.run(100))
        assert emulator.state.general[3] == 77
        assert emulator.state.memory.read_word(base + 8) == 77

    def test_fp_operations(self):
        from repro.isa.registers import FR

        pb = ProgramBuilder("fp")
        rb = pb.routine("main")
        rb.block("entry")
        rb.movi(GR(1), 3)
        rb.fadd(FR(33), FR(34), FR(35))  # 0.0 + 0.0
        rb.fmul(FR(36), FR(33), FR(33))
        rb.br_ret()
        emulator = Emulator(pb.finish())
        list(emulator.run(100))
        assert emulator.state.floating[33] == 0.0


class TestPredication:
    def test_nullified_instruction_does_not_write(self):
        pb = ProgramBuilder("pred")
        rb = pb.routine("main")
        rb.block("entry")
        rb.movi(GR(1), 5)
        rb.cmp(CompareRelation.GT, PR(6), PR(7), GR(1), 10)  # false
        rb.movi(GR(2), 99, qp=PR(6))
        rb.movi(GR(3), 42, qp=PR(7))
        rb.br_ret()
        emulator = Emulator(pb.finish())
        trace = list(emulator.run(100))
        assert emulator.state.general[2] == 0
        assert emulator.state.general[3] == 42
        nullified = [d for d in trace if not d.executed]
        assert len(nullified) == 1

    def test_unc_compare_clears_targets_when_nullified(self):
        pb = ProgramBuilder("unc")
        rb = pb.routine("main")
        rb.block("entry")
        rb.movi(GR(1), 5)
        # p6/p7 initially set via an unconditional compare.
        rb.cmp(CompareRelation.GT, PR(6), PR(7), GR(1), 0)  # p6=1, p7=0
        # Guarded by p7 (false): unc type must clear both targets.
        rb.cmp(
            CompareRelation.GT, PR(8), PR(9), GR(1), 0,
            ctype=CompareType.UNC, qp=PR(7),
        )
        rb.br_ret()
        emulator = Emulator(pb.finish())
        list(emulator.run(100))
        assert emulator.state.predicate[8] is False
        assert emulator.state.predicate[9] is False

    def test_normal_compare_skipped_when_nullified(self):
        pb = ProgramBuilder("none")
        rb = pb.routine("main")
        rb.block("entry")
        rb.movi(GR(1), 5)
        rb.cmp(CompareRelation.GT, PR(8), PR(9), GR(1), 0)   # p8=1, p9=0
        rb.cmp(CompareRelation.LT, PR(8), PR(9), GR(1), 0, qp=PR(9))  # nullified
        rb.br_ret()
        emulator = Emulator(pb.finish())
        list(emulator.run(100))
        assert emulator.state.predicate[8] is True

    def test_pred_writes_recorded_on_dyninst(self):
        pb = ProgramBuilder("writes")
        rb = pb.routine("main")
        rb.block("entry")
        rb.movi(GR(1), 5)
        rb.cmp(CompareRelation.GT, PR(6), PR(7), GR(1), 0)
        rb.br_ret()
        emulator = Emulator(pb.finish())
        trace = list(emulator.run(100))
        compare = next(d for d in trace if d.is_compare)
        assert dict(compare.pred_writes) == {6: True, 7: False}

    def test_guard_producer_seq_tracks_last_writer(self, counting_loop):
        program, _ = counting_loop
        emulator = Emulator(program)
        trace = list(emulator.run(200))
        branches = [d for d in trace if d.is_conditional_branch]
        for branch in branches:
            producer = trace[branch.guard_producer_seq]
            assert producer.is_compare
            assert branch.inst.qp.index in dict(producer.pred_writes)


class TestControlFlow:
    def test_taken_field_and_next_pc(self, counting_loop):
        program, _ = counting_loop
        emulator = Emulator(program)
        trace = list(emulator.run(1000))
        branches = [d for d in trace if d.is_conditional_branch]
        assert branches, "expected conditional branches in trace"
        taken = [b for b in branches if b.taken]
        not_taken = [b for b in branches if not b.taken]
        assert taken and not_taken
        for b in taken:
            assert b.next_pc == b.target_pc
        loop_block = program.routine("main").block("loop")
        assert all(b.target_pc == loop_block.address for b in taken)

    def test_call_and_return(self):
        pb = ProgramBuilder("calls")
        helper = pb.routine("helper")
        helper.block("h")
        helper.movi(GR(5), 123)
        helper.br_ret()
        rb = pb.routine("main")
        rb.block("entry")
        rb.movi(GR(5), 1)
        rb.br_call("helper")
        rb.movi(GR(6), 7)
        rb.br_ret()
        program = pb.finish()
        validate_program(program)
        emulator = Emulator(program)
        trace = list(emulator.run(100))
        assert emulator.halted
        assert emulator.state.general[5] == 123
        assert emulator.state.general[6] == 7
        call = next(d for d in trace if d.inst.is_branch and d.inst.kind.value == "call")
        assert call.target_pc == program.routine("helper").entry.address

    def test_guarded_return_skipped_when_false(self):
        pb = ProgramBuilder("guarded-ret")
        rb = pb.routine("main")
        rb.block("entry")
        rb.movi(GR(1), 1)
        rb.cmp(CompareRelation.GT, PR(6), PR(7), GR(1), 5)  # false
        rb.br_ret(qp=PR(6))
        rb.movi(GR(2), 55)
        rb.br_ret()
        emulator = Emulator(pb.finish())
        list(emulator.run(100))
        assert emulator.state.general[2] == 55

    def test_guarded_return_taken_when_true(self):
        pb = ProgramBuilder("guarded-ret2")
        rb = pb.routine("main")
        rb.block("entry")
        rb.movi(GR(1), 10)
        rb.cmp(CompareRelation.GT, PR(6), PR(7), GR(1), 5)  # true
        rb.br_ret(qp=PR(6))
        rb.movi(GR(2), 55)
        rb.br_ret()
        emulator = Emulator(pb.finish())
        list(emulator.run(100))
        assert emulator.state.general[2] == 0
        assert emulator.halted

    def test_counts(self, counting_loop):
        program, _ = counting_loop
        emulator = Emulator(program)
        trace = list(emulator.run(10_000))
        assert emulator.fetched_instructions == len(trace)
        assert emulator.executed_instructions <= emulator.fetched_instructions
