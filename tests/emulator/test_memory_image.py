"""Tests for the sparse memory image."""

from repro.emulator.memory_image import MemoryImage, to_signed64


class TestSignedWrap:
    def test_small_values_unchanged(self):
        assert to_signed64(5) == 5
        assert to_signed64(-5) == -5

    def test_wraps_at_64_bits(self):
        assert to_signed64(2**63) == -(2**63)
        assert to_signed64(2**64) == 0
        assert to_signed64(2**64 + 3) == 3

    def test_max_positive(self):
        assert to_signed64(2**63 - 1) == 2**63 - 1


class TestMemoryImage:
    def test_unwritten_reads_zero(self):
        assert MemoryImage().read_word(0x1000) == 0

    def test_write_then_read(self):
        mem = MemoryImage()
        mem.write_word(0x1000, 42)
        assert mem.read_word(0x1000) == 42

    def test_unaligned_access_clamped_to_word(self):
        mem = MemoryImage()
        mem.write_word(0x1000, 7)
        assert mem.read_word(0x1003) == 7
        mem.write_word(0x1005, 9)
        assert mem.read_word(0x1000) == 9

    def test_initial_contents(self):
        mem = MemoryImage({0x2000: 11, 0x2008: 22})
        assert mem.read_word(0x2000) == 11
        assert mem.read_word(0x2008) == 22
        assert len(mem) == 2

    def test_contains(self):
        mem = MemoryImage({0x2000: 11})
        assert 0x2000 in mem
        assert 0x2004 in mem  # same word
        assert 0x2008 not in mem

    def test_copy_is_independent(self):
        mem = MemoryImage({0x2000: 1})
        clone = mem.copy()
        clone.write_word(0x2000, 99)
        assert mem.read_word(0x2000) == 1

    def test_values_wrap_to_signed(self):
        mem = MemoryImage()
        mem.write_word(0x0, 2**63)
        assert mem.read_word(0x0) == -(2**63)
