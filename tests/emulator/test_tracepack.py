"""Columnar trace packs: round-trips, backward compatibility, equal stats.

Three guarantees are under test here:

* ``TracePack`` round-trips — object ↔ columnar ↔ bytes — reproduce
  bit-identical ``DynInst`` state (hypothesis drives randomized field
  combinations through the codec);
* the trace deserializer still loads format-1 pickle archives and rejects
  unknown versions;
* the vectorized statistics passes over a pack equal the reference
  per-instruction loops, field for field.
"""

from __future__ import annotations

import io
import pickle
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator import Emulator, collect_trace
from repro.emulator.trace import (
    TRACE_FORMAT_VERSION,
    branch_outcome_stream,
    deserialize_trace,
    per_site_outcomes,
    serialize_trace,
    trace_statistics,
)
from repro.emulator.tracepack import (
    CHUNK_MAGIC,
    ChunkedPackWriter,
    ChunkedTracePack,
    PACK_MAGIC,
    TracePack,
    pack_supported,
)

from tests.conftest import build_counting_loop, build_diamond_program

pytestmark = pytest.mark.skipif(
    not pack_supported(), reason="columnar packs require numpy"
)

BUDGET = 6_000


def dyn_state(dyn):
    """Comparable per-dynamic-instruction state (identity-free)."""
    state = dyn.__getstate__()
    return (state[0],) + state[2:] + (state[1].uid,)


@pytest.fixture(scope="module")
def loop_trace():
    program, _ = build_counting_loop()
    return collect_trace(program, BUDGET)


@pytest.fixture(scope="module")
def diamond_trace():
    program, _, _ = build_diamond_program()
    return collect_trace(program, BUDGET)


class TestRoundTrip:
    def test_object_columnar_object_is_bit_identical(self, loop_trace):
        pack = TracePack.from_dyninsts(loop_trace)
        assert len(pack) == len(loop_trace)
        restored = pack.to_dyninsts()
        for ref, got in zip(loop_trace, restored):
            assert dyn_state(ref) == dyn_state(got)

    def test_bytes_round_trip(self, diamond_trace):
        pack = TracePack.from_dyninsts(diamond_trace)
        data = pack.to_bytes()
        assert data[:4] == PACK_MAGIC
        again = TracePack.from_bytes(data)
        for ref, got in zip(diamond_trace, again.to_dyninsts()):
            assert dyn_state(ref) == dyn_state(got)

    def test_run_pack_matches_run(self):
        program_a, _ = build_counting_loop()
        program_b, _ = build_counting_loop()
        reference = list(Emulator(program_a).run(BUDGET))
        pack = Emulator(program_b).run_pack(BUDGET)
        assert len(pack) == len(reference)
        for ref, got in zip(reference, pack.to_dyninsts()):
            # uids differ across independently-built programs; compare the
            # uid-free state.
            assert dyn_state(ref)[:-1] == dyn_state(got)[:-1]

    def test_empty_pack_round_trips(self):
        pack = TracePack.from_dyninsts([])
        assert len(pack) == 0
        assert pack.to_dyninsts() == []
        assert len(TracePack.from_bytes(pack.to_bytes())) == 0

    def test_serialized_pack_is_much_smaller_than_pickle(self):
        # At realistic budgets (a real workload, thousands of instructions)
        # the columnar encoding must be at least 3x smaller than the
        # format-1 object pickle; in practice it is ~10x.
        from repro.workloads.spec_suite import build_workload

        trace = collect_trace(build_workload("gzip"), 4_000)
        pack = TracePack.from_dyninsts(trace)
        columnar = len(serialize_trace(pack))
        pickled = len(pickle.dumps((1, trace), protocol=pickle.HIGHEST_PROTOCOL))
        assert columnar * 3 <= pickled

    def test_iteration_yields_dyninsts(self, loop_trace):
        pack = TracePack.from_dyninsts(loop_trace)
        first = next(iter(pack))
        assert dyn_state(first) == dyn_state(loop_trace[0])

    def test_cursor_exposes_the_full_dyninst_interface(self, diamond_trace):
        pack = TracePack.from_dyninsts(diamond_trace)
        for dyn, cur in zip(diamond_trace, pack.cursor()):
            assert cur.seq == dyn.seq
            assert cur.inst is not None and cur.inst.uid == dyn.inst.uid
            assert cur.pc == dyn.pc
            assert cur.qp_value == dyn.qp_value
            assert cur.executed == dyn.executed
            assert cur.taken == dyn.taken
            assert cur.target_pc == dyn.target_pc
            assert cur.next_pc == dyn.next_pc
            assert cur.mem_address == dyn.mem_address
            assert cur.pred_writes == dyn.pred_writes
            assert cur.guard_producer_seq == dyn.guard_producer_seq
            assert cur.is_branch == dyn.is_branch
            assert cur.is_compare == dyn.is_compare
            assert cur.is_conditional_branch == dyn.is_conditional_branch


_PRED_WRITE = st.tuples(st.integers(min_value=0, max_value=63), st.booleans())

#: Randomized DynInst field rows: (pc, qp_value, taken, target_pc, next_pc,
#: mem_address, pred_writes, guard_producer_seq).
_FIELD_ROWS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1 << 40),
        st.booleans(),
        st.sampled_from([None, True, False]),
        st.one_of(st.none(), st.integers(0, 1 << 40)),
        st.one_of(st.none(), st.integers(0, 1 << 40)),
        st.one_of(st.none(), st.integers(-(1 << 40), 1 << 40)),
        st.lists(_PRED_WRITE, max_size=2),
        st.integers(min_value=-1, max_value=1 << 20),
    ),
    max_size=64,
)


class TestHypothesisFieldRoundTrip:
    """Randomized DynInst field combinations survive the columnar codec."""

    @given(rows=_FIELD_ROWS)
    @settings(max_examples=60, deadline=None)
    def test_round_trip(self, rows):
        from repro.emulator.executor import DynInst

        program, _ = build_counting_loop()
        insts = [
            inst
            for block in program.entry_routine.blocks
            for inst in block.instructions
        ]
        trace = []
        for seq, fields in enumerate(rows):
            pc, qp, taken, target, next_pc, mem, writes, producer = fields
            dyn = DynInst(seq, insts[seq % len(insts)], pc, qp, producer)
            dyn.taken = taken
            dyn.target_pc = target
            dyn.next_pc = next_pc
            dyn.mem_address = mem
            dyn.pred_writes = tuple(writes)
            trace.append(dyn)
        pack = TracePack.from_bytes(TracePack.from_dyninsts(trace).to_bytes())
        assert len(pack) == len(trace)
        for ref, got in zip(trace, pack.to_dyninsts()):
            assert dyn_state(ref) == dyn_state(got)


def _split_at(trace, cuts):
    """Segment ``trace`` at the (sorted, deduplicated) ``cuts`` row indices."""
    boundaries = sorted({cut for cut in cuts if 0 < cut < len(trace)})
    edges = [0] + boundaries + [len(trace)]
    return [
        TracePack.from_dyninsts(trace[start:stop])
        for start, stop in zip(edges, edges[1:])
    ]


class TestChunkedRoundTrip:
    """Arbitrary segment splits decode identically to the monolithic pack."""

    @given(
        cuts=st.lists(st.integers(min_value=1, max_value=BUDGET), max_size=8),
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_split_round_trips_bit_identical(self, loop_trace, cuts, data):
        chunked = ChunkedTracePack.from_segments(_split_at(loop_trace, cuts))
        assert len(chunked) == len(loop_trace)

        encoded = serialize_trace(chunked)
        assert encoded[:4] == CHUNK_MAGIC
        # An RTP3 stream IS the serialized form: ChunkedPackWriter output
        # adopted via put_file and serialize_trace(chunked) are one format.
        assert encoded == chunked.to_bytes()
        decoded = deserialize_trace(encoded)
        assert isinstance(decoded, ChunkedTracePack)
        assert decoded.segment_lengths == chunked.segment_lengths
        for ref, got in zip(loop_trace, decoded.to_dyninsts()):
            assert dyn_state(ref) == dyn_state(got)

        # Range cursors iterate across segment boundaries transparently.
        # (The cursor is a flyweight advanced in place — read each row
        # during iteration, exactly as the fast loop does.)
        start = data.draw(st.integers(0, len(loop_trace)), label="start")
        stop = data.draw(st.integers(start, len(loop_trace)), label="stop")
        seen = 0
        for ref, cur in zip(loop_trace[start:stop], decoded.cursor(start, stop)):
            assert cur.seq == ref.seq
            assert cur.pc == ref.pc
            assert cur.taken == ref.taken
            assert cur.pred_writes == ref.pred_writes
            seen += 1
        assert seen == stop - start
        assert sum(1 for _ in decoded.cursor(start, stop)) == stop - start

    def test_writer_stream_equals_in_memory_encoding(self, loop_trace):
        segments = _split_at(loop_trace, [1_000, 2_500, 4_000])
        buffer = io.BytesIO()
        writer = ChunkedPackWriter(buffer)
        for segment in segments:
            writer.add_segment(segment)
        rows = writer.finish()
        assert rows == len(loop_trace)
        assert writer.segments == len(segments)
        assert buffer.getvalue() == ChunkedTracePack.from_segments(segments).to_bytes()

    def test_concat_merges_back_to_one_monolithic_pack(self, loop_trace):
        chunked = ChunkedTracePack.from_segments(_split_at(loop_trace, [700, 1_400]))
        merged = chunked.concat()
        assert isinstance(merged, TracePack)
        for ref, got in zip(loop_trace, merged.to_dyninsts()):
            assert dyn_state(ref) == dyn_state(got)

    @given(
        mode=st.sampled_from(["truncate", "overrun", "trailing", "magic"]),
        position=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=20, deadline=None)
    def test_damaged_streams_are_rejected_not_misread(
        self, loop_trace, mode, position
    ):
        data = ChunkedTracePack.from_segments(
            _split_at(loop_trace, [1_500, 3_000])
        ).to_bytes()
        if mode == "truncate":
            # Any prefix (a writer that died before finish()) must be
            # detected through the missing terminator or a short segment.
            damaged = data[: max(4, int(len(data) * position))]
        elif mode == "overrun":
            # A segment size pointing past the payload.
            damaged = data[:4] + struct.pack("<Q", len(data)) + data[12:]
        elif mode == "trailing":
            damaged = data + b"\x00garbage"
        else:
            damaged = b"XXXX" + data[4:]
        with pytest.raises(ValueError):
            ChunkedTracePack.from_bytes(damaged)


class TestBackwardCompatibility:
    def test_v1_pickle_still_loads(self, loop_trace):
        archived = pickle.dumps((1, loop_trace), protocol=pickle.HIGHEST_PROTOCOL)
        loaded = deserialize_trace(archived)
        assert isinstance(loaded, list)
        for ref, got in zip(loop_trace, loaded):
            assert dyn_state(ref)[:-1] == dyn_state(got)[:-1]

    def test_current_version_is_three(self):
        assert TRACE_FORMAT_VERSION == 3

    def test_v2_monolithic_packs_still_load(self, loop_trace):
        # A format-2 archive is exactly a monolithic pack payload; the
        # format-3 deserializer must keep accepting it unchanged.
        data = TracePack.from_dyninsts(loop_trace).to_bytes()
        assert data[:4] == PACK_MAGIC
        loaded = deserialize_trace(data)
        assert isinstance(loaded, TracePack)
        for ref, got in zip(loop_trace, loaded.to_dyninsts()):
            assert dyn_state(ref) == dyn_state(got)

    def test_unknown_pickle_version_rejected(self, loop_trace):
        stale = pickle.dumps((99, loop_trace), protocol=pickle.HIGHEST_PROTOCOL)
        with pytest.raises(ValueError, match="trace format version"):
            deserialize_trace(stale)

    def test_object_traces_serialize_as_pickle(self, loop_trace):
        # The REPRO_OPT=0 reference path stays end-to-end object based.
        data = serialize_trace(loop_trace)
        assert data[:4] != PACK_MAGIC
        assert isinstance(deserialize_trace(data), list)

    def test_packs_serialize_as_columnar(self, loop_trace):
        data = serialize_trace(TracePack.from_dyninsts(loop_trace))
        assert data[:4] == PACK_MAGIC
        assert isinstance(deserialize_trace(data), TracePack)


class TestVectorizedStatistics:
    @pytest.mark.parametrize("which", ["loop", "diamond"])
    def test_statistics_equal_reference(self, which, loop_trace, diamond_trace):
        trace = loop_trace if which == "loop" else diamond_trace
        reference = trace_statistics(trace)
        columnar = trace_statistics(TracePack.from_dyninsts(trace))
        assert columnar == reference
        assert columnar.static_oracle_accuracy() == pytest.approx(
            reference.static_oracle_accuracy()
        )

    def test_outcome_stream_equal_reference(self, diamond_trace):
        pack = TracePack.from_dyninsts(diamond_trace)
        assert branch_outcome_stream(pack) == branch_outcome_stream(diamond_trace)

    def test_per_site_outcomes_equal_reference(self, diamond_trace):
        pack = TracePack.from_dyninsts(diamond_trace)
        assert per_site_outcomes(pack) == per_site_outcomes(diamond_trace)

    def test_empty_pack_statistics(self):
        stats = trace_statistics(TracePack.from_dyninsts([]))
        assert stats.fetched == 0
        assert stats.branch_sites == {}
        assert branch_outcome_stream(TracePack.from_dyninsts([])) == []
        assert per_site_outcomes(TracePack.from_dyninsts([])) == {}
