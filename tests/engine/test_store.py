"""Artifact-store round-trips: serialize → deserialize → identical metrics."""

import os

import pytest

from repro.compiler.binaries import BinaryFactory
from repro.emulator.executor import Emulator
from repro.emulator.trace import load_trace, save_trace, serialize_trace, deserialize_trace
from repro.engine.store import BINARIES, RESULTS, TRACES, ArtifactStore, default_cache_dir
from repro.experiments.setup import make_predicate_scheme
from repro.pipeline.core import OutOfOrderCore
from repro.workloads.spec_suite import build_workload

BUDGET = 1_200


@pytest.fixture(scope="module")
def artifacts():
    """One compiled binary, its trace and one simulation result."""
    factory = BinaryFactory(profile_budget=BUDGET)
    program = factory.build_baseline("gzip", lambda: build_workload("gzip"))
    trace = list(Emulator(program).run(BUDGET))
    result = OutOfOrderCore().run(
        iter(trace), make_predicate_scheme(), program_name="gzip"
    )
    return program, trace, result


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "cache"))


class TestBinaryRoundTrip:
    def test_program_round_trip_traces_identically(self, store, artifacts):
        program, trace, _ = artifacts
        store.put(BINARIES, "k1", program)
        reloaded = store.get(BINARIES, "k1")
        assert reloaded is not program
        replayed = list(Emulator(reloaded).run(BUDGET))
        assert len(replayed) == len(trace)
        assert all(
            a.pc == b.pc and a.taken == b.taken and a.executed == b.executed
            for a, b in zip(trace, replayed)
        )


class TestTraceRoundTrip:
    def test_store_round_trip_simulates_identically(self, store, artifacts):
        _, trace, result = artifacts
        store.put(TRACES, "k1", trace)
        reloaded = store.get(TRACES, "k1")
        resimulated = OutOfOrderCore().run(
            iter(reloaded), make_predicate_scheme(), program_name="gzip"
        )
        assert resimulated.misprediction_rate == result.misprediction_rate
        assert resimulated.ipc == result.ipc
        assert resimulated.metrics.summary() == result.metrics.summary()

    def test_file_helpers(self, tmp_path, artifacts):
        _, trace, _ = artifacts
        path = str(tmp_path / "trace.bin")
        save_trace(path, trace)
        reloaded = load_trace(path)
        assert len(reloaded) == len(trace)
        assert all(a.seq == b.seq and a.pc == b.pc for a, b in zip(trace, reloaded))

    def test_version_mismatch_rejected(self, artifacts):
        _, trace, _ = artifacts
        import pickle

        version, payload = pickle.loads(serialize_trace(trace))
        stale = pickle.dumps((version + 1, payload))
        with pytest.raises(ValueError):
            deserialize_trace(stale)


class TestResultRoundTrip:
    def test_identical_metrics(self, store, artifacts):
        _, _, result = artifacts
        store.put(RESULTS, "k1", result, metadata={"benchmark": "gzip"})
        reloaded = store.get(RESULTS, "k1")
        assert reloaded.metrics.summary() == result.metrics.summary()
        assert reloaded.accuracy.branches == result.accuracy.branches
        assert reloaded.misprediction_rate == result.misprediction_rate


class TestStoreBehaviour:
    def test_miss_returns_none(self, store):
        assert store.get(RESULTS, "missing") is None
        assert not store.contains(RESULTS, "missing")

    def test_corrupt_artifact_is_a_miss_and_removed(self, store, artifacts):
        _, _, result = artifacts
        store.put(RESULTS, "k1", result)
        with open(store.path(RESULTS, "k1"), "wb") as handle:
            handle.write(b"not a pickle")
        assert store.get(RESULTS, "k1") is None
        assert not store.contains(RESULTS, "k1")

    def test_stats_and_entries(self, store, artifacts):
        program, trace, result = artifacts
        store.put(BINARIES, "b", program, metadata={"benchmark": "gzip"})
        store.put(TRACES, "t", trace)
        store.put(RESULTS, "r", result)
        stats = store.stats()
        assert stats[BINARIES]["count"] == 1
        assert stats[TRACES]["count"] == 1
        assert stats[RESULTS]["count"] == 1
        # The checkpoints kind exists but holds nothing here: transient
        # resume state is only ever present mid-run (see CHECKPOINTS).
        assert all(
            entry["bytes"] > 0 for entry in stats.values() if entry["count"]
        )
        entries = store.entries(BINARIES)
        assert len(entries) == 1
        assert entries[0]["benchmark"] == "gzip"
        assert entries[0]["key"] == "b"

    def test_clear_kind_and_all(self, store, artifacts):
        program, trace, result = artifacts
        store.put(BINARIES, "b", program)
        store.put(TRACES, "t", trace)
        store.put(RESULTS, "r", result)
        assert store.clear(RESULTS) == 1
        assert store.get(RESULTS, "r") is None
        assert store.get(BINARIES, "b") is not None
        assert store.clear() == 2
        assert store.stats()[BINARIES]["count"] == 0

    def test_unknown_kind_rejected(self, store):
        with pytest.raises(ValueError):
            store.get("bogus", "k")

    def test_default_cache_dir_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir() == ".repro-cache"
        assert default_cache_dir("/explicit") == "/explicit"
        monkeypatch.setenv("REPRO_CACHE_DIR", "/from-env")
        assert default_cache_dir() == "/from-env"
        assert default_cache_dir("/explicit") == "/explicit"

    def test_put_creates_nested_directories(self, tmp_path, artifacts):
        _, _, result = artifacts
        store = ArtifactStore(str(tmp_path / "deep" / "nested" / "cache"))
        path = store.put(RESULTS, "k", result)
        assert os.path.exists(path)
