"""The unified :func:`repro.engine.run.run_cells` entrypoint.

Every consumer — the CLI experiments, the sweep runner, the serve
scheduler, the public :mod:`repro.api` facade — funnels cell requests
through this one function, so its validation and outcome contract are
pinned here, along with the deprecation shim on the old
``resolve_engine(runner=...)`` signature.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    ArtifactStore,
    BASELINE,
    CellRequest,
    ExecutionEngine,
    SchemeSpec,
    run_cells,
)
from repro.engine.executor import resolve_engine
from repro.experiments.setup import ExperimentProfile


def _request(benchmark="gzip", label="conv", scheme_kind="conventional"):
    return CellRequest(
        benchmark=benchmark,
        flavour=BASELINE,
        label=label,
        scheme=SchemeSpec.make(scheme_kind),
    )


class TestRunCells:
    def test_runs_and_returns_outcome(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        outcome = run_cells([_request()], store=store, instructions=1500)
        assert outcome.stats.simulations_run == 1
        assert ("gzip", "conv") in outcome.results
        result = outcome.results[("gzip", "conv")]
        assert result.metrics.committed_instructions > 0
        assert outcome.engine is not None
        assert outcome.timings  # one JobTiming per simulate job

    def test_second_run_is_served_from_the_store(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        first = run_cells([_request()], store=store, instructions=1500)
        second = run_cells([_request()], store=store, instructions=1500)
        assert second.stats.simulations_run == 0
        assert second.stats.results_loaded == 1
        key = ("gzip", "conv")
        assert second.results[key].metrics.ipc == first.results[key].metrics.ipc

    def test_existing_engine_is_reused(self, tmp_path):
        profile = ExperimentProfile(
            name="reuse", instructions_per_benchmark=1500, profile_budget=1500
        )
        engine = ExecutionEngine(profile, store=None)
        outcome = run_cells([_request()], engine=engine)
        assert outcome.engine is engine

    def test_empty_requests_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            run_cells([], instructions=1500)

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_cells([_request(), _request()], instructions=1500)

    def test_engine_and_construction_options_conflict(self, tmp_path):
        profile = ExperimentProfile(
            name="conflict", instructions_per_benchmark=1500, profile_budget=1500
        )
        engine = ExecutionEngine(profile, store=None)
        with pytest.raises(ValueError, match="engine"):
            run_cells([_request()], engine=engine, instructions=1500)


class TestDeprecationShim:
    def test_runner_keyword_warns_but_works(self):
        from repro.experiments.runner import ExperimentRunner

        profile = ExperimentProfile(
            name="shim", instructions_per_benchmark=1500, profile_budget=1500
        )
        runner = ExperimentRunner(profile, store=None)
        with pytest.warns(DeprecationWarning, match="run_cells"):
            engine = resolve_engine(runner=runner)
        assert engine is runner.engine

    def test_engine_keyword_does_not_warn(self, recwarn):
        profile = ExperimentProfile(
            name="clean", instructions_per_benchmark=1500, profile_budget=1500
        )
        engine = ExecutionEngine(profile, store=None)
        assert resolve_engine(engine=engine) is engine
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]
