"""Planner tests: definitions expand into a deduplicated job DAG."""

import pytest

from repro.compiler.binaries import BinaryFactory
from repro.engine import BASELINE, IF_CONVERTED, SchemeSpec, plan, sweep
from repro.experiments.ablations import (
    history_ablation_definition,
    pvt_ablation_definition,
)
from repro.experiments.figure5 import figure5_definition
from repro.experiments.figure6 import figure6_definition
from repro.experiments.idealized import idealized_definition
from repro.experiments.selective_ipc import selective_ipc_definition

BENCHMARKS = ["gzip", "swim"]


@pytest.fixture
def factory():
    return BinaryFactory(profile_budget=1_000)


def plan_graph(definitions, factory):
    return plan(definitions, instructions=1_000, factory=factory)


class TestSweep:
    def test_expansion(self):
        definition = sweep(
            "x", BENCHMARKS, BASELINE, {"a": SchemeSpec.make("conventional")}
        )
        assert definition.benchmarks() == BENCHMARKS
        assert definition.labels() == ["a"]
        assert len(definition.requests) == 2

    def test_unknown_flavour_rejected(self):
        with pytest.raises(ValueError):
            sweep("x", BENCHMARKS, "debug", {"a": SchemeSpec.make("conventional")})


class TestDedup:
    def test_schemes_share_one_trace_per_cell(self, factory):
        graph = plan_graph([figure6_definition(BENCHMARKS)], factory)
        # Three schemes per benchmark, but one build and one trace per cell.
        counts = graph.job_counts()
        assert counts == {"builds": 2, "traces": 2, "simulations": 6}

    def test_figure5_and_idealized_share_baseline_traces(self, factory):
        fig5 = figure5_definition(BENCHMARKS)
        ideal = idealized_definition(BASELINE, BENCHMARKS)
        separate = sum(
            plan_graph([d], factory).job_counts()["traces"] for d in (fig5, ideal)
        )
        combined = plan_graph([fig5, ideal], factory).job_counts()
        assert separate == 4
        assert combined["traces"] == 2
        assert combined["builds"] == 2
        # The schemes differ (real vs idealized), so simulations do not merge.
        assert combined["simulations"] == 8

    def test_figure5_plus_figure6_trace_jobs(self, factory):
        # Different flavours: the union is 2 cells per benchmark, not 5
        # trace collections (one per scheme) as a naive expansion would do.
        graph = plan_graph(
            [figure5_definition(BENCHMARKS), figure6_definition(BENCHMARKS)], factory
        )
        assert graph.job_counts() == {"builds": 4, "traces": 4, "simulations": 10}

    def test_identical_simulations_merge_across_experiments(self, factory):
        # figure6, both ablations and the IPC study all request the plain
        # predicate scheme over the if-converted trace: one simulate job.
        definitions = [
            figure6_definition(BENCHMARKS),
            pvt_ablation_definition(BENCHMARKS),
            history_ablation_definition(BENCHMARKS),
            selective_ipc_definition(BENCHMARKS),
        ]
        graph = plan_graph(definitions, factory)
        requested = graph.requested_simulations()
        unique = graph.job_counts()["simulations"]
        assert requested == 20  # (3 + 2 + 2 + 3) schemes x 2 benchmarks
        # predicate appears in all four, conventional in figure6 + ipc.
        assert unique == 12
        # Each experiment still addresses its own (benchmark, label) slots.
        for definition in definitions:
            table = graph.outputs[definition.name]
            assert set(table) == {
                (b, label)
                for b in BENCHMARKS
                for label in definition.labels()
            }

    def test_cells_group_by_benchmark_and_flavour(self, factory):
        graph = plan_graph([figure6_definition(BENCHMARKS)], factory)
        cells = graph.cells()
        assert set(cells) == {(b, IF_CONVERTED) for b in BENCHMARKS}
        assert all(len(jobs) == 3 for jobs in cells.values())


class TestKeys:
    def test_keys_are_stable_across_plans(self, factory):
        first = plan_graph([figure5_definition(BENCHMARKS)], factory)
        second = plan_graph([figure5_definition(BENCHMARKS)], factory)
        assert list(first.simulations) == list(second.simulations)
        assert list(first.traces) == list(second.traces)
        assert list(first.builds) == list(second.builds)

    def test_profile_budget_changes_build_keys(self):
        small = plan_graph([figure5_definition(BENCHMARKS)], BinaryFactory(profile_budget=500))
        large = plan_graph([figure5_definition(BENCHMARKS)], BinaryFactory(profile_budget=900))
        assert set(small.builds).isdisjoint(large.builds)

    def test_instruction_budget_changes_trace_keys_not_build_keys(self, factory):
        short = plan([figure5_definition(BENCHMARKS)], instructions=500, factory=factory)
        long = plan([figure5_definition(BENCHMARKS)], instructions=900, factory=factory)
        assert set(short.builds) == set(long.builds)
        assert set(short.traces).isdisjoint(long.traces)

    def test_code_fingerprint_changes_invalidate_every_key(self, monkeypatch, factory):
        from repro.engine import planner as planner_mod
        from repro.engine.hashing import code_fingerprint

        fingerprint = code_fingerprint()
        assert fingerprint == code_fingerprint()  # deterministic in-process
        base = plan_graph([figure5_definition(BENCHMARKS)], factory)
        monkeypatch.setattr(planner_mod, "code_fingerprint", lambda: "0" * 16)
        changed = plan_graph([figure5_definition(BENCHMARKS)], factory)
        assert set(base.builds).isdisjoint(changed.builds)
        assert set(base.traces).isdisjoint(changed.traces)
        assert set(base.simulations).isdisjoint(changed.simulations)

    def test_scheme_options_change_simulation_keys(self, factory):
        plain = sweep("x", BENCHMARKS, BASELINE, {"s": SchemeSpec.make("predicate")})
        tuned = sweep(
            "x", BENCHMARKS, BASELINE, {"s": SchemeSpec.make("predicate", split_pvt=True)}
        )
        graph_plain = plan_graph([plain], factory)
        graph_tuned = plan_graph([tuned], factory)
        assert set(graph_plain.simulations).isdisjoint(graph_tuned.simulations)
        assert set(graph_plain.traces) == set(graph_tuned.traces)
