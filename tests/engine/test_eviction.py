"""Size-gated LRU eviction and usage accounting on the artifact store.

The serve daemon's ``--max-store-bytes`` flag is backed by
:meth:`ArtifactStore.evict`: artifacts are dropped least-recently-*hit*
first (every :meth:`ArtifactStore.get` refreshes the payload's mtime) until
the store fits the budget, never touching protected keys.  These tests pin
the three contracts the daemon depends on: the size gate is honored, hot
keys survive, and in-flight work is shielded.
"""

from __future__ import annotations

import os

import pytest

from repro.engine.store import ArtifactStore, BINARIES, KINDS, RESULTS, TRACES


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "cache"))


def _fill(store, kind, keys, payload_size=2000):
    for key in keys:
        store.put(kind, key, "x" * payload_size)


def _total_bytes(store):
    return store.usage()["total"]["bytes"]


def _set_hit_time(store, kind, key, timestamp):
    """Pin one artifact's last-hit time (tests can't sleep for mtime skew)."""
    path = store.path(kind, key)
    os.utime(path, (timestamp, timestamp))


class TestUsage:
    def test_empty_store(self, store):
        report = store.usage()
        for kind in KINDS:
            assert report[kind] == {
                "count": 0, "bytes": 0, "oldest_hit": None, "newest_hit": None,
            }
        assert report["total"] == {"count": 0, "bytes": 0}

    def test_counts_and_bytes_by_kind(self, store):
        _fill(store, RESULTS, ["a", "b"])
        _fill(store, BINARIES, ["bin"])
        report = store.usage()
        assert report[RESULTS]["count"] == 2
        assert report[BINARIES]["count"] == 1
        assert report[TRACES]["count"] == 0
        assert report["total"]["count"] == 3
        assert report["total"]["bytes"] == sum(
            report[kind]["bytes"] for kind in KINDS
        )
        assert report[RESULTS]["oldest_hit"] <= report[RESULTS]["newest_hit"]

    def test_get_refreshes_last_hit(self, store):
        _fill(store, RESULTS, ["a", "b"])
        _set_hit_time(store, RESULTS, "a", 1_000.0)
        _set_hit_time(store, RESULTS, "b", 2_000.0)
        assert store.usage()[RESULTS]["oldest_hit"] == pytest.approx(1_000.0)
        store.get(RESULTS, "a")  # the hit makes "a" the newest entry
        report = store.usage()[RESULTS]
        assert report["oldest_hit"] == pytest.approx(2_000.0)
        assert report["newest_hit"] > 2_000.0


class TestEvict:
    def test_noop_when_under_budget(self, store):
        _fill(store, RESULTS, ["a", "b"])
        total = _total_bytes(store)
        removed = store.evict(total + 1)
        assert removed == {"count": 0, "bytes": 0}
        assert store.usage()["total"]["count"] == 2

    def test_size_gate_honored(self, store):
        _fill(store, RESULTS, [f"k{i}" for i in range(8)])
        _fill(store, BINARIES, [f"b{i}" for i in range(4)])
        budget = _total_bytes(store) // 3
        removed = store.evict(budget)
        assert removed["count"] > 0
        assert _total_bytes(store) <= budget

    def test_least_recently_hit_go_first(self, store):
        _fill(store, RESULTS, ["cold", "warm", "hot"])
        _set_hit_time(store, RESULTS, "cold", 1_000.0)
        _set_hit_time(store, RESULTS, "warm", 2_000.0)
        _set_hit_time(store, RESULTS, "hot", 3_000.0)
        per_entry = _total_bytes(store) // 3
        store.evict(2 * per_entry + per_entry // 2)  # room for two entries
        assert not store.contains(RESULTS, "cold")
        assert store.contains(RESULTS, "warm")
        assert store.contains(RESULTS, "hot")

    def test_hot_keys_survive_after_a_hit(self, store):
        _fill(store, RESULTS, ["old", "young"])
        _set_hit_time(store, RESULTS, "old", 1_000.0)
        _set_hit_time(store, RESULTS, "young", 2_000.0)
        store.get(RESULTS, "old")  # re-hitting the old entry makes it hot
        per_entry = _total_bytes(store) // 2
        store.evict(per_entry + per_entry // 2)  # room for one entry
        assert store.contains(RESULTS, "old")
        assert not store.contains(RESULTS, "young")

    def test_protected_keys_are_never_evicted(self, store):
        _fill(store, RESULTS, ["pinned", "free1", "free2"])
        _set_hit_time(store, RESULTS, "pinned", 1_000.0)  # oldest, prime target
        _set_hit_time(store, RESULTS, "free1", 2_000.0)
        _set_hit_time(store, RESULTS, "free2", 3_000.0)
        store.evict(1, protect={"pinned"})
        assert store.contains(RESULTS, "pinned")
        assert not store.contains(RESULTS, "free1")
        assert not store.contains(RESULTS, "free2")

    def test_eviction_spans_kinds_by_age(self, store):
        _fill(store, BINARIES, ["bin"])
        _fill(store, RESULTS, ["res"])
        _set_hit_time(store, BINARIES, "bin", 1_000.0)  # oldest overall
        _set_hit_time(store, RESULTS, "res", 3_000.0)
        total = _total_bytes(store)
        store.evict(total - 1)  # must drop at least one entry: the oldest
        assert not store.contains(BINARIES, "bin")
        assert store.contains(RESULTS, "res")

    def test_removed_accounting_matches_freed_bytes(self, store):
        _fill(store, RESULTS, [f"k{i}" for i in range(5)])
        before = _total_bytes(store)
        removed = store.evict(before // 2)
        assert removed["bytes"] == before - _total_bytes(store)
        assert removed["count"] == 5 - store.usage()[RESULTS]["count"]

    def test_metadata_sidecars_removed_with_payloads(self, store, tmp_path):
        _fill(store, RESULTS, ["gone"])
        store.evict(1)
        root = str(tmp_path / "cache")
        leftovers = [
            name
            for _dir, _sub, names in os.walk(root)
            for name in names
            if "gone" in name
        ]
        assert leftovers == []
