"""Execution-engine tests: caching tiers, trace lifetime, parallel equality."""

import pickle

import pytest

from repro.engine import (
    ArtifactStore,
    BASELINE,
    ExecutionEngine,
    IF_CONVERTED,
    SchemeSpec,
    sweep,
)
from repro.experiments.figure5 import figure5_definition
from repro.experiments.setup import ExperimentProfile

PROFILE = ExperimentProfile(
    name="engine-test",
    instructions_per_benchmark=1_200,
    benchmarks=["gzip", "swim"],
    profile_budget=1_200,
)


def fig5_outputs(engine, jobs=None):
    definition = figure5_definition(PROFILE.benchmarks)
    return engine.run([definition], jobs=jobs)[definition.name]


class TestSchemeSpec:
    def test_build_known_kinds(self):
        for kind in ("conventional", "pep-pa", "predicate"):
            assert SchemeSpec.make(kind).build() is not None

    def test_options_forwarded(self):
        scheme = SchemeSpec.make(
            "predicate", selective_predication=False, split_pvt=True
        ).build()
        assert scheme.options.selective_predication is False
        assert scheme.predictor.config.split_pvt is True

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SchemeSpec.make("quantum").build()

    def test_picklable(self):
        spec = SchemeSpec.make("predicate", split_pvt=True)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_describe(self):
        assert SchemeSpec.make("pep-pa").describe() == "pep-pa"
        assert "split_pvt=True" in SchemeSpec.make("predicate", split_pvt=True).describe()


class TestMaterialisation:
    @pytest.fixture(scope="class")
    def engine(self):
        return ExecutionEngine(PROFILE)

    def test_binary_identity_cached(self, engine):
        assert engine.build_binary("gzip", BASELINE) is engine.build_binary(
            "gzip", BASELINE
        )
        assert engine.stats.binaries_built == 1

    def test_unknown_flavour_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.build_binary("gzip", "debug")

    def test_trace_identity_cached(self, engine):
        first = engine.collect_trace("gzip", BASELINE)
        assert engine.collect_trace("gzip", BASELINE) is first
        assert len(first) == PROFILE.instructions_per_benchmark


class TestTraceLifetime:
    def test_lru_eviction_is_bounded(self):
        engine = ExecutionEngine(PROFILE, max_cached_traces=2)
        engine.collect_trace("gzip", BASELINE)
        engine.collect_trace("swim", BASELINE)
        engine.collect_trace("gzip", IF_CONVERTED)
        assert len(engine._traces) == 2
        assert ("gzip", BASELINE) not in engine._traces  # oldest evicted
        assert ("gzip", IF_CONVERTED) in engine._traces

    def test_lru_order_refreshed_on_access(self):
        engine = ExecutionEngine(PROFILE, max_cached_traces=2)
        engine.collect_trace("gzip", BASELINE)
        engine.collect_trace("swim", BASELINE)
        engine.collect_trace("gzip", BASELINE)  # refresh
        engine.collect_trace("gzip", IF_CONVERTED)
        assert ("gzip", BASELINE) in engine._traces
        assert ("swim", BASELINE) not in engine._traces

    def test_release_trace(self):
        engine = ExecutionEngine(PROFILE)
        engine.collect_trace("gzip", BASELINE)
        engine.release_trace("gzip", BASELINE)
        assert ("gzip", BASELINE) not in engine._traces
        engine.release_trace("gzip", BASELINE)  # idempotent


class TestPersistentCache:
    def test_second_run_rebuilds_nothing(self, tmp_path):
        store_root = str(tmp_path / "cache")
        first = ExecutionEngine(PROFILE, store=ArtifactStore(store_root))
        out_first = fig5_outputs(first)
        assert first.stats.binaries_built == 2
        assert first.stats.traces_collected == 2
        assert first.stats.simulations_run == 4

        second = ExecutionEngine(PROFILE, store=ArtifactStore(store_root))
        out_second = fig5_outputs(second)
        assert second.stats.binaries_built == 0
        assert second.stats.traces_collected == 0
        assert second.stats.simulations_run == 0
        assert second.stats.results_loaded == 4
        for slot, result in out_first.items():
            assert out_second[slot].metrics.summary() == result.metrics.summary()
            assert out_second[slot].accuracy.branches == result.accuracy.branches

    def test_shared_flavour_cells_reuse_binaries_and_traces(self, tmp_path):
        # Two different experiments over the same (benchmark, flavour) cells:
        # the second only runs its own (new) simulations.
        store_root = str(tmp_path / "cache")
        ExecutionEngine(PROFILE, store=ArtifactStore(store_root)).run(
            [figure5_definition(PROFILE.benchmarks)]
        )
        other = sweep(
            "other",
            PROFILE.benchmarks,
            BASELINE,
            {"ideal": SchemeSpec.make("conventional", ideal_no_alias=True)},
        )
        engine = ExecutionEngine(PROFILE, store=ArtifactStore(store_root))
        engine.run([other])
        assert engine.stats.binaries_built == 0
        assert engine.stats.traces_collected == 0
        assert engine.stats.traces_loaded == 2
        assert engine.stats.simulations_run == 2


class TestTraceRepresentationConversion:
    def test_store_loads_convert_to_the_active_representation(self, tmp_path):
        from repro.emulator.tracepack import TracePack, pack_supported
        from repro.perf import flags

        if not pack_supported():
            pytest.skip("columnar packs require numpy")
        store = ArtifactStore(str(tmp_path / "cache"))
        with flags.forced(False):
            reference = ExecutionEngine(PROFILE, store=store)
            assert isinstance(reference.collect_trace("gzip", BASELINE), list)
        with flags.forced(True):
            optimized = ExecutionEngine(PROFILE, store=store)
            loaded = optimized.collect_trace("gzip", BASELINE)
            assert optimized.stats.traces_loaded == 1
            assert isinstance(loaded, TracePack)
        with flags.forced(False):
            back = ExecutionEngine(PROFILE, store=store)
            assert isinstance(back.collect_trace("gzip", BASELINE), list)


class TestPackBackendMiss:
    def test_missing_numpy_reads_as_miss_without_deleting(self, tmp_path, monkeypatch):
        import os

        from repro.emulator import tracepack
        from repro.engine.store import TRACES

        if not tracepack.pack_supported():
            pytest.skip("columnar packs require numpy")
        store = ArtifactStore(str(tmp_path / "cache"))
        engine = ExecutionEngine(PROFILE, store=store)
        engine.collect_trace("gzip", BASELINE)
        (key,) = [entry["key"] for entry in store.entries(TRACES)]
        path = store.path(TRACES, key)
        assert os.path.exists(path)
        # Simulate a numpy-less environment sharing the cache: the columnar
        # artifact must read as a miss but survive for capable processes.
        monkeypatch.setattr(tracepack, "_np", None)
        assert store.get(TRACES, key) is None
        assert os.path.exists(path)
        monkeypatch.undo()
        assert store.get(TRACES, key) is not None


class TestOracleCachePlumbing:
    def test_parallel_workers_return_oracle_scalars(self):
        from repro.emulator.tracepack import pack_supported
        from repro.experiments.idealized import oracle_accuracies

        if not pack_supported():
            pytest.skip("columnar packs require numpy")
        engine = ExecutionEngine(PROFILE, jobs=2)
        fig5_outputs(engine)
        collected = engine.stats.traces_collected
        oracle = oracle_accuracies(engine, PROFILE.benchmarks, BASELINE)
        assert set(oracle) == set(PROFILE.benchmarks)
        # Served from the merged worker caches: no re-emulation in the parent.
        assert engine.stats.traces_collected == collected


class TestTraceSpill:
    def test_parent_traces_reach_workers_by_file(self):
        # Without a persistent store, traces the parent already collected are
        # spilled to an ephemeral trace store and loaded (not re-collected)
        # by the workers.
        engine = ExecutionEngine(PROFILE, jobs=2)
        engine.collect_trace("gzip", BASELINE)
        engine.collect_trace("swim", BASELINE)
        assert engine.stats.traces_collected == 2
        outputs = fig5_outputs(engine)
        assert engine.stats.traces_collected == 2  # workers collected nothing
        assert engine.stats.traces_loaded >= 2
        serial = fig5_outputs(ExecutionEngine(PROFILE))
        for slot, result in serial.items():
            assert outputs[slot].metrics.summary() == result.metrics.summary()

    def test_spill_directory_is_removed(self, tmp_path, monkeypatch):
        import tempfile

        monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
        engine = ExecutionEngine(PROFILE, jobs=2)
        engine.collect_trace("gzip", BASELINE)
        fig5_outputs(engine)
        assert not any(p.name.startswith("repro-trace-spill-") for p in tmp_path.iterdir())


class TestParallelExecution:
    def test_parallel_equals_serial(self):
        serial = fig5_outputs(ExecutionEngine(PROFILE))
        parallel = fig5_outputs(ExecutionEngine(PROFILE), jobs=2)
        assert set(serial) == set(parallel)
        for slot, result in serial.items():
            assert parallel[slot].metrics.summary() == result.metrics.summary()
            assert parallel[slot].misprediction_rate == result.misprediction_rate
            assert parallel[slot].ipc == result.ipc

    def test_parallel_merges_worker_stats(self):
        engine = ExecutionEngine(PROFILE, jobs=2)
        fig5_outputs(engine)
        assert engine.stats.binaries_built == 2
        assert engine.stats.traces_collected == 2
        assert engine.stats.simulations_run == 4

    def test_parallel_workers_share_store(self, tmp_path):
        store_root = str(tmp_path / "cache")
        engine = ExecutionEngine(PROFILE, store=ArtifactStore(store_root), jobs=2)
        fig5_outputs(engine)
        follow_up = ExecutionEngine(PROFILE, store=ArtifactStore(store_root))
        fig5_outputs(follow_up)
        assert follow_up.stats.simulations_run == 0
        assert follow_up.stats.results_loaded == 4
