"""End-to-end tests: figure tables via the engine, `repro all`, cache CLI."""

import os

import pytest

from repro.cli import main
from repro.engine import ArtifactStore, ExecutionEngine
from repro.experiments.figure5 import run_figure5
from repro.experiments.setup import ExperimentProfile
from repro.experiments.suite import run_all, write_reports

PROFILE = ExperimentProfile(
    name="suite-test",
    instructions_per_benchmark=1_000,
    benchmarks=["gzip", "swim"],
    profile_budget=1_000,
)


class TestParallelTables:
    def test_figure5_tables_bit_identical_across_job_counts(self):
        serial = run_figure5(engine=ExecutionEngine(PROFILE, jobs=1))
        parallel = run_figure5(engine=ExecutionEngine(PROFILE, jobs=4))
        assert serial.table.rows == parallel.table.rows
        assert serial.average_accuracy_increase == parallel.average_accuracy_increase
        assert serial.early_resolved == parallel.early_resolved
        assert serial.render() == parallel.render()


class TestRunAll:
    def test_shared_pass_produces_every_report(self, tmp_path):
        engine = ExecutionEngine(
            PROFILE, store=ArtifactStore(str(tmp_path / "cache"))
        )
        suite = run_all(engine=engine)
        assert set(suite.reports) == {
            "table1",
            "figure5",
            "figure6",
            "idealized_baseline",
            "idealized_if_converted",
            "ablation_pvt",
            "ablation_history",
            "selective_ipc",
        }
        # One deduplicated pass: 2 flavours x 2 benchmarks, built once each.
        assert engine.stats.binaries_built == 4
        assert engine.stats.traces_collected == 4
        # 32 requested simulations collapse to 24 unique ones.
        assert engine.stats.simulations_run == 24
        written = write_reports(suite, str(tmp_path / "reports"))
        assert len(written) == 8
        for path in written:
            assert os.path.getsize(path) > 0

    def test_rerun_is_served_from_store(self, tmp_path):
        store_root = str(tmp_path / "cache")
        run_all(engine=ExecutionEngine(PROFILE, store=ArtifactStore(store_root)))
        again = ExecutionEngine(PROFILE, store=ArtifactStore(store_root))
        suite = run_all(engine=again)
        assert again.stats.binaries_built == 0
        assert again.stats.traces_collected == 0
        assert again.stats.simulations_run == 0
        assert again.stats.results_loaded == 24
        assert "figure5" in suite.reports


class TestCacheCli:
    @pytest.fixture
    def cache_env(self, tmp_path, monkeypatch):
        cache_dir = str(tmp_path / "cli-cache")
        monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
        return cache_dir

    def test_cache_path(self, cache_env, capsys):
        assert main(["cache", "path"]) == 0
        assert capsys.readouterr().out.strip() == cache_env

    def test_cache_dir_flag_overrides_env(self, cache_env, tmp_path, capsys):
        explicit = str(tmp_path / "explicit")
        assert main(["--cache-dir", explicit, "cache", "path"]) == 0
        assert capsys.readouterr().out.strip() == explicit

    def test_figure5_populates_cache_and_second_run_hits_it(self, cache_env, capsys):
        argv = ["--instructions", "1000", "--benchmarks", "swim", "figure5"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "Figure 5" in first
        store = ArtifactStore(cache_env)
        stats = store.stats()
        assert stats["binaries"]["count"] == 1
        assert stats["traces"]["count"] == 1
        assert stats["results"]["count"] == 2
        # Second run: identical report, nothing new in the store.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert second == first
        assert store.stats() == stats

    def test_no_cache_flag_leaves_store_empty(self, cache_env, capsys):
        argv = [
            "--instructions", "1000", "--benchmarks", "swim", "--no-cache", "figure5",
        ]
        assert main(argv) == 0
        assert not os.path.exists(cache_env)

    def test_cache_stats_and_clear(self, cache_env, capsys):
        main(["--instructions", "1000", "--benchmarks", "swim", "figure5"])
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "binaries" in out and "traces" in out and "results" in out
        assert main(["cache", "clear", "--kind", "results"]) == 0
        assert "removed 2 artifacts (results)" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        assert "removed 2 artifacts (all kinds)" in capsys.readouterr().out
        assert ArtifactStore(cache_env).stats()["binaries"]["count"] == 0

    def test_all_command_writes_reports(self, cache_env, tmp_path, capsys):
        out_dir = str(tmp_path / "reports")
        argv = [
            "--instructions", "1000", "--benchmarks", "swim",
            "all", "--output-dir", out_dir,
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "wrote 8 reports" in output
        assert sorted(os.listdir(out_dir)) == sorted(
            [
                "table1.txt",
                "figure5.txt",
                "figure6.txt",
                "idealized_baseline.txt",
                "idealized_if_converted.txt",
                "ablation_pvt.txt",
                "ablation_history.txt",
                "selective_ipc.txt",
            ]
        )

    def test_jobs_flag_accepted(self, cache_env, capsys):
        argv = [
            "--instructions", "1000", "--benchmarks", "gzip,swim",
            "--jobs", "2", "figure5",
        ]
        assert main(argv) == 0
        assert "Figure 5" in capsys.readouterr().out
