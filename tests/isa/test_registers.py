"""Tests for the register model."""

import pytest

from repro.isa.registers import (
    BR,
    FR,
    GR,
    NUM_BRANCH_REGISTERS,
    NUM_GENERAL_REGISTERS,
    NUM_PREDICATE_REGISTERS,
    P0,
    PR,
    R0,
    Register,
    RegisterKind,
)


class TestRegisterConstruction:
    def test_general_register_name(self):
        assert GR(5).name == "r5"
        assert str(GR(127)) == "r127"

    def test_predicate_register_name(self):
        assert PR(6).name == "p6"

    def test_branch_register_name(self):
        assert BR(1).name == "b1"

    def test_float_register_name(self):
        assert FR(33).name == "f33"

    def test_register_kind(self):
        assert GR(3).kind is RegisterKind.GENERAL
        assert PR(3).kind is RegisterKind.PREDICATE
        assert BR(3).kind is RegisterKind.BRANCH
        assert FR(3).kind is RegisterKind.FLOAT

    def test_out_of_range_general(self):
        with pytest.raises(ValueError):
            GR(NUM_GENERAL_REGISTERS)

    def test_out_of_range_predicate(self):
        with pytest.raises(ValueError):
            PR(NUM_PREDICATE_REGISTERS)

    def test_out_of_range_branch(self):
        with pytest.raises(ValueError):
            BR(NUM_BRANCH_REGISTERS)

    def test_negative_index(self):
        with pytest.raises(ValueError):
            GR(-1)


class TestHardwiredRegisters:
    def test_r0_is_hardwired(self):
        assert R0.is_hardwired
        assert GR(0).is_hardwired

    def test_p0_is_hardwired(self):
        assert P0.is_hardwired
        assert PR(0).is_hardwired

    def test_other_registers_not_hardwired(self):
        assert not GR(1).is_hardwired
        assert not PR(1).is_hardwired
        assert not BR(0).is_hardwired
        assert not FR(0).is_hardwired


class TestRegisterIdentity:
    def test_equality(self):
        assert GR(5) == GR(5)
        assert GR(5) != GR(6)
        assert GR(5) != PR(5)

    def test_hashable(self):
        mapping = {GR(5): 1, PR(5): 2}
        assert mapping[GR(5)] == 1
        assert mapping[PR(5)] == 2

    def test_orderable(self):
        assert sorted([GR(7), GR(2), GR(5)]) == [GR(2), GR(5), GR(7)]

    def test_register_is_frozen(self):
        reg = GR(5)
        with pytest.raises(Exception):
            reg.index = 6  # type: ignore[misc]

    def test_kind_and_index_preserved(self):
        reg = Register(RegisterKind.GENERAL, 42)
        assert reg.index == 42
        assert reg.kind is RegisterKind.GENERAL
