"""Tests for opcode metadata."""

from repro.isa.opcodes import (
    OPCODE_INFO,
    FunctionalUnitClass,
    OpClass,
    Opcode,
    opcode_info,
)


class TestOpcodeTableCompleteness:
    def test_every_opcode_has_metadata(self):
        for opcode in Opcode:
            assert opcode in OPCODE_INFO, f"missing metadata for {opcode}"

    def test_all_latencies_positive(self):
        for opcode, info in OPCODE_INFO.items():
            assert info.latency >= 1, f"{opcode} has non-positive latency"

    def test_opcode_info_helper(self):
        assert opcode_info(Opcode.ADD) is OPCODE_INFO[Opcode.ADD]


class TestOpcodeClassification:
    def test_branches_are_control(self):
        for opcode in (Opcode.BR_COND, Opcode.BR_UNCOND, Opcode.BR_CALL, Opcode.BR_RET):
            info = opcode_info(opcode)
            assert info.opclass is OpClass.BRANCH
            assert info.is_control
            assert info.unit is FunctionalUnitClass.BRANCH_UNIT

    def test_compares_write_predicates(self):
        assert opcode_info(Opcode.CMP).writes_predicate
        assert opcode_info(Opcode.FCMP).writes_predicate

    def test_loads_write_registers(self):
        assert opcode_info(Opcode.LD).writes_general
        assert opcode_info(Opcode.LDF).writes_float

    def test_stores_write_nothing(self):
        info = opcode_info(Opcode.ST)
        assert not info.writes_general
        assert not info.writes_predicate
        assert not info.writes_float

    def test_memory_units(self):
        assert opcode_info(Opcode.LD).unit is FunctionalUnitClass.LOAD_PORT
        assert opcode_info(Opcode.ST).unit is FunctionalUnitClass.STORE_PORT

    def test_fp_latency_longer_than_alu(self):
        assert opcode_info(Opcode.FADD).latency > opcode_info(Opcode.ADD).latency

    def test_fdiv_is_longest_fp(self):
        fp_latencies = [
            opcode_info(op).latency
            for op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FMA, Opcode.FMOV)
        ]
        assert opcode_info(Opcode.FDIV).latency > max(fp_latencies)

    def test_mul_uses_mul_unit(self):
        assert opcode_info(Opcode.MUL).unit is FunctionalUnitClass.INT_MUL

    def test_str_of_opcode(self):
        assert str(Opcode.BR_COND) == "br.cond"
