"""Tests for branch instructions."""

import pytest

from repro.isa.branches import BranchInstruction, BranchKind
from repro.isa.operands import Label
from repro.isa.registers import P0, PR


class TestBranchConstruction:
    def test_conditional_branch(self):
        br = BranchInstruction(BranchKind.COND, Label("target"), qp=PR(6))
        assert br.kind is BranchKind.COND
        assert br.target == Label("target")
        assert br.guard == PR(6)

    def test_conditional_branch_requires_target(self):
        with pytest.raises(ValueError):
            BranchInstruction(BranchKind.COND, qp=PR(6))

    def test_call_accepts_callee(self):
        br = BranchInstruction(BranchKind.CALL, callee="helper")
        assert br.callee == "helper"
        assert br.is_call

    def test_return_needs_no_target(self):
        br = BranchInstruction(BranchKind.RET)
        assert br.is_return
        assert br.target is None


class TestConditionality:
    def test_cond_branch_is_conditional(self):
        br = BranchInstruction(BranchKind.COND, Label("x"), qp=PR(6))
        assert br.is_conditional

    def test_plain_unconditional_is_not_conditional(self):
        br = BranchInstruction(BranchKind.UNCOND, Label("x"))
        assert not br.is_conditional

    def test_guarded_unconditional_becomes_region_branch(self):
        # Figure 1b: an if-converted return becomes a conditional branch.
        br = BranchInstruction(BranchKind.RET, qp=PR(3))
        assert br.is_conditional
        assert br.is_predicated

    def test_plain_return_is_not_conditional(self):
        assert not BranchInstruction(BranchKind.RET).is_conditional


class TestOutcome:
    def test_cond_outcome_follows_predicate(self):
        br = BranchInstruction(BranchKind.COND, Label("x"), qp=PR(6))
        assert br.outcome(True) is True
        assert br.outcome(False) is False

    def test_unconditional_taken_when_guard_true(self):
        br = BranchInstruction(BranchKind.UNCOND, Label("x"))
        assert br.outcome(True) is True

    def test_guarded_return_falls_through_when_nullified(self):
        br = BranchInstruction(BranchKind.RET, qp=PR(3))
        assert br.outcome(False) is False

    def test_branch_has_no_destinations(self):
        br = BranchInstruction(BranchKind.COND, Label("x"), qp=PR(6))
        assert br.dests == []
        assert br.qp == PR(6)

    def test_default_guard_is_p0(self):
        br = BranchInstruction(BranchKind.UNCOND, Label("x"))
        assert br.qp == P0
