"""Tests for the static instruction classes."""

import pytest

from repro.isa.instructions import (
    ALUInstruction,
    FPInstruction,
    LoadInstruction,
    MoveInstruction,
    NopInstruction,
    StoreInstruction,
)
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.operands import Immediate
from repro.isa.registers import FR, GR, P0, PR


class TestALUInstruction:
    def test_basic_construction(self):
        inst = ALUInstruction(Opcode.ADD, GR(1), GR(2), GR(3))
        assert inst.dests == [GR(1)]
        assert inst.srcs == [GR(2), GR(3)]
        assert inst.qp == P0

    def test_immediate_source_coerced(self):
        inst = ALUInstruction(Opcode.ADDI, GR(1), GR(2), 5)
        assert inst.srcs[1] == Immediate(5)

    def test_rejects_non_alu_opcode(self):
        with pytest.raises(ValueError):
            ALUInstruction(Opcode.LD, GR(1), GR(2), GR(3))

    def test_rejects_non_predicate_qp(self):
        with pytest.raises(ValueError):
            ALUInstruction(Opcode.ADD, GR(1), GR(2), GR(3), qp=GR(4))

    def test_unique_ids(self):
        a = ALUInstruction(Opcode.ADD, GR(1), GR(2), GR(3))
        b = ALUInstruction(Opcode.ADD, GR(1), GR(2), GR(3))
        assert a.uid != b.uid


class TestPredication:
    def test_unpredicated_by_default(self):
        inst = ALUInstruction(Opcode.ADD, GR(1), GR(2), GR(3))
        assert not inst.is_predicated

    def test_predicated_with_non_p0(self):
        inst = ALUInstruction(Opcode.ADD, GR(1), GR(2), GR(3), qp=PR(6))
        assert inst.is_predicated

    def test_qp_in_sources_when_predicated(self):
        inst = ALUInstruction(Opcode.ADD, GR(1), GR(2), GR(3), qp=PR(6))
        assert PR(6) in inst.source_registers()
        assert PR(6) not in inst.source_registers(include_qp=False)

    def test_qp_not_in_sources_when_unpredicated(self):
        inst = ALUInstruction(Opcode.ADD, GR(1), GR(2), GR(3))
        assert P0 not in inst.source_registers()


class TestRegisterViews:
    def test_destination_registers_excludes_hardwired(self):
        inst = MoveInstruction(GR(0), 5)
        assert inst.destination_registers() == []

    def test_source_registers_only_registers(self):
        inst = ALUInstruction(Opcode.ADDI, GR(1), GR(2), 7)
        assert inst.source_registers() == [GR(2)]

    def test_classification_properties(self):
        load = LoadInstruction(GR(1), GR(2))
        store = StoreInstruction(GR(1), GR(2))
        assert load.is_load and load.is_memory and not load.is_store
        assert store.is_store and store.is_memory and not store.is_load
        assert not load.is_branch and not load.is_compare


class TestMemoryInstructions:
    def test_load_offset(self):
        inst = LoadInstruction(GR(1), GR(2), offset=16)
        assert inst.offset == 16
        assert inst.base == GR(2)
        assert inst.opcode is Opcode.LD

    def test_floating_load(self):
        inst = LoadInstruction(FR(33), GR(2), floating=True)
        assert inst.opcode is Opcode.LDF

    def test_store_value_and_base(self):
        inst = StoreInstruction(GR(7), GR(8), offset=8)
        assert inst.value == GR(7)
        assert inst.base == GR(8)
        assert inst.offset == 8
        assert inst.dests == []


class TestMoveInstruction:
    def test_move_immediate_selects_movi(self):
        assert MoveInstruction(GR(1), 3).opcode is Opcode.MOVI

    def test_move_register_selects_mov(self):
        assert MoveInstruction(GR(1), GR(2)).opcode is Opcode.MOV


class TestFPInstruction:
    def test_fma_has_three_sources(self):
        inst = FPInstruction(Opcode.FMA, FR(33), [FR(34), FR(35), FR(36)])
        assert len(inst.srcs) == 3
        assert inst.opclass is OpClass.FP

    def test_rejects_non_fp_opcode(self):
        with pytest.raises(ValueError):
            FPInstruction(Opcode.ADD, FR(33), [FR(34), FR(35)])


class TestNop:
    def test_nop_has_no_operands(self):
        nop = NopInstruction()
        assert nop.dests == [] and nop.srcs == []
        assert nop.opclass is OpClass.NOP


class TestClone:
    def test_clone_gets_new_uid(self):
        inst = ALUInstruction(Opcode.ADD, GR(1), GR(2), GR(3), qp=PR(6))
        copy = inst.clone()
        assert copy.uid != inst.uid

    def test_clone_preserves_fields(self):
        inst = LoadInstruction(GR(1), GR(2), offset=24, qp=PR(7))
        copy = inst.clone()
        assert copy.opcode is inst.opcode
        assert copy.offset == 24
        assert copy.qp == PR(7)
        assert copy.dests == inst.dests

    def test_clone_resets_layout_fields(self):
        inst = ALUInstruction(Opcode.ADD, GR(1), GR(2), GR(3))
        inst.address = 0x1000
        inst.block_label = "foo"
        inst.slot = 3
        copy = inst.clone()
        assert copy.address is None
        assert copy.block_label is None
        assert copy.slot is None

    def test_clone_copies_are_independent(self):
        inst = ALUInstruction(Opcode.ADD, GR(1), GR(2), GR(3))
        copy = inst.clone()
        copy.dests[0] = GR(9)
        assert inst.dests[0] == GR(1)
