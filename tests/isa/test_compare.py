"""Tests for compare instructions and their IA-64-style semantics."""

import pytest

from repro.isa.compare import CompareInstruction, CompareRelation, CompareType
from repro.isa.registers import GR, P0, PR


class TestCompareRelations:
    @pytest.mark.parametrize(
        "relation,lhs,rhs,expected",
        [
            (CompareRelation.EQ, 3, 3, True),
            (CompareRelation.EQ, 3, 4, False),
            (CompareRelation.NE, 3, 4, True),
            (CompareRelation.NE, 4, 4, False),
            (CompareRelation.LT, 2, 3, True),
            (CompareRelation.LT, 3, 3, False),
            (CompareRelation.LE, 3, 3, True),
            (CompareRelation.LE, 4, 3, False),
            (CompareRelation.GT, 5, 3, True),
            (CompareRelation.GT, 3, 5, False),
            (CompareRelation.GE, 3, 3, True),
            (CompareRelation.GE, 2, 3, False),
        ],
    )
    def test_signed_relations(self, relation, lhs, rhs, expected):
        assert relation.evaluate(lhs, rhs) is expected

    def test_unsigned_relations_treat_negative_as_large(self):
        assert CompareRelation.LTU.evaluate(-1, 1) is False
        assert CompareRelation.GEU.evaluate(-1, 1) is True
        assert CompareRelation.LTU.evaluate(1, 2) is True


def _cmp(ctype, qp=P0):
    return CompareInstruction(
        CompareRelation.GT, PR(6), PR(7), GR(1), GR(2), ctype=ctype, qp=qp
    )


class TestCompareTargets:
    def test_none_type_writes_complementary_values(self):
        inst = _cmp(CompareType.NONE)
        assert inst.compute_targets(True, True, False, False) == (True, False)
        assert inst.compute_targets(True, False, False, False) == (False, True)

    def test_none_type_skips_write_when_qp_false(self):
        inst = _cmp(CompareType.NONE)
        assert inst.compute_targets(False, True, True, True) == (None, None)

    def test_unc_type_clears_both_when_qp_false(self):
        inst = _cmp(CompareType.UNC)
        assert inst.compute_targets(False, True, True, True) == (False, False)

    def test_unc_type_behaves_normally_when_qp_true(self):
        inst = _cmp(CompareType.UNC)
        assert inst.compute_targets(True, True, False, False) == (True, False)

    def test_and_type_clears_on_false_result(self):
        inst = _cmp(CompareType.AND)
        assert inst.compute_targets(True, False, True, True) == (False, False)

    def test_and_type_leaves_unchanged_on_true_result(self):
        inst = _cmp(CompareType.AND)
        assert inst.compute_targets(True, True, True, False) == (None, None)

    def test_or_type_sets_on_true_result(self):
        inst = _cmp(CompareType.OR)
        assert inst.compute_targets(True, True, False, False) == (True, True)

    def test_or_type_leaves_unchanged_on_false_result(self):
        inst = _cmp(CompareType.OR)
        assert inst.compute_targets(True, False, False, False) == (None, None)

    def test_or_andcm_sets_first_clears_second(self):
        inst = _cmp(CompareType.OR_ANDCM)
        assert inst.compute_targets(True, True, False, True) == (True, False)
        assert inst.compute_targets(True, False, False, True) == (None, None)

    def test_parallel_types_do_not_write_when_qp_false(self):
        for ctype in (CompareType.AND, CompareType.OR, CompareType.OR_ANDCM):
            inst = _cmp(ctype)
            assert inst.compute_targets(False, True, True, False) == (None, None)


class TestCompareStructure:
    def test_targets_must_be_predicates(self):
        with pytest.raises(ValueError):
            CompareInstruction(CompareRelation.EQ, GR(1), PR(7), GR(1), GR(2))

    def test_useful_targets_drops_p0(self):
        inst = CompareInstruction(CompareRelation.EQ, PR(0), PR(7), GR(1), GR(2))
        assert inst.useful_targets == (PR(7),)
        assert inst.num_predictions_needed == 1

    def test_two_useful_targets(self):
        inst = CompareInstruction(CompareRelation.EQ, PR(6), PR(7), GR(1), GR(2))
        assert inst.num_predictions_needed == 2

    def test_compare_type_properties(self):
        assert CompareType.NONE.writes_both_unconditionally
        assert CompareType.UNC.writes_both_unconditionally
        assert not CompareType.AND.writes_both_unconditionally
        assert CompareType.AND.depends_on_previous_values
        assert CompareType.OR.depends_on_previous_values
        assert not CompareType.NONE.depends_on_previous_values

    def test_pt_pf_accessors(self):
        inst = CompareInstruction(CompareRelation.EQ, PR(6), PR(7), GR(1), GR(2))
        assert inst.pt == PR(6)
        assert inst.pf == PR(7)

    def test_is_compare_flag(self):
        inst = _cmp(CompareType.NONE)
        assert inst.is_compare
        assert inst.writes_predicates
