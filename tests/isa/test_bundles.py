"""Tests for bundle formation and the bundle fetch stream."""

from repro.isa.branches import BranchInstruction, BranchKind
from repro.isa.bundles import BUNDLE_SLOTS, Bundle, BundleStream, bundle_instructions
from repro.isa.instructions import ALUInstruction, NopInstruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import Label
from repro.isa.registers import GR, PR


def _alu():
    return ALUInstruction(Opcode.ADD, GR(1), GR(2), GR(3))


def _branch():
    return BranchInstruction(BranchKind.COND, Label("x"), qp=PR(6))


class TestBundleFormation:
    def test_three_instructions_per_bundle(self):
        bundles = bundle_instructions([_alu() for _ in range(7)])
        assert [len(b) for b in bundles] == [3, 3, 1]

    def test_branch_terminates_bundle(self):
        bundles = bundle_instructions([_alu(), _branch(), _alu(), _alu()])
        assert len(bundles) == 2
        assert bundles[0].ends_in_branch
        assert len(bundles[0]) == 2

    def test_bundle_addresses_are_spaced(self):
        bundles = bundle_instructions([_alu() for _ in range(6)], base_address=0x100)
        assert bundles[0].address == 0x100
        assert bundles[1].address > bundles[0].address

    def test_empty_input(self):
        assert bundle_instructions([]) == []

    def test_full_property(self):
        bundle = Bundle(address=0, instructions=[_alu()] * BUNDLE_SLOTS)
        assert bundle.full

    def test_iteration(self):
        instructions = [_alu(), _alu()]
        bundle = Bundle(address=0, instructions=instructions)
        assert list(bundle) == instructions


class TestBundleStream:
    def test_two_bundles_per_fetch(self):
        bundles = bundle_instructions([_alu() for _ in range(12)])
        stream = BundleStream(bundles, bundles_per_fetch=2)
        groups = list(stream.fetch_groups())
        assert [len(g) for g in groups] == [6, 6]
        assert stream.max_fetch_width == 6

    def test_fetch_group_ends_at_branch(self):
        instructions = [_alu(), _alu(), _branch(), _alu(), _alu(), _alu()]
        stream = BundleStream(bundle_instructions(instructions))
        groups = list(stream.fetch_groups())
        # The first group stops at the branch-terminated bundle.
        assert groups[0][-1].is_branch

    def test_nop_filler_counts_in_slots(self):
        bundles = bundle_instructions([NopInstruction(), _alu(), _alu(), _alu()])
        assert len(bundles) == 2
