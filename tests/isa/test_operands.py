"""Tests for the operand model."""

import pytest

from repro.isa.operands import Immediate, Label, as_operand
from repro.isa.registers import GR


class TestImmediate:
    def test_value_preserved(self):
        assert Immediate(42).value == 42

    def test_negative_values(self):
        assert Immediate(-7).value == -7

    def test_str(self):
        assert str(Immediate(5)) == "5"

    def test_equality(self):
        assert Immediate(3) == Immediate(3)
        assert Immediate(3) != Immediate(4)


class TestLabel:
    def test_name(self):
        assert Label("loop").name == "loop"

    def test_str(self):
        assert str(Label("exit")) == "exit"

    def test_equality(self):
        assert Label("a") == Label("a")
        assert Label("a") != Label("b")


class TestAsOperand:
    def test_int_becomes_immediate(self):
        operand = as_operand(9)
        assert isinstance(operand, Immediate)
        assert operand.value == 9

    def test_register_passes_through(self):
        assert as_operand(GR(4)) == GR(4)

    def test_immediate_passes_through(self):
        imm = Immediate(1)
        assert as_operand(imm) is imm

    def test_label_passes_through(self):
        label = Label("x")
        assert as_operand(label) is label

    def test_invalid_operand_rejected(self):
        with pytest.raises(TypeError):
            as_operand("not an operand")

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            as_operand(1.5)
