"""Tests for the disassembler output format."""

from repro.isa.branches import BranchInstruction, BranchKind
from repro.isa.compare import CompareInstruction, CompareRelation, CompareType
from repro.isa.disasm import disassemble, format_instruction
from repro.isa.instructions import (
    ALUInstruction,
    LoadInstruction,
    MoveInstruction,
    NopInstruction,
    StoreInstruction,
)
from repro.isa.opcodes import Opcode
from repro.isa.operands import Label
from repro.isa.registers import GR, PR


class TestFormatInstruction:
    def test_alu_format(self):
        text = format_instruction(ALUInstruction(Opcode.ADD, GR(1), GR(2), GR(3)))
        assert text == "add r1 = r2, r3"

    def test_predicated_prefix(self):
        text = format_instruction(
            ALUInstruction(Opcode.ADD, GR(1), GR(2), GR(3), qp=PR(6))
        )
        assert text.startswith("(p6) ")

    def test_compare_format_mentions_type_and_targets(self):
        inst = CompareInstruction(
            CompareRelation.EQ, PR(6), PR(0), GR(1), GR(2), ctype=CompareType.UNC, qp=PR(2)
        )
        text = format_instruction(inst)
        assert "cmp.eq.unc" in text
        assert "p6, p0" in text
        assert text.startswith("(p2) ")

    def test_plain_compare_has_no_type_suffix(self):
        inst = CompareInstruction(CompareRelation.GT, PR(6), PR(7), GR(1), 5)
        assert "cmp.gt " in format_instruction(inst)

    def test_branch_format(self):
        inst = BranchInstruction(BranchKind.COND, Label("loop"), qp=PR(6))
        assert format_instruction(inst) == "(p6) br.cond loop"

    def test_return_format(self):
        assert format_instruction(BranchInstruction(BranchKind.RET)) == "br.ret"

    def test_call_format_uses_callee(self):
        inst = BranchInstruction(BranchKind.CALL, callee="helper")
        assert "helper" in format_instruction(inst)

    def test_load_store_format(self):
        assert format_instruction(LoadInstruction(GR(1), GR(2), 8)) == "ld r1 = [r2 + 8]"
        assert format_instruction(StoreInstruction(GR(3), GR(4), 16)) == "st [r4 + 16] = r3"

    def test_move_format(self):
        assert format_instruction(MoveInstruction(GR(1), 7)) == "movi r1 = 7"

    def test_nop_format(self):
        assert format_instruction(NopInstruction()) == "nop"


class TestDisassemble:
    def test_with_addresses(self):
        inst = ALUInstruction(Opcode.ADD, GR(1), GR(2), GR(3))
        inst.address = 0x4000_0000
        text = disassemble([inst])
        assert "0x40000000" in text
        assert "add r1" in text

    def test_without_addresses(self):
        inst = ALUInstruction(Opcode.ADD, GR(1), GR(2), GR(3))
        text = disassemble([inst], with_addresses=False)
        assert "0x" not in text

    def test_multiple_lines(self):
        insts = [NopInstruction(), NopInstruction()]
        assert len(disassemble(insts).splitlines()) == 2
