"""Property-based tests for ISA semantics (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.compare import CompareInstruction, CompareRelation, CompareType
from repro.isa.registers import GR, PR

relations = st.sampled_from(list(CompareRelation))
ctypes = st.sampled_from(list(CompareType))
values = st.integers(min_value=-(2**40), max_value=2**40)
booleans = st.booleans()


class TestCompareProperties:
    @given(relation=relations, lhs=values, rhs=values)
    @settings(max_examples=200, deadline=None)
    def test_relation_and_its_negation_partition(self, relation, lhs, rhs):
        negations = {
            CompareRelation.EQ: CompareRelation.NE,
            CompareRelation.NE: CompareRelation.EQ,
            CompareRelation.LT: CompareRelation.GE,
            CompareRelation.GE: CompareRelation.LT,
            CompareRelation.GT: CompareRelation.LE,
            CompareRelation.LE: CompareRelation.GT,
            CompareRelation.LTU: CompareRelation.GEU,
            CompareRelation.GEU: CompareRelation.LTU,
        }
        assert relation.evaluate(lhs, rhs) != negations[relation].evaluate(lhs, rhs)

    @given(relation=relations, lhs=values, rhs=values, qp=booleans,
           old_pt=booleans, old_pf=booleans)
    @settings(max_examples=200, deadline=None)
    def test_none_and_unc_write_complementary_values_when_enabled(
        self, relation, lhs, rhs, qp, old_pt, old_pf
    ):
        result = relation.evaluate(lhs, rhs)
        for ctype in (CompareType.NONE, CompareType.UNC):
            inst = CompareInstruction(relation, PR(6), PR(7), GR(1), GR(2), ctype=ctype)
            new_pt, new_pf = inst.compute_targets(qp, result, old_pt, old_pf)
            if qp:
                assert new_pt == result and new_pf == (not result)
            elif ctype is CompareType.UNC:
                assert new_pt is False and new_pf is False
            else:
                assert new_pt is None and new_pf is None

    @given(relation=relations, lhs=values, rhs=values, old_pt=booleans, old_pf=booleans)
    @settings(max_examples=200, deadline=None)
    def test_parallel_types_never_write_when_qp_false(self, relation, lhs, rhs, old_pt, old_pf):
        result = relation.evaluate(lhs, rhs)
        for ctype in (CompareType.AND, CompareType.OR, CompareType.OR_ANDCM):
            inst = CompareInstruction(relation, PR(6), PR(7), GR(1), GR(2), ctype=ctype)
            assert inst.compute_targets(False, result, old_pt, old_pf) == (None, None)

    @given(lhs=values, rhs=values)
    @settings(max_examples=200, deadline=None)
    def test_signed_ordering_total(self, lhs, rhs):
        lt = CompareRelation.LT.evaluate(lhs, rhs)
        gt = CompareRelation.GT.evaluate(lhs, rhs)
        eq = CompareRelation.EQ.evaluate(lhs, rhs)
        assert sum([lt, gt, eq]) == 1
