"""Property-based tests for history registers, caches, memory and counters."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator.memory_image import MemoryImage, to_signed64
from repro.memory.cache import Cache, CacheConfig
from repro.predictors.counters import CounterTable
from repro.predictors.history import GlobalHistoryRegister


class TestGlobalHistoryProperties:
    @given(bits=st.integers(2, 24), outcomes=st.lists(st.booleans(), max_size=80))
    @settings(max_examples=100, deadline=None)
    def test_value_matches_reference_model(self, bits, outcomes):
        ghr = GlobalHistoryRegister(bits)
        reference = 0
        for outcome in outcomes:
            ghr.push(outcome)
            reference = ((reference << 1) | int(outcome)) & ((1 << bits) - 1)
        assert ghr.value == reference

    @given(
        bits=st.integers(2, 16),
        prefix=st.lists(st.booleans(), max_size=40),
        suffix=st.lists(st.booleans(), max_size=40),
    )
    @settings(max_examples=100, deadline=None)
    def test_snapshot_restore_roundtrip(self, bits, prefix, suffix):
        ghr = GlobalHistoryRegister(bits)
        for outcome in prefix:
            ghr.push(outcome)
        snapshot = ghr.snapshot()
        for outcome in suffix:
            ghr.push(outcome)
        ghr.restore(snapshot)
        assert ghr.snapshot() == snapshot

    @given(bits=st.integers(2, 16), outcomes=st.lists(st.booleans(), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_repair_flips_exactly_the_last_bit(self, bits, outcomes):
        ghr = GlobalHistoryRegister(bits)
        for outcome in outcomes[:-1]:
            ghr.push(outcome)
        token = ghr.push(outcomes[-1])
        before = ghr.value
        assert ghr.repair(token, not outcomes[-1])
        assert ghr.value == before ^ 1


class TestCounterTableProperties:
    @given(
        entries=st.integers(1, 64),
        bits=st.integers(1, 4),
        updates=st.lists(st.tuples(st.integers(0, 200), st.booleans()), max_size=200),
    )
    @settings(max_examples=100, deadline=None)
    def test_values_always_within_range(self, entries, bits, updates):
        table = CounterTable(entries=entries, bits=bits, initial=0)
        for index, outcome in updates:
            table.train(index, outcome)
            assert 0 <= table.value(index) <= (1 << bits) - 1


class TestCacheProperties:
    @given(addresses=st.lists(st.integers(0, 1 << 20), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_sets_never_exceed_associativity_and_repeat_hits(self, addresses):
        cache = Cache(
            CacheConfig(name="p", size_bytes=2048, associativity=2, block_bytes=64, hit_latency=1)
        )
        for address in addresses:
            cache.access(address)
            # Immediately re-accessing the same address must hit.
            assert cache.access(address).hit
            for ways in cache._sets:
                assert len(ways) <= 2

    @given(addresses=st.lists(st.integers(0, 1 << 16), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, addresses):
        cache = Cache(
            CacheConfig(name="p", size_bytes=4096, associativity=4, block_bytes=64, hit_latency=1)
        )
        for address in addresses:
            cache.access(address)
        assert cache.stats.hits + cache.stats.misses == cache.stats.accesses


class TestMemoryImageProperties:
    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 1 << 30), st.integers(-(2**70), 2**70)),
            max_size=100,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_read_returns_last_write_to_word(self, writes):
        image = MemoryImage()
        reference = {}
        for address, value in writes:
            image.write_word(address, value)
            reference[address - address % 8] = to_signed64(value)
        for word_address, expected in reference.items():
            assert image.read_word(word_address) == expected

    @given(value=st.integers(-(2**80), 2**80))
    @settings(max_examples=200, deadline=None)
    def test_signed_wrap_is_idempotent_and_in_range(self, value):
        wrapped = to_signed64(value)
        assert -(2**63) <= wrapped < 2**63
        assert to_signed64(wrapped) == wrapped
