"""Property-based tests over randomly generated workloads.

These generate small random workload traits, build and compile the program
both ways, and check the global invariants that must hold for *any* input:
compilation preserves architectural results, the pipeline's stage timestamps
are ordered, and every scheme sees the same dynamic branches.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.pipeline import CompilerOptions, compile_program
from repro.core import ConventionalScheme, PredicatePredictionScheme
from repro.emulator import Emulator
from repro.pipeline import OutOfOrderCore
from repro.workloads.generators import generate_condition_streams
from repro.workloads.kernels import build_program_from_traits
from repro.workloads.traits import (
    CorrelatedBranchSpec,
    EasyBranchSpec,
    HardRegionSpec,
    RegionKind,
    WorkloadTraits,
)

ACCUMULATORS = list(range(70, 74))


@st.composite
def workload_traits(draw):
    n_hard = draw(st.integers(0, 2))
    hard = tuple(
        HardRegionSpec(
            bias=draw(st.floats(0.2, 0.8)),
            body_size=draw(st.integers(1, 6)),
            kind=draw(st.sampled_from(list(RegionKind))),
            nested=draw(st.booleans()) if n_hard == 1 else False,
        )
        for _ in range(n_hard)
    )
    correlated = ()
    if hard:
        correlated = tuple(
            CorrelatedBranchSpec(
                sources=tuple(sorted(draw(
                    st.sets(st.integers(0, len(hard) - 1), min_size=1, max_size=len(hard))
                ))),
                op=draw(st.sampled_from(["and", "or", "copy", "not", "xor"])),
                lag=draw(st.integers(0, 2)),
                noise=draw(st.floats(0.0, 0.2)),
                early_compare=draw(st.booleans()),
            )
            for _ in range(draw(st.integers(0, 1)))
        )
    easy = tuple(
        EasyBranchSpec(bias=draw(st.floats(0.9, 0.99)), body_size=draw(st.integers(1, 3)))
        for _ in range(draw(st.integers(0, 2)))
    )
    return WorkloadTraits(
        name="hyp",
        category=draw(st.sampled_from(["int", "fp"])),
        seed=draw(st.integers(0, 2**20)),
        array_length=32,
        outer_iterations=1,
        hard_regions=hard,
        correlated_branches=correlated,
        easy_branches=easy,
        filler_alu=draw(st.integers(1, 5)),
        filler_fp=draw(st.integers(0, 3)),
        inner_loop_trips=draw(st.integers(0, 3)),
        pointer_chase=draw(st.booleans()),
    )


def _final_state(program, limit=60_000):
    emulator = Emulator(program)
    list(emulator.run(limit))
    assert emulator.halted
    return emulator.state


class TestGeneratedWorkloadInvariants:
    @given(traits=workload_traits())
    @settings(max_examples=12, deadline=None)
    def test_if_conversion_preserves_results(self, traits):
        streams = generate_condition_streams(traits)
        baseline = compile_program(
            build_program_from_traits(traits, streams), CompilerOptions.baseline()
        )
        options = CompilerOptions.if_converted()
        options.if_conversion.ignore_profile = True
        converted = compile_program(build_program_from_traits(traits, streams), options)

        base_state = _final_state(baseline)
        conv_state = _final_state(converted)
        assert [base_state.general[r] for r in ACCUMULATORS] == [
            conv_state.general[r] for r in ACCUMULATORS
        ]

    @given(traits=workload_traits())
    @settings(max_examples=8, deadline=None)
    def test_pipeline_invariants_and_scheme_agreement(self, traits):
        streams = generate_condition_streams(traits)
        program = compile_program(
            build_program_from_traits(traits, streams), CompilerOptions.if_converted()
        )
        trace = list(Emulator(program).run(3_000))

        conventional = OutOfOrderCore().run(
            iter(trace), ConventionalScheme(), keep_uops=True
        )
        predicate = OutOfOrderCore().run(
            iter(trace), PredicatePredictionScheme(), keep_uops=True
        )

        # Stage ordering per uop, in-order commit.
        for result in (conventional, predicate):
            previous_commit = 0
            for uop in result.uops:
                assert uop.fetch_cycle <= uop.rename_cycle <= uop.commit_cycle
                assert uop.commit_cycle >= previous_commit
                previous_commit = uop.commit_cycle

        # Both schemes saw exactly the same dynamic conditional branches.
        assert conventional.accuracy.branches == predicate.accuracy.branches
        conv_actuals = [r.actual for r in conventional.accuracy.records]
        pred_actuals = [r.actual for r in predicate.accuracy.records]
        assert conv_actuals == pred_actuals
