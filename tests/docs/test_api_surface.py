"""The ``repro.api`` facade is complete, documented, and stays that way.

The facade's ``_EXPORTS`` table is the single source of truth for the
public surface.  These tests enforce its contract: every name resolves,
every callable/type carries a docstring, every name is documented in
``docs/api.md``, and the docs don't advertise names the facade no longer
exports — so surface and reference cannot drift apart.
"""

from __future__ import annotations

import inspect
import os
import re

import pytest

import repro.api as api

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
API_DOC = os.path.join(REPO_ROOT, "docs", "api.md")


def _api_doc_text():
    with open(API_DOC, "r", encoding="utf-8") as handle:
        return handle.read()


class TestFacade:
    def test_all_is_sorted_and_matches_exports(self):
        assert list(api.__all__) == sorted(api._EXPORTS)

    @pytest.mark.parametrize("name", sorted(api.__all__))
    def test_every_name_resolves(self, name):
        assert getattr(api, name) is not None

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            api.no_such_export

    def test_dir_covers_the_surface(self):
        assert set(api.__all__) <= set(dir(api))

    @pytest.mark.parametrize("name", sorted(api.__all__))
    def test_every_callable_has_a_docstring(self, name):
        obj = getattr(api, name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            return  # constants (BASELINE, FLAVOURS, ...) carry no docstring
        assert inspect.getdoc(obj), f"repro.api.{name} has no docstring"

    def test_module_docstring_mentions_the_reference(self):
        assert "docs/api.md" in api.__doc__


class TestApiDoc:
    def test_doc_exists(self):
        assert os.path.exists(API_DOC)

    @pytest.mark.parametrize("name", sorted(api.__all__))
    def test_every_export_is_documented(self, name):
        assert f"`{name}`" in _api_doc_text(), (
            f"repro.api.{name} is missing from docs/api.md"
        )

    def test_doc_names_no_phantom_exports(self):
        # Every `repro.api.X`-style reference in the doc must still exist,
        # so renames cannot leave stale documentation behind.
        phantoms = [
            name
            for name in re.findall(r"repro\.api\.(\w+)", _api_doc_text())
            if name not in api.__all__
        ]
        assert not phantoms, f"docs/api.md references unknown export(s): {phantoms}"
