"""The documentation layer is under test: commands documented, links live.

``docs/experiments.md`` claims to document *every* CLI command; this test
derives the ground truth from the argument parser itself, so adding a
subcommand without documenting it fails the suite.  The link check reuses
``scripts/check_docs.py`` (the same code the CI docs job runs).
"""

from __future__ import annotations

import importlib.util
import os

import pytest

from repro.cli import build_parser

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
DOCS = os.path.join(REPO_ROOT, "docs")


def _load_check_docs():
    path = os.path.join(REPO_ROOT, "scripts", "check_docs.py")
    spec = importlib.util.spec_from_file_location("check_docs", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def cli_subcommands():
    """Every subcommand name registered on the ``repro`` parser."""
    parser = build_parser()
    for action in parser._actions:  # noqa: SLF001 - argparse has no public API for this
        if hasattr(action, "choices") and action.choices:
            return sorted(action.choices)
    raise AssertionError("CLI parser has no subparsers")


class TestExperimentsDoc:
    def test_docs_exist(self):
        for relative in (
            "architecture.md",
            "experiments.md",
            "workloads.md",
            "schemes.md",
            os.path.join("internals", "caching.md"),
        ):
            assert os.path.exists(os.path.join(DOCS, relative)), relative

    def test_every_cli_subcommand_is_documented(self):
        with open(os.path.join(DOCS, "experiments.md"), "r", encoding="utf-8") as handle:
            text = handle.read()
        missing = [
            command for command in cli_subcommands() if f"`{command}" not in text
        ]
        assert not missing, (
            f"CLI subcommand(s) {missing} are not documented in docs/experiments.md"
        )

    def test_sweep_scenarios_documented(self):
        from repro.sweep.scenario import builtin_scenario_names

        with open(os.path.join(DOCS, "experiments.md"), "r", encoding="utf-8") as handle:
            text = handle.read()
        for name in builtin_scenario_names():
            assert f"`{name}`" in text, f"built-in scenario {name} undocumented"


class TestWorkloadsDoc:
    """docs/workloads.md documents the whole registry, not a snapshot."""

    def test_every_builtin_workload_documented(self):
        from repro.workloads.spec_suite import workload_names

        with open(os.path.join(DOCS, "workloads.md"), "r", encoding="utf-8") as handle:
            text = handle.read()
        missing = [name for name in workload_names() if f"`{name}`" not in text]
        assert not missing, (
            f"built-in workload(s) {missing} undocumented in docs/workloads.md"
        )

    def test_every_library_workload_documented(self):
        from repro.workloads.registry import library_paths

        with open(os.path.join(DOCS, "workloads.md"), "r", encoding="utf-8") as handle:
            text = handle.read()
        for path in library_paths():
            assert os.path.basename(path) in text, (
                f"library spec {os.path.basename(path)} undocumented in docs/workloads.md"
            )

    def test_every_spec_field_documented(self):
        # The field-by-field reference must cover every key the parser
        # accepts, so adding a spec field without documenting it fails here.
        from repro.workloads import workload_spec

        with open(os.path.join(DOCS, "workloads.md"), "r", encoding="utf-8") as handle:
            text = handle.read()
        all_fields = (
            workload_spec._HEADER_KEYS
            | workload_spec._HARD_REGION_KEYS
            | workload_spec._CORRELATED_KEYS
            | workload_spec._EASY_KEYS
        )
        missing = sorted(field for field in all_fields if field not in text)
        assert not missing, (
            f"spec field(s) {missing} undocumented in docs/workloads.md"
        )


class TestSchemesDoc:
    """docs/schemes.md maps every scheme and predictor module to the paper."""

    @staticmethod
    def _module_stems(package_dir):
        return sorted(
            name[:-3]
            for name in os.listdir(os.path.join(REPO_ROOT, "src", "repro", package_dir))
            if name.endswith(".py") and name != "__init__.py"
        )

    def test_every_core_scheme_module_documented(self):
        with open(os.path.join(DOCS, "schemes.md"), "r", encoding="utf-8") as handle:
            text = handle.read()
        missing = [
            stem for stem in self._module_stems("core") if f"`{stem}.py`" not in text
        ]
        assert not missing, f"core module(s) {missing} undocumented in docs/schemes.md"

    def test_every_predictor_module_documented(self):
        with open(os.path.join(DOCS, "schemes.md"), "r", encoding="utf-8") as handle:
            text = handle.read()
        missing = [
            stem
            for stem in self._module_stems("predictors")
            if f"`{stem}.py`" not in text
        ]
        assert not missing, (
            f"predictor module(s) {missing} undocumented in docs/schemes.md"
        )


class TestMarkdownLinks:
    def test_intra_repo_links_resolve(self):
        check_docs = _load_check_docs()
        failures = check_docs.broken_links(REPO_ROOT)
        assert not failures, f"broken markdown link(s): {failures}"

    def test_no_orphaned_docs_pages(self):
        # Every page under docs/ must be linked from some other markdown
        # file, so new documentation cannot fall out of the navigation.
        check_docs = _load_check_docs()
        orphans = check_docs.orphan_docs(REPO_ROOT)
        assert not orphans, f"orphaned docs page(s): {orphans}"

    def test_checker_sees_the_docs_tree(self):
        check_docs = _load_check_docs()
        files = list(check_docs.markdown_files(REPO_ROOT))
        assert any(path.endswith("architecture.md") for path in files)
        assert any(path.endswith("README.md") for path in files)


class TestExamplesInCI:
    def test_every_example_script_runs_in_the_docs_job(self):
        # The examples are living documentation: each one must appear in the
        # CI docs job (with a small budget) so it cannot rot silently.
        workflow = os.path.join(REPO_ROOT, ".github", "workflows", "ci.yml")
        with open(workflow, "r", encoding="utf-8") as handle:
            text = handle.read()
        examples_dir = os.path.join(REPO_ROOT, "examples")
        for name in sorted(os.listdir(examples_dir)):
            if name.endswith(".py"):
                assert f"examples/{name}" in text, (
                    f"examples/{name} is not exercised by the CI docs job"
                )


@pytest.mark.parametrize(
    "module_name",
    ["repro.engine", "repro.perf", "repro.serve", "repro.sweep", "repro.workloads"],
)
def test_public_packages_have_module_docstrings(module_name):
    import importlib
    import pkgutil

    package = importlib.import_module(module_name)
    assert package.__doc__, f"{module_name} lacks a module docstring"
    for info in pkgutil.iter_modules(package.__path__):
        module = importlib.import_module(f"{module_name}.{info.name}")
        assert module.__doc__, f"{module_name}.{info.name} lacks a module docstring"
