"""The documentation layer is under test: commands documented, links live.

``docs/experiments.md`` claims to document *every* CLI command; this test
derives the ground truth from the argument parser itself, so adding a
subcommand without documenting it fails the suite.  The link check reuses
``scripts/check_docs.py`` (the same code the CI docs job runs).
"""

from __future__ import annotations

import importlib.util
import os

import pytest

from repro.cli import build_parser

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
DOCS = os.path.join(REPO_ROOT, "docs")


def _load_check_docs():
    path = os.path.join(REPO_ROOT, "scripts", "check_docs.py")
    spec = importlib.util.spec_from_file_location("check_docs", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def cli_subcommands():
    """Every subcommand name registered on the ``repro`` parser."""
    parser = build_parser()
    for action in parser._actions:  # noqa: SLF001 - argparse has no public API for this
        if hasattr(action, "choices") and action.choices:
            return sorted(action.choices)
    raise AssertionError("CLI parser has no subparsers")


class TestExperimentsDoc:
    def test_docs_exist(self):
        for relative in (
            "architecture.md",
            "experiments.md",
            os.path.join("internals", "caching.md"),
        ):
            assert os.path.exists(os.path.join(DOCS, relative)), relative

    def test_every_cli_subcommand_is_documented(self):
        with open(os.path.join(DOCS, "experiments.md"), "r", encoding="utf-8") as handle:
            text = handle.read()
        missing = [
            command for command in cli_subcommands() if f"`{command}" not in text
        ]
        assert not missing, (
            f"CLI subcommand(s) {missing} are not documented in docs/experiments.md"
        )

    def test_sweep_scenarios_documented(self):
        from repro.sweep.scenario import builtin_scenario_names

        with open(os.path.join(DOCS, "experiments.md"), "r", encoding="utf-8") as handle:
            text = handle.read()
        for name in builtin_scenario_names():
            assert f"`{name}`" in text, f"built-in scenario {name} undocumented"


class TestMarkdownLinks:
    def test_intra_repo_links_resolve(self):
        check_docs = _load_check_docs()
        failures = check_docs.broken_links(REPO_ROOT)
        assert not failures, f"broken markdown link(s): {failures}"

    def test_checker_sees_the_docs_tree(self):
        check_docs = _load_check_docs()
        files = list(check_docs.markdown_files(REPO_ROOT))
        assert any(path.endswith("architecture.md") for path in files)
        assert any(path.endswith("README.md") for path in files)


@pytest.mark.parametrize("module_name", ["repro.engine", "repro.perf", "repro.sweep"])
def test_public_packages_have_module_docstrings(module_name):
    import importlib
    import pkgutil

    package = importlib.import_module(module_name)
    assert package.__doc__, f"{module_name} lacks a module docstring"
    for info in pkgutil.iter_modules(package.__path__):
        module = importlib.import_module(f"{module_name}.{info.name}")
        assert module.__doc__, f"{module_name}.{info.name} lacks a module docstring"
