"""Tests for the predicate-prediction scheme (the paper's proposal)."""

from repro.compiler.if_conversion import IfConversionOptions, IfConversionPass
from repro.core import PredicatePredictionScheme
from repro.core.predicate_scheme import PredicateSchemeOptions
from repro.emulator import Emulator
from repro.isa import GR, PR, CompareRelation
from repro.pipeline import OutOfOrderCore
from repro.program import ProgramBuilder, validate_program

from tests.conftest import build_diamond_program


def _run(program, scheme, budget=4_000):
    return OutOfOrderCore().run(Emulator(program).run(budget), scheme, program.name)


def _early_resolved_program(iterations=64):
    """A loop whose branch guard is computed a long time before the branch.

    The compare is separated from its consuming branch by a long chain of
    dependent floating-point operations.  The chain throttles the rename
    stage (through reorder-buffer pressure) without occupying the integer
    issue queue, so the compare always executes well before the branch
    renames: nearly every instance must be early-resolved.
    """
    from repro.isa.registers import FR

    pb = ProgramBuilder("early")
    rb = pb.routine("main")
    rb.block("entry")
    rb.movi(GR(1), 0)
    rb.movi(GR(2), iterations)
    rb.block("loop")
    rb.addi(GR(1), GR(1), 1)
    rb.cmp(CompareRelation.LT, PR(6), PR(7), GR(1), GR(2))
    for _ in range(12):  # long dependent FP chain between compare and branch
        rb.fmul(FR(33), FR(33), FR(34))
        rb.fadd(FR(33), FR(33), FR(35))
    rb.br_cond("loop", qp=PR(6))
    rb.block("exit")
    rb.br_ret()
    program = pb.finish()
    validate_program(program)
    return program


class TestBranchPrediction:
    def test_records_per_branch(self, diamond_program):
        program, _, _ = diamond_program
        scheme = PredicatePredictionScheme()
        result = _run(program, scheme)
        assert scheme.accuracy.branches == result.metrics.conditional_branches

    def test_early_resolved_branches_always_correct(self):
        program = _early_resolved_program()
        scheme = PredicatePredictionScheme()
        _run(program, scheme, budget=3_000)
        records = scheme.accuracy.records
        early = [r for r in records if r.early_resolved]
        assert early, "expected early-resolved branches"
        assert all(not r.mispredicted for r in early)
        # With a 12-instruction dependent chain, essentially every branch
        # should be early-resolved.
        assert len(early) / len(records) > 0.9

    def test_predictions_consumed_when_compare_adjacent(self, diamond_program):
        program, _, _ = diamond_program
        scheme = PredicatePredictionScheme()
        _run(program, scheme)
        assert scheme.counters.get("branches_used_prediction") > 0
        assert scheme.counters.get("predicate_predictions") > 0

    def test_history_repair_happens_on_wrong_predictions(self, diamond_program):
        program, _, _ = diamond_program
        scheme = PredicatePredictionScheme()
        _run(program, scheme)
        # The diamond's data branch is effectively random, so some predictions
        # are wrong and their history bits must be repaired at writeback.
        assert scheme.counters.get("predicate_predictions_wrong") > 0
        assert scheme.counters.get("history_repairs_at_writeback") > 0

    def test_first_level_can_be_disabled(self, diamond_program):
        program, _, _ = diamond_program
        scheme = PredicatePredictionScheme(
            PredicateSchemeOptions(use_first_level=False)
        )
        _run(program, scheme)
        assert all(r.fetch_prediction is None for r in scheme.accuracy.records)

    def test_describe_lists_options(self):
        scheme = PredicatePredictionScheme(
            PredicateSchemeOptions(ideal_no_alias=True, perfect_history=True)
        )
        description = scheme.describe()
        assert "no-alias" in description and "perfect history" in description


class TestSelectivePredication:
    def _if_converted_diamond(self):
        program, highs, lows = build_diamond_program()
        IfConversionPass(IfConversionOptions(ignore_profile=True)).run(program)
        program.layout()
        validate_program(program)
        return program

    def test_if_converted_instructions_handled(self):
        program = self._if_converted_diamond()
        scheme = PredicatePredictionScheme(PredicateSchemeOptions(confidence_bits=1))
        result = _run(program, scheme, budget=4_000)
        handled = (
            scheme.counters.get("predicated_cancelled")
            + scheme.counters.get("predicated_assumed_true")
            + scheme.counters.get("predicated_conservative")
        )
        assert handled > 0
        assert result.metrics.cancelled_at_rename > 0

    def test_selective_disabled_is_conservative(self):
        program = self._if_converted_diamond()
        scheme = PredicatePredictionScheme(
            PredicateSchemeOptions(selective_predication=False)
        )
        result = _run(program, scheme)
        assert result.metrics.cancelled_at_rename == 0
        assert result.metrics.assume_true_predicated == 0

    def test_wrong_speculation_charges_flushes(self):
        program = self._if_converted_diamond()
        # A 1-bit confidence counter speculates aggressively on a ~50% biased
        # predicate, so some speculations must be wrong and flush.
        scheme = PredicatePredictionScheme(PredicateSchemeOptions(confidence_bits=1))
        result = _run(program, scheme, budget=4_000)
        assert result.metrics.predicate_flushes > 0
        assert scheme.counters.get("predicate_flushes") > 0


class TestIdealizedVariants:
    def test_no_alias_variant_runs_and_is_not_worse(self, diamond_program):
        program, _, _ = diamond_program
        real = PredicatePredictionScheme()
        ideal = PredicatePredictionScheme(
            PredicateSchemeOptions(ideal_no_alias=True, perfect_history=True)
        )
        real_result = _run(program, real, budget=5_000)
        ideal_result = _run(program, ideal, budget=5_000)
        assert ideal_result.misprediction_rate <= real_result.misprediction_rate + 0.02

    def test_perfect_history_pushes_computed_values(self, diamond_program):
        program, _, _ = diamond_program
        scheme = PredicatePredictionScheme(PredicateSchemeOptions(perfect_history=True))
        _run(program, scheme)
        assert scheme.counters.get("history_repairs_at_writeback") == 0
