"""Tests for the wish-branch and predicate-aware schemes (PR 10 design points)."""

import pytest

from repro.compiler.if_conversion import IfConversionOptions, IfConversionPass
from repro.core import PredicateAwareScheme, WishBranchScheme
from repro.emulator import Emulator
from repro.pipeline import OutOfOrderCore
from repro.program import validate_program

from tests.conftest import build_diamond_program


def _run(program, scheme, budget=4_000):
    return OutOfOrderCore().run(Emulator(program).run(budget), scheme, program.name)


def _if_converted_diamond(values=None):
    program, _, _ = build_diamond_program(values)
    IfConversionPass(IfConversionOptions(ignore_profile=True)).run(program)
    program.layout()
    validate_program(program)
    return program


class TestWishBranchScheme:
    def test_guards_predicted_and_branches_recorded(self):
        program = _if_converted_diamond()
        scheme = WishBranchScheme()
        result = _run(program, scheme)
        assert scheme.counters.get("wish_guard_predictions") > 0
        assert scheme.accuracy.branches == result.metrics.conditional_branches
        assert (
            scheme.counters.get("wish_guard_predictions_correct")
            + scheme.counters.get("wish_guard_predictions_wrong")
            == scheme.counters.get("wish_guard_predictions")
        )

    def test_branch_mode_engages_on_confident_guards(self):
        # Every value is > 5, so the hammock guard is constant: a 1-bit
        # confidence gate saturates immediately and the hammock runs in
        # branch mode (speculative cancel/assume-true) from then on.
        program = _if_converted_diamond(values=[9, 8, 7, 6, 9, 8, 7, 6, 9, 8])
        scheme = WishBranchScheme(confidence_bits=1)
        result = _run(program, scheme)
        assert scheme.counters.get("wish_branch_mode") > 0
        assert (
            result.metrics.cancelled_at_rename + result.metrics.assume_true_predicated
            > 0
        )

    def test_wrong_branch_mode_speculation_flushes(self):
        # The default diamond's guard is ~50/50; a 1-bit gate speculates
        # aggressively, so some branch-mode guesses are wrong and flush.
        program = _if_converted_diamond()
        scheme = WishBranchScheme(confidence_bits=1)
        result = _run(program, scheme)
        assert scheme.counters.get("wish_flushes") > 0
        assert result.metrics.predicate_flushes > 0

    def test_low_confidence_falls_back_to_predicate_mode(self):
        # With the default 4-bit gate a short run never saturates on a
        # random guard: every hammock stays conservatively predicated.
        program = _if_converted_diamond()
        scheme = WishBranchScheme()
        result = _run(program, scheme, budget=1_500)
        assert scheme.counters.get("wish_predicate_mode") > 0
        assert result.metrics.predicate_flushes == 0

    def test_tage_second_level_runs(self):
        program = _if_converted_diamond()
        scheme = WishBranchScheme(second_level="tage")
        _run(program, scheme)
        assert scheme.accuracy.branches > 0
        assert "tage" in scheme.describe()

    def test_unknown_second_level_rejected(self):
        with pytest.raises(ValueError, match="second_level"):
            WishBranchScheme(second_level="ltage")

    def test_is_a_hook_lane(self):
        from repro.pipeline.batched import stream_eligible

        assert not WishBranchScheme.timing_independent
        assert not stream_eligible(WishBranchScheme())


class TestPredicateAwareScheme:
    def test_predicate_bits_folded_into_history(self):
        program = _if_converted_diamond()
        scheme = PredicateAwareScheme()
        result = _run(program, scheme)
        assert scheme.counters.get("predicate_bits_folded") > 0
        assert scheme.accuracy.branches == result.metrics.conditional_branches

    def test_if_converted_instructions_stay_conservative(self):
        program = _if_converted_diamond()
        result = _run(program, PredicateAwareScheme())
        assert result.metrics.cancelled_at_rename == 0
        assert result.metrics.assume_true_predicated == 0

    def test_timing_independent_but_hook_lane(self):
        from repro.pipeline.batched import stream_eligible

        scheme = PredicateAwareScheme()
        assert scheme.timing_independent
        # The overridden compare-completion hook observes rows the stream
        # replay never visits, so the batched kernel must not stream it.
        assert not stream_eligible(scheme)

    def test_describe_names_the_mixed_history(self):
        assert "mixed GHR" in PredicateAwareScheme().describe()
