"""Tests for the selective predication policy."""

from repro.core.selective import SelectivePredicationPolicy
from repro.pipeline.pprf import PPRFEntry
from repro.pipeline.uop import RenameDecision


def _entry(predicted=None, computed_cycle=None, computed=None, confident=False):
    entry = PPRFEntry(
        physical_id=0,
        logical_index=6,
        producer_pc=0x4000,
        producer_slot=0,
        producer_seq=1,
    )
    entry.predicted_value = predicted
    entry.confident = confident
    if computed_cycle is not None:
        entry.computed_cycle = computed_cycle
        entry.computed_value = computed
        entry.speculative = False
    return entry


class TestDisabledPolicy:
    def test_always_conservative(self):
        policy = SelectivePredicationPolicy(enabled=False)
        decision = policy.decide(_entry(predicted=False, confident=True), 100, False)
        assert decision.decision is RenameDecision.CONSERVATIVE
        assert not decision.speculative


class TestResolvedGuards:
    def test_resolved_false_cancels_non_speculatively(self):
        policy = SelectivePredicationPolicy()
        entry = _entry(predicted=True, computed_cycle=10, computed=False)
        decision = policy.decide(entry, rename_cycle=20, architectural_value=False)
        assert decision.decision is RenameDecision.CANCEL
        assert not decision.speculative

    def test_resolved_true_executes_unpredicated(self):
        policy = SelectivePredicationPolicy()
        entry = _entry(predicted=False, computed_cycle=10, computed=True)
        decision = policy.decide(entry, rename_cycle=20, architectural_value=True)
        assert decision.decision is RenameDecision.ASSUME_TRUE
        assert not decision.speculative

    def test_no_entry_uses_architectural_value(self):
        policy = SelectivePredicationPolicy()
        assert policy.decide(None, 5, True).decision is RenameDecision.ASSUME_TRUE
        assert policy.decide(None, 5, False).decision is RenameDecision.CANCEL


class TestSpeculativeGuards:
    def test_unconfident_prediction_is_conservative(self):
        policy = SelectivePredicationPolicy()
        entry = _entry(predicted=False, confident=False)
        decision = policy.decide(entry, 5, True)
        assert decision.decision is RenameDecision.CONSERVATIVE

    def test_confident_false_cancels_speculatively(self):
        policy = SelectivePredicationPolicy()
        entry = _entry(predicted=False, confident=True)
        decision = policy.decide(entry, 5, True)
        assert decision.decision is RenameDecision.CANCEL
        assert decision.speculative
        assert decision.assumed_value is False

    def test_confident_true_assumes_true(self):
        policy = SelectivePredicationPolicy()
        entry = _entry(predicted=True, confident=True)
        decision = policy.decide(entry, 5, False)
        assert decision.decision is RenameDecision.ASSUME_TRUE
        assert decision.speculative
        assert decision.assumed_value is True

    def test_missing_prediction_is_conservative(self):
        policy = SelectivePredicationPolicy()
        entry = _entry(predicted=None, confident=True)
        assert policy.decide(entry, 5, True).decision is RenameDecision.CONSERVATIVE
