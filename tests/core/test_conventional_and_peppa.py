"""Tests for the conventional and PEP-PA branch-handling schemes."""

from repro.core import ConventionalScheme, PEPPAScheme
from repro.core.peppa_scheme import _LogicalPredicateFile
from repro.emulator import Emulator
from repro.pipeline import OutOfOrderCore

from tests.conftest import build_counting_loop


def _run(program, scheme, budget=4_000):
    return OutOfOrderCore().run(Emulator(program).run(budget), scheme, program.name)


class TestConventionalScheme:
    def test_records_one_entry_per_conditional_branch(self, counting_loop):
        program, _ = counting_loop
        scheme = ConventionalScheme()
        result = _run(program, scheme)
        assert scheme.accuracy.branches == result.metrics.conditional_branches
        assert scheme.counters.get("branches") == scheme.accuracy.branches

    def test_predicts_loop_branch_well(self, counting_loop):
        program, _ = counting_loop
        # A single loop-back branch taken 7/8 of the time: after warm-up the
        # predictor should be close to the bias.
        scheme = ConventionalScheme()
        _run(program, scheme, budget=6_000)
        assert scheme.accuracy.misprediction_rate < 0.3

    def test_no_early_resolution_claimed(self, diamond_program):
        program, _, _ = diamond_program
        scheme = ConventionalScheme()
        _run(program, scheme)
        assert scheme.accuracy.early_resolved_count == 0

    def test_fetch_prediction_recorded(self, diamond_program):
        program, _, _ = diamond_program
        scheme = ConventionalScheme()
        _run(program, scheme)
        assert all(r.fetch_prediction is not None for r in scheme.accuracy.records)

    def test_describe_mentions_size(self):
        assert "KiB" in ConventionalScheme().describe()

    def test_ideal_variant_runs(self, diamond_program):
        program, _, _ = diamond_program
        scheme = ConventionalScheme(ideal_no_alias=True, perfect_history=True)
        result = _run(program, scheme)
        assert result.accuracy.branches > 0


class TestLogicalPredicateFile:
    def test_initial_values(self):
        file = _LogicalPredicateFile()
        assert file.value_at(0, 100) is True   # p0
        assert file.value_at(6, 100) is False

    def test_latest_completed_write_wins(self):
        file = _LogicalPredicateFile()
        file.record_write(6, cycle=10, value=True)
        file.record_write(6, cycle=30, value=False)
        assert file.value_at(6, 5) is False     # nothing completed yet
        assert file.value_at(6, 15) is True
        assert file.value_at(6, 35) is False

    def test_out_of_order_completion_visibility(self):
        # A later (program-order) write that completes *earlier* is visible
        # first — the hazard the paper attributes PEP-PA's loss to.
        file = _LogicalPredicateFile()
        file.record_write(6, cycle=50, value=True)    # older definition, slow
        file.record_write(6, cycle=20, value=False)   # newer definition, fast
        assert file.value_at(6, 30) is False
        assert file.value_at(6, 60) is True  # completion-time order, not program order

    def test_p0_writes_ignored(self):
        file = _LogicalPredicateFile()
        file.record_write(0, cycle=10, value=False)
        assert file.value_at(0, 100) is True

    def test_depth_bounded(self):
        file = _LogicalPredicateFile()
        for cycle in range(20):
            file.record_write(6, cycle=cycle, value=bool(cycle % 2))
        assert len(file._writes[6]) <= file.DEPTH


class TestPEPPAScheme:
    def test_records_and_counters(self, diamond_program):
        program, _, _ = diamond_program
        scheme = PEPPAScheme()
        result = _run(program, scheme)
        assert scheme.accuracy.branches == result.metrics.conditional_branches
        assert scheme.counters.get("branches") > 0

    def test_never_early_resolved(self, diamond_program):
        program, _, _ = diamond_program
        scheme = PEPPAScheme()
        _run(program, scheme)
        assert scheme.accuracy.early_resolved_count == 0

    def test_learns_easy_loop(self):
        # A long loop gives the 2-bit counters time to warm up: the single
        # loop-back branch is taken all but once per pass over the data.
        program, _ = build_counting_loop(list(range(150)))
        scheme = PEPPAScheme()
        _run(program, scheme, budget=6_000)
        assert scheme.accuracy.misprediction_rate < 0.2

    def test_describe(self):
        assert "PEP-PA" in PEPPAScheme().describe()
