"""Tests for the Figure 6b accuracy breakdown."""

import pytest

from repro.core.early_resolution import accuracy_breakdown
from repro.stats.accuracy import BranchAccuracy, BranchRecord


def _accuracy(records):
    accuracy = BranchAccuracy()
    for actual, predicted, early in records:
        accuracy.record(
            BranchRecord(pc=0x4000, actual=actual, predicted=predicted, early_resolved=early)
        )
    return accuracy


class TestBreakdown:
    def test_early_contribution_counts_conventional_misses(self):
        # 4 branches: conventional mispredicts #0 and #2; predicate scheme is
        # always right, early-resolved on #0 and #1.
        conventional = _accuracy(
            [(True, False, False), (True, True, False), (False, True, False), (True, True, False)]
        )
        predicate = _accuracy(
            [(True, True, True), (True, True, True), (False, False, False), (True, True, False)]
        )
        breakdown = accuracy_breakdown("bench", conventional, predicate)
        assert breakdown.conventional_misprediction_rate == 0.5
        assert breakdown.predicate_misprediction_rate == 0.0
        # Only branch #0 is both early-resolved and conventionally wrong.
        assert breakdown.early_resolved_improvement == 0.25
        assert breakdown.correlation_improvement == pytest.approx(0.25)
        assert breakdown.total_improvement == pytest.approx(0.5)

    def test_correlation_can_be_negative(self):
        # Predicate scheme is worse overall and nothing is early-resolved:
        # the correlation bucket absorbs the negative effects.
        conventional = _accuracy([(True, True, False)] * 4)
        predicate = _accuracy(
            [(True, False, False), (True, True, False), (True, True, False), (True, True, False)]
        )
        breakdown = accuracy_breakdown("bench", conventional, predicate)
        assert breakdown.early_resolved_improvement == 0.0
        assert breakdown.correlation_improvement < 0.0

    def test_requires_matching_traces(self):
        conventional = _accuracy([(True, True, False)] * 3)
        predicate = _accuracy([(True, True, False)] * 4)
        with pytest.raises(ValueError):
            accuracy_breakdown("bench", conventional, predicate)

    def test_empty_runs(self):
        breakdown = accuracy_breakdown("bench", BranchAccuracy(), BranchAccuracy())
        assert breakdown.total_improvement == 0.0
