"""End-to-end shape tests.

These are the reproduction's acceptance tests: on a small (but not tiny)
instruction budget, the qualitative relations the paper reports must hold
for a representative benchmark subset.  The full-suite, larger-budget
numbers are produced by the benchmark harness.
"""

import pytest

from repro.core.early_resolution import accuracy_breakdown
from repro.experiments.runner import BASELINE, IF_CONVERTED, ExperimentRunner
from repro.experiments.setup import (
    ExperimentProfile,
    make_conventional_scheme,
    make_peppa_scheme,
    make_predicate_scheme,
)

BENCHMARKS = ["gzip", "crafty", "vpr"]


@pytest.fixture(scope="module")
def runner():
    profile = ExperimentProfile(
        name="shape",
        instructions_per_benchmark=12_000,
        benchmarks=BENCHMARKS,
        profile_budget=8_000,
    )
    return ExperimentRunner(profile)


@pytest.fixture(scope="module")
def if_converted_runs(runner):
    return {
        benchmark: runner.run_schemes(
            benchmark,
            IF_CONVERTED,
            {
                "conventional": make_conventional_scheme,
                "pep-pa": make_peppa_scheme,
                "predicate": make_predicate_scheme,
            },
        )
        for benchmark in BENCHMARKS
    }


@pytest.fixture(scope="module")
def baseline_runs(runner):
    return {
        benchmark: runner.run_schemes(
            benchmark,
            BASELINE,
            {
                "conventional": make_conventional_scheme,
                "predicate": make_predicate_scheme,
            },
        )
        for benchmark in BENCHMARKS
    }


class TestFigure5Shape:
    def test_predicate_predictor_not_worse_on_average(self, baseline_runs):
        deltas = [
            runs["conventional"].misprediction_rate - runs["predicate"].misprediction_rate
            for runs in baseline_runs.values()
        ]
        assert sum(deltas) / len(deltas) > 0.0

    def test_rates_in_plausible_range(self, baseline_runs):
        for runs in baseline_runs.values():
            for run in runs.values():
                assert 0.0 < run.misprediction_rate < 0.35

    def test_some_branches_early_resolved(self, baseline_runs):
        early = [
            runs["predicate"].result.accuracy.early_resolved_fraction
            for runs in baseline_runs.values()
        ]
        assert max(early) > 0.02


class TestFigure6Shape:
    def test_predicate_predictor_is_best_on_if_converted_code(self, if_converted_runs):
        for benchmark, runs in if_converted_runs.items():
            best_other = min(
                runs["conventional"].misprediction_rate,
                runs["pep-pa"].misprediction_rate,
            )
            assert runs["predicate"].misprediction_rate <= best_other + 0.01, benchmark

    def test_peppa_not_better_than_conventional_on_average(self, if_converted_runs):
        deltas = [
            runs["pep-pa"].misprediction_rate - runs["conventional"].misprediction_rate
            for runs in if_converted_runs.values()
        ]
        assert sum(deltas) / len(deltas) >= 0.0

    def test_breakdown_components_positive_overall(self, if_converted_runs):
        early_total = 0.0
        improvement_total = 0.0
        for benchmark, runs in if_converted_runs.items():
            breakdown = accuracy_breakdown(
                benchmark,
                conventional=runs["conventional"].result.accuracy,
                predicate=runs["predicate"].result.accuracy,
            )
            early_total += breakdown.early_resolved_improvement
            improvement_total += breakdown.total_improvement
        assert improvement_total > 0.0
        assert early_total >= 0.0

    def test_if_conversion_gap_larger_than_baseline_gap(self, baseline_runs, if_converted_runs):
        baseline_gap = sum(
            runs["conventional"].misprediction_rate - runs["predicate"].misprediction_rate
            for runs in baseline_runs.values()
        )
        converted_gap = sum(
            runs["conventional"].misprediction_rate - runs["predicate"].misprediction_rate
            for runs in if_converted_runs.values()
        )
        assert converted_gap > baseline_gap


class TestSchemesSeeSameTrace:
    def test_branch_counts_identical_across_schemes(self, if_converted_runs):
        for runs in if_converted_runs.values():
            counts = {run.result.accuracy.branches for run in runs.values()}
            assert len(counts) == 1
