"""Integration tests: compilation must not change architectural results.

The strongest correctness property of the compiler substrate is that the
baseline and if-converted binaries of a workload compute the same values.
These tests run small custom workloads to completion under both compilations
and compare the architectural accumulator registers and the final memory
image word-for-word.
"""

import pytest

from repro.compiler.pipeline import CompilerOptions, compile_program
from repro.emulator import Emulator
from repro.workloads.generators import generate_condition_streams
from repro.workloads.kernels import build_program_from_traits
from repro.workloads.traits import (
    CorrelatedBranchSpec,
    EasyBranchSpec,
    HardRegionSpec,
    RegionKind,
    WorkloadTraits,
)

#: Accumulator registers written by the generated kernels.
ACCUMULATORS = list(range(70, 74))


def _tiny_traits(name, **overrides):
    params = dict(
        name=name,
        category="int",
        seed=77,
        array_length=48,
        outer_iterations=2,
        hard_regions=(
            HardRegionSpec(0.6, 4, RegionKind.HAMMOCK),
            HardRegionSpec(0.5, 5, RegionKind.DIAMOND),
            HardRegionSpec(0.3, 3, RegionKind.ESCAPE),
        ),
        correlated_branches=(
            CorrelatedBranchSpec(sources=(0, 1), op="and", lag=1, noise=0.05, body_size=18),
        ),
        easy_branches=(EasyBranchSpec(0.95, 2),),
        filler_alu=4,
        inner_loop_trips=2,
    )
    params.update(overrides)
    return WorkloadTraits(**params)


def _run_to_completion(program, limit=120_000):
    emulator = Emulator(program)
    list(emulator.run(limit))
    assert emulator.halted, "program did not finish within the instruction limit"
    return emulator


def _compile_pair(traits):
    streams = generate_condition_streams(traits)
    baseline = compile_program(
        build_program_from_traits(traits, streams), CompilerOptions.baseline()
    )
    options = CompilerOptions.if_converted()
    options.if_conversion.ignore_profile = True  # convert everything eligible
    converted = compile_program(build_program_from_traits(traits, streams), options)
    return baseline, converted


class TestCompilationPreservesSemantics:
    @pytest.mark.parametrize(
        "traits",
        [
            _tiny_traits("tiny-default"),
            _tiny_traits(
                "tiny-nested",
                hard_regions=(HardRegionSpec(0.5, 6, RegionKind.HAMMOCK, nested=True),),
                correlated_branches=(),
            ),
            _tiny_traits(
                "tiny-fp",
                category="fp",
                filler_fp=4,
                hard_regions=(HardRegionSpec(0.7, 4, RegionKind.HAMMOCK),),
                correlated_branches=(),
            ),
        ],
        ids=lambda t: t.name,
    )
    def test_accumulators_and_memory_match(self, traits):
        baseline, converted = _compile_pair(traits)
        base_state = _run_to_completion(baseline).state
        conv_state = _run_to_completion(converted).state

        base_accs = [base_state.general[r] for r in ACCUMULATORS]
        conv_accs = [conv_state.general[r] for r in ACCUMULATORS]
        assert base_accs == conv_accs
        assert base_state.memory._words == conv_state.memory._words

    def test_if_conversion_actually_removed_branches(self):
        baseline, converted = _compile_pair(_tiny_traits("tiny-check"))
        report = converted.metadata["if_conversion_report"]
        assert report.total_converted >= 2
        base_branches = sum(
            1 for i in baseline.instructions() if i.is_branch and i.opcode.value == "br.cond"
        )
        conv_branches = sum(
            1 for i in converted.instructions() if i.is_branch and i.opcode.value == "br.cond"
        )
        assert conv_branches < base_branches

    def test_nullification_appears_only_after_if_conversion(self):
        baseline, converted = _compile_pair(_tiny_traits("tiny-null"))
        base_emulator = _run_to_completion(baseline)
        conv_emulator = _run_to_completion(converted)
        base_nullified = base_emulator.fetched_instructions - base_emulator.executed_instructions
        conv_nullified = conv_emulator.fetched_instructions - conv_emulator.executed_instructions
        assert conv_nullified > base_nullified
