"""Tests for the branch profiler."""

from repro.compiler.profiler import profile_program
from repro.isa.branches import BranchInstruction

from tests.conftest import build_counting_loop, build_diamond_program


class TestProfiler:
    def test_execution_counts(self):
        program, _ = build_counting_loop()
        profile = profile_program(program, budget=10_000)
        assert profile.profiled_instructions > 0
        # Exactly one conditional branch site (the loop-back branch).
        assert len(profile.sites) == 1
        site = next(iter(profile.sites.values()))
        assert site.executions == 8
        assert site.taken == 7

    def test_bias_computation(self):
        program, _, _ = build_diamond_program()
        profile = profile_program(program, budget=10_000)
        biases = sorted(site.bias for site in profile.sites.values())
        assert biases[0] < 0.9      # the data-dependent branch
        assert biases[-1] >= 0.85   # the loop-back branch

    def test_hard_branches_selection(self):
        program, _, _ = build_diamond_program()
        profile = profile_program(program, budget=10_000)
        hard = profile.hard_branches(bias_threshold=0.85, min_executions=4)
        assert len(hard) == 1

    def test_lookup_by_instruction(self):
        program, _ = build_counting_loop()
        profile = profile_program(program, budget=10_000)
        branch = next(
            i
            for i in program.instructions()
            if isinstance(i, BranchInstruction) and i.is_conditional
        )
        assert profile.lookup(branch) is not None

    def test_unknown_branch_lookup_returns_none(self):
        program, _ = build_counting_loop()
        profile = profile_program(program, budget=100)
        foreign = BranchInstruction.__new__(BranchInstruction)
        # lookup only needs .uid
        foreign.uid = 10**9
        assert profile.lookup(foreign) is None

    def test_empty_site_defaults(self):
        from repro.compiler.profiler import BranchSiteProfile

        site = BranchSiteProfile()
        assert site.taken_rate == 0.0
        assert site.bias == 1.0
