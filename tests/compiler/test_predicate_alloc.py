"""Tests for predicate register allocation."""

import pytest

from repro.compiler.predicate_alloc import PredicateAllocationError, PredicateAllocator
from repro.isa import GR, PR, CompareRelation
from repro.isa.registers import NUM_PREDICATE_REGISTERS
from repro.program import ProgramBuilder


def _routine_using(*indices):
    pb = ProgramBuilder("alloc")
    rb = pb.routine("main")
    rb.block("entry")
    for i in indices:
        rb.cmp(CompareRelation.GT, PR(i), PR(0), GR(1), 0)
    rb.br_ret()
    return rb.routine


class TestPredicateAllocator:
    def test_allocates_unused_register(self):
        allocator = PredicateAllocator(_routine_using(6, 7, 8))
        fresh = allocator.allocate()
        assert fresh.index not in (0, 6, 7, 8)

    def test_skips_registers_used_as_guards(self):
        pb = ProgramBuilder("alloc")
        rb = pb.routine("main")
        rb.block("entry")
        rb.movi(GR(1), 1, qp=PR(9))
        rb.br_ret()
        allocator = PredicateAllocator(rb.routine)
        for _ in range(10):
            assert allocator.allocate().index != 9

    def test_successive_allocations_distinct(self):
        allocator = PredicateAllocator(_routine_using(6))
        allocated = {allocator.allocate().index for _ in range(10)}
        assert len(allocated) == 10

    def test_mark_used(self):
        allocator = PredicateAllocator(_routine_using())
        allocator.mark_used(PR(10))
        assert all(allocator.allocate().index != 10 for _ in range(5))

    def test_exhaustion_raises(self):
        allocator = PredicateAllocator(_routine_using())
        for _ in range(NUM_PREDICATE_REGISTERS - 1):  # p0 reserved
            allocator.allocate()
        with pytest.raises(PredicateAllocationError):
            allocator.allocate()

    def test_used_count(self):
        allocator = PredicateAllocator(_routine_using(6, 7))
        before = allocator.used_count
        allocator.allocate()
        assert allocator.used_count == before + 1
