"""Tests for the compile driver and the binary-pair factory."""

from repro.compiler.binaries import BinaryFactory
from repro.compiler.pipeline import CompilerOptions, compile_program
from repro.emulator import Emulator, trace_statistics
from repro.workloads import build_workload

from tests.conftest import build_diamond_program


class TestCompileProgram:
    def test_baseline_options_do_not_if_convert(self):
        program, _, _ = build_diamond_program()
        compile_program(program, CompilerOptions.baseline())
        assert program.metadata["predication_enabled"] is False
        assert "if_converted" not in program.metadata

    def test_if_converted_options_convert(self):
        program, _, _ = build_diamond_program()
        compile_program(program, CompilerOptions.if_converted())
        assert program.metadata["predication_enabled"] is True
        assert program.metadata["if_conversion_report"].total_converted >= 1

    def test_scheduling_runs_by_default(self):
        program, _, _ = build_diamond_program()
        compile_program(program, CompilerOptions.baseline())
        assert program.metadata.get("scheduled") is True

    def test_program_laid_out_and_valid(self):
        program, _, _ = build_diamond_program()
        compile_program(program, CompilerOptions.if_converted())
        assert program.laid_out


class TestBinaryFactory:
    def test_pair_has_both_flavours(self):
        factory = BinaryFactory(profile_budget=4_000)
        pair = factory.build_pair("gzip", lambda: build_workload("gzip"))
        assert pair.baseline.metadata["predication_enabled"] is False
        assert pair.if_converted.metadata["predication_enabled"] is True
        assert pair.removed_branches >= 1

    def test_if_conversion_reduces_branch_count_and_adds_nullification(self):
        factory = BinaryFactory(profile_budget=4_000)
        pair = factory.build_pair("gzip", lambda: build_workload("gzip"))
        budget = 6_000
        base_stats = trace_statistics(list(Emulator(pair.baseline).run(budget)))
        conv_stats = trace_statistics(list(Emulator(pair.if_converted).run(budget)))
        assert (
            conv_stats.conditional_branch_fraction
            < base_stats.conditional_branch_fraction
        )
        assert conv_stats.nullification_rate > base_stats.nullification_rate

    def test_binaries_are_deterministic(self):
        factory = BinaryFactory(profile_budget=4_000)
        first = factory.build_baseline("swim", lambda: build_workload("swim"))
        second = factory.build_baseline("swim", lambda: build_workload("swim"))
        first_ops = [i.opcode for i in first.instructions()]
        second_ops = [i.opcode for i in second.instructions()]
        assert first_ops == second_ops
