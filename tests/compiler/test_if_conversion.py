"""Tests for the if-conversion pass."""

from repro.compiler.if_conversion import IfConversionOptions, IfConversionPass
from repro.compiler.profiler import profile_program
from repro.emulator import Emulator
from repro.isa import GR, PR, CompareRelation, CompareType
from repro.isa.branches import BranchInstruction
from repro.isa.compare import CompareInstruction
from repro.program import ProgramBuilder, validate_program

from tests.conftest import build_counting_loop, build_diamond_program


def _run_registers(program, registers, budget=20_000):
    emulator = Emulator(program)
    list(emulator.run(budget))
    return [emulator.state.general[r] for r in registers]


def _convert(program, ignore_profile=True, max_passes=2, bias_threshold=0.925):
    options = IfConversionOptions(
        ignore_profile=ignore_profile,
        max_passes=max_passes,
        bias_threshold=bias_threshold,
    )
    profile = None
    if not ignore_profile:
        profile = profile_program(program, 20_000)
    converter = IfConversionPass(options, profile)
    report = converter.run(program)
    program.layout()
    validate_program(program)
    return report


def _escape_program(values=None):
    """A loop containing an escape hammock ("continue"-style jump).

    The escape side skips the rest of the iteration (the ``tail`` block), so
    its jump leaves the region instead of re-joining at the branch's taken
    successor — the Figure 1a shape.
    """
    values = values if values is not None else [1, 9, 2, 8, 3, 7, 4, 6]
    pb = ProgramBuilder("escape")
    base = pb.array("data", values)
    rb = pb.routine("main")
    rb.block("entry")
    rb.movi(GR(10), base)
    rb.movi(GR(11), 0)
    rb.movi(GR(12), len(values))
    rb.movi(GR(20), 0)
    rb.movi(GR(21), 0)
    rb.movi(GR(23), 0)
    rb.block("loop")
    rb.load(GR(14), GR(10))
    rb.cmp(CompareRelation.GT, PR(6), PR(7), GR(14), 5)
    rb.br_cond("cont", qp=PR(7))
    rb.block("esc")
    rb.addi(GR(20), GR(20), 1)
    rb.br("latch")
    rb.block("cont")
    rb.addi(GR(21), GR(21), 1)
    rb.block("tail")
    rb.addi(GR(23), GR(23), 1)
    rb.block("latch")
    rb.addi(GR(10), GR(10), 8)
    rb.addi(GR(11), GR(11), 1)
    rb.cmp(CompareRelation.LT, PR(8), PR(9), GR(11), GR(12))
    rb.br_cond("loop", qp=PR(8))
    rb.block("exit")
    rb.br_ret()
    program = pb.finish()
    validate_program(program)
    highs = sum(1 for v in values if v > 5)
    return program, highs, len(values) - highs


class TestHammockConversion:
    def test_branch_removed_and_body_guarded(self):
        program, _ = build_counting_loop()
        # Build a fresh hammock program (counting loop has predication, not a
        # hammock) — use the diamond fixture head with a single side instead.
        program, highs, lows = build_diamond_program()
        report = _convert(program)
        assert report.total_converted >= 1
        assert report.removed_branches

    def test_semantics_preserved_for_diamond(self):
        before, highs, lows = build_diamond_program()
        assert _run_registers(before, [20, 21]) == [highs, lows]
        after, _, _ = build_diamond_program()
        _convert(after)
        assert _run_registers(after, [20, 21]) == [highs, lows]

    def test_diamond_sides_guarded_with_complementary_predicates(self):
        program, _, _ = build_diamond_program()
        _convert(program)
        routine = program.routine("main")
        guarded = [i for i in routine.instructions() if i.is_predicated and not i.is_branch]
        guards = {i.qp.index for i in guarded if not i.is_compare}
        assert len(guards) == 2  # then-side and else-side guards differ

    def test_p0_target_rewritten_when_complement_needed(self):
        # The diamond fixture uses two real targets already; build a hammock
        # whose compare uses p0 as the second target.
        pb = ProgramBuilder("p0-compl")
        values = [1, 9, 2, 8]
        base = pb.array("data", values)
        rb = pb.routine("main")
        rb.block("entry")
        rb.movi(GR(10), base)
        rb.movi(GR(11), 0)
        rb.movi(GR(12), len(values))
        rb.movi(GR(20), 0)
        rb.block("loop")
        rb.load(GR(14), GR(10))
        rb.cmp(CompareRelation.LE, PR(6), PR(0), GR(14), 5)  # p6 = (v <= 5)
        rb.br_cond("skip", qp=PR(6))
        rb.block("body")
        rb.addi(GR(20), GR(20), 1)
        rb.block("skip")
        rb.addi(GR(10), GR(10), 8)
        rb.addi(GR(11), GR(11), 1)
        rb.cmp(CompareRelation.LT, PR(8), PR(9), GR(11), GR(12))
        rb.br_cond("loop", qp=PR(8))
        rb.block("exit")
        rb.br_ret()
        program = pb.finish()
        expected = sum(1 for v in values if v > 5)
        assert _run_registers(program, [20]) == [expected]

        program2 = program  # rebuild identical program for conversion
        # Re-running the same construction is tedious; instead convert the
        # original and re-check semantics on a fresh emulator run.
        report = _convert(program2)
        assert report.total_converted == 1
        compare = next(
            i
            for i in program2.routine("main").instructions()
            if isinstance(i, CompareInstruction) and i.relation is CompareRelation.LE
        )
        assert not compare.pf.is_hardwired  # p0 target was rewritten
        assert _run_registers(program2, [20]) == [expected]


class TestEscapeConversion:
    def test_escape_converted_to_region_branch(self):
        program, highs, lows = _escape_program()
        report = _convert(program)
        assert report.converted_escapes == 1
        assert report.region_branches_created >= 1
        region_branches = [
            i
            for i in program.routine("main").instructions()
            if isinstance(i, BranchInstruction) and i.is_predicated
        ]
        assert region_branches, "expected a guarded region branch"

    def test_escape_semantics_preserved(self):
        reference, highs, lows = _escape_program()
        assert _run_registers(reference, [20, 21]) == [lows, highs]
        converted, _, _ = _escape_program()
        _convert(converted)
        assert _run_registers(converted, [20, 21]) == [lows, highs]


class TestNestedConversion:
    def _nested_program(self, values_outer=None, values_inner=None):
        values_outer = values_outer or [1, 9, 2, 8, 3, 7]
        values_inner = values_inner or [9, 1, 8, 2, 7, 3]
        pb = ProgramBuilder("nested")
        base_a = pb.array("a", values_outer)
        base_b = pb.array("b", values_inner)
        rb = pb.routine("main")
        rb.block("entry")
        rb.movi(GR(10), base_a)
        rb.movi(GR(15), base_b)
        rb.movi(GR(11), 0)
        rb.movi(GR(12), len(values_outer))
        rb.movi(GR(20), 0)
        rb.block("loop")
        rb.load(GR(14), GR(10))
        rb.cmp(CompareRelation.GT, PR(6), PR(7), GR(14), 5)
        rb.br_cond("outer_skip", qp=PR(7))
        rb.block("outer_body")
        rb.load(GR(16), GR(15))
        rb.cmp(CompareRelation.GT, PR(10), PR(11), GR(16), 5)
        rb.br_cond("inner_skip", qp=PR(11))
        rb.block("inner_body")
        rb.addi(GR(20), GR(20), 1)
        rb.block("inner_skip")
        rb.block("outer_skip")
        rb.addi(GR(10), GR(10), 8)
        rb.addi(GR(15), GR(15), 8)
        rb.addi(GR(11), GR(11), 1)
        rb.cmp(CompareRelation.LT, PR(8), PR(9), GR(11), GR(12))
        rb.br_cond("loop", qp=PR(8))
        rb.block("exit")
        rb.br_ret()
        program = pb.finish()
        expected = sum(
            1 for a, b in zip(values_outer, values_inner) if a > 5 and b > 5
        )
        return program, expected

    def test_nested_regions_converted_with_unc_compare(self):
        program, expected = self._nested_program()
        report = _convert(program, max_passes=3)
        assert report.total_converted >= 2
        unc_compares = [
            i
            for i in program.routine("main").instructions()
            if isinstance(i, CompareInstruction) and i.ctype is CompareType.UNC
        ]
        assert unc_compares, "nested conversion must produce cmp.unc (Figure 1b)"
        assert all(i.is_predicated for i in unc_compares)

    def test_nested_semantics_preserved(self):
        program, expected = self._nested_program()
        _convert(program, max_passes=3)
        assert _run_registers(program, [20]) == [expected]


class TestProfileGating:
    def test_biased_branch_not_converted(self):
        # All values high: the data branch is ~100% biased, so a
        # profile-guided pass must leave it alone.
        program, _, _ = build_diamond_program([9, 9, 9, 9, 9, 9, 9, 9])
        report = _convert(program, ignore_profile=False, bias_threshold=0.9)
        assert report.total_converted == 0
        assert report.rejected_by_profile >= 1

    def test_hard_branch_converted_with_profile(self):
        program, _, _ = build_diamond_program()
        report = _convert(program, ignore_profile=False, bias_threshold=0.925)
        assert report.total_converted >= 1

    def test_oversized_region_rejected(self):
        pb = ProgramBuilder("big")
        values = [1, 9] * 4
        base = pb.array("data", values)
        rb = pb.routine("main")
        rb.block("entry")
        rb.movi(GR(10), base)
        rb.movi(GR(11), 0)
        rb.movi(GR(12), len(values))
        rb.block("loop")
        rb.load(GR(14), GR(10))
        rb.cmp(CompareRelation.GT, PR(6), PR(7), GR(14), 5)
        rb.br_cond("skip", qp=PR(7))
        rb.block("body")
        for _ in range(30):
            rb.addi(GR(20), GR(20), 1)
        rb.block("skip")
        rb.addi(GR(10), GR(10), 8)
        rb.addi(GR(11), GR(11), 1)
        rb.cmp(CompareRelation.LT, PR(8), PR(9), GR(11), GR(12))
        rb.br_cond("loop", qp=PR(8))
        rb.block("exit")
        rb.br_ret()
        program = pb.finish()
        report = _convert(program, ignore_profile=True)
        assert report.total_converted == 0
        assert report.rejected_by_shape >= 1

    def test_metadata_recorded(self):
        program, _, _ = build_diamond_program()
        _convert(program)
        assert program.metadata["if_converted"] is True
        assert program.metadata["if_conversion_report"].total_converted >= 1
