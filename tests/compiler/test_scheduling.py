"""Tests for the compare-hoisting scheduler."""

from repro.compiler.scheduling import CompareHoistingScheduler
from repro.emulator import Emulator
from repro.isa import GR, PR, CompareRelation
from repro.program import ProgramBuilder, validate_program

from tests.conftest import build_counting_loop, build_diamond_program


def _final_registers(program, registers, budget=20_000):
    emulator = Emulator(program)
    list(emulator.run(budget))
    return [emulator.state.general[r] for r in registers]


def _distance_program():
    """A block where the loop-control compare sits right before its branch
    but could legally be computed much earlier."""
    pb = ProgramBuilder("distance")
    rb = pb.routine("main")
    rb.block("entry")
    rb.movi(GR(1), 0)
    rb.movi(GR(2), 50)
    rb.movi(GR(3), 0)
    rb.block("loop")
    rb.addi(GR(1), GR(1), 1)
    rb.addi(GR(3), GR(3), 2)
    rb.addi(GR(4), GR(3), 5)
    rb.xor(GR(5), GR(4), GR(3))
    rb.addi(GR(6), GR(5), 1)
    rb.cmp(CompareRelation.LT, PR(6), PR(7), GR(1), GR(2))
    rb.br_cond("loop", qp=PR(6))
    rb.block("exit")
    rb.br_ret()
    program = pb.finish()
    validate_program(program)
    return program


class TestHoisting:
    def test_compare_moves_earlier(self):
        program = _distance_program()
        loop = program.routine("main").block("loop")
        original_position = next(
            i for i, inst in enumerate(loop.instructions) if inst.is_compare
        )
        scheduler = CompareHoistingScheduler()
        scheduler.run(program)
        program.layout()
        new_position = next(
            i for i, inst in enumerate(loop.instructions) if inst.is_compare
        )
        assert new_position < original_position
        assert scheduler.report.compares_hoisted >= 1
        assert scheduler.report.mean_hoist_distance > 0

    def test_compare_does_not_move_above_its_producer(self):
        program = _distance_program()
        CompareHoistingScheduler().run(program)
        loop = program.routine("main").block("loop")
        producer_index = next(
            i
            for i, inst in enumerate(loop.instructions)
            if GR(1) in inst.destination_registers()
        )
        compare_index = next(
            i for i, inst in enumerate(loop.instructions) if inst.is_compare
        )
        assert compare_index > producer_index

    def test_branch_stays_last(self):
        program = _distance_program()
        CompareHoistingScheduler().run(program)
        loop = program.routine("main").block("loop")
        assert loop.instructions[-1].is_branch


class TestSemanticsPreservation:
    def test_counting_loop_unchanged(self):
        reference, expected = build_counting_loop()
        scheduled, _ = build_counting_loop()
        CompareHoistingScheduler().run(scheduled)
        scheduled.layout()
        validate_program(scheduled)
        assert _final_registers(scheduled, [13]) == [expected]

    def test_diamond_unchanged(self):
        scheduled, highs, lows = build_diamond_program()
        CompareHoistingScheduler().run(scheduled)
        scheduled.layout()
        validate_program(scheduled)
        assert _final_registers(scheduled, [20, 21]) == [highs, lows]

    def test_memory_order_preserved(self):
        pb = ProgramBuilder("mem")
        base = pb.array("buf", [0])
        rb = pb.routine("main")
        rb.block("entry")
        rb.movi(GR(1), base)
        rb.movi(GR(2), 5)
        rb.store(GR(2), GR(1))
        rb.load(GR(3), GR(1))
        rb.movi(GR(4), 9)
        rb.store(GR(4), GR(1))
        rb.load(GR(5), GR(1))
        rb.br_ret()
        program = pb.finish()
        CompareHoistingScheduler().run(program)
        program.layout()
        assert _final_registers(program, [3, 5]) == [5, 9]

    def test_small_blocks_untouched(self):
        program, expected = build_counting_loop()
        entry = program.routine("main").block("entry")
        before = [i.uid for i in entry.instructions]
        CompareHoistingScheduler().run(program)
        # Blocks shorter than 3 instructions are untouched; entry has 4, so
        # just verify the instruction *set* is preserved everywhere.
        after = [i.uid for i in program.routine("main").block("entry").instructions]
        assert sorted(before) == sorted(after)

    def test_report_metadata(self):
        program = _distance_program()
        CompareHoistingScheduler().run(program)
        assert program.metadata["scheduled"] is True
        assert program.metadata["scheduling_report"].blocks_scheduled >= 1
