"""Tests for counters, accuracy accounting, reporting and result tables."""

import pytest

from repro.stats.accuracy import BranchAccuracy, BranchRecord
from repro.stats.counters import CounterSet
from repro.stats.reporting import format_percent, format_table
from repro.stats.tables import ResultTable


class TestCounterSet:
    def test_bump_and_get(self):
        counters = CounterSet()
        counters.bump("a")
        counters.bump("a", 4)
        assert counters.get("a") == 5
        assert counters["a"] == 5
        assert counters.get("missing") == 0

    def test_set_and_contains(self):
        counters = CounterSet()
        counters.set("x", 9)
        assert "x" in counters
        assert "y" not in counters

    def test_ratio(self):
        counters = CounterSet()
        counters.set("hits", 3)
        counters.set("total", 4)
        assert counters.ratio("hits", "total") == 0.75
        assert counters.ratio("hits", "missing") == 0.0

    def test_merge(self):
        a, b = CounterSet(), CounterSet()
        a.bump("x", 2)
        b.bump("x", 3)
        b.bump("y", 1)
        a.merge(b)
        assert a.get("x") == 5 and a.get("y") == 1

    def test_as_dict_and_items_sorted(self):
        counters = CounterSet()
        counters.bump("b")
        counters.bump("a")
        assert list(dict(counters.items())) == ["a", "b"]
        assert counters.as_dict() == {"a": 1, "b": 1}


class TestBranchAccuracy:
    def _record(self, actual, predicted, early=False, fetch=None):
        return BranchRecord(
            pc=0x4000, actual=actual, predicted=predicted,
            fetch_prediction=fetch, early_resolved=early,
        )

    def test_rates(self):
        accuracy = BranchAccuracy()
        accuracy.record(self._record(True, True))
        accuracy.record(self._record(True, False))
        assert accuracy.branches == 2
        assert accuracy.mispredictions == 1
        assert accuracy.misprediction_rate == 0.5
        assert accuracy.accuracy == 0.5

    def test_early_resolved_accounting(self):
        accuracy = BranchAccuracy()
        accuracy.record(self._record(True, True, early=True))
        accuracy.record(self._record(False, False))
        assert accuracy.early_resolved_count == 1
        assert accuracy.early_resolved_fraction == 0.5

    def test_override_accounting(self):
        accuracy = BranchAccuracy()
        accuracy.record(self._record(True, True, fetch=False))
        accuracy.record(self._record(True, True, fetch=True))
        assert accuracy.override_count == 1

    def test_vectors(self):
        accuracy = BranchAccuracy()
        accuracy.record(self._record(True, False, early=True))
        accuracy.record(self._record(True, True))
        assert accuracy.mispredicted_vector() == [True, False]
        assert accuracy.early_resolved_vector() == [True, False]

    def test_empty(self):
        accuracy = BranchAccuracy()
        assert accuracy.misprediction_rate == 0.0
        assert accuracy.early_resolved_fraction == 0.0


class TestReporting:
    def test_format_percent(self):
        assert format_percent(0.1234) == "12.34%"
        assert format_percent(0.1234, decimals=1) == "12.3%"

    def test_format_table_alignment_and_title(self):
        text = format_table(
            ["name", "value"], [["alpha", 1.5], ["b", 22.25]], title="My Table"
        )
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "alpha" in text and "22.250" in text

    def test_format_table_no_title(self):
        text = format_table(["a"], [["x"]])
        assert not text.startswith("\n")


class TestResultTable:
    def _table(self):
        table = ResultTable(title="T", columns=["a", "b"])
        table.add_row("bench1", {"a": 0.10, "b": 0.08})
        table.add_row("bench2", {"a": 0.05, "b": 0.06})
        return table

    def test_means_and_delta(self):
        table = self._table()
        assert table.mean("a") == pytest.approx(0.075)
        assert table.delta("b", "a") == pytest.approx(0.005)

    def test_wins(self):
        table = self._table()
        assert table.wins("b", "a") == 1
        assert table.wins("a", "b") == 1

    def test_missing_column_rejected(self):
        table = ResultTable(title="T", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("bench", {"a": 0.1})

    def test_render_contains_average_row(self):
        rendered = self._table().render()
        assert "average" in rendered
        assert "bench1" in rendered

    def test_render_absolute_mode(self):
        rendered = self._table().render(percent=False, decimals=3)
        assert "0.100" in rendered

    def test_value_lookup(self):
        table = self._table()
        assert table.value("bench1", "b") == pytest.approx(0.08)
        assert table.benchmarks() == ["bench1", "bench2"]
