"""Branch-trace ingestion: parsing, classification, outcome replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.emulator.executor import Emulator
from repro.workloads.trace_ingest import (
    HARD_RATE_HIGH,
    HARD_RATE_LOW,
    TraceIngestError,
    ingest_trace_file,
    ingest_trace_text,
    parse_outcome_lines,
)


def synthetic_trace(length=300, hard_rate=0.6, easy_rate=0.97, seed=9):
    """Two-site trace text: one hard branch, one easy branch."""
    rng = np.random.default_rng(seed)
    lines = []
    for _ in range(length):
        lines.append(f"0x4000 {'T' if rng.random() < hard_rate else 'N'}")
        lines.append(f"0x4010 {'1' if rng.random() < easy_rate else '0'}")
    return "\n".join(lines)


class TestParsing:
    def test_sites_in_first_appearance_order(self):
        sites = parse_outcome_lines(["0x20 T", "0x10 N", "0x20 N"])
        assert [site.pc for site in sites] == [0x20, 0x10]
        assert sites[0].outcomes == (True, False)
        assert sites[1].outcomes == (False,)

    def test_comments_and_blank_lines_ignored(self):
        sites = parse_outcome_lines(["# header", "", "16 T  # trailing", "   "])
        assert sites[0].pc == 16 and sites[0].outcomes == (True,)

    def test_decimal_and_hex_pcs(self):
        sites = parse_outcome_lines(["0x10 T", "16 N"])
        assert len(sites) == 1  # same pc, two spellings
        assert sites[0].outcomes == (True, False)

    def test_bad_outcome_token(self):
        with pytest.raises(TraceIngestError, match="unknown outcome"):
            parse_outcome_lines(["0x10 X"], source="t.trace")

    def test_bad_pc(self):
        with pytest.raises(TraceIngestError, match="not a decimal or 0x-hex"):
            parse_outcome_lines(["branch T"])

    def test_wrong_field_count_names_the_line(self):
        with pytest.raises(TraceIngestError, match="t.trace:2"):
            parse_outcome_lines(["0x10 T", "0x10 T N"], source="t.trace")

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceIngestError, match="no branch outcomes"):
            parse_outcome_lines(["# nothing"])


class TestClassification:
    def test_hard_and_easy_sites(self):
        workload = ingest_trace_text(synthetic_trace(), name="demo")
        assert len(workload.traits.hard_regions) == 1
        assert len(workload.traits.easy_branches) == 1
        hard, easy = workload.sites
        assert HARD_RATE_LOW <= hard.taken_rate <= HARD_RATE_HIGH
        assert easy.taken_rate > HARD_RATE_HIGH

    def test_biased_not_taken_site_is_easy(self):
        text = "\n".join(["0x10 N"] * 95 + ["0x10 T"] * 5)
        workload = ingest_trace_text(text, name="nt")
        assert len(workload.traits.easy_branches) == 1
        # The traits record the dominant-direction rate, not the taken-rate.
        assert workload.traits.easy_branches[0].bias == pytest.approx(0.95)

    def test_deterministic_rebuild(self):
        text = synthetic_trace()
        first = ingest_trace_text(text, name="demo").build()
        second = ingest_trace_text(text, name="demo").build()
        assert str(first) == str(second)

    def test_content_changes_the_seed(self):
        a = ingest_trace_text(synthetic_trace(seed=1), name="a")
        b = ingest_trace_text(synthetic_trace(seed=2), name="a")
        assert a.traits.seed != b.traits.seed


class TestReplay:
    def test_emulated_branch_outcomes_replay_the_recorded_stream(self):
        # The exact-replay property: the hard site's recorded outcome
        # sequence, tiled over the data arrays, must reappear verbatim as
        # the outcome stream of one of the generated program's static
        # branches (in one sense or the other — a hammock branch jumps
        # *around* the body, so it may encode the negated condition).
        workload = ingest_trace_text(synthetic_trace(length=300), name="demo")
        program = workload.build()
        trace = list(Emulator(program).run(60_000))
        from repro.emulator.trace import per_site_outcomes

        length = workload.traits.array_length
        recorded = np.resize(
            np.array(workload.sites[0].outcomes, dtype=bool), length
        )
        matched = False
        for outcomes in per_site_outcomes(trace).values():
            if len(outcomes) < 100:
                continue  # loop-control and easy-branch sites
            observed = np.array(outcomes, dtype=bool)
            expected = np.resize(recorded, observed.size)
            if np.array_equal(observed, expected) or np.array_equal(
                observed, ~expected
            ):
                matched = True
                break
        assert matched, "no emulated branch replays the recorded hard stream"

    def test_ingest_trace_file(self, tmp_path):
        path = tmp_path / "cap.trace"
        path.write_text(synthetic_trace())
        workload = ingest_trace_file(str(path), name="cap")
        assert workload.name == "cap"
        assert workload.build().name == "cap"

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceIngestError, match="cannot read"):
            ingest_trace_file(str(tmp_path / "absent.trace"), name="x")


class TestStreamingMemory:
    """Ingestion memory is bounded by static sites, not stream length."""

    @staticmethod
    def _write_trace(path, lines):
        with open(path, "w", encoding="utf-8") as handle:
            for index in range(lines):
                handle.write(f"0x4000 {'T' if index % 3 else 'N'}\n")
                handle.write(f"0x4010 {'1' if index % 17 else '0'}\n")

    @staticmethod
    def _peak_ingest(path):
        import gc
        import tracemalloc

        gc.collect()
        tracemalloc.start()
        try:
            workload = ingest_trace_file(str(path), name="mem", max_site_outcomes=512)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return workload, peak

    def test_peak_memory_flat_as_input_grows_10x(self, tmp_path):
        small = tmp_path / "small.trace"
        large = tmp_path / "large.trace"
        self._write_trace(small, 12_000)
        self._write_trace(large, 120_000)
        workload_small, peak_small = self._peak_ingest(small)
        workload_large, peak_large = self._peak_ingest(large)
        # Same two static sites either way; totals keep counting past the
        # bounded replay window.
        assert len(workload_large.sites) == len(workload_small.sites) == 2
        assert workload_large.sites[0].executions == 120_000
        assert len(workload_large.sites[0].outcomes) == 512
        # A whole-file read would scale peak ~10x (the large file is ~2.2MB);
        # the streaming parser must stay flat within allocator noise.
        assert peak_large < peak_small * 2 + 256 * 1024, (peak_small, peak_large)

    def test_long_site_totals_survive_the_window_cap(self, tmp_path):
        path = tmp_path / "capped.trace"
        self._write_trace(path, 2_000)
        workload = ingest_trace_file(str(path), name="cap", max_site_outcomes=64)
        site = workload.sites[0]
        assert site.executions == 2_000
        assert len(site.outcomes) == 64
        assert 0 < site.taken_rate < 1
