"""The workload registry: resolution, fingerprints, suggestions."""

from __future__ import annotations

import json

import pytest

from repro.workloads.registry import (
    BUILTIN,
    LIBRARY,
    SPEC_FILE,
    TRACE,
    UnknownWorkloadError,
    build_workload,
    is_workload_path,
    library_paths,
    registry_names,
    resolve_workload,
    workload_fingerprint,
)
from repro.workloads.spec_suite import SPEC_SUITE, workload_names
from repro.workloads.workload_spec import WorkloadSpecError


def spec_text(name="custom", seed=5, bias=0.9):
    return json.dumps(
        {
            "workload": {"name": name, "category": "int", "seed": seed},
            "easy_branches": [{"bias": bias}],
        }
    )


class TestResolution:
    def test_every_builtin_resolves(self):
        for name in workload_names():
            definition = resolve_workload(name)
            assert definition.origin == BUILTIN
            assert definition.traits is SPEC_SUITE[name]
            assert definition.display_name == name

    def test_builtin_build_matches_spec_suite(self):
        from repro.workloads.spec_suite import build_workload as build_builtin

        assert str(build_workload("gzip")) == str(build_builtin("gzip"))

    def test_library_names_resolve(self):
        names = registry_names()
        assert names[: len(workload_names())] == workload_names()
        for path in library_paths():
            stem = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
            assert stem in names
            definition = resolve_workload(stem)
            assert definition.origin == LIBRARY
            assert definition.display_name == stem

    def test_spec_path_resolves(self, tmp_path):
        path = tmp_path / "custom.json"
        path.write_text(spec_text())
        definition = resolve_workload(str(path))
        assert definition.origin == SPEC_FILE
        assert definition.name == str(path)  # the registry identity is the path
        assert definition.display_name == "custom"
        assert definition.build().name == "custom"

    def test_trace_path_resolves(self, tmp_path):
        path = tmp_path / "captured.trace"
        path.write_text("0x40 T\n0x40 N\n0x48 T\n" * 30)
        definition = resolve_workload(str(path))
        assert definition.origin == TRACE
        assert definition.display_name == "captured"
        assert definition.build().name == "captured"

    def test_path_detection(self, tmp_path):
        assert is_workload_path("a/b.toml")
        assert is_workload_path("b.json")
        assert is_workload_path("b.trace")
        assert not is_workload_path("gzip")

    def test_unsupported_extension(self, tmp_path):
        path = tmp_path / "w.yaml"
        path.write_text("x")
        with pytest.raises(WorkloadSpecError, match="unsupported"):
            resolve_workload(str(path))


class TestUnknownNames:
    def test_unknown_name_lists_registry(self):
        with pytest.raises(UnknownWorkloadError) as excinfo:
            resolve_workload("doom3")
        message = str(excinfo.value)
        for name in registry_names():
            assert name in message

    def test_close_match_suggested(self):
        with pytest.raises(UnknownWorkloadError, match="did you mean: gzip"):
            resolve_workload("gzpi")
        with pytest.raises(UnknownWorkloadError, match="did you mean: twolf"):
            resolve_workload("twolff")

    def test_error_message_is_not_keyerror_quoted(self):
        # KeyError.__str__ would wrap the message in quotes and escape it.
        error = UnknownWorkloadError("plain message")
        assert str(error) == "plain message"


class TestFingerprints:
    def test_builtin_fingerprints_distinct_and_stable(self):
        prints = {name: workload_fingerprint(name) for name in workload_names()}
        assert len(set(prints.values())) == len(prints)
        assert workload_fingerprint("gzip") == prints["gzip"]

    def test_spec_fingerprint_round_trip(self, tmp_path):
        path = tmp_path / "w.json"
        path.write_text(spec_text(seed=5))
        first = workload_fingerprint(str(path))
        assert workload_fingerprint(str(path)) == first  # stable per content

    def test_editing_a_spec_changes_its_fingerprint_only(self, tmp_path):
        path = tmp_path / "w.json"
        path.write_text(spec_text(seed=5))
        before = workload_fingerprint(str(path))
        builtin_before = workload_fingerprint("gzip")
        path.write_text(spec_text(seed=6))
        assert workload_fingerprint(str(path)) != before
        assert workload_fingerprint("gzip") == builtin_before

    def test_identical_content_different_paths_same_fingerprint(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(spec_text())
        b.write_text(spec_text())
        assert workload_fingerprint(str(a)) == workload_fingerprint(str(b))

    def test_spec_and_trace_fingerprints_are_kind_tagged(self, tmp_path):
        # The same bytes as a spec and as a trace must never collide.
        from repro.workloads.registry import _text_fingerprint

        assert _text_fingerprint("spec", "x") != _text_fingerprint("trace", "x")


class TestFactoryIntegration:
    def test_build_fingerprint_folds_the_workload_fingerprint(self, tmp_path):
        from repro.compiler.binaries import BinaryFactory

        factory = BinaryFactory()
        path = tmp_path / "w.json"
        path.write_text(spec_text(seed=5))
        before = factory.fingerprint(str(path), "if-converted")
        assert before["workload"] == workload_fingerprint(str(path))
        path.write_text(spec_text(seed=9))
        after = factory.fingerprint(str(path), "if-converted")
        assert after["workload"] != before["workload"]
        # Built-in fingerprints are untouched by the edit.
        assert factory.fingerprint("gzip", "if-converted") == factory.fingerprint(
            "gzip", "if-converted"
        )
