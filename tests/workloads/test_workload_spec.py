"""Workload spec files: parsing, eager total validation, round-trips."""

from __future__ import annotations

import json

import pytest

from repro.workloads.spec_suite import SPEC_SUITE
from repro.workloads.traits import RegionKind
from repro.workloads.workload_spec import (
    WorkloadSpecError,
    load_workload_file,
    parse_workload,
    spec_document,
    tomllib,
)

HAVE_TOMLLIB = tomllib is not None


def minimal_document(**header):
    base = {"name": "mini", "category": "int", "seed": 3}
    base.update(header)
    return {"workload": base, "easy_branches": [{"bias": 0.9}]}


FULL_DOCUMENT = {
    "workload": {
        "name": "full",
        "category": "fp",
        "seed": 11,
        "array_length": 512,
        "outer_iterations": 5_000,
        "filler_alu": 4,
        "filler_fp": 6,
        "inner_loop_trips": 2,
        "pointer_chase": True,
    },
    "hard_regions": [
        {"bias": 0.6, "body_size": 4, "kind": "hammock"},
        {"bias": 0.7, "body_size": 5, "kind": "diamond", "nested": True},
    ],
    "correlated_branches": [
        {"sources": [0, 1], "op": "or", "lag": 2, "noise": 0.1, "early_compare": True}
    ],
    "easy_branches": [{"bias": 0.95, "body_size": 2, "early_compare": True}],
}

FULL_TOML = """
[workload]
name = "full"
category = "fp"
seed = 11
array_length = 512
outer_iterations = 5000
filler_alu = 4
filler_fp = 6
inner_loop_trips = 2
pointer_chase = true

[[hard_regions]]
bias = 0.6
body_size = 4
kind = "hammock"

[[hard_regions]]
bias = 0.7
body_size = 5
kind = "diamond"
nested = true

[[correlated_branches]]
sources = [0, 1]
op = "or"
lag = 2
noise = 0.1
early_compare = true

[[easy_branches]]
bias = 0.95
body_size = 2
early_compare = true
"""


class TestParsing:
    def test_full_document(self):
        traits = parse_workload(FULL_DOCUMENT)
        assert traits.name == "full"
        assert traits.category == "fp"
        assert traits.array_length == 512
        assert traits.pointer_chase is True
        assert len(traits.hard_regions) == 2
        assert traits.hard_regions[1].kind is RegionKind.DIAMOND
        assert traits.hard_regions[1].nested is True
        assert traits.correlated_branches[0].sources == (0, 1)
        assert traits.easy_branches[0].early_compare is True

    def test_defaults_fill_in(self):
        traits = parse_workload(minimal_document())
        assert traits.array_length == 1024  # WorkloadTraits default
        assert traits.hard_regions == ()
        assert len(traits.easy_branches) == 1

    @pytest.mark.skipif(not HAVE_TOMLLIB, reason="tomllib needs Python 3.11+")
    def test_toml_and_json_parse_identically(self, tmp_path):
        toml_path = tmp_path / "full.toml"
        toml_path.write_text(FULL_TOML)
        json_path = tmp_path / "full.json"
        json_path.write_text(json.dumps(FULL_DOCUMENT))
        assert load_workload_file(str(toml_path)) == load_workload_file(str(json_path))

    def test_spec_document_round_trip(self):
        traits = parse_workload(FULL_DOCUMENT)
        assert parse_workload(spec_document(traits)) == traits

    def test_builtin_traits_survive_the_document_round_trip(self):
        # Any built-in can be exported as a spec file and re-imported.
        for traits in list(SPEC_SUITE.values())[:3]:
            assert parse_workload(spec_document(traits)) == traits


class TestValidation:
    def test_unknown_top_level_section(self):
        with pytest.raises(WorkloadSpecError, match="unknown top-level"):
            parse_workload({**minimal_document(), "branches": []})

    def test_missing_workload_table(self):
        with pytest.raises(WorkloadSpecError, match=r"missing the required \[workload\]"):
            parse_workload({"easy_branches": []})

    @pytest.mark.parametrize("required", ["name", "category", "seed"])
    def test_missing_required_header_field(self, required):
        document = minimal_document()
        del document["workload"][required]
        with pytest.raises(WorkloadSpecError, match=required):
            parse_workload(document)

    def test_unknown_header_field(self):
        with pytest.raises(WorkloadSpecError, match="unknown field"):
            parse_workload(minimal_document(sed=3))

    def test_bad_name(self):
        with pytest.raises(WorkloadSpecError, match="name"):
            parse_workload(minimal_document(name="../escape"))

    def test_bad_category(self):
        with pytest.raises(WorkloadSpecError, match="category"):
            parse_workload(minimal_document(category="vector"))

    def test_non_integer_seed(self):
        with pytest.raises(WorkloadSpecError, match="seed"):
            parse_workload(minimal_document(seed="7"))

    def test_boolean_is_not_an_integer(self):
        with pytest.raises(WorkloadSpecError, match="array_length"):
            parse_workload(minimal_document(array_length=True))

    def test_unknown_hard_region_field(self):
        document = minimal_document()
        document["hard_regions"] = [{"bias": 0.6, "shape": "hammock"}]
        with pytest.raises(WorkloadSpecError, match=r"hard_regions\[0\]"):
            parse_workload(document)

    def test_unknown_region_kind(self):
        document = minimal_document()
        document["hard_regions"] = [{"kind": "triangle"}]
        with pytest.raises(WorkloadSpecError, match="unknown region kind"):
            parse_workload(document)

    def test_out_of_range_bias_carries_file_context(self):
        document = minimal_document()
        document["hard_regions"] = [{"bias": 1.5}]
        with pytest.raises(WorkloadSpecError, match=r"hard_regions\[0\].*bias"):
            parse_workload(document, source="my.toml")

    def test_unknown_correlation_op(self):
        document = minimal_document()
        document["hard_regions"] = [{"bias": 0.6}]
        document["correlated_branches"] = [{"sources": [0], "op": "nand"}]
        with pytest.raises(WorkloadSpecError, match="unknown correlation op"):
            parse_workload(document)

    def test_correlated_source_out_of_range(self):
        document = minimal_document()
        document["correlated_branches"] = [{"sources": [2], "op": "copy"}]
        with pytest.raises(WorkloadSpecError, match="hard region"):
            parse_workload(document)

    def test_section_must_be_a_list(self):
        document = minimal_document()
        document["easy_branches"] = {"bias": 0.9}
        with pytest.raises(WorkloadSpecError, match="list of tables"):
            parse_workload(document)

    def test_unknown_easy_field(self):
        document = minimal_document()
        document["easy_branches"] = [{"bias": 0.9, "weight": 2}]
        with pytest.raises(WorkloadSpecError, match=r"easy_branches\[0\]"):
            parse_workload(document)


class TestFiles:
    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"workload": ')
        with pytest.raises(WorkloadSpecError, match="invalid JSON"):
            load_workload_file(str(path))

    @pytest.mark.skipif(not HAVE_TOMLLIB, reason="tomllib needs Python 3.11+")
    def test_malformed_toml(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("[workload\nname=")
        with pytest.raises(WorkloadSpecError, match="invalid TOML"):
            load_workload_file(str(path))

    def test_unsupported_extension(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("workload:\n  name: x\n")
        with pytest.raises(WorkloadSpecError, match="unsupported"):
            load_workload_file(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadSpecError, match="cannot read"):
            load_workload_file(str(tmp_path / "absent.json"))

    def test_stem_mismatch_rejected_when_name_given(self, tmp_path):
        path = tmp_path / "alpha.json"
        path.write_text(json.dumps(minimal_document(name="beta")))
        with pytest.raises(WorkloadSpecError, match="does not match"):
            load_workload_file(str(path), name="alpha")

    def test_error_names_the_file(self, tmp_path):
        path = tmp_path / "oops.json"
        path.write_text(json.dumps(minimal_document(category="simd")))
        with pytest.raises(WorkloadSpecError, match="oops.json"):
            load_workload_file(str(path))
