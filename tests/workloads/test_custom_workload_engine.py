"""Custom workloads through the engine: caching, invalidation, sweeps.

The acceptance criteria of the custom-workload subsystem live here:

* a rerun of a custom-workload experiment rebuilds **zero** jobs;
* editing a spec file changes its cache token, so only that workload's
  artifacts rebuild while built-in workloads' artifacts stay cached;
* a sweep scenario referencing a spec-file workload runs end-to-end.
"""

from __future__ import annotations

import json

import pytest

from repro.engine import ExecutionEngine, SchemeSpec, sweep
from repro.engine.jobs import IF_CONVERTED
from repro.engine.store import ArtifactStore
from repro.experiments.setup import ExperimentProfile


def write_spec(path, seed=5, bias=0.93):
    path.write_text(
        json.dumps(
            {
                "workload": {"name": "custom", "category": "int", "seed": seed},
                "hard_regions": [{"bias": 0.62, "body_size": 4}],
                "easy_branches": [{"bias": bias}],
            }
        )
    )
    return str(path)


def profile_for(benchmarks):
    return ExperimentProfile(
        name="custom-test",
        instructions_per_benchmark=2_000,
        benchmarks=list(benchmarks),
        profile_budget=2_000,
    )


def definition_for(benchmarks):
    return sweep(
        "custom-test", benchmarks, IF_CONVERTED, {"pred": SchemeSpec.make("predicate")}
    )


class TestCustomWorkloadCaching:
    def test_rerun_rebuilds_zero_jobs(self, tmp_path):
        spec = write_spec(tmp_path / "custom.json")
        store = ArtifactStore(str(tmp_path / "cache"))
        benchmarks = ["gzip", spec]

        first = ExecutionEngine(profile_for(benchmarks), store=store)
        first.run([definition_for(benchmarks)])
        assert first.stats.binaries_built == 2
        assert first.stats.traces_collected == 2
        assert first.stats.simulations_run == 2

        again = ExecutionEngine(profile_for(benchmarks), store=store)
        outputs = again.run([definition_for(benchmarks)])["custom-test"]
        assert again.stats.binaries_built == 0
        assert again.stats.traces_collected == 0
        assert again.stats.simulations_run == 0
        assert again.stats.results_loaded == 2
        assert set(outputs) == {("gzip", "pred"), (spec, "pred")}

    def test_spec_edit_invalidates_only_that_workload(self, tmp_path):
        spec = write_spec(tmp_path / "custom.json", seed=5)
        store = ArtifactStore(str(tmp_path / "cache"))
        benchmarks = ["gzip", spec]

        warm = ExecutionEngine(profile_for(benchmarks), store=store)
        warm.run([definition_for(benchmarks)])
        assert warm.stats.simulations_run == 2

        # Edit the spec: its content fingerprint — and therefore its build,
        # trace and result keys — must change, while gzip stays cached.
        write_spec(tmp_path / "custom.json", seed=6)
        edited = ExecutionEngine(profile_for(benchmarks), store=store)
        edited.run([definition_for(benchmarks)])
        assert edited.stats.binaries_built == 1  # the custom workload only
        assert edited.stats.traces_collected == 1
        assert edited.stats.simulations_run == 1
        assert edited.stats.results_loaded == 1  # gzip, served from the store

    def test_edit_changes_results_not_just_keys(self, tmp_path):
        # A different easy-branch bias must produce a different accuracy:
        # the invalidation is not just key churn.
        spec = write_spec(tmp_path / "custom.json", bias=0.93)
        engine = ExecutionEngine(profile_for([spec]))
        before = engine.simulate(spec, IF_CONVERTED, SchemeSpec.make("conventional"))
        write_spec(tmp_path / "custom.json", bias=0.51)
        after = ExecutionEngine(profile_for([spec])).simulate(
            spec, IF_CONVERTED, SchemeSpec.make("conventional")
        )
        assert (
            before.accuracy.misprediction_rate != after.accuracy.misprediction_rate
        )

    def test_parallel_run_resolves_custom_workloads_in_workers(self, tmp_path):
        spec = write_spec(tmp_path / "custom.json")
        benchmarks = ["gzip", spec]
        serial = ExecutionEngine(profile_for(benchmarks))
        parallel = ExecutionEngine(profile_for(benchmarks), jobs=2)
        a = serial.run([definition_for(benchmarks)])["custom-test"]
        b = parallel.run([definition_for(benchmarks)])["custom-test"]
        assert {
            slot: result.metrics.ipc for slot, result in a.items()
        } == {slot: result.metrics.ipc for slot, result in b.items()}


class TestCustomWorkloadSweep:
    def scenario_for(self, spec_path):
        from repro.sweep.scenario import parse_scenario

        return parse_scenario(
            {
                "scenario": {
                    "name": "custom-sweep",
                    "benchmarks": ["gzip", spec_path],
                    "schemes": ["predicate"],
                    "instructions": 2_000,
                },
                "axes": {"pipeline": {"rob_entries": [64, 256]}},
            }
        )

    def test_sweep_with_spec_file_workload_end_to_end(self, tmp_path):
        from repro.sweep.runner import run_sweep, sweep_profile
        from repro.sweep.report import render_sweep

        spec = write_spec(tmp_path / "custom.json")
        scenario = self.scenario_for(spec)
        store = ArtifactStore(str(tmp_path / "cache"))
        engine = ExecutionEngine(sweep_profile(scenario), store=store)
        run = run_sweep(scenario, engine=engine)
        # 2 points x 1 scheme x 2 benchmarks.
        assert len(run.results) == 4
        assert engine.stats.simulations_run == 4
        report = render_sweep(run)
        assert "custom-sweep" in report

        # The engine-stats cache proof: a rerun rebuilds zero jobs.
        again = ExecutionEngine(sweep_profile(scenario), store=store)
        rerun = run_sweep(scenario, engine=again)
        assert again.stats.simulations_run == 0
        assert again.stats.results_loaded == 4
        assert len(rerun.results) == 4

        # Editing the spec invalidates the custom workload's cells only:
        # gzip's artifacts (2 machines x 1 scheme) are served from the store.
        write_spec(tmp_path / "custom.json", seed=11)
        edited = ExecutionEngine(sweep_profile(scenario), store=store)
        run_sweep(self.scenario_for(spec), engine=edited)
        assert edited.stats.binaries_built == 1
        assert edited.stats.simulations_run == 2  # the spec workload's 2 points
        assert edited.stats.results_loaded == 2  # gzip's 2 points

    def test_builtin_custom_workload_scenario_loads(self):
        pytest.importorskip("tomllib")
        from repro.sweep.scenario import load_scenario
        from repro.sweep.spec import SweepSpec

        scenario = load_scenario("custom-workload")
        assert "branchy" in scenario.benchmarks
        spec = SweepSpec(scenario)
        assert spec.cell_count() == len(scenario.benchmarks) * len(
            spec.points()
        ) * len(scenario.schemes)
