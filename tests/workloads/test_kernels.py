"""Tests for the workload kernel builder (generated-code structure)."""

from repro.emulator import Emulator, trace_statistics
from repro.isa.branches import BranchInstruction, BranchKind
from repro.isa.compare import CompareInstruction
from repro.program import validate_program
from repro.workloads.generators import generate_condition_streams
from repro.workloads.kernels import build_program_from_traits
from repro.workloads.traits import (
    CorrelatedBranchSpec,
    EasyBranchSpec,
    HardRegionSpec,
    RegionKind,
    WorkloadTraits,
)


def _traits(**overrides):
    params = dict(
        name="kernel-test",
        category="int",
        seed=5,
        array_length=64,
        outer_iterations=3,
        hard_regions=(
            HardRegionSpec(0.6, 4, RegionKind.HAMMOCK),
            HardRegionSpec(0.5, 4, RegionKind.DIAMOND),
            HardRegionSpec(0.3, 3, RegionKind.ESCAPE),
        ),
        correlated_branches=(
            CorrelatedBranchSpec(sources=(0,), op="copy", lag=1, early_compare=True),
        ),
        easy_branches=(EasyBranchSpec(0.95, 2, early_compare=True), EasyBranchSpec(0.93, 2)),
        filler_alu=3,
        inner_loop_trips=2,
        pointer_chase=True,
    )
    params.update(overrides)
    return WorkloadTraits(**params)


class TestGeneratedStructure:
    def test_program_validates_and_has_expected_blocks(self):
        program = build_program_from_traits(_traits())
        validate_program(program)
        labels = {block.label for block in program.routine("main").blocks}
        for expected in ("entry", "reset", "iter", "latch", "outer", "done", "inner"):
            assert expected in labels

    def test_one_array_per_condition_plus_chain(self):
        traits = _traits()
        program = build_program_from_traits(traits)
        # hard0..2, corr0, easy0..1, chain -> 7 arrays; each array occupies
        # array_length words in the data segment.
        assert len(program.data.words) == 7 * traits.array_length

    def test_compares_use_p0_as_second_target(self):
        program = build_program_from_traits(_traits())
        condition_compares = [
            inst
            for inst in program.routine("main").instructions()
            if isinstance(inst, CompareInstruction) and inst.num_predictions_needed == 1
        ]
        # All condition and loop-control compares only need one prediction
        # before if-conversion.
        assert condition_compares
        all_compares = [
            inst
            for inst in program.routine("main").instructions()
            if isinstance(inst, CompareInstruction)
        ]
        assert len(condition_compares) == len(all_compares)

    def test_escape_region_jumps_to_latch(self):
        program = build_program_from_traits(_traits())
        escape_jumps = [
            inst
            for inst in program.routine("main").instructions()
            if isinstance(inst, BranchInstruction)
            and inst.kind is BranchKind.UNCOND
            and inst.target is not None
            and inst.target.name == "latch"
        ]
        assert escape_jumps, "escape regions must leave the iteration via 'latch'"

    def test_early_conditions_computed_in_reset_and_latch(self):
        program = build_program_from_traits(_traits())
        routine = program.routine("main")
        for label in ("reset", "latch"):
            block = routine.block(label)
            assert any(isinstance(i, CompareInstruction) for i in block.instructions), (
                f"block {label!r} must evaluate the software-pipelined conditions"
            )

    def test_streams_can_be_shared_between_builds(self):
        traits = _traits()
        streams = generate_condition_streams(traits)
        first = build_program_from_traits(traits, streams)
        second = build_program_from_traits(traits, streams)
        assert first.data.words == second.data.words


class TestGeneratedBehaviour:
    def test_program_terminates_after_outer_iterations(self):
        traits = _traits(outer_iterations=2, pointer_chase=False, inner_loop_trips=0)
        program = build_program_from_traits(traits)
        emulator = Emulator(program)
        list(emulator.run(200_000))
        assert emulator.halted

    def test_branch_outcomes_follow_condition_streams(self):
        traits = _traits(
            hard_regions=(HardRegionSpec(0.5, 3, RegionKind.HAMMOCK),),
            correlated_branches=(),
            easy_branches=(),
            inner_loop_trips=0,
            pointer_chase=False,
            outer_iterations=1,
        )
        streams = generate_condition_streams(traits)
        program = build_program_from_traits(traits, streams)
        trace = list(Emulator(program).run(50_000))
        stats = trace_statistics(trace)
        # The hard-region branch is taken when the condition is FALSE (it
        # skips the body), so its taken rate must match 1 - stream mean.
        hard_rate = streams.hard_rate(0)
        data_sites = [
            site for site in stats.branch_sites.values() if 0.02 < site.taken_rate < 0.98
        ]
        non_loop = [site for site in data_sites if site.executions >= 32 and site.bias < 0.95]
        assert non_loop
        measured = min(non_loop, key=lambda s: abs((1 - s.taken_rate) - hard_rate))
        assert abs((1 - measured.taken_rate) - hard_rate) < 0.1
