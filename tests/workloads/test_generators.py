"""Tests for condition-stream generation."""

import numpy as np
import pytest

from repro.workloads.generators import (
    CONDITION_THRESHOLD,
    generate_condition_streams,
)
from repro.workloads.traits import (
    CorrelatedBranchSpec,
    EasyBranchSpec,
    HardRegionSpec,
    WorkloadTraits,
)


def _traits(**overrides):
    params = dict(
        name="synthetic",
        category="int",
        seed=42,
        array_length=2048,
        hard_regions=(HardRegionSpec(bias=0.7), HardRegionSpec(bias=0.3)),
        correlated_branches=(
            CorrelatedBranchSpec(sources=(0, 1), op="and", lag=1, noise=0.0),
            CorrelatedBranchSpec(sources=(0,), op="copy", lag=2, noise=0.1),
        ),
        easy_branches=(EasyBranchSpec(bias=0.95),),
    )
    params.update(overrides)
    return WorkloadTraits(**params)


class TestStreamStatistics:
    def test_hard_stream_bias_close_to_spec(self):
        streams = generate_condition_streams(_traits())
        assert abs(streams.hard_rate(0) - 0.7) < 0.05
        assert abs(streams.hard_rate(1) - 0.3) < 0.05

    def test_easy_stream_bias(self):
        streams = generate_condition_streams(_traits())
        assert np.mean(streams.easy[0]) > 0.9

    def test_deterministic_for_same_seed(self):
        first = generate_condition_streams(_traits())
        second = generate_condition_streams(_traits())
        assert np.array_equal(first.hard[0], second.hard[0])
        assert first.value_arrays["corr0"] == second.value_arrays["corr0"]

    def test_different_seeds_differ(self):
        first = generate_condition_streams(_traits(seed=1))
        second = generate_condition_streams(_traits(seed=2))
        assert not np.array_equal(first.hard[0], second.hard[0])


class TestCorrelationConstruction:
    def test_and_correlation_with_lag(self):
        streams = generate_condition_streams(_traits())
        derived = streams.correlated[0]
        expected = np.roll(streams.hard[0], 1) & np.roll(streams.hard[1], 1)
        assert np.array_equal(derived, expected)

    def test_copy_correlation_with_noise_rate(self):
        streams = generate_condition_streams(_traits())
        derived = streams.correlated[1]
        source = np.roll(streams.hard[0], 2)
        flip_rate = float(np.mean(derived != source))
        assert 0.05 < flip_rate < 0.16

    @pytest.mark.parametrize(
        "op,function",
        [
            ("or", lambda a, b: a | b),
            ("xor", lambda a, b: a ^ b),
            ("and", lambda a, b: a & b),
        ],
    )
    def test_binary_ops(self, op, function):
        traits = _traits(
            correlated_branches=(
                CorrelatedBranchSpec(sources=(0, 1), op=op, lag=0, noise=0.0),
            )
        )
        streams = generate_condition_streams(traits)
        expected = function(streams.hard[0], streams.hard[1])
        assert np.array_equal(streams.correlated[0], expected)

    def test_not_op(self):
        traits = _traits(
            correlated_branches=(
                CorrelatedBranchSpec(sources=(0,), op="not", lag=0, noise=0.0),
            )
        )
        streams = generate_condition_streams(traits)
        assert np.array_equal(streams.correlated[0], ~streams.hard[0])

    def test_majority_op(self):
        traits = _traits(
            hard_regions=(HardRegionSpec(0.5), HardRegionSpec(0.5), HardRegionSpec(0.5)),
            correlated_branches=(
                CorrelatedBranchSpec(sources=(0, 1, 2), op="majority", lag=0, noise=0.0),
            ),
        )
        streams = generate_condition_streams(traits)
        stacked = np.stack([streams.hard[0], streams.hard[1], streams.hard[2]])
        expected = stacked.sum(axis=0) >= 2
        assert np.array_equal(streams.correlated[0], expected)


class TestValueEncoding:
    def test_values_encode_condition_via_threshold(self):
        streams = generate_condition_streams(_traits())
        values = np.array(streams.value_arrays["hard0"])
        recovered = values > CONDITION_THRESHOLD
        assert np.array_equal(recovered, streams.hard[0])

    def test_every_condition_has_an_array(self):
        streams = generate_condition_streams(_traits())
        for name in ("hard0", "hard1", "corr0", "corr1", "easy0"):
            assert name in streams.value_arrays
            assert len(streams.value_arrays[name]) == 2048

    def test_nested_regions_get_inner_arrays(self):
        traits = _traits(hard_regions=(HardRegionSpec(0.6, nested=True),),
                         correlated_branches=())
        streams = generate_condition_streams(traits)
        assert "hard0_inner" in streams.value_arrays

    def test_pointer_chase_chain_is_permutation(self):
        traits = _traits(pointer_chase=True)
        streams = generate_condition_streams(traits)
        assert sorted(streams.chain) == list(range(2048))
