"""Tests for the synthetic SPEC2000-like suite."""

import pytest

from repro.emulator import Emulator, trace_statistics
from repro.program import validate_program
from repro.workloads import (
    SPEC_SUITE,
    build_workload,
    fp_workload_names,
    integer_workload_names,
    workload_names,
    workload_traits,
)


class TestSuiteComposition:
    def test_twenty_two_benchmarks(self):
        assert len(workload_names()) == 22

    def test_eleven_integer_eleven_fp(self):
        assert len(integer_workload_names()) == 11
        assert len(fp_workload_names()) == 11

    def test_expected_names_present(self):
        names = set(workload_names())
        for expected in ("gzip", "gcc", "mcf", "twolf", "swim", "art", "ammp"):
            assert expected in names

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            workload_traits("doom3")

    def test_every_integer_benchmark_has_convertible_hard_region(self):
        for name in integer_workload_names():
            traits = workload_traits(name)
            assert traits.hard_regions, f"{name} has no hard regions"

    def test_correlated_branches_reference_hard_regions(self):
        for name, traits in SPEC_SUITE.items():
            for spec in traits.correlated_branches:
                for source in spec.sources:
                    assert source < len(traits.hard_regions)


class TestBuiltPrograms:
    @pytest.mark.parametrize("name", ["gzip", "twolf", "mcf", "swim", "art"])
    def test_programs_validate(self, name):
        program = build_workload(name)
        validate_program(program)
        assert program.laid_out

    def test_build_is_deterministic(self):
        first = build_workload("vpr")
        second = build_workload("vpr")
        assert [i.opcode for i in first.instructions()] == [
            i.opcode for i in second.instructions()
        ]
        assert first.data.words == second.data.words

    def test_metadata_recorded(self):
        program = build_workload("crafty")
        assert program.metadata["workload"] == "crafty"
        assert program.metadata["category"] == "int"

    @pytest.mark.parametrize("name", ["gzip", "swim"])
    def test_trace_characteristics(self, name):
        program = build_workload(name)
        stats = trace_statistics(list(Emulator(program).run(6_000)))
        # Realistic dynamic mixes: some branches, some memory traffic.
        assert 0.04 < stats.conditional_branch_fraction < 0.30
        assert stats.loads > 0
        assert stats.compares > 0

    def test_int_programs_have_harder_branches_than_fp(self):
        # Use a threshold below the fixed-trip inner-loop bias (7/8) so that
        # perfectly periodic loop-control branches do not count as "hard".
        int_stats = trace_statistics(list(Emulator(build_workload("twolf")).run(8_000)))
        fp_stats = trace_statistics(list(Emulator(build_workload("swim")).run(8_000)))
        assert int_stats.hard_branch_fraction(0.85) > fp_stats.hard_branch_fraction(0.85)

    def test_pointer_chase_workload_runs(self):
        program = build_workload("mcf")
        emulator = Emulator(program)
        trace = list(emulator.run(4_000))
        assert len(trace) == 4_000
