"""Tests for workload trait validation."""

import pytest

from repro.workloads.traits import (
    CorrelatedBranchSpec,
    EasyBranchSpec,
    HardRegionSpec,
    RegionKind,
    WorkloadTraits,
)


class TestHardRegionSpec:
    def test_valid(self):
        spec = HardRegionSpec(0.6, 5, RegionKind.DIAMOND)
        assert spec.bias == 0.6

    def test_bias_bounds(self):
        with pytest.raises(ValueError):
            HardRegionSpec(bias=0.0)
        with pytest.raises(ValueError):
            HardRegionSpec(bias=1.0)

    def test_body_size_positive(self):
        with pytest.raises(ValueError):
            HardRegionSpec(body_size=0)


class TestCorrelatedBranchSpec:
    def test_valid_ops(self):
        for op in ("and", "or", "copy", "not", "majority", "xor"):
            CorrelatedBranchSpec(sources=(0,), op=op)

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            CorrelatedBranchSpec(op="nand")

    def test_needs_sources(self):
        with pytest.raises(ValueError):
            CorrelatedBranchSpec(sources=())

    def test_noise_bounds(self):
        with pytest.raises(ValueError):
            CorrelatedBranchSpec(noise=0.5)

    def test_negative_lag_rejected(self):
        with pytest.raises(ValueError):
            CorrelatedBranchSpec(lag=-1)


class TestEasyBranchSpec:
    def test_bias_must_be_high(self):
        with pytest.raises(ValueError):
            EasyBranchSpec(bias=0.4)


class TestWorkloadTraits:
    def test_category_validation(self):
        with pytest.raises(ValueError):
            WorkloadTraits(name="x", category="vector", seed=1)

    def test_correlated_source_bounds_checked(self):
        with pytest.raises(ValueError):
            WorkloadTraits(
                name="x",
                category="int",
                seed=1,
                hard_regions=(HardRegionSpec(),),
                correlated_branches=(CorrelatedBranchSpec(sources=(3,)),),
            )

    def test_condition_count(self):
        traits = WorkloadTraits(
            name="x",
            category="int",
            seed=1,
            hard_regions=(HardRegionSpec(), HardRegionSpec()),
            correlated_branches=(CorrelatedBranchSpec(sources=(0,)),),
            easy_branches=(EasyBranchSpec(),),
        )
        assert traits.condition_count == 4
        assert not traits.is_floating_point
        assert "2 hard regions" in traits.describe()

    def test_array_length_minimum(self):
        with pytest.raises(ValueError):
            WorkloadTraits(name="x", category="int", seed=1, array_length=4)
