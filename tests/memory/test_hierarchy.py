"""Tests for the assembled memory hierarchy."""

from repro.memory.hierarchy import MemoryHierarchy, MemoryHierarchyConfig


class TestDefaults:
    def test_table1_geometry(self):
        config = MemoryHierarchyConfig()
        assert config.l1d.size_bytes == 64 * 1024
        assert config.l1d.associativity == 4
        assert config.l1d.hit_latency == 2
        assert config.l1i.size_bytes == 32 * 1024
        assert config.l1i.hit_latency == 1
        assert config.l2.size_bytes == 1024 * 1024
        assert config.l2.associativity == 16
        assert config.l2.hit_latency == 8
        assert config.memory_latency == 120
        assert config.dtlb.entries == 512
        assert config.dtlb.miss_penalty == 10


class TestLoadPath:
    def test_cold_load_pays_full_path(self):
        hierarchy = MemoryHierarchy()
        latency = hierarchy.load_latency(0x6000_0000)
        # DTLB miss + L1D + L2 + memory.
        assert latency >= 10 + 2 + 8 + 120

    def test_warm_load_hits_l1(self):
        hierarchy = MemoryHierarchy()
        hierarchy.load_latency(0x6000_0000)
        latency = hierarchy.load_latency(0x6000_0000)
        assert latency == hierarchy.config.l1d.hit_latency

    def test_l2_hit_path(self):
        hierarchy = MemoryHierarchy()
        hierarchy.load_latency(0x6000_0000)
        # A different L1 block within the same L2 block (L2 blocks are 128 B).
        latency = hierarchy.load_latency(0x6000_0040)
        assert latency == hierarchy.config.l1d.hit_latency + hierarchy.config.l2.hit_latency

    def test_fetch_path_uses_icache(self):
        hierarchy = MemoryHierarchy()
        first = hierarchy.fetch_latency(0x4000_0000)
        second = hierarchy.fetch_latency(0x4000_0000)
        assert first > second
        assert second == hierarchy.config.l1i.hit_latency

    def test_store_path_returns_penalty(self):
        hierarchy = MemoryHierarchy()
        penalty = hierarchy.store_latency(0x6000_0000)
        assert penalty >= 0


class TestStatistics:
    def test_statistics_keys(self):
        hierarchy = MemoryHierarchy()
        hierarchy.load_latency(0x6000_0000)
        hierarchy.fetch_latency(0x4000_0000)
        stats = hierarchy.statistics()
        for key in ("l1d_miss_rate", "l1i_miss_rate", "l2_miss_rate", "dtlb_miss_rate"):
            assert key in stats

    def test_flush_resets_contents(self):
        hierarchy = MemoryHierarchy()
        hierarchy.load_latency(0x6000_0000)
        hierarchy.flush()
        assert not hierarchy.l1d.lookup(0x6000_0000)
