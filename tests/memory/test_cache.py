"""Tests for the set-associative cache model."""

import pytest

from repro.memory.cache import Cache, CacheConfig


def _small_cache(**overrides):
    params = dict(
        name="test",
        size_bytes=1024,
        associativity=2,
        block_bytes=64,
        hit_latency=2,
        primary_misses=4,
    )
    params.update(overrides)
    return Cache(CacheConfig(**params))


class TestCacheBasics:
    def test_first_access_misses(self):
        cache = _small_cache()
        result = cache.access(0x1000)
        assert not result.hit
        assert result.fill_address == 0x1000

    def test_second_access_hits(self):
        cache = _small_cache()
        cache.access(0x1000)
        assert cache.access(0x1000).hit
        assert cache.access(0x1010).hit  # same block

    def test_different_block_misses(self):
        cache = _small_cache()
        cache.access(0x1000)
        assert not cache.access(0x1040).hit

    def test_hit_latency(self):
        cache = _small_cache(hit_latency=3)
        cache.access(0x1000)
        assert cache.access(0x1000).latency == 3

    def test_lookup_has_no_side_effects(self):
        cache = _small_cache()
        assert not cache.lookup(0x1000)
        assert cache.stats.accesses == 0
        cache.access(0x1000)
        assert cache.lookup(0x1000)


class TestReplacement:
    def test_lru_eviction(self):
        # 1 KB, 2-way, 64 B blocks -> 8 sets; addresses 64*8 apart share a set.
        cache = _small_cache()
        set_stride = 64 * 8
        a, b, c = 0x0, set_stride, 2 * set_stride
        cache.access(a)
        cache.access(b)
        cache.access(a)      # a becomes MRU
        cache.access(c)      # evicts b (LRU)
        assert cache.lookup(a)
        assert not cache.lookup(b)
        assert cache.lookup(c)
        assert cache.stats.evictions == 1

    def test_associativity_bound(self):
        cache = _small_cache()
        set_stride = 64 * 8
        for i in range(10):
            cache.access(i * set_stride)
        for ways in cache._sets:
            assert len(ways) <= cache.config.associativity


class TestStatsAndConfig:
    def test_stats_accumulate(self):
        cache = _small_cache()
        cache.access(0x1000)
        cache.access(0x1000)
        cache.access(0x2000)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert 0.0 < cache.stats.hit_rate < 1.0
        assert abs(cache.stats.hit_rate + cache.stats.miss_rate - 1.0) < 1e-9

    def test_flush_clears_contents(self):
        cache = _small_cache()
        cache.access(0x1000)
        cache.flush()
        assert not cache.lookup(0x1000)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(name="bad", size_bytes=1000, associativity=3, block_bytes=64, hit_latency=1)

    def test_num_sets(self):
        config = CacheConfig(
            name="l1", size_bytes=64 * 1024, associativity=4, block_bytes=64, hit_latency=2
        )
        assert config.num_sets == 256

    def test_mshr_pressure_counted(self):
        cache = _small_cache(primary_misses=1)
        cache.note_outstanding(0x0, completion_cycle=1000)
        cache.access(0x10000, now=0)
        assert cache.stats.mshr_stalls >= 1
