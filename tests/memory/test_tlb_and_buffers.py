"""Tests for TLBs, write buffers and main memory."""

import pytest

from repro.memory.main_memory import MainMemory
from repro.memory.tlb import TLB, TLBConfig
from repro.memory.write_buffer import WriteBuffer


class TestTLB:
    def test_first_access_misses(self):
        tlb = TLB(TLBConfig(name="dtlb", entries=4, miss_penalty=10))
        assert tlb.access(0x10_0000) == 10

    def test_same_page_hits(self):
        tlb = TLB(TLBConfig(name="dtlb", entries=4, page_bytes=8192))
        tlb.access(0x10_0000)
        assert tlb.access(0x10_0008) == 0

    def test_capacity_eviction(self):
        tlb = TLB(TLBConfig(name="dtlb", entries=2, page_bytes=8192, miss_penalty=10))
        pages = [0x0, 0x2000, 0x4000]
        for p in pages:
            tlb.access(p)
        assert tlb.access(0x0) == 10  # evicted (LRU)

    def test_miss_rate(self):
        tlb = TLB(TLBConfig(name="itlb", entries=8))
        tlb.access(0x0)
        tlb.access(0x0)
        assert tlb.miss_rate == 0.5

    def test_flush(self):
        tlb = TLB(TLBConfig(name="dtlb", entries=8, miss_penalty=7))
        tlb.access(0x0)
        tlb.flush()
        assert tlb.access(0x0) == 7


class TestWriteBuffer:
    def test_accepts_until_full(self):
        buffer = WriteBuffer(entries=2, drain_interval=100)
        assert buffer.try_insert(0)
        assert buffer.try_insert(0)
        assert not buffer.try_insert(0)
        assert buffer.full_stalls == 1

    def test_drains_over_time(self):
        buffer = WriteBuffer(entries=1, drain_interval=4)
        assert buffer.try_insert(0)
        assert not buffer.try_insert(1)
        assert buffer.try_insert(10)  # drained by cycle 10

    def test_occupancy_tracking(self):
        buffer = WriteBuffer(entries=4, drain_interval=4)
        buffer.try_insert(0)
        buffer.try_insert(0)
        assert buffer.occupancy == 2

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            WriteBuffer(entries=0)


class TestMainMemory:
    def test_flat_latency(self):
        memory = MainMemory(latency=120)
        assert memory.access(0x1234) == 120
        assert memory.accesses == 1
