"""Equivalence guard: optimized vs reference implementations.

Every optimized component (the core's fast loop, the emulator's dispatch
cache, the array-backed predictor tables) keeps its original implementation
reachable behind the ``REPRO_OPT`` flag / explicit ``optimized=`` argument.
These tests run the tier-1 workloads through both and assert bit-identical
traces, IPC and misprediction counters.
"""

from __future__ import annotations

import pytest

from repro.emulator.executor import Emulator
from repro.emulator.trace import as_trace_pack, deserialize_trace, serialize_trace
from repro.emulator.tracepack import pack_supported
from repro.engine import BASELINE, IF_CONVERTED, ExecutionEngine, SchemeSpec
from repro.experiments.setup import FAST_PROFILE
from repro.pipeline.core import OutOfOrderCore

BENCHMARKS = list(FAST_PROFILE.benchmarks)
SCHEMES = ["conventional", "pep-pa", "predicate", "predicate-aware", "wish"]

requires_numpy = pytest.mark.skipif(
    not pack_supported(), reason="columnar packs require numpy"
)


@pytest.fixture(scope="module")
def engine():
    return ExecutionEngine(FAST_PROFILE, store=None)


def _dyn_state(dyn):
    """Comparable per-dynamic-instruction state (identity-free)."""
    state = dyn.__getstate__()
    return (state[0],) + state[2:] + (dyn.inst.uid,)


class TestEmulatorParity:
    @pytest.mark.parametrize("workload", BENCHMARKS)
    @pytest.mark.parametrize("flavour", [BASELINE, IF_CONVERTED])
    def test_dispatch_cache_traces_are_bit_identical(self, engine, workload, flavour):
        program = engine.build_binary(workload, flavour)
        budget = FAST_PROFILE.instructions_per_benchmark
        reference = list(Emulator(program, optimized=False).run(budget))
        optimized = list(Emulator(program, optimized=True).run(budget))
        assert len(reference) == len(optimized)
        for ref, opt in zip(reference, optimized):
            assert _dyn_state(ref) == _dyn_state(opt)


class TestCoreParity:
    @pytest.mark.parametrize("workload", BENCHMARKS)
    @pytest.mark.parametrize("scheme_kind", SCHEMES)
    @pytest.mark.parametrize("flavour", [BASELINE, IF_CONVERTED])
    def test_fast_loop_results_are_bit_identical(
        self, engine, workload, scheme_kind, flavour
    ):
        trace = engine.collect_trace(workload, flavour)
        spec = SchemeSpec.make(scheme_kind)
        reference = OutOfOrderCore(optimized=False).run(
            iter(trace), spec.build(), program_name=workload
        )
        optimized = OutOfOrderCore(optimized=True).run(
            iter(trace), spec.build(), program_name=workload
        )

        ref_metrics, opt_metrics = reference.metrics, optimized.metrics
        assert ref_metrics.cycles == opt_metrics.cycles
        assert ref_metrics.ipc == opt_metrics.ipc
        assert ref_metrics.summary() == opt_metrics.summary()
        assert ref_metrics.fu_utilisation == opt_metrics.fu_utilisation
        assert ref_metrics.counters.as_dict() == opt_metrics.counters.as_dict()
        assert ref_metrics.memory_stats == opt_metrics.memory_stats

        ref_acc, opt_acc = reference.accuracy, optimized.accuracy
        assert ref_acc.branches == opt_acc.branches
        assert ref_acc.mispredictions == opt_acc.mispredictions
        assert ref_acc.records == opt_acc.records

    def test_selective_predication_options_match(self, engine):
        """The predicate scheme's rename speculation (cancel/assume-true and
        the predicate-flush path) must behave identically in both loops."""
        trace = engine.collect_trace("gzip", IF_CONVERTED)
        spec = SchemeSpec.make("predicate", selective_predication=True)
        reference = OutOfOrderCore(optimized=False).run(iter(trace), spec.build())
        optimized = OutOfOrderCore(optimized=True).run(iter(trace), spec.build())
        for field in ("cancelled_at_rename", "assume_true_predicated",
                      "conservative_predicated", "predicate_flushes"):
            assert getattr(reference.metrics, field) == getattr(optimized.metrics, field)
        assert reference.metrics.summary() == optimized.metrics.summary()

    @pytest.mark.parametrize("scheme_kind", ["conventional", "predicate", "wish"])
    def test_tage_second_level_matches(self, engine, scheme_kind):
        """Every scheme taking a TAGE second level stays loop-parity clean."""
        trace = engine.collect_trace("gzip", IF_CONVERTED)
        spec = SchemeSpec.make(scheme_kind, second_level="tage")
        reference = OutOfOrderCore(optimized=False).run(iter(trace), spec.build())
        optimized = OutOfOrderCore(optimized=True).run(iter(trace), spec.build())
        assert reference.metrics.summary() == optimized.metrics.summary()
        assert (
            reference.metrics.counters.as_dict() == optimized.metrics.counters.as_dict()
        )
        assert reference.accuracy.records == optimized.accuracy.records

    def test_keep_uops_falls_back_to_reference(self, engine):
        trace = engine.collect_trace("gzip", IF_CONVERTED)
        result = OutOfOrderCore(optimized=True).run(
            iter(trace), SchemeSpec.make("conventional").build(), keep_uops=True
        )
        assert result.uops is not None
        assert len(result.uops) == result.metrics.committed_instructions


@requires_numpy
class TestTracePackParity:
    """The columnar trace path is bit-identical to the object path."""

    @pytest.fixture(scope="class")
    def engine(self):
        return ExecutionEngine(FAST_PROFILE, store=None)

    @pytest.mark.parametrize("workload", BENCHMARKS)
    @pytest.mark.parametrize("flavour", [BASELINE, IF_CONVERTED])
    def test_run_pack_traces_are_bit_identical(self, engine, workload, flavour):
        program = engine.build_binary(workload, flavour)
        budget = FAST_PROFILE.instructions_per_benchmark
        reference = list(Emulator(program, optimized=False).run(budget))
        pack = Emulator(program, optimized=True).run_pack(budget)
        assert len(pack) == len(reference)
        for ref, got in zip(reference, pack.to_dyninsts()):
            assert _dyn_state(ref) == _dyn_state(got)

    @pytest.mark.parametrize("workload", BENCHMARKS)
    @pytest.mark.parametrize("scheme_kind", SCHEMES)
    def test_cursor_driven_fast_loop_is_bit_identical(
        self, engine, workload, scheme_kind
    ):
        trace = engine.collect_trace(workload, IF_CONVERTED)
        pack = as_trace_pack(trace)
        objects = pack.to_dyninsts()
        spec = SchemeSpec.make(scheme_kind)

        from_pack = OutOfOrderCore(optimized=True).run(
            pack, spec.build(), program_name=workload
        )
        from_objects = OutOfOrderCore(optimized=True).run(
            iter(objects), spec.build(), program_name=workload
        )
        reference = OutOfOrderCore(optimized=False).run(
            pack, spec.build(), program_name=workload
        )
        for result in (from_objects, reference):
            assert from_pack.metrics.summary() == result.metrics.summary()
            assert from_pack.metrics.counters.as_dict() == result.metrics.counters.as_dict()
            assert from_pack.accuracy.mispredictions == result.accuracy.mispredictions
            assert from_pack.accuracy.records == result.accuracy.records

    def test_selective_predication_over_pack(self, engine):
        trace = engine.collect_trace("gzip", IF_CONVERTED)
        pack = as_trace_pack(trace)
        spec = SchemeSpec.make("predicate", selective_predication=True)
        from_pack = OutOfOrderCore(optimized=True).run(pack, spec.build())
        reference = OutOfOrderCore(optimized=False).run(pack, spec.build())
        assert from_pack.metrics.summary() == reference.metrics.summary()

    def test_store_codec_round_trip_preserves_results(self, engine):
        trace = engine.collect_trace("twolf", IF_CONVERTED)
        pack = as_trace_pack(trace)
        reloaded = deserialize_trace(serialize_trace(pack))
        spec = SchemeSpec.make("predicate")
        direct = OutOfOrderCore(optimized=True).run(pack, spec.build())
        from_disk = OutOfOrderCore(optimized=True).run(reloaded, spec.build())
        assert direct.metrics.summary() == from_disk.metrics.summary()
        assert direct.accuracy.mispredictions == from_disk.accuracy.mispredictions
