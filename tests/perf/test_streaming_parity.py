"""Streaming-scale differential harness: chunked, windowed, resumed, sampled.

Four contracts of the streaming trace layer, each tested differentially
against the plain scalar run:

* **Chunked = monolithic** — a trace split into RTP3 segments at *any*
  boundaries simulates bit-identically (IPC, misprediction counters,
  functional-unit utilisation, memory statistics) to the monolithic pack.
* **Windowed = straight-through** — driving the fast loop in windows of any
  size is the straight-through fold with pauses: bit-identical results.
* **Resumed = uninterrupted** — restoring a mid-trace checkpoint (pickled,
  as the artifact store does) and draining the rest reproduces the
  uninterrupted run exactly; at the engine level, a worker killed at a
  checkpoint write is retried and resumes to bit-identical results.
* **Sampled ≈ full** — sampled simulation is a *documented approximation*:
  cold predictor/cache state after skipped windows biases IPC downward.
  The bounds asserted here (and documented in ``docs/internals/traces.md``)
  are the empirical envelope at interval 2 with 1.5-2x margin.

Hypothesis drives the equalities over random (scheme, machine, window,
chunking) tuples; the engine tests pin checkpoint lifecycle and the
sampled-key cache discipline.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.emulator.tracepack import ChunkedTracePack, TracePack, pack_supported
from repro.engine import ArtifactStore, ExecutionEngine, IF_CONVERTED, SchemeSpec
from repro.engine.planner import (
    CellRequest,
    ExperimentDefinition,
    make_build_job,
    make_simulate_job,
    make_trace_job,
)
from repro.engine.store import CHECKPOINTS, RESULTS
from repro.experiments.setup import ExperimentProfile
from repro.pipeline.core import OutOfOrderCore
from repro.pipeline.machine import MachineSpec
from repro.pipeline.windowed import SamplingSpec, simulate_windowed

pytestmark = pytest.mark.skipif(
    not pack_supported(), reason="streaming trace path requires numpy"
)

INSTRUCTIONS = 2_000

SCHEME_SPECS = (
    SchemeSpec.make("conventional"),
    SchemeSpec.make("predicate"),
    SchemeSpec.make("pep-pa"),
    SchemeSpec.make("wish"),
    SchemeSpec.make("predicate-aware"),
    SchemeSpec.make("conventional", second_level="tage"),
)
MACHINES = (
    MachineSpec.make(),
    MachineSpec.make(rob_entries=32),
    MachineSpec.make(rob_entries=128),
)

#: Documented sampled-simulation error envelope (docs/internals/traces.md):
#: at interval 2 the empirical worst case over the scheme/benchmark matrix
#: is ~0.20 relative IPC error and ~5.3 points of misprediction rate; the
#: asserted bounds carry 1.5x margin.
SAMPLED_IPC_RELATIVE_BOUND = 0.30
SAMPLED_MISPREDICT_POINTS_BOUND = 8.0


def _profile(instructions=INSTRUCTIONS, benchmarks=("gzip",)):
    return ExperimentProfile(
        name="streaming-parity",
        instructions_per_benchmark=instructions,
        benchmarks=list(benchmarks),
        profile_budget=instructions,
    )


@pytest.fixture(scope="module")
def pack() -> TracePack:
    engine = ExecutionEngine(_profile(), store=None, oracle_stats=False)
    trace = engine.collect_trace("gzip", IF_CONVERTED)
    assert isinstance(trace, TracePack)
    return trace


@pytest.fixture(scope="module")
def scalar_reference(pack):
    """Memoised straight-through scalar results per (scheme, machine)."""
    memo = {}

    def reference(scheme_idx: int, machine_idx: int):
        key = (scheme_idx, machine_idx)
        if key not in memo:
            core = OutOfOrderCore(config=MACHINES[machine_idx].build_config())
            scheme = SCHEME_SPECS[scheme_idx].build()
            memo[key] = core.run(pack, scheme, program_name="gzip")
        return memo[key]

    return reference


def _assert_result_parity(expected, actual, context):
    assert actual.metrics.summary() == expected.metrics.summary(), context
    assert (
        actual.metrics.counters.as_dict() == expected.metrics.counters.as_dict()
    ), context
    assert actual.metrics.fu_utilisation == expected.metrics.fu_utilisation, context
    assert actual.metrics.memory_stats == expected.metrics.memory_stats, context
    assert actual.metrics.cycles == expected.metrics.cycles, context
    assert actual.accuracy.records == expected.accuracy.records, context


def _chunk(pack, sizes, via_bytes):
    """Split ``pack`` into segments of the (cycled) ``sizes`` row counts."""
    rows = pack.to_dyninsts()
    segments, start, pick = [], 0, 0
    while start < len(rows):
        size = sizes[pick % len(sizes)]
        pick += 1
        segments.append(TracePack.from_dyninsts(rows[start : start + size]))
        start += size
    chunked = ChunkedTracePack.from_segments(segments)
    if via_bytes:
        # Through the RTP3 codec: lazily-decoded blob-backed segments, the
        # exact shape the artifact store serves after a streamed ingest.
        chunked = ChunkedTracePack.from_bytes(chunked.to_bytes())
    return chunked


class TestChunkedVsMonolithic:
    @given(
        scheme_idx=st.integers(0, len(SCHEME_SPECS) - 1),
        machine_idx=st.integers(0, len(MACHINES) - 1),
        sizes=st.lists(st.integers(1, 900), min_size=1, max_size=5),
        via_bytes=st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_any_segmentation_is_bit_identical(
        self, pack, scalar_reference, scheme_idx, machine_idx, sizes, via_bytes
    ):
        chunked = _chunk(pack, sizes, via_bytes)
        assert len(chunked) == len(pack)
        core = OutOfOrderCore(config=MACHINES[machine_idx].build_config())
        result = core.run(chunked, SCHEME_SPECS[scheme_idx].build(), program_name="gzip")
        _assert_result_parity(
            scalar_reference(scheme_idx, machine_idx),
            result,
            (scheme_idx, machine_idx, sizes, via_bytes),
        )

    def test_engine_streamed_collection_is_bit_identical(self, tmp_path):
        """trace_segment_rows streams collection into an RTP3 store payload."""
        plain = ExecutionEngine(_profile(), store=None)
        expected = plain.simulate("gzip", IF_CONVERTED, SCHEME_SPECS[0])

        store = ArtifactStore(str(tmp_path / "store"))
        streaming = ExecutionEngine(_profile(), store=store, trace_segment_rows=700)
        trace = streaming.collect_trace("gzip", IF_CONVERTED)
        assert isinstance(trace, ChunkedTracePack)
        assert trace.segment_count >= 2
        actual = streaming.simulate("gzip", IF_CONVERTED, SCHEME_SPECS[0])
        _assert_result_parity(expected, actual, "streamed collection")


class TestWindowedParity:
    @given(
        scheme_idx=st.integers(0, len(SCHEME_SPECS) - 1),
        machine_idx=st.integers(0, len(MACHINES) - 1),
        window=st.integers(32, 900),
    )
    @settings(max_examples=10, deadline=None)
    def test_any_window_size_is_bit_identical(
        self, pack, scalar_reference, scheme_idx, machine_idx, window
    ):
        core = OutOfOrderCore(config=MACHINES[machine_idx].build_config())
        result = simulate_windowed(
            core,
            pack,
            SCHEME_SPECS[scheme_idx].build(),
            "gzip",
            window_rows=window,
        )
        _assert_result_parity(
            scalar_reference(scheme_idx, machine_idx),
            result,
            (scheme_idx, machine_idx, window),
        )

    @given(
        scheme_idx=st.integers(0, len(SCHEME_SPECS) - 1),
        window=st.integers(128, 900),
        chunk_rows=st.integers(100, 1_100),
        resume_at=st.floats(0.0, 0.999),
    )
    @settings(max_examples=8, deadline=None)
    def test_resume_from_any_checkpoint_is_bit_identical(
        self, pack, scalar_reference, scheme_idx, window, chunk_rows, resume_at
    ):
        """Pickled mid-trace checkpoints resume exactly — chunked trace too."""
        trace = _chunk(pack, [chunk_rows], via_bytes=True)
        blobs = []
        core = OutOfOrderCore()
        first = simulate_windowed(
            core,
            trace,
            SCHEME_SPECS[scheme_idx].build(),
            "gzip",
            window_rows=window,
            # Pickle immediately: the live state keeps evolving, exactly as
            # a store write would capture it.
            on_checkpoint=lambda ckpt: blobs.append(
                pickle.dumps(ckpt, protocol=pickle.HIGHEST_PROTOCOL)
            ),
        )
        _assert_result_parity(
            scalar_reference(scheme_idx, 0), first, "windowed over chunked"
        )
        assert blobs, "windowed run over multiple windows must checkpoint"

        checkpoint = pickle.loads(blobs[int(resume_at * len(blobs))])
        resumed = simulate_windowed(
            OutOfOrderCore(),
            trace,
            SCHEME_SPECS[scheme_idx].build(),
            "gzip",
            window_rows=window,
            checkpoint=checkpoint,
        )
        _assert_result_parity(
            scalar_reference(scheme_idx, 0),
            resumed,
            (scheme_idx, window, chunk_rows, checkpoint.rows_done),
        )


class TestSampledApproximation:
    @pytest.mark.parametrize("scheme_idx", range(len(SCHEME_SPECS)))
    def test_sampled_within_documented_error_bound(
        self, pack, scalar_reference, scheme_idx
    ):
        full = scalar_reference(scheme_idx, 0)
        sampling = SamplingSpec(interval=2, window=512, warmup=128)
        sampled = simulate_windowed(
            OutOfOrderCore(),
            pack,
            SCHEME_SPECS[scheme_idx].build(),
            "gzip",
            sampling=sampling,
        )
        # The result is flagged, and only measured rows reach the counters.
        assert sampled.sampling == sampling
        assert (
            sampled.metrics.committed_instructions
            < full.metrics.committed_instructions
        )
        relative = abs(sampled.metrics.ipc - full.metrics.ipc) / full.metrics.ipc
        assert relative < SAMPLED_IPC_RELATIVE_BOUND, (
            sampled.metrics.ipc,
            full.metrics.ipc,
        )
        points = 100.0 * abs(
            sampled.accuracy.misprediction_rate - full.accuracy.misprediction_rate
        )
        assert points < SAMPLED_MISPREDICT_POINTS_BOUND, (
            sampled.accuracy.misprediction_rate,
            full.accuracy.misprediction_rate,
        )

    def test_interval_one_is_bit_identical(self, pack, scalar_reference):
        """interval=1 degenerates to a full windowed run — exact, not approximate."""
        result = simulate_windowed(
            OutOfOrderCore(),
            pack,
            SCHEME_SPECS[0].build(),
            "gzip",
            sampling=SamplingSpec(interval=1, window=256),
        )
        expected = scalar_reference(0, 0)
        assert result.metrics.summary() == expected.metrics.summary()
        assert result.metrics.cycles == expected.metrics.cycles
        assert result.sampling is not None


# ----------------------------------------------------------------------
# Engine-level checkpoint lifecycle and fault-driven resume
# ----------------------------------------------------------------------
@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    monkeypatch.delenv(faults.FAULTS_STATE_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture
def activate_faults(monkeypatch, tmp_path):
    def _activate(spec: str) -> None:
        monkeypatch.setenv(faults.FAULTS_ENV, spec)
        monkeypatch.setenv(faults.FAULTS_STATE_ENV, str(tmp_path / "fault-state"))
        faults.reset()

    return _activate


def _cells_definition():
    requests = [
        CellRequest("gzip", IF_CONVERTED, "conventional", SCHEME_SPECS[0]),
        CellRequest("gzip", IF_CONVERTED, "predicate", SCHEME_SPECS[1]),
        CellRequest("twolf", IF_CONVERTED, "conventional", SCHEME_SPECS[0]),
        CellRequest("twolf", IF_CONVERTED, "predicate", SCHEME_SPECS[1]),
    ]
    return ExperimentDefinition(name="streaming-kill", requests=requests)


KILL_PROFILE_INSTRUCTIONS = 1_200


class TestEngineCheckpointing:
    def test_kill_at_checkpoint_resumes_bit_identical(
        self, activate_faults, tmp_path
    ):
        """A worker killed at a checkpoint write retries and resumes mid-trace."""
        profile = _profile(KILL_PROFILE_INSTRUCTIONS, ("gzip", "twolf"))
        definition = _cells_definition()
        clean = ExecutionEngine(profile, store=None).run([definition])

        activate_faults(f"{faults.KILL_CHECKPOINT}:2")
        store = ArtifactStore(str(tmp_path / "cache"))
        engine = ExecutionEngine(profile, store=store, jobs=2, checkpoint_every=300)
        outputs = engine.run([definition])

        assert engine.stats.workers_lost >= 1
        assert engine.stats.jobs_retried >= 1
        assert engine.stats.checkpoints_written >= 1
        assert engine.stats.checkpoints_resumed >= 1
        for slot, result in clean[definition.name].items():
            actual = outputs[definition.name][slot]
            assert actual.metrics.summary() == result.metrics.summary(), slot
            assert (
                actual.metrics.counters.as_dict()
                == result.metrics.counters.as_dict()
            ), slot
        # Success consumes every checkpoint: nothing left to resume from.
        assert store.entries(CHECKPOINTS) == []

    def test_serial_checkpointing_is_transparent_and_discarded(self, tmp_path):
        profile = _profile()
        plain = ExecutionEngine(profile, store=None)
        expected = plain.simulate("gzip", IF_CONVERTED, SCHEME_SPECS[1])

        store = ArtifactStore(str(tmp_path / "cache"))
        engine = ExecutionEngine(profile, store=store, checkpoint_every=400)
        actual = engine.simulate("gzip", IF_CONVERTED, SCHEME_SPECS[1])
        _assert_result_parity(expected, actual, "serial checkpointing")
        assert engine.stats.checkpoints_written >= 2
        assert engine.stats.checkpoints_resumed == 0
        assert "checkpoints" in engine.stats.render()
        assert store.entries(CHECKPOINTS) == []

    def test_sampled_results_live_under_their_own_key(self, tmp_path):
        profile = _profile()
        engine = ExecutionEngine(
            profile, store=ArtifactStore(str(tmp_path / "cache"))
        )
        sampling = SamplingSpec(interval=2, window=256, warmup=64)
        full = engine.simulate("gzip", IF_CONVERTED, SCHEME_SPECS[0])
        sampled = engine.simulate(
            "gzip", IF_CONVERTED, SCHEME_SPECS[0], sampling=sampling
        )
        assert sampled.sampling == sampling
        assert sampled.metrics.summary() != full.metrics.summary()
        assert len(engine.store.entries(RESULTS)) == 2

        # A fresh engine over the same store serves each request its own
        # artifact — the sampled approximation can never shadow the exact one.
        reload_engine = ExecutionEngine(profile, store=engine.store)
        assert (
            reload_engine.simulate(
                "gzip", IF_CONVERTED, SCHEME_SPECS[0]
            ).metrics.summary()
            == full.metrics.summary()
        )
        assert reload_engine.stats.simulations_run == 0

    def test_sampling_folds_into_the_job_key_only_when_set(self):
        engine = ExecutionEngine(_profile(), store=None)
        build = make_build_job("gzip", IF_CONVERTED, engine.factory)
        trace = make_trace_job(build, INSTRUCTIONS)
        bare = make_simulate_job(trace, SCHEME_SPECS[0])
        sampled = make_simulate_job(
            trace, SCHEME_SPECS[0], None, SamplingSpec(interval=2)
        )
        assert bare.key != sampled.key
        # Absent sampling leaves the historical key unchanged.
        assert bare.key == make_simulate_job(trace, SCHEME_SPECS[0], None, None).key
