"""The lane-batched kernel: bit-exact parity, engine transparency, timing.

The batched path's contract is *bit-identical results*: a lane of a batched
launch must reproduce the scalar engine's IPC, misprediction counters,
functional-unit utilisation and per-branch records exactly, for any mix of
schemes, machine overrides and lane counts.  The hypothesis suite below
drives that over random lane sets; the engine tests pin the caching
contract (batches are an execution grouping, not a cache identity) and the
equal-share wall-clock attribution.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.emulator.tracepack import TracePack, pack_supported
from repro.engine import ArtifactStore, ExecutionEngine, IF_CONVERTED, SchemeSpec
from repro.engine.planner import (
    CellRequest,
    ExperimentDefinition,
    make_batched_simulate_job,
    make_build_job,
    make_simulate_job,
    make_trace_job,
)
from repro.experiments.setup import ExperimentProfile
from repro.perf import bench
from repro.pipeline.batched import (
    LaneSpec,
    _drive_bank,
    _drive_scheme_stream,
    _SharedTrace,
    simulate_lanes,
    stream_eligible,
)
from repro.pipeline.core import OutOfOrderCore
from repro.pipeline.machine import MachineSpec
from repro.predictors.batched import lane_bank_supported

pytestmark = pytest.mark.skipif(
    not pack_supported(), reason="columnar trace path requires numpy"
)

INSTRUCTIONS = 2_000

#: The lane alphabet the random batches draw from: every scheme kind
#: (stream-eligible and hook-driven) crossed with machine overrides.
SCHEME_SPECS = (
    SchemeSpec.make("conventional"),
    SchemeSpec.make("predicate"),
    SchemeSpec.make("pep-pa"),
    SchemeSpec.make("conventional", perfect_history=True),
    SchemeSpec.make("wish"),
    SchemeSpec.make("predicate-aware"),
    SchemeSpec.make("conventional", second_level="tage"),
)
MACHINES = (
    MachineSpec.make(),
    MachineSpec.make(rob_entries=32),
    MachineSpec.make(rob_entries=64),
    MachineSpec.make(rob_entries=128),
)


def _profile() -> ExperimentProfile:
    return ExperimentProfile(
        name="batch-parity",
        instructions_per_benchmark=INSTRUCTIONS,
        benchmarks=["gzip"],
        profile_budget=INSTRUCTIONS,
    )


@pytest.fixture(scope="module")
def pack() -> TracePack:
    engine = ExecutionEngine(_profile(), store=None, oracle_stats=False)
    trace = engine.collect_trace("gzip", IF_CONVERTED)
    assert isinstance(trace, TracePack)
    return trace


@pytest.fixture(scope="module")
def scalar_reference(pack):
    """Memoised scalar results per (scheme, machine) lane combination."""
    memo = {}

    def reference(scheme_idx: int, machine_idx: int):
        key = (scheme_idx, machine_idx)
        if key not in memo:
            core = OutOfOrderCore(config=MACHINES[machine_idx].build_config())
            scheme = SCHEME_SPECS[scheme_idx].build()
            memo[key] = core.run(pack, scheme, program_name="gzip")
        return memo[key]

    return reference


def _assert_result_parity(expected, actual, context):
    assert actual.metrics.summary() == expected.metrics.summary(), context
    assert (
        actual.metrics.counters.as_dict() == expected.metrics.counters.as_dict()
    ), context
    assert actual.metrics.fu_utilisation == expected.metrics.fu_utilisation, context
    assert actual.metrics.memory_stats == expected.metrics.memory_stats, context
    assert actual.metrics.cycles == expected.metrics.cycles, context
    assert actual.accuracy.records == expected.accuracy.records, context


class TestBatchedScalarParity:
    @given(
        lane_picks=st.lists(
            st.tuples(
                st.integers(0, len(SCHEME_SPECS) - 1),
                st.integers(0, len(MACHINES) - 1),
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=12, deadline=None)
    def test_random_lane_sets_are_bit_identical(
        self, pack, scalar_reference, lane_picks
    ):
        lanes = [
            LaneSpec(
                scheme_factory=SCHEME_SPECS[s].build,
                config=MACHINES[m].build_config(),
                group_key=SCHEME_SPECS[s],
            )
            for s, m in lane_picks
        ]
        results = simulate_lanes(pack, lanes, program_name="gzip")
        assert len(results) == len(lane_picks)
        for (s, m), result in zip(lane_picks, results):
            _assert_result_parity(
                scalar_reference(s, m),
                result,
                (SCHEME_SPECS[s].describe(), MACHINES[m].describe()),
            )

    def test_stream_eligibility_split(self):
        assert stream_eligible(SCHEME_SPECS[0].build())
        assert not stream_eligible(SCHEME_SPECS[1].build())  # predicate hooks
        assert not stream_eligible(SCHEME_SPECS[2].build())  # pep-pa hooks
        # wish reads rename-vs-guard-ready cycles: timing-dependent hook lane.
        assert not stream_eligible(SCHEME_SPECS[4].build())
        # predicate-aware is timing-independent but folds compare results
        # through an overridden compare hook: hook lane, not stream lane.
        assert not stream_eligible(SCHEME_SPECS[5].build())
        # A TAGE second level changes only the backend, not the hook shape:
        # the conventional scheme stays a stream lane.
        assert stream_eligible(SCHEME_SPECS[6].build())


class TestLaneBank:
    def test_bank_streams_match_scalar_stream_drive(self, pack):
        if not lane_bank_supported():
            pytest.skip("lane bank requires numpy")
        shared = _SharedTrace(pack)
        spec = SchemeSpec.make("conventional")
        profile = spec.build().lane_bank_profile()
        assert profile is not None
        reference = _drive_scheme_stream(spec.build(), shared)
        bank_schemes = [spec.build() for _ in range(4)]
        streams = _drive_bank(profile, bank_schemes, shared)
        assert len(streams) == 4
        for stream in streams:
            # Same spec in every bank lane -> every lane must evolve exactly
            # as the scalar scheme's own hooks did.
            assert stream.overrides == reference.overrides
            assert stream.mispreds == reference.mispreds
            assert stream.records == reference.records


def _rob_sweep_definition(points=(32, 64, 128, 256)):
    spec = SchemeSpec.make("conventional")
    requests = [
        CellRequest(
            "gzip",
            IF_CONVERTED,
            f"rob{size}",
            spec,
            MachineSpec.make(rob_entries=size),
        )
        for size in points
    ]
    return ExperimentDefinition(name="rob-sweep", requests=requests)


class TestEngineBatching:
    def test_sweep_rerun_batches_zero_cached_cells(self, tmp_path):
        store_root = str(tmp_path / "store")
        definition = _rob_sweep_definition()
        first = ExecutionEngine(_profile(), store=ArtifactStore(store_root))
        outputs = first.run([definition])
        assert first.stats.batches_run == 1
        assert first.stats.batched_lanes == 4
        assert first.stats.simulations_run == 4

        second = ExecutionEngine(_profile(), store=ArtifactStore(store_root))
        rerun = second.run([definition])
        # The cache proof, batch-transparent: nothing re-simulated, nothing
        # batched, every result served under its per-cell key.
        assert second.stats.simulations_run == 0
        assert second.stats.batches_run == 0
        assert second.stats.batched_lanes == 0
        assert second.stats.results_loaded == 4
        for slot, result in outputs[definition.name].items():
            assert (
                rerun[definition.name][slot].metrics.summary()
                == result.metrics.summary()
            )

    def test_partially_cached_sweep_batches_only_the_misses(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        definition = _rob_sweep_definition()
        warm = ExecutionEngine(_profile(), store=store)
        first_request = definition.requests[0]
        warm.simulate(
            first_request.benchmark,
            first_request.flavour,
            first_request.scheme,
            first_request.machine,
        )
        engine = ExecutionEngine(_profile(), store=store)
        engine.run([definition])
        # The cached lane dropped out before launch; the other three batched.
        assert engine.stats.results_loaded == 1
        assert engine.stats.batched_lanes == 3
        assert engine.stats.simulations_run == 3

    def test_batch_results_identical_to_unbatched_engine_run(self, tmp_path):
        definition = _rob_sweep_definition()
        batched = ExecutionEngine(_profile(), store=None)
        batched_out = batched.run([definition])
        assert batched.stats.batches_run == 1
        scalar = ExecutionEngine(_profile(), store=None)
        for request in definition.requests:
            expected = scalar.simulate(
                request.benchmark, request.flavour, request.scheme, request.machine
            )
            actual = batched_out[definition.name][(request.benchmark, request.label)]
            _assert_result_parity(expected, actual, request.label)

    def test_per_cell_keys_do_not_depend_on_batching(self):
        # The batch job derives its own bookkeeping key from the lane keys,
        # but each lane's artifact key is exactly the per-cell simulate key.
        profile = _profile()
        engine = ExecutionEngine(profile, store=None)
        build = make_build_job("gzip", IF_CONVERTED, engine.factory)
        trace = make_trace_job(build, profile.instructions_per_benchmark)
        jobs = [
            make_simulate_job(trace, SchemeSpec.make("conventional"), machine)
            for machine in MACHINES[:3]
        ]
        batch = make_batched_simulate_job(jobs)
        assert [lane.key for lane in batch.lanes] == [job.key for job in jobs]
        assert batch.key not in {job.key for job in jobs}

    def test_mixed_cell_batches_refused(self):
        profile = _profile()
        engine = ExecutionEngine(profile, store=None)
        spec = SchemeSpec.make("conventional")
        gzip_build = make_build_job("gzip", IF_CONVERTED, engine.factory)
        twolf_build = make_build_job("twolf", IF_CONVERTED, engine.factory)
        jobs = [
            make_simulate_job(make_trace_job(gzip_build, INSTRUCTIONS), spec),
            make_simulate_job(make_trace_job(twolf_build, INSTRUCTIONS), spec),
        ]
        with pytest.raises(ValueError, match="share one"):
            make_batched_simulate_job(jobs)


class TestTimingAttribution:
    def test_batched_jobs_get_equal_share_of_the_batch_wall_clock(self):
        engine = ExecutionEngine(_profile(), store=None)
        engine.run([_rob_sweep_definition()])
        timings = [t for t in engine.job_timings if not t.cached]
        assert len(timings) == 4
        assert all(timing.lanes == 4 for timing in timings)
        shares = {timing.seconds for timing in timings}
        assert len(shares) == 1  # an equal split, by construction
        total = sum(timing.seconds for timing in timings)
        assert total == pytest.approx(engine.stats.simulate_seconds)
        assert all(timing.instructions_per_second() > 0 for timing in timings)

    def test_unbatched_jobs_report_one_lane(self):
        engine = ExecutionEngine(_profile(), store=None)
        engine.simulate("gzip", IF_CONVERTED, SchemeSpec.make("conventional"))
        assert [timing.lanes for timing in engine.job_timings] == [1]


class TestBenchFilterListsBatchCells:
    def test_zero_match_filter_exits_nonzero_listing_cells(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--quick", "--no-write", "--filter", "no-such-cell"])
        message = str(excinfo.value)
        assert excinfo.value.code != 0
        assert "no bench cells match" in message
        # The listing names every quick cell, batch cells included.
        for cell in bench.QUICK_BATCH_CELLS:
            assert cell.label() in message

    def test_filter_selects_batch_cells(self):
        selected = bench.filter_cells(bench.QUICK_CELLS, "batch:")
        assert [cell.label() for cell in selected] == [
            cell.label() for cell in bench.QUICK_BATCH_CELLS
        ]
