"""The bench harness, the regression gate and the CLI entry points."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.engine import IF_CONVERTED, ArtifactStore, ExecutionEngine, SchemeSpec
from repro.experiments.setup import ExperimentProfile
from repro.perf import bench, flags
from repro.perf.compare import compare_reports, throughput_score
from repro.perf.report import render_speedup, render_table

TINY_CELLS = (bench.BenchCell("gzip", IF_CONVERTED, "conventional"),)


@pytest.fixture(scope="module")
def tiny_report():
    return bench.run_bench(
        quick=True, instructions=3_000, cells=TINY_CELLS, optimized=True
    )


class TestFlags:
    def test_default_is_optimized(self, monkeypatch):
        monkeypatch.delenv(flags.OPT_ENV_VAR, raising=False)
        assert flags.optimizations_enabled()
        assert flags.resolve_optimized(None) is True

    @pytest.mark.parametrize("value", ["0", "false", "OFF", "legacy", " no "])
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv(flags.OPT_ENV_VAR, value)
        assert not flags.optimizations_enabled()

    def test_explicit_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv(flags.OPT_ENV_VAR, "0")
        assert flags.resolve_optimized(True) is True

    def test_forced_restores_previous_value(self, monkeypatch):
        monkeypatch.setenv(flags.OPT_ENV_VAR, "0")
        with flags.forced(True):
            assert flags.optimizations_enabled()
        assert not flags.optimizations_enabled()


class TestRunBench:
    def test_report_shape(self, tiny_report):
        report = tiny_report
        assert report["schema"] == bench.SCHEMA
        assert report["optimized"] is True
        assert report["calibration_mops"] > 0
        assert len(report["cells"]) == 1
        cell = report["cells"][0]
        assert cell["benchmark"] == "gzip"
        assert cell["instructions"] == 3_000
        assert cell["cycles"] > 0
        assert cell["sim_seconds"] > 0
        assert cell["sim_instructions_per_second"] > 0
        aggregate = report["aggregate"]
        assert aggregate["total_instructions"] == 3_000
        assert aggregate["instructions_per_second"] > 0
        assert aggregate["normalized_score"] > 0

    def test_trace_metrics_present(self, tiny_report):
        cell = tiny_report["cells"][0]
        assert cell["trace_instructions"] == 3_000
        assert cell["trace_seconds"] > 0
        assert cell["trace_instructions_per_second"] > 0
        assert cell["trace_disk_bytes"] > 0
        assert cell["trace_peak_alloc_bytes"] > 0
        aggregate = tiny_report["aggregate"]
        assert aggregate["total_trace_disk_bytes"] == cell["trace_disk_bytes"]
        assert aggregate["trace_instructions_per_second"] > 0
        assert aggregate["peak_trace_alloc_bytes"] == cell["trace_peak_alloc_bytes"]

    def test_write_and_load_roundtrip(self, tiny_report, tmp_path):
        path = bench.write_report(tiny_report, str(tmp_path / "sub" / "bench.json"))
        assert bench.load_report(path)["schema"] == bench.SCHEMA

    def test_default_output_path_uses_revision(self, tiny_report):
        path = bench.default_output_path(tiny_report, directory="/tmp")
        assert path == f"/tmp/BENCH_{tiny_report['revision']}.json"

    def test_render_table_mentions_every_cell(self, tiny_report):
        table = render_table(tiny_report)
        assert "gzip" in table
        assert "aggregate:" in table
        assert "calibration" in table

    def test_render_speedup_reports_ratio(self, tiny_report):
        slower = json.loads(json.dumps(tiny_report))
        for cell in slower["cells"]:
            cell["sim_instructions_per_second"] /= 2
        slower["aggregate"]["instructions_per_second"] /= 2
        text = render_speedup(slower, tiny_report)
        assert "2.00x" in text


class TestCellFilter:
    def test_filter_selects_matching_cells(self):
        selected = bench.filter_cells(bench.QUICK_CELLS, "predicate")
        assert selected
        assert all("predicate" in cell.label() for cell in selected)

    def test_filter_matches_full_label_components(self):
        selected = bench.filter_cells(bench.QUICK_CELLS, "twolf/baseline")
        assert [cell.label() for cell in selected] == ["twolf/baseline/conventional"]

    def test_empty_filter_keeps_everything(self):
        assert bench.filter_cells(bench.QUICK_CELLS, None) == bench.QUICK_CELLS
        assert bench.filter_cells(bench.QUICK_CELLS, "") == bench.QUICK_CELLS

    def test_unmatched_filter_raises(self):
        with pytest.raises(ValueError, match="no bench cells match"):
            bench.filter_cells(bench.QUICK_CELLS, "no-such-cell")

    def test_run_bench_records_filter(self):
        report = bench.run_bench(
            quick=True, instructions=2_000, cell_filter="twolf/baseline"
        )
        assert report["filter"] == "twolf/baseline"
        assert len(report["cells"]) == 1
        assert report["cells"][0]["benchmark"] == "twolf"


class TestIngestCell:
    @pytest.fixture(scope="class")
    def ingest_report(self):
        cells = (bench.IngestBenchCell("synthetic", 5_000),)
        return bench.run_bench(quick=True, cells=cells, optimized=True)

    def test_ingest_cell_reports_through_trace_columns(self, ingest_report):
        (cell,) = ingest_report["cells"]
        assert cell["scheme"] == "ingest:synthetic-x5000"
        assert cell["ingest_lines"] == 5_000
        assert cell["trace_instructions"] == 5_000
        assert cell["trace_seconds"] > 0
        assert cell["trace_instructions_per_second"] > 0
        assert cell["trace_disk_bytes"] > 0
        assert cell["trace_peak_alloc_bytes"] > 0
        # No simulation ran: nothing leaks into the gated sim aggregate.
        assert cell["instructions"] == 0 and cell["sim_seconds"] == 0.0
        assert ingest_report["aggregate"]["total_instructions"] == 0

    def test_ingest_trajectory_lands_in_the_history_row(self, ingest_report):
        row = bench.history_row(ingest_report)
        assert row["ingest_lines_per_second"] > 0
        assert row["ingest_peak_alloc_bytes"] > 0

    def test_quick_suite_carries_one_ingest_cell(self):
        ingest = [
            cell
            for cell in bench.QUICK_CELLS
            if isinstance(cell, bench.IngestBenchCell)
        ]
        assert len(ingest) == 1
        assert "ingest:" in ingest[0].label()

    def test_render_table_handles_ingest_rows(self, ingest_report):
        table = render_table(ingest_report)
        assert "ingest:synthetic-x5000" in table


class TestHistory:
    def test_append_history_writes_jsonl_rows(self, tiny_report, tmp_path):
        directory = str(tmp_path / "history")
        path = bench.append_history(tiny_report, directory)
        bench.append_history(tiny_report, directory)
        with open(path, "r", encoding="utf-8") as handle:
            rows = [json.loads(line) for line in handle]
        assert len(rows) == 2
        assert rows[0]["revision"] == tiny_report["revision"]
        assert rows[0]["normalized_score"] == pytest.approx(
            tiny_report["aggregate"]["normalized_score"]
        )
        assert rows[0]["total_trace_disk_bytes"] > 0
        # Filtered runs must be distinguishable in the trajectory.
        assert rows[0]["filter"] is None
        assert rows[0]["cell_count"] == len(tiny_report["cells"])
        assert path.endswith("quick.jsonl")


class TestRegressionGate:
    def _report(self, ips, calibration=20.0):
        return {
            "revision": "test",
            "calibration_mops": calibration,
            "aggregate": {"instructions_per_second": ips},
        }

    def test_equal_reports_pass(self):
        ok, _ = compare_reports(self._report(100e3), self._report(100e3))
        assert ok

    def test_injected_30_percent_slowdown_fails(self):
        ok, lines = compare_reports(
            self._report(70e3), self._report(100e3), max_regression=0.25
        )
        assert not ok
        assert any("FAILED" in line for line in lines)

    def test_20_percent_slowdown_passes_at_default_threshold(self):
        ok, _ = compare_reports(self._report(80e3), self._report(100e3))
        assert ok

    def test_normalization_forgives_a_uniformly_slower_machine(self):
        # Same work on a machine half as fast: raw inst/s halves, but so
        # does the calibration -> normalized score is unchanged.
        fast_machine = self._report(100e3, calibration=20.0)
        slow_machine = self._report(50e3, calibration=10.0)
        score_fast, kind = throughput_score(fast_machine)
        score_slow, _ = throughput_score(slow_machine)
        assert kind == "normalized"
        assert score_fast == pytest.approx(score_slow)
        ok, _ = compare_reports(slow_machine, fast_machine)
        assert ok

    def test_falls_back_to_raw_when_calibration_missing(self):
        without = self._report(70e3, calibration=0.0)
        ok, _ = compare_reports(without, self._report(100e3))
        assert not ok

    def test_zero_baseline_skips_gate(self):
        ok, lines = compare_reports(self._report(100e3), self._report(0.0))
        assert ok
        assert any("skipped" in line for line in lines)

    def _report_with_traces(self, ips, trace_bytes):
        report = self._report(ips)
        report["aggregate"]["total_trace_disk_bytes"] = trace_bytes
        return report

    def test_trace_size_growth_fails(self):
        ok, lines = compare_reports(
            self._report_with_traces(100e3, 200_000),
            self._report_with_traces(100e3, 100_000),
            max_regression=0.25,
        )
        assert not ok
        assert any("trace-size gate FAILED" in line for line in lines)

    def test_trace_size_within_tolerance_passes(self):
        ok, lines = compare_reports(
            self._report_with_traces(100e3, 110_000),
            self._report_with_traces(100e3, 100_000),
            max_regression=0.25,
        )
        assert ok
        assert any("trace-size gate PASSED" in line for line in lines)

    def test_trace_size_shrink_passes(self):
        ok, _ = compare_reports(
            self._report_with_traces(100e3, 40_000),
            self._report_with_traces(100e3, 480_000),
        )
        assert ok

    def test_missing_trace_bytes_skips_size_gate(self):
        # v1 baseline reports carry no trace-size aggregate.
        ok, lines = compare_reports(
            self._report_with_traces(100e3, 40_000), self._report(100e3)
        )
        assert ok
        assert not any("trace-size" in line for line in lines)


class TestBenchCli:
    @pytest.fixture(autouse=True)
    def _tiny_suite(self, monkeypatch):
        monkeypatch.setattr(bench, "QUICK_CELLS", TINY_CELLS)
        monkeypatch.setattr(bench, "QUICK_INSTRUCTIONS", 2_000)

    def test_bench_quick_writes_report(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "aggregate:" in out
        written = [name for name in os.listdir(tmp_path) if name.startswith("BENCH_")]
        assert len(written) == 1
        report = bench.load_report(str(tmp_path / written[0]))
        assert report["suite"] == "quick"

    def test_bench_check_passes_against_its_own_output(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main(["bench", "--quick", "--output", baseline]) == 0
        capsys.readouterr()
        # Tiny budgets make wall-clock noisy; the gate plumbing is what is
        # under test here, so tolerate a large regression.
        assert (
            main(
                ["bench", "--quick", "--no-write", "--check", baseline,
                 "--max-regression", "0.9"]
            )
            == 0
        )
        assert "PASSED" in capsys.readouterr().out

    def test_bench_check_refuses_legacy(self, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        assert main(["bench", "--quick", "--output", baseline]) == 0
        with pytest.raises(SystemExit, match="--legacy"):
            main(["bench", "--quick", "--no-write", "--legacy", "--check", baseline])

    def test_bench_check_fails_on_inflated_baseline(self, tmp_path, capsys):
        path = str(tmp_path / "inflated.json")
        report = bench.run_bench(quick=True)
        # Pretend the baseline machine-normalized score was 10x better.
        report["aggregate"]["instructions_per_second"] *= 10
        bench.write_report(report, path)
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--quick", "--no-write", "--check", path])
        assert "FAILED" in str(excinfo.value)

    def test_bench_legacy_flag_records_reference_mode(self, tmp_path, capsys):
        path = str(tmp_path / "legacy.json")
        assert main(["bench", "--quick", "--legacy", "--output", path]) == 0
        assert bench.load_report(path)["optimized"] is False

    def test_bench_filter_unmatched_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no bench cells match"):
            main(["bench", "--quick", "--no-write", "--filter", "no-such-cell"])

    def test_bench_check_refuses_filter(self, tmp_path):
        # A cell subset must not be gated against the full-suite baseline.
        baseline = str(tmp_path / "baseline.json")
        assert main(["bench", "--quick", "--output", baseline]) == 0
        with pytest.raises(SystemExit, match="--filter"):
            main(["bench", "--quick", "--no-write", "--filter", "gzip", "--check", baseline])

    def test_bench_filter_and_history(self, tmp_path, capsys):
        history = str(tmp_path / "history")
        path = str(tmp_path / "filtered.json")
        assert (
            main(
                ["bench", "--quick", "--output", path,
                 "--filter", "gzip", "--history", history]
            )
            == 0
        )
        report = bench.load_report(path)
        assert report["filter"] == "gzip"
        assert all(cell["benchmark"] == "gzip" for cell in report["cells"])
        history_file = os.path.join(history, "quick.jsonl")
        assert os.path.exists(history_file)
        with open(history_file, "r", encoding="utf-8") as handle:
            row = json.loads(handle.readline())
        assert row["revision"] == report["revision"]


class TestEngineTimings:
    def test_simulate_records_job_timing(self):
        profile = ExperimentProfile(
            name="t", instructions_per_benchmark=2_000,
            benchmarks=["gzip"], profile_budget=2_000,
        )
        engine = ExecutionEngine(profile, store=None)
        result = engine.simulate("gzip", IF_CONVERTED, SchemeSpec.make("conventional"))
        assert len(engine.job_timings) == 1
        timing = engine.job_timings[0]
        assert timing.benchmark == "gzip"
        assert not timing.cached
        assert timing.seconds > 0
        assert timing.instructions == result.metrics.committed_instructions
        assert timing.instructions_per_second() > 0
        assert engine.stats.simulate_seconds >= timing.seconds
        assert engine.stats.trace_seconds > 0

    def test_cached_results_are_flagged(self, tmp_path):
        profile = ExperimentProfile(
            name="t", instructions_per_benchmark=2_000,
            benchmarks=["gzip"], profile_budget=2_000,
        )
        store = ArtifactStore(str(tmp_path / "store"))
        spec = SchemeSpec.make("conventional")
        first = ExecutionEngine(profile, store=store)
        first.simulate("gzip", IF_CONVERTED, spec)
        second = ExecutionEngine(profile, store=store)
        second.simulate("gzip", IF_CONVERTED, spec)
        assert [t.cached for t in second.job_timings] == [True]


class TestCacheStatsLazyRoot:
    def test_stats_on_missing_root_reports_zero_and_creates_it(self, tmp_path):
        root = tmp_path / "not-there-yet"
        store = ArtifactStore(str(root))
        assert not root.exists()
        report = store.stats()
        assert all(entry == {"count": 0, "bytes": 0} for entry in report.values())
        assert root.exists()

    def test_cli_cache_stats_on_missing_root(self, tmp_path, capsys, monkeypatch):
        root = tmp_path / "fresh-cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "0 artifacts" in out
        assert root.exists()

    def test_cli_cache_path_creates_root(self, tmp_path, capsys, monkeypatch):
        root = tmp_path / "fresh-cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
        assert main(["cache", "path"]) == 0
        assert str(root) in capsys.readouterr().out
        assert root.exists()
