"""Property-based parity: array-backed predictor tables vs the references.

Each test drives the optimized (array/flat) backend and the reference
backend of one predictor with the same random branch stream and asserts
they match *update for update*: identical predictions and identical table
state after every step.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors.gshare import GsharePredictor
from repro.predictors.history import GlobalHistoryRegister, LocalHistoryTable
from repro.predictors.perceptron import PerceptronConfig, PerceptronPredictor
from repro.predictors.predicate_aware import (
    PredicateAwareConfig,
    PredicateAwarePredictor,
)
from repro.predictors.predicate_perceptron import (
    PredicatePredictorConfig,
    PredicatePerceptronPredictor,
)
from repro.predictors.tage import TAGEConfig, TAGEPredictor

#: One predictor access: (pc, global history, resolved outcome).
steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1 << 20).map(lambda v: v * 4),
        st.integers(min_value=0, max_value=(1 << 30) - 1),
        st.booleans(),
    ),
    min_size=1,
    max_size=120,
)


class TestGshareParity:
    @settings(max_examples=60, deadline=None)
    @given(stream=steps, history_bits=st.integers(min_value=4, max_value=12))
    def test_matches_reference_update_for_update(self, stream, history_bits):
        reference = GsharePredictor(history_bits=history_bits, optimized=False)
        optimized = GsharePredictor(history_bits=history_bits, optimized=True)
        for pc, history, outcome in stream:
            assert optimized.predict(pc, history) == reference.predict(pc, history)
            reference.update(pc, history, outcome)
            optimized.update(pc, history, outcome)
            assert optimized.table.values == reference.table.values


class TestPerceptronParity:
    @settings(max_examples=40, deadline=None)
    @given(stream=steps)
    def test_matches_reference_update_for_update(self, stream):
        config = PerceptronConfig(
            global_bits=12, local_bits=6, entries=64, local_history_entries=32
        )
        reference = PerceptronPredictor(config, optimized=False)
        optimized = PerceptronPredictor(config, optimized=True)
        touched = set()
        for pc, history, outcome in stream:
            ref_taken, ref_output = reference.predict_with_output(pc, history)
            opt_taken, opt_output = optimized.predict_with_output(pc, history)
            assert (opt_taken, opt_output) == (ref_taken, ref_output)
            reference.update(pc, history, outcome)
            optimized.update(pc, history, outcome)
            touched.add(reference._index(pc))
            for index in touched:
                assert optimized.weight_row(index) == reference.weight_row(index)
        assert optimized._weights == reference._weights


class TestPredicatePerceptronParity:
    @settings(max_examples=40, deadline=None)
    @given(stream=steps, split_pvt=st.booleans())
    def test_matches_reference_update_for_update(self, stream, split_pvt):
        config = PredicatePredictorConfig(
            global_bits=12,
            local_bits=6,
            entries=64,
            local_history_entries=32,
            split_pvt=split_pvt,
        )
        reference = PredicatePerceptronPredictor(config, optimized=False)
        optimized = PredicatePerceptronPredictor(config, optimized=True)
        for step, (pc, history, outcome) in enumerate(stream):
            slot = step % 2
            assert optimized.index_for_slot(pc, slot) == reference.index_for_slot(pc, slot)
            assert optimized.predict_slot(pc, slot, history) == reference.predict_slot(
                pc, slot, history
            )
            assert optimized.predict_compare(pc, history) == reference.predict_compare(
                pc, history
            )
            reference.update_slot(pc, slot, history, outcome)
            optimized.update_slot(pc, slot, history, outcome)
            index = reference.index_for_slot(pc, slot)
            assert optimized.weight_row(index) == reference.weight_row(index)


class TestTAGEParity:
    """TAGE reference vs optimized over arbitrary branch streams.

    The config is deliberately tiny: 16-entry tagged tables make tag
    conflicts (and therefore allocation scans, including the all-useful
    decay-everything fallback) routine, and a 16-update decay period puts
    several periodic usefulness halvings inside every 120-step stream.
    """

    @settings(max_examples=40, deadline=None)
    @given(stream=steps)
    def test_matches_reference_update_for_update(self, stream):
        config = TAGEConfig(
            base_bits=5,
            table_bits=4,
            tag_bits=6,
            history_lengths=(3, 6, 11, 16),
            decay_period=16,
        )
        reference = TAGEPredictor(config, optimized=False)
        optimized = TAGEPredictor(config, optimized=True)
        for pc, history, outcome in stream:
            assert optimized.predict(pc, history) == reference.predict(pc, history)
            reference.update(pc, history, outcome)
            optimized.update(pc, history, outcome)
            assert optimized.table_state() == reference.table_state()


class TestPredicateAwareParity:
    @settings(max_examples=40, deadline=None)
    @given(stream=steps)
    def test_matches_reference_update_for_update(self, stream):
        config = PredicateAwareConfig(
            global_bits=10,
            predicate_bits=4,
            local_bits=6,
            entries=64,
            local_history_entries=32,
        )
        reference = PredicateAwarePredictor(config, optimized=False)
        optimized = PredicateAwarePredictor(config, optimized=True)
        touched = set()
        for pc, history, outcome in stream:
            predicate_bits = (history >> 7) & 0xF
            assert optimized.predict_with_output(
                pc, history, predicate_bits
            ) == reference.predict_with_output(pc, history, predicate_bits)
            reference.update(pc, history, predicate_bits, outcome)
            optimized.update(pc, history, predicate_bits, outcome)
            touched.add(reference._index(pc))
            for index in touched:
                assert optimized.weight_row(index) == reference.weight_row(index)
        assert optimized._weights == reference._weights


class TestHistoryStructures:
    @settings(max_examples=60, deadline=None)
    @given(
        outcomes=st.lists(st.booleans(), min_size=1, max_size=80),
        bits=st.integers(min_value=1, max_value=16),
    )
    def test_ghr_deque_tokens_behave_like_a_shift_register(self, outcomes, bits):
        ghr = GlobalHistoryRegister(bits)
        expected = 0
        tokens = []
        for outcome in outcomes:
            tokens.append(ghr.push(outcome))
            expected = ((expected << 1) | (1 if outcome else 0)) & ((1 << bits) - 1)
        assert ghr.value == expected
        # Repairing the newest bit flips bit zero; stale tokens are refused.
        assert ghr.repair(tokens[-1], not outcomes[-1])
        assert (ghr.value & 1) == (0 if outcomes[-1] else 1)
        if len(tokens) > bits:
            assert not ghr.repair(tokens[0], True)

    @settings(max_examples=60, deadline=None)
    @given(stream=steps)
    def test_local_history_memoized_index_is_stable(self, stream):
        table = LocalHistoryTable(entries=32, bits=8)
        shadow = {}
        for pc, _, outcome in stream:
            index = table._index(pc)
            assert table._index(pc) == index  # memo returns the same index
            expected = ((shadow.get(index, 0) << 1) | (1 if outcome else 0)) & 0xFF
            table.update(pc, outcome)
            shadow[index] = expected
            assert table.read(pc) == expected
