"""Tests for predictor base helpers (PC folding, size reports)."""

from repro.predictors.base import PredictorSizeReport, fold_pc


class TestFoldPC:
    def test_within_range(self):
        for bits in (8, 10, 14, 16):
            for pc in (0x4000_0000, 0x4000_0044, 0x7FFF_FFFC, 0x0):
                assert 0 <= fold_pc(pc, bits) < (1 << bits)

    def test_deterministic(self):
        assert fold_pc(0x4000_1234, 14) == fold_pc(0x4000_1234, 14)

    def test_nearby_pcs_differ(self):
        # Instruction addresses are 4-byte aligned; consecutive instructions
        # should normally land on different indices.
        values = {fold_pc(0x4000_0000 + 4 * i, 14) for i in range(16)}
        assert len(values) > 8

    def test_ignores_low_two_bits(self):
        assert fold_pc(0x4000_0001, 12) == fold_pc(0x4000_0002, 12)


class TestPredictorSizeReport:
    def test_accumulates_components(self):
        report = PredictorSizeReport()
        report.add("table", 8192)
        report.add("table", 8192)
        report.add("ghr", 30)
        assert report.components["table"] == 16384
        assert report.total_bits == 16414
        assert report.total_kib == 16414 / 8 / 1024

    def test_repr(self):
        report = PredictorSizeReport()
        report.add("x", 8)
        assert "KiB" in repr(report)
