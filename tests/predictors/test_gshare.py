"""Tests for the gshare predictor."""

from repro.predictors.gshare import GsharePredictor
from repro.predictors.history import GlobalHistoryRegister


class TestGshare:
    def test_learns_strong_bias(self):
        predictor = GsharePredictor(history_bits=10)
        ghr = GlobalHistoryRegister(10)
        correct = 0
        total = 500
        for i in range(total):
            outcome = True  # always taken
            prediction = predictor.predict(0x4000, ghr.value)
            if i > 50:
                correct += prediction == outcome
            predictor.update(0x4000, ghr.value, outcome)
            ghr.push(outcome)
        assert correct / (total - 51) > 0.98

    def test_learns_history_correlated_pattern(self):
        # outcome = outcome two branches ago (period-2 alternation) is
        # perfectly predictable through the global history.
        predictor = GsharePredictor(history_bits=10)
        ghr = GlobalHistoryRegister(10)
        correct = 0
        total = 2000
        for i in range(total):
            outcome = (i % 2) == 0
            prediction = predictor.predict(0x4000, ghr.value)
            if i > 200:
                correct += prediction == outcome
            predictor.update(0x4000, ghr.value, outcome)
            ghr.push(outcome)
        assert correct / (total - 201) > 0.95

    def test_size_report_matches_table1(self):
        predictor = GsharePredictor(history_bits=14)
        # 4 KB of 2-bit counters plus the GHR itself.
        assert abs(predictor.size_report().total_kib - 4.0) < 0.01

    def test_different_pcs_can_disagree(self):
        predictor = GsharePredictor(history_bits=8)
        for _ in range(8):
            predictor.update(0x4000, 0, True)
            predictor.update(0x8088, 0, False)
        assert predictor.predict(0x4000, 0) is True
        assert predictor.predict(0x8088, 0) is False
