"""Tests for the two-level override predictor."""

from repro.predictors.gshare import GsharePredictor
from repro.predictors.multilevel import TwoLevelOverridePredictor
from repro.predictors.perceptron import PerceptronConfig, PerceptronPredictor


class TestTwoLevelOverride:
    def test_final_prediction_is_second_level(self):
        predictor = TwoLevelOverridePredictor(
            fast=GsharePredictor(history_bits=6),
            slow=PerceptronPredictor(PerceptronConfig(entries=16)),
        )
        # Train only the slow predictor towards taken.
        for _ in range(50):
            predictor.slow.update(0x4000, 0, True)
            predictor.fast.update(0x4000, 0, False)
        both = predictor.predict_both(0x4000, 0)
        assert both.final is both.slow
        assert predictor.predict(0x4000, 0) is both.slow

    def test_override_counted_when_levels_disagree(self):
        predictor = TwoLevelOverridePredictor(
            fast=GsharePredictor(history_bits=6),
            slow=PerceptronPredictor(PerceptronConfig(entries=16)),
        )
        for _ in range(50):
            predictor.slow.update(0x4000, 0, True)
            predictor.fast.update(0x4000, 0, False)
        before = predictor.override_count
        both = predictor.predict_both(0x4000, 0)
        assert both.overridden
        assert predictor.override_count == before + 1
        assert 0.0 < predictor.override_rate <= 1.0

    def test_update_trains_both_levels(self):
        predictor = TwoLevelOverridePredictor(
            fast=GsharePredictor(history_bits=6),
            slow=PerceptronPredictor(PerceptronConfig(entries=16)),
        )
        for _ in range(60):
            predictor.update(0x4000, 0, True)
        assert predictor.fast.predict(0x4000, 0) is True
        assert predictor.slow.predict(0x4000, 0) is True

    def test_size_report_combines_levels(self):
        report = TwoLevelOverridePredictor().size_report()
        # 4 KB gshare + ~148 KB perceptron.
        assert 148 <= report.total_kib <= 160
        assert "gshare-pht" in report.components
        assert "perceptron-table" in report.components

    def test_override_rate_zero_without_predictions(self):
        assert TwoLevelOverridePredictor().override_rate == 0.0
