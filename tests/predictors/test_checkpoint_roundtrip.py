"""Checkpointability of every predictor backend.

The windowed-simulation checkpoint (see ``repro.pipeline.windowed``) pickles
the whole fast-loop state graph, predictor tables included.  Its contract is
that a restored predictor continues *bit-identically*: for every backend,
pickling mid-stream, restoring, and stepping the remainder of a random
(pc, history, outcome) stream must produce exactly the predictions the
uninterrupted predictor makes.  Equal prediction streams on the same update
stream mean equal table state — any divergence shows up within a few steps.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.predictors.gshare import GsharePredictor
from repro.predictors.history import LocalHistoryTable
from repro.predictors.peppa import PEPPAPredictor
from repro.predictors.perceptron import PerceptronConfig, PerceptronPredictor
from repro.predictors.predicate_aware import (
    PredicateAwareConfig,
    PredicateAwarePredictor,
)
from repro.predictors.predicate_perceptron import (
    PredicatePredictorConfig,
    PredicatePerceptronPredictor,
)
from repro.predictors.tage import TAGEConfig, TAGEPredictor, TagePredicatePredictor

#: A deliberately tiny TAGE so 400 steps exercise allocation pressure and
#: cross the usefulness-decay period on both sides of the snapshot.
SMALL_TAGE = TAGEConfig(
    base_bits=5,
    table_bits=4,
    tag_bits=6,
    history_lengths=(3, 6, 11, 16),
    decay_period=64,
)

STEPS = 400
SPLIT = STEPS // 2

#: A small, shared PC alphabet so entries alias and tables actually train.
PCS = [0x4000 + 16 * i for i in range(23)]


def _stream(seed):
    """A deterministic (pc, global_history, outcome, extra-bit) stream."""
    rng = random.Random(seed)
    events = []
    history = 0
    for _ in range(STEPS):
        pc = rng.choice(PCS)
        outcome = rng.random() < 0.6
        extra = rng.random() < 0.5
        events.append((pc, history, outcome, extra))
        history = ((history << 1) | (1 if outcome else 0)) & 0xFFFF
    return events


def _roundtrip_parity(make, step):
    """Drive ``make()`` through the stream; pickle at SPLIT; compare tails.

    ``step(predictor, event)`` consumes one event and returns the hashable
    observation (prediction + any raw output) the parity is asserted over.
    """
    events = _stream(seed=7)
    straight = make()
    reference = [step(straight, event) for event in events]

    resumed = make()
    for event in events[:SPLIT]:
        step(resumed, event)
    blob = pickle.dumps(resumed, protocol=pickle.HIGHEST_PROTOCOL)
    # Keep driving the ORIGINAL after the snapshot: a restore must not
    # depend on the source object staying frozen.
    for event in events[SPLIT:]:
        step(resumed, event)

    restored = pickle.loads(blob)
    tail = [step(restored, event) for event in events[SPLIT:]]
    assert tail == reference[SPLIT:]


class TestGshare:
    def test_save_restore_step_equals_straight_step(self):
        def step(predictor, event):
            pc, history, outcome, _ = event
            prediction = predictor.predict(pc, history)
            predictor.update(pc, history, outcome)
            return prediction

        _roundtrip_parity(lambda: GsharePredictor(history_bits=10), step)


class TestLocalHistoryTable:
    def test_save_restore_step_equals_straight_step(self):
        def step(table, event):
            pc, _, outcome, _ = event
            history = table.read(pc)
            table.update(pc, outcome)
            return history

        _roundtrip_parity(lambda: LocalHistoryTable(entries=64, bits=10), step)


class TestPerceptron:
    @pytest.mark.parametrize("optimized", [False, True])
    def test_save_restore_step_equals_straight_step(self, optimized):
        config = PerceptronConfig()

        def step(predictor, event):
            pc, history, outcome, _ = event
            observed = predictor.predict_with_output(pc, history)
            predictor.update(pc, history, outcome)
            return observed

        _roundtrip_parity(
            lambda: PerceptronPredictor(config, optimized=optimized), step
        )


class TestPredicatePerceptron:
    @pytest.mark.parametrize("optimized", [False, True])
    def test_save_restore_step_equals_straight_step(self, optimized):
        config = PredicatePredictorConfig()

        def step(predictor, event):
            pc, history, outcome, slot_bit = event
            slot = predictor.SLOT_SECOND if slot_bit else predictor.SLOT_FIRST
            observed = predictor.predict_slot(pc, slot, history)
            predictor.update_slot(pc, slot, history, outcome)
            return observed

        _roundtrip_parity(
            lambda: PredicatePerceptronPredictor(config, optimized=optimized), step
        )


class TestTAGE:
    @pytest.mark.parametrize("optimized", [False, True])
    def test_save_restore_step_equals_straight_step(self, optimized):
        def step(predictor, event):
            pc, history, outcome, _ = event
            prediction = predictor.predict(pc, history)
            predictor.update(pc, history, outcome)
            return (prediction, predictor.table_state())

        _roundtrip_parity(lambda: TAGEPredictor(SMALL_TAGE, optimized=optimized), step)


class TestTagePredicate:
    @pytest.mark.parametrize("optimized", [False, True])
    def test_save_restore_step_equals_straight_step(self, optimized):
        def step(predictor, event):
            pc, history, outcome, slot_bit = event
            slot = 1 if slot_bit else 0
            observed = predictor.predict_slot(pc, slot, history)
            predictor.update_slot(pc, slot, history, outcome)
            return observed

        _roundtrip_parity(
            lambda: TagePredicatePredictor(SMALL_TAGE, optimized=optimized), step
        )


class TestPredicateAware:
    @pytest.mark.parametrize("optimized", [False, True])
    def test_save_restore_step_equals_straight_step(self, optimized):
        config = PredicateAwareConfig()

        def step(predictor, event):
            pc, history, outcome, extra = event
            # Mixed-history input: derive a predicate-bit window from the
            # stream so both input partitions vary.
            predicate_bits = ((history >> 3) | (1 if extra else 0)) & 0x3F
            observed = predictor.predict_with_output(pc, history, predicate_bits)
            predictor.update(pc, history, predicate_bits, outcome)
            return observed

        _roundtrip_parity(
            lambda: PredicateAwarePredictor(config, optimized=optimized), step
        )


class TestPEPPA:
    def test_save_restore_step_equals_straight_step(self):
        def step(predictor, event):
            pc, _, outcome, predicate_value = event
            prediction = predictor.predict(pc, predicate_value)
            predictor.update(pc, predicate_value, outcome)
            return prediction

        _roundtrip_parity(PEPPAPredictor, step)
