"""Checkpointability of every predictor backend.

The windowed-simulation checkpoint (see ``repro.pipeline.windowed``) pickles
the whole fast-loop state graph, predictor tables included.  Its contract is
that a restored predictor continues *bit-identically*: for every backend,
pickling mid-stream, restoring, and stepping the remainder of a random
(pc, history, outcome) stream must produce exactly the predictions the
uninterrupted predictor makes.  Equal prediction streams on the same update
stream mean equal table state — any divergence shows up within a few steps.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.predictors.gshare import GsharePredictor
from repro.predictors.history import LocalHistoryTable
from repro.predictors.peppa import PEPPAPredictor
from repro.predictors.perceptron import PerceptronConfig, PerceptronPredictor
from repro.predictors.predicate_perceptron import (
    PredicatePredictorConfig,
    PredicatePerceptronPredictor,
)

STEPS = 400
SPLIT = STEPS // 2

#: A small, shared PC alphabet so entries alias and tables actually train.
PCS = [0x4000 + 16 * i for i in range(23)]


def _stream(seed):
    """A deterministic (pc, global_history, outcome, extra-bit) stream."""
    rng = random.Random(seed)
    events = []
    history = 0
    for _ in range(STEPS):
        pc = rng.choice(PCS)
        outcome = rng.random() < 0.6
        extra = rng.random() < 0.5
        events.append((pc, history, outcome, extra))
        history = ((history << 1) | (1 if outcome else 0)) & 0xFFFF
    return events


def _roundtrip_parity(make, step):
    """Drive ``make()`` through the stream; pickle at SPLIT; compare tails.

    ``step(predictor, event)`` consumes one event and returns the hashable
    observation (prediction + any raw output) the parity is asserted over.
    """
    events = _stream(seed=7)
    straight = make()
    reference = [step(straight, event) for event in events]

    resumed = make()
    for event in events[:SPLIT]:
        step(resumed, event)
    blob = pickle.dumps(resumed, protocol=pickle.HIGHEST_PROTOCOL)
    # Keep driving the ORIGINAL after the snapshot: a restore must not
    # depend on the source object staying frozen.
    for event in events[SPLIT:]:
        step(resumed, event)

    restored = pickle.loads(blob)
    tail = [step(restored, event) for event in events[SPLIT:]]
    assert tail == reference[SPLIT:]


class TestGshare:
    def test_save_restore_step_equals_straight_step(self):
        def step(predictor, event):
            pc, history, outcome, _ = event
            prediction = predictor.predict(pc, history)
            predictor.update(pc, history, outcome)
            return prediction

        _roundtrip_parity(lambda: GsharePredictor(history_bits=10), step)


class TestLocalHistoryTable:
    def test_save_restore_step_equals_straight_step(self):
        def step(table, event):
            pc, _, outcome, _ = event
            history = table.read(pc)
            table.update(pc, outcome)
            return history

        _roundtrip_parity(lambda: LocalHistoryTable(entries=64, bits=10), step)


class TestPerceptron:
    @pytest.mark.parametrize("optimized", [False, True])
    def test_save_restore_step_equals_straight_step(self, optimized):
        config = PerceptronConfig()

        def step(predictor, event):
            pc, history, outcome, _ = event
            observed = predictor.predict_with_output(pc, history)
            predictor.update(pc, history, outcome)
            return observed

        _roundtrip_parity(
            lambda: PerceptronPredictor(config, optimized=optimized), step
        )


class TestPredicatePerceptron:
    @pytest.mark.parametrize("optimized", [False, True])
    def test_save_restore_step_equals_straight_step(self, optimized):
        config = PredicatePredictorConfig()

        def step(predictor, event):
            pc, history, outcome, slot_bit = event
            slot = predictor.SLOT_SECOND if slot_bit else predictor.SLOT_FIRST
            observed = predictor.predict_slot(pc, slot, history)
            predictor.update_slot(pc, slot, history, outcome)
            return observed

        _roundtrip_parity(
            lambda: PredicatePerceptronPredictor(config, optimized=optimized), step
        )


class TestPEPPA:
    def test_save_restore_step_equals_straight_step(self):
        def step(predictor, event):
            pc, _, outcome, predicate_value = event
            prediction = predictor.predict(pc, predicate_value)
            predictor.update(pc, predicate_value, outcome)
            return prediction

        _roundtrip_parity(PEPPAPredictor, step)
