"""Tests for the idealized (no-alias) predictor variants."""

from repro.predictors.ideal import (
    IdealHistoryOracle,
    NoAliasPerceptron,
    NoAliasPredicatePerceptron,
)
from repro.predictors.perceptron import PerceptronConfig
from repro.predictors.predicate_perceptron import PredicatePredictorConfig


class TestNoAliasPerceptron:
    def test_aliasing_pcs_kept_separate(self):
        # Force a tiny table so the realistic predictor would alias; the
        # no-alias variant must keep the two PCs independent regardless.
        predictor = NoAliasPerceptron(PerceptronConfig(entries=1))
        for _ in range(200):
            predictor.update(0x4000, 0, True)
            predictor.update(0x8000, 0, False)
        assert predictor.predict(0x4000, 0) is True
        assert predictor.predict(0x8000, 0) is False

    def test_predict_with_output(self):
        predictor = NoAliasPerceptron(PerceptronConfig(entries=4))
        taken, output = predictor.predict_with_output(0x4000, 0)
        assert taken == (output >= 0)

    def test_size_report_grows_with_usage(self):
        predictor = NoAliasPerceptron(PerceptronConfig(entries=4))
        predictor.update(0x4000, 0, True)
        predictor.update(0x4040, 0, True)
        assert predictor.size_report().total_bits > 0


class TestNoAliasPredicatePerceptron:
    def test_slots_and_pcs_independent(self):
        predictor = NoAliasPredicatePerceptron(PredicatePredictorConfig(entries=1))
        for _ in range(200):
            predictor.update_slot(0x4000, 0, 0, True)
            predictor.update_slot(0x4000, 1, 0, False)
            predictor.update_slot(0x8000, 0, 0, False)
        assert predictor.predict_slot(0x4000, 0, 0)[0] is True
        assert predictor.predict_slot(0x4000, 1, 0)[0] is False
        assert predictor.predict_slot(0x8000, 0, 0)[0] is False

    def test_predict_compare_pair(self):
        predictor = NoAliasPredicatePerceptron()
        pair = predictor.predict_compare(0x4000, 0)
        assert len(pair) == 2

    def test_index_for_slot_distinct(self):
        predictor = NoAliasPredicatePerceptron()
        assert predictor.index_for_slot(0x4000, 0) != predictor.index_for_slot(0x4000, 1)


class TestIdealHistoryOracle:
    def test_is_a_marker(self):
        oracle = IdealHistoryOracle()
        assert "perfect" in oracle.description
