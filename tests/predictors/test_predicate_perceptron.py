"""Tests for the predicate perceptron predictor (dual-hash PVT)."""

import random

from repro.predictors.history import GlobalHistoryRegister
from repro.predictors.predicate_perceptron import (
    PredicatePerceptronPredictor,
    PredicatePredictorConfig,
)
from repro.predictors.perceptron import PerceptronConfig


class TestDualHash:
    def test_two_slots_use_distinct_indices(self):
        predictor = PredicatePerceptronPredictor(PredicatePredictorConfig(entries=128))
        pc = 0x4000_0040
        assert predictor.index_for_slot(pc, 0) != predictor.index_for_slot(pc, 1)

    def test_indices_within_table(self):
        predictor = PredicatePerceptronPredictor(PredicatePredictorConfig(entries=100))
        for pc in range(0x4000, 0x4400, 4):
            for slot in (0, 1):
                assert 0 <= predictor.index_for_slot(pc, slot) < 100

    def test_invalid_slot_rejected(self):
        predictor = PredicatePerceptronPredictor()
        try:
            predictor.index_for_slot(0x4000, 2)
            assert False
        except ValueError:
            pass

    def test_split_pvt_halves_are_disjoint(self):
        config = PredicatePredictorConfig(entries=128, split_pvt=True)
        predictor = PredicatePerceptronPredictor(config)
        for pc in range(0x4000, 0x4200, 4):
            assert predictor.index_for_slot(pc, 0) < 64
            assert predictor.index_for_slot(pc, 1) >= 64


class TestLearning:
    def _drive_slot(self, predictor, outcomes, pc=0x4000, slot=0, warmup=100):
        ghr = GlobalHistoryRegister(predictor.config.global_bits)
        correct = 0
        counted = 0
        for i, outcome in enumerate(outcomes):
            prediction, _ = predictor.predict_slot(pc, slot, ghr.value)
            if i >= warmup:
                counted += 1
                correct += prediction == outcome
            predictor.update_slot(pc, slot, ghr.value, outcome)
            ghr.push(outcome)
        return correct / counted

    def test_learns_biased_predicate(self):
        predictor = PredicatePerceptronPredictor(PredicatePredictorConfig(entries=64))
        rng = random.Random(1)
        outcomes = [rng.random() < 0.85 for _ in range(1200)]
        assert self._drive_slot(predictor, outcomes) > 0.8

    def test_learns_alternation(self):
        predictor = PredicatePerceptronPredictor(PredicatePredictorConfig(entries=64))
        outcomes = [i % 2 == 0 for i in range(1200)]
        assert self._drive_slot(predictor, outcomes) > 0.95

    def test_slots_learn_independently(self):
        predictor = PredicatePerceptronPredictor(PredicatePredictorConfig(entries=256))
        pc = 0x4000
        for _ in range(300):
            predictor.update_slot(pc, 0, 0, True)
            predictor.update_slot(pc, 1, 0, False)
        first, second = predictor.predict_compare(pc, 0)
        assert first is True
        assert second is False

    def test_predict_compare_returns_pair(self):
        predictor = PredicatePerceptronPredictor()
        result = predictor.predict_compare(0x4000, 0)
        assert isinstance(result, tuple) and len(result) == 2


class TestConfiguration:
    def test_size_close_to_148kb(self):
        report = PredicatePerceptronPredictor().size_report()
        assert 140 <= report.total_kib <= 156

    def test_matching_builds_same_geometry(self):
        perceptron = PerceptronConfig(entries=512, global_bits=12, local_bits=6)
        config = PredicatePredictorConfig.matching(perceptron)
        assert config.entries == 512
        assert config.global_bits == 12
        assert config.local_bits == 6

    def test_theta_and_bounds(self):
        config = PredicatePredictorConfig(global_bits=20, local_bits=10, weight_bits=8)
        assert config.theta == int(1.93 * 30 + 14)
        assert config.weight_min == -128 and config.weight_max == 127
