"""Tests for the confidence estimator."""

import pytest

from repro.predictors.confidence import ConfidenceEstimator


class TestConfidenceEstimator:
    def test_not_confident_initially(self):
        estimator = ConfidenceEstimator(entries=16, bits=2)
        assert not estimator.is_confident(3)

    def test_becomes_confident_after_saturation(self):
        estimator = ConfidenceEstimator(entries=16, bits=2)
        for _ in range(3):
            estimator.record_correct(3)
        assert estimator.is_confident(3)

    def test_misprediction_zeroes_counter(self):
        estimator = ConfidenceEstimator(entries=16, bits=2)
        for _ in range(3):
            estimator.record_correct(3)
        estimator.record_incorrect(3)
        assert not estimator.is_confident(3)
        assert estimator.value(3) == 0

    def test_record_dispatch(self):
        estimator = ConfidenceEstimator(entries=16, bits=3)
        estimator.record(5, True)
        assert estimator.value(5) == 1
        estimator.record(5, False)
        assert estimator.value(5) == 0

    def test_counter_saturates(self):
        estimator = ConfidenceEstimator(entries=4, bits=2)
        for _ in range(10):
            estimator.record_correct(1)
        assert estimator.value(1) == 3

    def test_entries_wrap(self):
        estimator = ConfidenceEstimator(entries=8, bits=2)
        for _ in range(3):
            estimator.record_correct(2)
        assert estimator.is_confident(2 + 8)

    def test_independent_entries(self):
        estimator = ConfidenceEstimator(entries=8, bits=2)
        for _ in range(3):
            estimator.record_correct(0)
        assert not estimator.is_confident(1)

    def test_size_report(self):
        assert ConfidenceEstimator(entries=1024, bits=3).size_report().total_bits == 3072

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            ConfidenceEstimator(entries=0)
