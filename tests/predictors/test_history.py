"""Tests for global/local history structures."""

from repro.predictors.history import (
    GlobalHistoryRegister,
    HistorySnapshotManager,
    LocalHistoryTable,
)


class TestGlobalHistoryRegister:
    def test_push_shifts_in_lsb(self):
        ghr = GlobalHistoryRegister(4)
        ghr.push(True)
        ghr.push(False)
        ghr.push(True)
        assert ghr.value == 0b101

    def test_width_is_bounded(self):
        ghr = GlobalHistoryRegister(3)
        for _ in range(10):
            ghr.push(True)
        assert ghr.value == 0b111

    def test_snapshot_restore(self):
        ghr = GlobalHistoryRegister(8)
        ghr.push(True)
        snapshot = ghr.snapshot()
        ghr.push(False)
        ghr.push(False)
        ghr.restore(snapshot)
        assert ghr.value == 0b1

    def test_repair_recent_bit(self):
        ghr = GlobalHistoryRegister(8)
        token = ghr.push(True)
        ghr.push(False)
        assert ghr.value == 0b10
        assert ghr.repair(token, False)
        assert ghr.value == 0b00

    def test_repair_sets_bit_true(self):
        ghr = GlobalHistoryRegister(8)
        token = ghr.push(False)
        ghr.push(False)
        assert ghr.repair(token, True)
        assert ghr.value == 0b10

    def test_repair_expired_bit_returns_false(self):
        ghr = GlobalHistoryRegister(2)
        token = ghr.push(True)
        ghr.push(False)
        ghr.push(False)
        ghr.push(False)
        assert ghr.repair(token, False) is False

    def test_repair_is_idempotent(self):
        ghr = GlobalHistoryRegister(8)
        token = ghr.push(True)
        ghr.repair(token, False)
        ghr.repair(token, False)
        assert ghr.value == 0


class TestLocalHistoryTable:
    def test_per_pc_histories_independent(self):
        table = LocalHistoryTable(entries=64, bits=4)
        table.update(0x4000, True)
        table.update(0x8004, False)
        assert table.read(0x4000) == 0b1

    def test_history_width_bounded(self):
        table = LocalHistoryTable(entries=8, bits=3)
        for _ in range(10):
            table.update(0x4000, True)
        assert table.read(0x4000) == 0b111

    def test_storage_bits(self):
        assert LocalHistoryTable(entries=2048, bits=10).storage_bits() == 20480

    def test_aliasing_same_entry(self):
        table = LocalHistoryTable(entries=1, bits=4)
        table.update(0x4000, True)
        assert table.read(0x9999) == table.read(0x4000)


class TestHistorySnapshotManager:
    def test_save_and_restore(self):
        ghr = GlobalHistoryRegister(8)
        manager = HistorySnapshotManager()
        ghr.push(True)
        manager.save(1, ghr)
        ghr.push(False)
        assert manager.restore(1, ghr)
        assert ghr.value == 0b1

    def test_restore_missing_key(self):
        assert not HistorySnapshotManager().restore(99, GlobalHistoryRegister(4))

    def test_discard_before(self):
        ghr = GlobalHistoryRegister(4)
        manager = HistorySnapshotManager()
        for key in range(5):
            manager.save(key, ghr)
        manager.discard_before(3)
        assert len(manager) == 2
