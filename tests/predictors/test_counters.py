"""Tests for saturating counters and counter tables."""

import pytest

from repro.predictors.counters import CounterTable, SaturatingCounter


class TestSaturatingCounter:
    def test_initial_value(self):
        assert SaturatingCounter(bits=2, initial=1).value == 1

    def test_increment_saturates(self):
        counter = SaturatingCounter(bits=2, initial=3)
        counter.increment()
        assert counter.value == 3
        assert counter.is_saturated

    def test_decrement_floors_at_zero(self):
        counter = SaturatingCounter(bits=2, initial=0)
        counter.decrement()
        assert counter.value == 0

    def test_taken_threshold(self):
        counter = SaturatingCounter(bits=2, initial=1)
        assert not counter.taken
        counter.increment()
        assert counter.taken

    def test_train_moves_towards_outcome(self):
        counter = SaturatingCounter(bits=2, initial=2)
        counter.train(False)
        assert counter.value == 1
        counter.train(True)
        assert counter.value == 2

    def test_reset(self):
        counter = SaturatingCounter(bits=3, initial=5)
        counter.reset()
        assert counter.value == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, initial=7)


class TestCounterTable:
    def test_learns_direction(self):
        table = CounterTable(entries=16, bits=2, initial=1)
        for _ in range(4):
            table.train(5, True)
        assert table.taken(5)
        for _ in range(4):
            table.train(5, False)
        assert not table.taken(5)

    def test_index_wraps(self):
        table = CounterTable(entries=8, bits=2)
        table.train(3, True)
        table.train(3 + 8, True)
        assert table.value(3) == table.value(11)

    def test_values_bounded(self):
        table = CounterTable(entries=4, bits=2, initial=0)
        for _ in range(10):
            table.train(0, True)
        assert table.value(0) == 3

    def test_size_report(self):
        table = CounterTable(entries=1024, bits=2)
        assert table.size_report("pht").total_bits == 2048

    def test_len(self):
        assert len(CounterTable(entries=32)) == 32

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            CounterTable(entries=0)
