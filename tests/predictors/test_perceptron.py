"""Tests for the perceptron branch predictor."""

import random

from repro.predictors.history import GlobalHistoryRegister
from repro.predictors.perceptron import (
    PerceptronConfig,
    PerceptronPredictor,
    perceptron_output,
    perceptron_train,
)


def _drive(predictor, outcomes, pc=0x4000, warmup=100):
    """Feed an outcome stream through predict/update; return accuracy."""
    ghr = GlobalHistoryRegister(predictor.config.global_bits)
    correct = 0
    counted = 0
    for i, outcome in enumerate(outcomes):
        prediction = predictor.predict(pc, ghr.value)
        if i >= warmup:
            counted += 1
            correct += prediction == outcome
        predictor.update(pc, ghr.value, outcome)
        ghr.push(outcome)
    return correct / counted if counted else 0.0


class TestPerceptronLearning:
    def test_learns_alternating_pattern(self):
        predictor = PerceptronPredictor(PerceptronConfig(entries=64))
        outcomes = [i % 2 == 0 for i in range(1500)]
        assert _drive(predictor, outcomes) > 0.97

    def test_learns_biased_stream(self):
        predictor = PerceptronPredictor(PerceptronConfig(entries=64))
        rng = random.Random(7)
        outcomes = [rng.random() < 0.9 for _ in range(1500)]
        assert _drive(predictor, outcomes) > 0.85

    def test_learns_and_correlation_of_history_bits(self):
        # outcome[i] = outcome[i-1] AND outcome[i-2] is linearly separable,
        # so the perceptron must capture it from its global history.
        predictor = PerceptronPredictor(PerceptronConfig(entries=64))
        rng = random.Random(3)
        outcomes = [rng.random() < 0.5, rng.random() < 0.5]
        for i in range(2, 2500):
            if i % 3 == 0:
                outcomes.append(rng.random() < 0.5)  # fresh randomness
            else:
                outcomes.append(outcomes[i - 1] and outcomes[i - 2])
        accuracy = _drive(predictor, outcomes, warmup=500)
        assert accuracy > 0.80

    def test_random_stream_not_predictable(self):
        predictor = PerceptronPredictor(PerceptronConfig(entries=64))
        rng = random.Random(11)
        outcomes = [rng.random() < 0.5 for _ in range(1500)]
        assert _drive(predictor, outcomes) < 0.65


class TestPerceptronMechanics:
    def test_theta_formula(self):
        config = PerceptronConfig(global_bits=30, local_bits=10)
        assert config.theta == int(1.93 * 40 + 14)

    def test_weight_bounds(self):
        config = PerceptronConfig(weight_bits=8)
        assert config.weight_min == -128
        assert config.weight_max == 127

    def test_weights_stay_bounded_after_training(self):
        config = PerceptronConfig(entries=4, global_bits=8, local_bits=2)
        predictor = PerceptronPredictor(config)
        for i in range(2000):
            predictor.update(0x4000, 0xFF, i % 2 == 0)
        for row in predictor._weights:
            assert all(config.weight_min <= w <= config.weight_max for w in row)

    def test_predict_with_output_sign_consistency(self):
        predictor = PerceptronPredictor(PerceptronConfig(entries=16))
        taken, output = predictor.predict_with_output(0x4000, 0)
        assert taken == (output >= 0)

    def test_storage_close_to_148kb(self):
        report = PerceptronPredictor().size_report()
        assert 140 <= report.total_kib <= 156

    def test_helper_output_and_train(self):
        row = [0, 0, 0]
        assert perceptron_output(row, 0b11) == 0
        perceptron_train(row, 0b11, True, -128, 127)
        assert row == [1, 1, 1]
        perceptron_train(row, 0b00, False, -128, 127)
        assert row == [0, 2, 2]

    def test_local_history_contributes(self):
        # A pattern visible only in local history: period-3 with one
        # not-taken, embedded in a constant global history.
        predictor = PerceptronPredictor(PerceptronConfig(entries=64, global_bits=4))
        correct = 0
        counted = 0
        for i in range(1500):
            outcome = i % 3 != 0
            prediction = predictor.predict(0x4000, 0)
            if i > 300:
                counted += 1
                correct += prediction == outcome
            predictor.update(0x4000, 0, outcome)
        assert correct / counted > 0.9
