"""Tests for the PEP-PA predictor structure."""

from repro.predictors.peppa import PEPPAConfig, PEPPAPredictor


class TestPEPPA:
    def test_learns_periodic_pattern_with_stable_selector(self):
        predictor = PEPPAPredictor(PEPPAConfig(branch_entries=64))
        pattern = [True] * 7 + [False]
        correct = 0
        counted = 0
        for repetition in range(300):
            for outcome in pattern:
                prediction = predictor.predict(0x4000, True)
                if repetition > 40:
                    counted += 1
                    correct += prediction == outcome
                predictor.update(0x4000, True, outcome)
        assert correct / counted > 0.95

    def test_selector_splits_histories(self):
        # With the selector equal to the outcome of the *previous* dynamic
        # instance, the predictor effectively learns "previous definition
        # correlates with this branch" — the PEP-PA idea.
        predictor = PEPPAPredictor(PEPPAConfig(branch_entries=64))
        outcomes = []
        previous = True
        correct = 0
        counted = 0
        for i in range(3000):
            outcome = not previous  # alternating, fully determined by selector
            prediction = predictor.predict(0x4000, previous)
            if i > 300:
                counted += 1
                correct += prediction == outcome
            predictor.update(0x4000, previous, outcome)
            outcomes.append(outcome)
            previous = outcome
        assert correct / counted > 0.95

    def test_saturates_to_computed_predicate_when_selector_is_outcome(self):
        # "For branches whose predicate is available, the PHT counters
        # quickly saturate, and then prediction becomes equal to the
        # computed predicate."
        predictor = PEPPAPredictor(PEPPAConfig(branch_entries=64))
        import random

        rng = random.Random(5)
        correct = 0
        counted = 0
        for i in range(3000):
            outcome = rng.random() < 0.5
            prediction = predictor.predict(0x4000, outcome)  # selector == outcome
            if i > 500:
                counted += 1
                correct += prediction == outcome
            predictor.update(0x4000, outcome, outcome)
        assert correct / counted > 0.9

    def test_size_is_144_kib(self):
        assert abs(PEPPAPredictor().size_report().total_kib - 144.0) < 1.0

    def test_storage_bits_matches_report(self):
        config = PEPPAConfig()
        assert config.storage_bits() == PEPPAPredictor(config).size_report().total_bits

    def test_distinct_branches_do_not_interfere_in_entry_table(self):
        predictor = PEPPAPredictor(PEPPAConfig(branch_entries=1024))
        for _ in range(64):
            predictor.update(0x4000, True, True)
            predictor.update(0x8008, True, False)
        assert predictor.predict(0x4000, True) is True
        assert predictor.predict(0x8008, True) is False
