"""Serve resilience: job deadlines, journal recovery, and client retries.

Three failure domains of the ``repro serve`` stack:

* **Deadlines** — a wedged job is failed at ``job_timeout`` and its
  coalescing claims released, so a duplicate submission re-plans and
  completes instead of hanging on the corpse.
* **The job journal** — a restarted daemon replays its JSONL journal:
  finished jobs stay listable with their results servable, interrupted
  jobs are reported failed, never-started jobs are re-queued and run.
* **Client retries** — idempotent GETs survive injected connection drops
  with ``retries`` set, and :meth:`ServeClient.wait` tolerates dropped
  polls even without them.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.client import ServeClient, ServeError
from repro.engine.store import ArtifactStore
from repro.serve import make_server, serve_until_shutdown
from repro.serve.service import (
    DONE,
    FAILED,
    ExperimentService,
    JobJournal,
    JobTimeoutError,
)

ONE_CELL = {
    "cells": [{"benchmark": "gzip", "scheme": "predicate"}],
    "instructions": 1500,
}


def _drain_job_threads() -> None:
    """Join any orphaned deadline helper threads before leaving a test."""
    for thread in threading.enumerate():
        if thread.name.startswith("repro-serve-job-"):
            thread.join(timeout=30)


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestJobDeadline:
    def test_zero_timeout_rejected(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        with pytest.raises(ValueError, match="job_timeout"):
            ExperimentService(store, job_timeout=0)

    def test_fast_job_completes_under_deadline(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        service = ExperimentService(store, job_timeout=120.0)
        try:
            record = service.wait(service.submit(ONE_CELL).id, timeout=120)
            assert record.state == DONE, record.error
            assert record.result_text
        finally:
            service.shutdown(wait=True, timeout=10)
            _drain_job_threads()

    def test_deadline_fails_wedged_job_and_releases_claims(
        self, monkeypatch, tmp_path
    ):
        """The first job wedges; its duplicate must re-plan, not hang."""
        import repro.serve.service as service_module

        release = threading.Event()
        wedged_once = []
        real_run_cells = service_module.run_cells

        def run_cells_wedging_first(*args, **kwargs):
            if not wedged_once:
                wedged_once.append(True)
                release.wait(60)  # the stand-in for a wedged engine run
            return real_run_cells(*args, **kwargs)

        monkeypatch.setattr(service_module, "run_cells", run_cells_wedging_first)
        store = ArtifactStore(str(tmp_path / "cache"))
        service = ExperimentService(store, jobs=1, workers=2, job_timeout=2.0)
        try:
            first = service.submit(ONE_CELL)
            second = service.submit(ONE_CELL)
            service.wait(first.id, timeout=60)
            service.wait(second.id, timeout=60)
            # Exactly one of the two (whichever claimed the simulate keys
            # first) hit the deadline; the other — its coalescing waiter —
            # was woken by the claim release and ran the work itself.
            states = {first.state, second.state}
            assert states == {DONE, FAILED}
            failed = first if first.state == FAILED else second
            done = first if first.state == DONE else second
            assert "deadline" in failed.error
            assert failed.error.startswith(JobTimeoutError.__name__)
            assert done.result_text
            health = service.health()
            assert health["jobs_timed_out"] == 1
            assert health["status"] == "degraded"
        finally:
            release.set()
            service.shutdown(wait=True, timeout=10)
            _drain_job_threads()


# ----------------------------------------------------------------------
# The job journal
# ----------------------------------------------------------------------
class TestJournalRecovery:
    def test_done_jobs_survive_restart_with_results(self, tmp_path):
        journal_path = str(tmp_path / "journal.jsonl")
        store = ArtifactStore(str(tmp_path / "cache"))
        service = ExperimentService(store, journal=JobJournal(journal_path))
        record = service.wait(service.submit(ONE_CELL).id, timeout=120)
        assert record.state == DONE, record.error
        service.shutdown(wait=True, timeout=10)

        revived = ExperimentService(store, journal=JobJournal(journal_path))
        try:
            recovered = revived.job(record.id)
            assert recovered.state == DONE
            assert recovered.recovered is True
            assert recovered.snapshot()["recovered"] is True
            assert recovered.result_text == record.result_text
            assert recovered.result_json == record.result_json
            assert recovered.planned == record.planned
            assert (
                recovered.stats["simulations_run"]
                == record.stats["simulations_run"]
            )
            assert recovered.done_event.is_set()  # wait() returns immediately
            health = revived.health()
            assert health["recovered_jobs"] == 1
            assert health["status"] == "degraded"
        finally:
            revived.shutdown(wait=True, timeout=10)

    def test_submitted_only_jobs_are_requeued_and_run(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        event = {
            "event": "submitted",
            "id": "requeue-test-1",
            "kind": "cells",
            "title": "1 cell(s)",
            "created": 123.0,
            "document": ONE_CELL,
        }
        journal_path.write_text(json.dumps(event) + "\n", encoding="utf-8")
        store = ArtifactStore(str(tmp_path / "cache"))
        service = ExperimentService(store, journal=JobJournal(str(journal_path)))
        try:
            # The daemon's explicit start is what runs re-queued jobs.
            service.start()
            record = service.wait("requeue-test-1", timeout=120)
            assert record.state == DONE, record.error
            assert record.recovered is True
            assert record.result_text
        finally:
            service.shutdown(wait=True, timeout=10)

    def test_started_unfinished_jobs_fail_on_restart(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        events = [
            {
                "event": "submitted",
                "id": "interrupted-1",
                "kind": "cells",
                "title": "1 cell(s)",
                "created": 1.0,
                "document": ONE_CELL,
            },
            {"event": "started", "id": "interrupted-1", "time": 2.0},
        ]
        journal_path.write_text(
            "".join(json.dumps(event) + "\n" for event in events), encoding="utf-8"
        )
        store = ArtifactStore(str(tmp_path / "cache"))
        service = ExperimentService(store, journal=JobJournal(str(journal_path)))
        try:
            record = service.job("interrupted-1")
            assert record.state == FAILED
            assert record.error == "interrupted by daemon restart"
            assert record.done_event.is_set()
        finally:
            service.shutdown(wait=True, timeout=10)

    def test_invalid_document_requeue_fails_cleanly(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        event = {
            "event": "submitted",
            "id": "bad-document-1",
            "kind": "cells",
            "title": "1 cell(s)",
            "created": 1.0,
            "document": {"cells": []},  # invalid: empty cell list
        }
        journal_path.write_text(json.dumps(event) + "\n", encoding="utf-8")
        store = ArtifactStore(str(tmp_path / "cache"))
        service = ExperimentService(store, journal=JobJournal(str(journal_path)))
        try:
            record = service.job("bad-document-1")
            assert record.state == FAILED
            assert "re-queue after restart failed" in record.error
        finally:
            service.shutdown(wait=True, timeout=10)

    def test_replay_tolerates_a_torn_final_line(self, tmp_path):
        journal = JobJournal(str(tmp_path / "journal.jsonl"))
        journal.append({"event": "submitted", "id": "whole-line"})
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "subm')  # the daemon died mid-append
        events = journal.replay()
        assert events == [{"event": "submitted", "id": "whole-line"}]

    def test_replay_of_missing_file_is_empty(self, tmp_path):
        assert JobJournal(str(tmp_path / "never-written.jsonl")).replay() == []


# ----------------------------------------------------------------------
# Client retries under injected connection drops
# ----------------------------------------------------------------------
@pytest.fixture
def server(tmp_path):
    store = ArtifactStore(str(tmp_path / "cache"))
    service = ExperimentService(store, jobs=1, workers=2, default_instructions=1500)
    server = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(
        target=serve_until_shutdown, args=(server, False), daemon=True
    )
    thread.start()
    yield server
    server.shutdown()
    thread.join(timeout=10)
    assert not thread.is_alive()


@pytest.fixture
def base_url(server):
    return f"http://127.0.0.1:{server.server_address[1]}"


class TestClientResilience:
    def test_wait_survives_dropped_poll_responses(self, activate_faults, base_url):
        """The satellite regression: a transient drop must not abort a wait."""
        client = ServeClient(base_url, timeout=30)  # note: retries=0
        job = client.submit(ONE_CELL)
        activate_faults("drop-http-response:2")
        done = client.wait(job["id"], timeout=120, poll_interval=0.05)
        assert done["state"] == "done", done["error"]

    def test_request_retries_recover_idempotent_gets(
        self, activate_faults, base_url
    ):
        activate_faults("drop-http-response:2")
        client = ServeClient(base_url, retries=2, retry_backoff=0.01)
        payload = client.health()  # both drops absorbed inside one call
        assert payload["status"] in ("ok", "degraded")

    def test_without_retries_a_drop_is_fatal(self, activate_faults, base_url):
        activate_faults("drop-http-response:1")
        client = ServeClient(base_url)
        with pytest.raises(ServeError) as excinfo:
            client.health()
        assert excinfo.value.status == 0
        assert "drop-http-response" in excinfo.value.message

    def test_http_error_responses_are_never_retried(
        self, activate_faults, base_url
    ):
        # A 404 is the daemon *answering*; retrying it would only mask bugs.
        client = ServeClient(base_url, retries=3, retry_backoff=10.0)
        with pytest.raises(ServeError) as excinfo:
            client._request("/v1/nope")
        assert excinfo.value.status == 404

    def test_posts_are_never_retried(self, activate_faults, base_url):
        # drop-http-response only gates idempotent GETs: a POST with the
        # fault active goes straight through, exactly once.
        activate_faults("drop-http-response:5")
        client = ServeClient(base_url, retries=5, retry_backoff=0.01)
        job = client.submit(ONE_CELL)
        assert job["id"]
