"""Unit tests of the deterministic fault-injection module itself."""

from __future__ import annotations

import os

import pytest

from repro import faults


class TestSpecParsing:
    def test_no_env_means_no_faults(self):
        assert faults.active_faults() == {}

    def test_parse_defaults_and_args(self, activate_faults):
        activate_faults("drop-http-response, corrupt-artifact-bytes:3")
        assert faults.active_faults() == {
            "drop-http-response": 1,
            "corrupt-artifact-bytes": 3,
        }

    def test_unknown_point_rejected(self, activate_faults):
        activate_faults("explode-the-moon:2")
        with pytest.raises(faults.FaultSpecError, match="unknown fault point"):
            faults.active_faults()

    @pytest.mark.parametrize("arg", ["zero", "0", "-1", "1.5"])
    def test_bad_argument_rejected(self, activate_faults, arg):
        activate_faults(f"drop-http-response:{arg}")
        with pytest.raises(faults.FaultSpecError):
            faults.active_faults()

    def test_catalog_is_complete(self):
        assert set(faults.fault_points()) == {
            "kill-worker-on-nth-simulate",
            "kill-worker-on-nth-checkpoint",
            "corrupt-artifact-bytes",
            "truncate-payload",
            "drop-http-response",
            "stall-simulate",
        }


class TestFiring:
    def test_one_shot_fires_on_exact_ordinal_once(self, activate_faults):
        activate_faults("corrupt-artifact-bytes:3")
        fired = [faults.should_fire(faults.CORRUPT_ARTIFACT) for _ in range(6)]
        assert fired == [None, None, 3, None, None, None]

    def test_counting_point_fires_first_n_events(self, activate_faults):
        activate_faults("drop-http-response:2")
        fired = [faults.drop_http_response() for _ in range(4)]
        assert fired == [True, True, False, False]

    def test_claim_marker_is_cross_process_exclusive(self, activate_faults, tmp_path):
        activate_faults("kill-worker-on-nth-simulate:1")
        assert faults.should_fire(faults.KILL_WORKER) is None or True  # counts
        # Simulate "another process" by resetting local state: the on-disk
        # marker must still block a second firing.
        state = os.environ[faults.FAULTS_STATE_ENV]
        faults._counters.clear()
        faults._claimed.clear()
        assert os.listdir(state)  # the first firing left its marker
        assert faults.should_fire(faults.KILL_WORKER) is None

    def test_reset_clears_local_state(self, activate_faults):
        activate_faults("drop-http-response:1")
        assert faults.drop_http_response() is True
        faults.reset()
        assert faults.drop_http_response() is True

    def test_stall_argument_is_seconds_not_ordinal(self, activate_faults):
        # stall-simulate:30 must fire on the FIRST event (returning 30),
        # not wait for the 30th.
        activate_faults("stall-simulate:30")
        assert faults.should_fire(faults.STALL_SIMULATE) == 30
        assert faults.should_fire(faults.STALL_SIMULATE) is None


class TestPayloadCorruption:
    def test_corrupt_flips_one_byte(self, activate_faults, tmp_path):
        activate_faults("corrupt-artifact-bytes:1")
        path = tmp_path / "payload.bin"
        original = bytes(range(16))
        path.write_bytes(original)
        faults.corrupt_payload(str(path))
        damaged = path.read_bytes()
        assert len(damaged) == len(original)
        assert damaged != original
        assert sum(a != b for a, b in zip(damaged, original)) == 1

    def test_truncate_halves_the_payload(self, activate_faults, tmp_path):
        activate_faults("truncate-payload:1")
        path = tmp_path / "payload.bin"
        path.write_bytes(bytes(100))
        faults.corrupt_payload(str(path))
        assert path.stat().st_size == 50

    def test_noop_without_spec(self, tmp_path):
        path = tmp_path / "payload.bin"
        path.write_bytes(b"pristine")
        faults.corrupt_payload(str(path))
        assert path.read_bytes() == b"pristine"
