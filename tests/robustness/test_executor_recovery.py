"""Executor supervision: worker death, watchdog timeouts, serial fallback."""

from __future__ import annotations

import pytest

from repro.engine import ArtifactStore, EngineStats, ExecutionEngine
from repro.experiments.figure5 import figure5_definition
from repro.experiments.setup import ExperimentProfile

PROFILE = ExperimentProfile(
    name="robustness-test",
    instructions_per_benchmark=1_200,
    benchmarks=["gzip", "swim"],
    profile_budget=1_200,
)


def fig5_outputs(engine, jobs=None):
    definition = figure5_definition(PROFILE.benchmarks)
    return engine.run([definition], jobs=jobs)[definition.name]


def assert_outputs_equal(outputs, reference):
    assert set(outputs) == set(reference)
    for slot, result in reference.items():
        assert outputs[slot].metrics.summary() == result.metrics.summary()
        assert outputs[slot].misprediction_rate == result.misprediction_rate


@pytest.fixture(scope="module")
def clean_outputs():
    """The ground truth: a serial, fault-free run."""
    return fig5_outputs(ExecutionEngine(PROFILE))


def _boom(payload):
    """A worker raising an ordinary exception (module-level: picklable)."""
    raise ValueError("job-level failure")


class TestWorkerDeath:
    def test_killed_worker_is_recovered_bit_identically(
        self, activate_faults, clean_outputs, tmp_path
    ):
        activate_faults("kill-worker-on-nth-simulate:1")
        store = ArtifactStore(str(tmp_path / "cache"))
        engine = ExecutionEngine(PROFILE, store=store, jobs=2)
        outputs = fig5_outputs(engine)
        assert_outputs_equal(outputs, clean_outputs)
        assert engine.stats.workers_lost >= 1
        assert engine.stats.jobs_retried >= 1

    def test_recovery_without_a_store(self, activate_faults, clean_outputs):
        activate_faults("kill-worker-on-nth-simulate:1")
        engine = ExecutionEngine(PROFILE, jobs=2)
        outputs = fig5_outputs(engine)
        assert_outputs_equal(outputs, clean_outputs)
        assert engine.stats.workers_lost >= 1

    def test_exhausted_retries_degrade_to_serial(
        self, activate_faults, clean_outputs, tmp_path
    ):
        activate_faults("kill-worker-on-nth-simulate:1")
        store = ArtifactStore(str(tmp_path / "cache"))
        engine = ExecutionEngine(PROFILE, store=store, jobs=2, max_retries=0)
        outputs = fig5_outputs(engine)
        assert_outputs_equal(outputs, clean_outputs)
        assert engine.stats.workers_lost >= 1
        # Budget exhausted on the first loss: nothing was retried on a pool.
        assert engine.stats.jobs_retried == 0

    def test_ordinary_worker_exceptions_still_propagate(self, monkeypatch):
        """A job failure is not a worker failure: no retry, no swallowing."""
        import repro.engine.executor as executor_module

        monkeypatch.setattr(executor_module, "_execute_cell", _boom)
        engine = ExecutionEngine(PROFILE, jobs=2)
        with pytest.raises(ValueError, match="job-level failure"):
            fig5_outputs(engine)
        assert engine.stats.workers_lost == 0
        assert engine.stats.jobs_retried == 0


class TestWatchdog:
    def test_stalled_pool_is_killed_and_retried(
        self, activate_faults, clean_outputs, tmp_path
    ):
        activate_faults("stall-simulate:30")
        store = ArtifactStore(str(tmp_path / "cache"))
        engine = ExecutionEngine(PROFILE, store=store, jobs=2, job_timeout=2.0)
        outputs = fig5_outputs(engine)
        assert_outputs_equal(outputs, clean_outputs)
        assert engine.stats.jobs_timed_out >= 1
        assert engine.stats.workers_lost >= 1

    def test_no_timeout_without_watchdog_window(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        engine = ExecutionEngine(PROFILE, store=store, jobs=2)
        fig5_outputs(engine)
        assert engine.stats.jobs_timed_out == 0
        assert engine.stats.workers_lost == 0


class TestStats:
    def test_recovery_fields_merge_and_render(self):
        stats = EngineStats()
        stats.merge({"workers_lost": 2, "jobs_retried": 3, "jobs_timed_out": 1})
        assert stats.workers_lost == 2
        rendered = stats.render()
        assert "recovered from 2 lost workers" in rendered
        assert "3 jobs retried" in rendered

    def test_clean_render_omits_recovery(self):
        assert "recovered" not in EngineStats().render()
