"""Chaos parity: faulted parallel sweeps produce bit-identical results.

The acceptance criterion of the fault-tolerance layer, as tests: a
``--jobs 4`` Figure 5 sweep under every fault permutation — a worker
killed mid-run, artifacts corrupted or truncated at rest, and their
combination — completes without hanging and with per-cell counters
bit-identical to a clean serial run.  A second run over the *same* store
then proves the at-rest damage was quarantined and regenerated rather
than silently served.
"""

from __future__ import annotations

import pytest

from repro.engine import ArtifactStore, ExecutionEngine
from repro.engine.store import RESULTS, TRACES
from repro.experiments.figure5 import figure5_definition
from repro.experiments.setup import ExperimentProfile

PROFILE = ExperimentProfile(
    name="chaos-parity",
    instructions_per_benchmark=1_200,
    benchmarks=["gzip", "swim", "mcf"],
    profile_budget=1_200,
)

#: The CI chaos matrix: every injection point that can hit a sweep, alone
#: and combined.  (drop-http-response has no engine-side site; it is
#: exercised by the serve-resilience suite.)
FAULT_SPECS = [
    "kill-worker-on-nth-simulate:1",
    "corrupt-artifact-bytes:1",
    "truncate-payload:1",
    "kill-worker-on-nth-simulate:1,corrupt-artifact-bytes:1",
]


def fig5_outputs(engine):
    definition = figure5_definition(PROFILE.benchmarks)
    return engine.run([definition])[definition.name]


def assert_outputs_equal(outputs, reference):
    assert set(outputs) == set(reference)
    for slot, result in reference.items():
        assert outputs[slot].metrics.summary() == result.metrics.summary()
        assert outputs[slot].misprediction_rate == result.misprediction_rate


@pytest.fixture(scope="module")
def clean_outputs():
    """The ground truth: a serial, fault-free, store-less run."""
    return fig5_outputs(ExecutionEngine(PROFILE))


@pytest.mark.parametrize("spec", FAULT_SPECS)
def test_faulted_parallel_sweep_is_bit_identical(
    spec, activate_faults, clean_outputs, tmp_path
):
    activate_faults(spec)
    store = ArtifactStore(str(tmp_path / "cache"))

    # Run 1, faults armed: the sweep must complete (no waiter hangs) with
    # counters identical to the clean run, recovering whatever fires.
    first = ExecutionEngine(PROFILE, store=store, jobs=4)
    assert_outputs_equal(fig5_outputs(first), clean_outputs)
    if "kill-worker" in spec:
        assert first.stats.workers_lost >= 1
        assert first.stats.jobs_retried >= 1
        assert "recovered from" in first.stats.render()

    # Run 2 on the SAME store: every one-shot fault has been claimed, so
    # this run is clean — and any at-rest damage run 1 left behind must be
    # detected by the digest check, quarantined, and regenerated.  Dropping
    # the cached results and traces forces the rerun to read the binary
    # artifacts back (a result-level cache hit would never touch them).
    store.clear(RESULTS)
    store.clear(TRACES)
    second = ExecutionEngine(PROFILE, store=store, jobs=4)
    assert_outputs_equal(fig5_outputs(second), clean_outputs)
    assert second.stats.workers_lost == 0

    if "corrupt-artifact-bytes" in spec or "truncate-payload" in spec:
        # The damaged artifact ended in quarantine (during whichever run
        # first read it back), never in a result.
        assert store.quarantine_usage()["count"] >= 1


def test_clean_parallel_sweep_reports_no_recovery(clean_outputs, tmp_path):
    store = ArtifactStore(str(tmp_path / "cache"))
    engine = ExecutionEngine(PROFILE, store=store, jobs=4)
    assert_outputs_equal(fig5_outputs(engine), clean_outputs)
    assert engine.stats.workers_lost == 0
    assert engine.stats.jobs_retried == 0
    assert engine.stats.jobs_timed_out == 0
    assert store.quarantine_usage() == {"count": 0, "bytes": 0}
