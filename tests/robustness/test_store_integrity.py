"""Store integrity: digest verification, quarantine, orphan-sidecar sweep."""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.binaries import BinaryFactory
from repro.emulator.executor import Emulator
from repro.emulator.tracepack import (
    ChunkedPackWriter,
    ChunkedTracePack,
    TracePack,
    pack_supported,
)
from repro.engine.store import BINARIES, CHECKPOINTS, RESULTS, TRACES, ArtifactStore
from repro.experiments.setup import make_predicate_scheme
from repro.pipeline.core import OutOfOrderCore
from repro.workloads.spec_suite import build_workload

BUDGET = 1_200


@pytest.fixture(scope="module")
def artifacts():
    """One compiled binary, its v1 (object) trace, and a simulation result."""
    factory = BinaryFactory(profile_budget=BUDGET)
    program = factory.build_baseline("gzip", lambda: build_workload("gzip"))
    trace = list(Emulator(program).run(BUDGET))
    result = OutOfOrderCore().run(
        iter(trace), make_predicate_scheme(), program_name="gzip"
    )
    return program, trace, result


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "cache"))


def _payload_objects(artifacts):
    """(kind, object) pairs covering all kinds and all three trace codecs."""
    program, trace, result = artifacts
    pairs = [
        (BINARIES, program),
        (TRACES, trace),
        (RESULTS, result),
        # Checkpoints are pickled state blobs; integrity is codec-agnostic.
        (CHECKPOINTS, {"version": 1, "rows_done": 400, "state": list(range(64))}),
    ]
    if pack_supported():
        pack = TracePack.from_dyninsts(trace)
        pairs.append((TRACES, pack))
        half = len(trace) // 2
        pairs.append(
            (
                TRACES,
                ChunkedTracePack.from_segments(
                    [
                        TracePack.from_dyninsts(trace[:half]),
                        TracePack.from_dyninsts(trace[half:]),
                    ]
                ),
            )
        )
    return pairs


class TestDigest:
    def test_put_records_sha256(self, store, artifacts):
        program, _, _ = artifacts
        store.put(BINARIES, "k", program)
        with open(store._meta_path(BINARIES, "k"), encoding="utf-8") as handle:
            meta = json.load(handle)
        assert isinstance(meta["sha256"], str) and len(meta["sha256"]) == 64

    def test_clean_round_trip_still_hits(self, store, artifacts):
        _, _, result = artifacts
        store.put(RESULTS, "k", result)
        reloaded = store.get(RESULTS, "k")
        assert reloaded.metrics.summary() == result.metrics.summary()

    def test_legacy_sidecar_without_digest_still_reads(self, store, artifacts):
        _, _, result = artifacts
        store.put(RESULTS, "k", result)
        meta_path = store._meta_path(RESULTS, "k")
        with open(meta_path, encoding="utf-8") as handle:
            meta = json.load(handle)
        del meta["sha256"]
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)
        assert store.get(RESULTS, "k") is not None


class TestQuarantine:
    def test_bit_flip_quarantines_and_reports_miss(self, store, artifacts):
        _, _, result = artifacts
        path = store.put(RESULTS, "k", result)
        with open(path, "r+b") as handle:
            data = handle.read()
            handle.seek(len(data) // 2)
            handle.write(bytes([data[len(data) // 2] ^ 0xFF]))
        assert store.get(RESULTS, "k") is None
        assert not store.contains(RESULTS, "k")
        usage = store.quarantine_usage()
        assert usage["count"] == 1 and usage["bytes"] > 0
        entries = store.quarantine_entries()
        assert entries[0]["quarantine_reason"] == "payload digest mismatch"
        assert entries[0]["kind"] == RESULTS

    def test_quarantine_surfaces_in_usage_but_not_total(self, store, artifacts):
        _, _, result = artifacts
        path = store.put(RESULTS, "k", result)
        with open(path, "r+b") as handle:
            handle.write(b"\xff" * 8)
        store.get(RESULTS, "k")
        report = store.usage()
        assert report["quarantine"]["count"] == 1
        assert report["total"]["count"] == 0

    def test_clear_quarantine(self, store, artifacts):
        _, _, result = artifacts
        path = store.put(RESULTS, "k", result)
        with open(path, "r+b") as handle:
            handle.write(b"\xff" * 8)
        store.get(RESULTS, "k")
        assert store.clear_quarantine() == 1
        assert store.quarantine_usage() == {"count": 0, "bytes": 0}

    def test_store_clear_leaves_quarantine(self, store, artifacts):
        _, _, result = artifacts
        path = store.put(RESULTS, "k", result)
        with open(path, "r+b") as handle:
            handle.write(b"\xff" * 8)
        store.get(RESULTS, "k")
        store.clear()
        assert store.quarantine_usage()["count"] == 1

    def test_numpy_less_read_does_not_quarantine(self, store, artifacts, monkeypatch):
        """A PackBackendUnavailable decode is a miss, never a quarantine."""
        if not pack_supported():
            pytest.skip("columnar packs require numpy")
        _, trace, _ = artifacts
        store.put(TRACES, "k", TracePack.from_dyninsts(trace))
        import repro.emulator.tracepack as tracepack

        monkeypatch.setattr(tracepack, "_np", None)
        assert store.get(TRACES, "k") is None
        monkeypatch.undo()
        assert store.quarantine_usage()["count"] == 0
        assert store.get(TRACES, "k") is not None


class TestOrphanSidecars:
    def test_ensure_root_sweeps_orphaned_sidecars(self, store, artifacts):
        _, _, result = artifacts
        store.put(RESULTS, "keep", result)
        store.put(RESULTS, "orphan", result)
        os.remove(store.path(RESULTS, "orphan"))  # the crashed-remove shape
        store.ensure_root()
        assert not os.path.exists(store._meta_path(RESULTS, "orphan"))
        assert os.path.exists(store._meta_path(RESULTS, "keep"))
        assert store.get(RESULTS, "keep") is not None

    def test_swept_orphans_no_longer_skew_entries(self, store, artifacts):
        _, _, result = artifacts
        store.put(RESULTS, "orphan", result)
        os.remove(store.path(RESULTS, "orphan"))
        store.ensure_root()
        assert store.entries(RESULTS) == []


class TestCorruptionProperty:
    """Any corruption of any stored payload → quarantine + clean regeneration."""

    @given(
        which=st.integers(min_value=0, max_value=5),
        mode=st.sampled_from(["flip", "truncate"]),
        position=st.floats(min_value=0.0, max_value=0.999),
    )
    @settings(max_examples=20, deadline=None)
    def test_corruption_never_escapes_the_store(
        self, tmp_path_factory, artifacts, which, mode, position
    ):
        pairs = _payload_objects(artifacts)
        kind, obj = pairs[which % len(pairs)]
        store = ArtifactStore(str(tmp_path_factory.mktemp("chaos-store")))
        path = store.put(kind, "k", obj)
        size = os.path.getsize(path)
        offset = min(int(size * position), size - 1)
        if mode == "flip":
            with open(path, "r+b") as handle:
                handle.seek(offset)
                byte = handle.read(1)
                handle.seek(offset)
                handle.write(bytes([byte[0] ^ 0xFF]))
        else:
            with open(path, "r+b") as handle:
                handle.truncate(max(1, offset))
        # Never an exception: damaged artifacts read as a miss.
        assert store.get(kind, "k") is None
        assert store.quarantine_usage()["count"] == 1
        # Regeneration: a fresh put of the same object round-trips with
        # bit-identical counters.
        store.put(kind, "k", obj)
        reloaded = store.get(kind, "k")
        assert reloaded is not None
        if kind == RESULTS:
            assert reloaded.metrics.summary() == obj.metrics.summary()
        elif kind == TRACES:
            assert len(reloaded) == len(obj)


class TestStreamedAdoption:
    """``scratch_path`` + ``put_file``: the streamed-ingest write path."""

    def _write_chunked(self, store, trace, segment_rows=400):
        path = store.scratch_path(TRACES)
        with open(path, "wb") as handle:
            writer = ChunkedPackWriter(handle)
            for start in range(0, len(trace), segment_rows):
                writer.add_segment(
                    TracePack.from_dyninsts(trace[start : start + segment_rows])
                )
            rows = writer.finish()
        return path, rows

    def test_adopted_stream_round_trips(self, store, artifacts):
        if not pack_supported():
            pytest.skip("columnar packs require numpy")
        _, trace, _ = artifacts
        path, rows = self._write_chunked(store, trace)
        store.put_file(TRACES, "k", path, metadata={"instructions": rows})
        assert not os.path.exists(path)  # adopted, not copied
        loaded = store.get(TRACES, "k")
        assert isinstance(loaded, ChunkedTracePack)
        assert len(loaded) == len(trace)
        assert loaded.segment_count >= 2

    def test_adopted_stream_digest_detects_corruption(self, store, artifacts):
        if not pack_supported():
            pytest.skip("columnar packs require numpy")
        _, trace, _ = artifacts
        path, _ = self._write_chunked(store, trace)
        target = store.put_file(TRACES, "k", path)
        with open(target, "r+b") as handle:
            handle.seek(os.path.getsize(target) // 2)
            handle.write(b"\xff\xff\xff\xff")
        assert store.get(TRACES, "k") is None
        assert store.quarantine_usage()["count"] == 1

    def test_unfinished_stream_is_quarantined_not_misread(self, store, artifacts):
        if not pack_supported():
            pytest.skip("columnar packs require numpy")
        _, trace, _ = artifacts
        path, _ = self._write_chunked(store, trace)
        # The crashed-writer shape: adopt a stream missing its terminator.
        # put_file digests the bytes as-is, so the damage only surfaces at
        # decode time — which must quarantine, never return a partial trace.
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 8)
        store.put_file(TRACES, "k", path)
        assert store.get(TRACES, "k") is None
        entries = store.quarantine_entries()
        assert entries and "decode failed" in entries[0]["quarantine_reason"]

    def test_discard_removes_payload_and_sidecar(self, store, artifacts):
        _, _, result = artifacts
        store.put(CHECKPOINTS, "k", {"rows_done": 1, "state": result.metrics.cycles})
        assert store.contains(CHECKPOINTS, "k")
        store.discard(CHECKPOINTS, "k")
        assert not store.contains(CHECKPOINTS, "k")
        assert store.entries(CHECKPOINTS) == []
        store.discard(CHECKPOINTS, "k")  # idempotent
