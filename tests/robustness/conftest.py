"""Shared fixtures for the fault-injection (chaos) suite.

Every test starts with a clean fault state: no ``REPRO_FAULTS`` spec, no
claim markers, fresh per-process counters.  Tests opt into faults through
:func:`activate_faults`, which also points the cross-process claim
directory at a per-test scratch path so one-shot faults fire exactly once
per *test*, even across forked worker processes and retried pools.
"""

from __future__ import annotations

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    monkeypatch.delenv(faults.FAULTS_STATE_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture
def activate_faults(monkeypatch, tmp_path):
    """Turn on a ``REPRO_FAULTS`` spec with a per-test claim directory."""

    def _activate(spec: str) -> None:
        monkeypatch.setenv(faults.FAULTS_ENV, spec)
        monkeypatch.setenv(faults.FAULTS_STATE_ENV, str(tmp_path / "fault-state"))
        faults.reset()

    return _activate
