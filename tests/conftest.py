"""Shared fixtures for the test-suite."""

from __future__ import annotations

import os
import sys

# Allow running the tests without installing the package (e.g. straight from
# a source checkout): put src/ on the path if the package is not importable.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover
        sys.path.insert(0, _SRC)

import pytest

from repro.isa import GR, PR, CompareRelation
from repro.program import ProgramBuilder, validate_program


@pytest.fixture(autouse=True)
def _isolated_artifact_cache(tmp_path, monkeypatch):
    """Point the persistent artifact cache at a per-test scratch directory.

    Without this, tests that invoke the CLI (whose cache is on by default)
    would write a real ``.repro-cache`` into the working directory and could
    serve stale artifacts across test runs after source edits.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "artifact-cache"))


def build_counting_loop(n_values=None, threshold=4):
    """A small loop that sums array elements greater than ``threshold``.

    Returns ``(program, expected_sum)``.  Used by emulator, pipeline and
    scheme tests as a well-understood, fully deterministic workload.
    """
    values = n_values if n_values is not None else [1, 5, 2, 7, 3, 9, 4, 0]
    pb = ProgramBuilder("counting-loop")
    base = pb.array("data", values)
    rb = pb.routine("main")
    rb.block("entry")
    rb.movi(GR(10), base)
    rb.movi(GR(11), 0)
    rb.movi(GR(12), len(values))
    rb.movi(GR(13), 0)
    rb.block("loop")
    rb.load(GR(14), GR(10))
    rb.cmp(CompareRelation.GT, PR(6), PR(7), GR(14), threshold)
    rb.add(GR(13), GR(13), GR(14), qp=PR(6))
    rb.addi(GR(10), GR(10), 8)
    rb.addi(GR(11), GR(11), 1)
    rb.cmp(CompareRelation.LT, PR(8), PR(9), GR(11), GR(12))
    rb.br_cond("loop", qp=PR(8))
    rb.block("exit")
    rb.br_ret()
    program = pb.finish()
    validate_program(program)
    expected = sum(v for v in values if v > threshold)
    return program, expected


def build_diamond_program(values=None):
    """A loop with an if-then-else diamond: r20 counts highs, r21 counts lows.

    Returns ``(program, expected_high_count, expected_low_count)``.
    """
    values = values if values is not None else [3, 9, 1, 8, 7, 2, 6, 5, 0, 4]
    pb = ProgramBuilder("diamond")
    base = pb.array("data", values)
    rb = pb.routine("main")
    rb.block("entry")
    rb.movi(GR(10), base)
    rb.movi(GR(11), 0)
    rb.movi(GR(12), len(values))
    rb.movi(GR(20), 0)
    rb.movi(GR(21), 0)
    rb.block("loop")
    rb.load(GR(14), GR(10))
    rb.cmp(CompareRelation.GT, PR(6), PR(7), GR(14), 5)
    rb.br_cond("else_side", qp=PR(7))
    rb.block("then_side")
    rb.addi(GR(20), GR(20), 1)
    rb.br("join")
    rb.block("else_side")
    rb.addi(GR(21), GR(21), 1)
    rb.block("join")
    rb.addi(GR(10), GR(10), 8)
    rb.addi(GR(11), GR(11), 1)
    rb.cmp(CompareRelation.LT, PR(8), PR(9), GR(11), GR(12))
    rb.br_cond("loop", qp=PR(8))
    rb.block("exit")
    rb.br_ret()
    program = pb.finish()
    validate_program(program)
    highs = sum(1 for v in values if v > 5)
    lows = len(values) - highs
    return program, highs, lows


@pytest.fixture
def counting_loop():
    return build_counting_loop()


@pytest.fixture
def diamond_program():
    return build_diamond_program()
