#!/usr/bin/env python
"""CI streaming smoke: ingest a large synthetic trace, simulate in windows,
kill the worker mid-run, resume, and demand bit-identical results.

The streaming-scale pipeline end-to-end (see docs/internals/traces.md):

1. **Generate** a multi-million-line synthetic ``.trace`` branch-outcome
   file (streamed to disk, never held in memory).
2. **Ingest** it through ``ingest_trace_file`` under :mod:`tracemalloc`
   and fail if the peak allocation exceeds a fixed ceiling — the
   line-iterating parser with bounded per-site windows must stay flat no
   matter how long the input grows.
3. **Reference** run: a serial, store-less engine simulates the ingested
   workload (trace collection itself streamed through chunked segments).
4. **Chaos** run: ``--jobs 2`` onto a fresh store with checkpointing
   enabled and ``kill-worker-on-nth-checkpoint`` armed — the worker dies
   right after persisting a checkpoint, the engine re-plans the job, and
   the retry must resume from the checkpoint and land bit-identical
   counters, leaving no checkpoint behind.

Usage::

    PYTHONPATH=src python scripts/streaming_smoke.py [lines] [budget]

``lines`` defaults to 2,000,000 trace lines; ``budget`` (the simulated
instruction budget) to 40,000.
"""

from __future__ import annotations

import os
import random
import sys
import tempfile
import time
import tracemalloc

#: Ingest peak-allocation ceiling.  The bounded-window parser needs ~2 MiB
#: for this site count; the margin absorbs allocator/platform noise while
#: still catching any return to whole-file buffering (~10x the input size).
INGEST_PEAK_CEILING = 48 << 20

#: Synthetic trace shape: enough sites to exercise aliasing, biased
#: outcomes so predictors have something to learn.
SITES = 48


def write_synthetic_trace(path: str, lines: int) -> None:
    rng = random.Random(20070211)
    pcs = [f"0x{0x400000 + 16 * i:x}" for i in range(SITES)]
    biases = [rng.random() for _ in range(SITES)]
    with open(path, "w", encoding="utf-8") as handle:
        for i in range(lines):
            site = rng.randrange(SITES)
            taken = rng.random() < biases[site]
            handle.write(f"{pcs[site]} {'T' if taken else 'N'}\n")
            if i % 500_000 == 0 and i:
                handle.flush()


def main() -> int:
    lines = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000_000
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 40_000
    scratch = tempfile.mkdtemp(prefix="repro-streaming-")
    trace_path = os.path.join(scratch, "synthetic.trace")

    started = time.perf_counter()
    write_synthetic_trace(trace_path, lines)
    print(
        f"generated {lines} trace lines "
        f"({os.path.getsize(trace_path) >> 20} MiB) "
        f"in {time.perf_counter() - started:.1f}s"
    )

    # Import (and ingest) before arming any fault.
    os.environ.pop("REPRO_FAULTS", None)
    from repro import faults
    from repro.engine import (
        BASELINE,
        IF_CONVERTED,
        ArtifactStore,
        CellRequest,
        ExecutionEngine,
        ExperimentDefinition,
        SchemeSpec,
    )
    from repro.engine.store import CHECKPOINTS
    from repro.experiments.setup import ExperimentProfile
    from repro.workloads.trace_ingest import ingest_trace_file

    started = time.perf_counter()
    tracemalloc.start()
    try:
        ingested = ingest_trace_file(trace_path, name="synthetic")
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    elapsed = time.perf_counter() - started
    print(
        f"ingested {lines} lines in {elapsed:.1f}s "
        f"({lines / elapsed / 1e6:.2f}M lines/s), "
        f"peak alloc {peak >> 20} MiB, {len(ingested.sites)} sites"
    )
    if peak > INGEST_PEAK_CEILING:
        print(
            f"FAIL: ingest peak allocation {peak} exceeds the "
            f"{INGEST_PEAK_CEILING} ceiling — streaming ingestion regressed",
            file=sys.stderr,
        )
        return 1

    profile = ExperimentProfile(
        name="streaming-smoke",
        instructions_per_benchmark=budget,
        benchmarks=[trace_path],
        # Clamped like the bench harness: a long profiling pass marks so
        # many branches convertible that if-conversion exhausts the
        # predicate register file on this synthetic workload.
        profile_budget=min(budget, 20_000),
    )
    # Two (flavour) cells so --jobs 2 really fans out to worker processes;
    # the kill-on-checkpoint fault fires in whichever worker checkpoints
    # second, and the engine must recover that cell.
    definition = ExperimentDefinition(
        name="streaming-smoke",
        requests=[
            CellRequest(trace_path, flavour, f"{flavour}/{kind}", SchemeSpec.make(kind))
            for flavour in (BASELINE, IF_CONVERTED)
            for kind in ("conventional", "predicate")
        ],
    )
    segment_rows = max(1_000, budget // 8)

    def outputs_of(engine):
        run = engine.run([definition])[definition.name]
        return {
            slot: (
                result.metrics.summary(),
                result.metrics.counters.as_dict(),
            )
            for slot, result in run.items()
        }

    reference = outputs_of(ExecutionEngine(profile, trace_segment_rows=segment_rows))
    print(f"reference run complete ({budget} instructions, 4 simulations)")

    # Arm the kill: the worker dies immediately after writing its second
    # checkpoint, so the retried job has something to resume from.
    os.environ[faults.FAULTS_ENV] = f"{faults.KILL_CHECKPOINT}:2"
    os.environ[faults.FAULTS_STATE_ENV] = os.path.join(scratch, "fault-state")
    store = ArtifactStore(os.path.join(scratch, "cache"))
    chaos = ExecutionEngine(
        profile,
        store=store,
        jobs=2,
        checkpoint_every=max(2_000, budget // 6),
        trace_segment_rows=segment_rows,
    )
    chaos_outputs = outputs_of(chaos)
    os.environ.pop(faults.FAULTS_ENV, None)
    os.environ.pop(faults.FAULTS_STATE_ENV, None)

    stats = chaos.stats
    print(
        f"chaos run: workers_lost={stats.workers_lost} "
        f"jobs_retried={stats.jobs_retried} "
        f"checkpoints_written={stats.checkpoints_written} "
        f"checkpoints_resumed={stats.checkpoints_resumed}"
    )
    if chaos_outputs != reference:
        print(
            "FAIL: resumed run diverged from the uninterrupted reference",
            file=sys.stderr,
        )
        return 1
    if stats.workers_lost < 1 or stats.jobs_retried < 1:
        print(
            "FAIL: the kill-on-checkpoint fault never fired "
            f"(workers_lost={stats.workers_lost}, jobs_retried={stats.jobs_retried})",
            file=sys.stderr,
        )
        return 1
    if stats.checkpoints_written < 1 or stats.checkpoints_resumed < 1:
        print(
            "FAIL: the retried job restarted instead of resuming "
            f"(written={stats.checkpoints_written}, "
            f"resumed={stats.checkpoints_resumed})",
            file=sys.stderr,
        )
        return 1
    leftovers = store.entries(CHECKPOINTS)
    if leftovers:
        print(
            f"FAIL: {len(leftovers)} checkpoint(s) left behind after results landed",
            file=sys.stderr,
        )
        return 1
    print("streaming smoke PASSED: flat-memory ingest, kill, resume, parity")
    return 0


if __name__ == "__main__":
    sys.exit(main())
