#!/usr/bin/env python
"""CI chaos smoke: a faulted parallel sweep must match a clean run.

Runs the Figure 5 sweep three times:

1. serially, with no faults and no store — the reference counters;
2. with ``--jobs 4`` onto a fresh store while the requested ``REPRO_FAULTS``
   spec is armed (worker kills, artifact corruption, ...);
3. with ``--jobs 4`` again over the *same* store after dropping the cached
   traces/results, so the rerun reads the (possibly damaged) binary
   artifacts back through the digest check.

Every run must produce bit-identical per-cell counters; a worker-kill spec
must additionally report lost workers and retried jobs, and a corruption
spec must leave the damaged artifact in quarantine rather than in a result.

Usage::

    PYTHONPATH=src python scripts/chaos_smoke.py [fault-spec] [budget]

The fault spec defaults to ``$REPRO_FAULTS`` or, failing that, to the
worker-kill + artifact-corruption combination.
"""

from __future__ import annotations

import os
import sys
import tempfile

DEFAULT_SPEC = "kill-worker-on-nth-simulate:1,corrupt-artifact-bytes:1"


def main() -> int:
    spec = sys.argv[1] if len(sys.argv) > 1 else os.environ.get("REPRO_FAULTS", "")
    spec = spec or DEFAULT_SPEC
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 2000
    scratch = tempfile.mkdtemp(prefix="repro-chaos-")

    # Import (and build the clean reference) before arming any fault.
    os.environ.pop("REPRO_FAULTS", None)
    from repro.engine import ArtifactStore, ExecutionEngine
    from repro.engine.store import RESULTS, TRACES
    from repro.experiments.figure5 import figure5_definition
    from repro.experiments.setup import ExperimentProfile

    profile = ExperimentProfile(
        name="chaos-smoke",
        instructions_per_benchmark=budget,
        benchmarks=["gzip", "swim", "mcf"],
        profile_budget=budget,
    )
    definition = figure5_definition(profile.benchmarks)

    def outputs_of(engine):
        run = engine.run([definition])[definition.name]
        return {
            slot: (result.metrics.summary(), result.misprediction_rate)
            for slot, result in run.items()
        }

    reference = outputs_of(ExecutionEngine(profile))

    # Arm the faults: the claim directory is shared by every forked worker,
    # so each one-shot fault fires exactly once across the whole run.
    os.environ["REPRO_FAULTS"] = spec
    os.environ["REPRO_FAULTS_STATE"] = os.path.join(scratch, "fault-state")
    print(f"chaos smoke: REPRO_FAULTS={spec} (budget {budget})")

    store = ArtifactStore(os.path.join(scratch, "cache"))
    first = ExecutionEngine(profile, store=store, jobs=4)
    if outputs_of(first) != reference:
        print("FAIL: faulted run diverged from the clean reference", file=sys.stderr)
        return 1
    if "kill-worker" in spec and not (
        first.stats.workers_lost >= 1 and first.stats.jobs_retried >= 1
    ):
        print(
            "FAIL: worker-kill spec ran without losing a worker "
            f"(workers_lost={first.stats.workers_lost}, "
            f"jobs_retried={first.stats.jobs_retried})",
            file=sys.stderr,
        )
        return 1

    # Force the rerun through the binary artifacts (a result-level cache
    # hit would never read the damaged payload back).
    store.clear(RESULTS)
    store.clear(TRACES)
    second = ExecutionEngine(profile, store=store, jobs=4)
    if outputs_of(second) != reference:
        print("FAIL: store rerun diverged from the clean reference", file=sys.stderr)
        return 1
    quarantined = store.quarantine_usage()
    damaging = ("corrupt-artifact-bytes" in spec) or ("truncate-payload" in spec)
    if damaging and quarantined["count"] < 1:
        print("FAIL: corruption spec left nothing in quarantine", file=sys.stderr)
        return 1

    print(f"  faulted run:  {first.stats.render()}")
    print(f"  store rerun:  {second.stats.render()}")
    print(f"  quarantined:  {quarantined['count']} artifact(s)")
    print("chaos smoke: OK (bit-identical under injected faults)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
