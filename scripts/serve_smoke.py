#!/usr/bin/env python
"""CI smoke test of the ``repro serve`` daemon, over real processes.

Starts the daemon as a subprocess on an ephemeral port, submits a
rob-scaling sweep at a small instruction budget through the ``repro
submit`` CLI, polls it to completion, then sends SIGTERM and asserts the
daemon exits cleanly (status 0).  Exercises exactly what a deployment
would: process startup, the HTTP API, the client CLI, and signal-driven
shutdown.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [instruction-budget]
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def main() -> int:
    budget = sys.argv[1] if len(sys.argv) > 1 else "3000"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env.setdefault("REPRO_CACHE_DIR", os.path.join(REPO_ROOT, ".serve-smoke-cache"))

    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--max-store-bytes", "64M"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    try:
        banner = daemon.stdout.readline()
        print(banner.strip())
        match = re.search(r"http://[\d.]+:\d+", banner)
        if not match:
            print("FAIL: daemon did not print its bound address", file=sys.stderr)
            return 1
        url = match.group(0)

        submit = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "--instructions",
                budget,
                "submit",
                "rob-scaling",
                "--url",
                url,
                "--timeout",
                "300",
            ],
            env=env,
            cwd=REPO_ROOT,
            timeout=420,
        )
        if submit.returncode != 0:
            print(f"FAIL: repro submit exited {submit.returncode}", file=sys.stderr)
            return 1

        daemon.send_signal(signal.SIGTERM)
        try:
            code = daemon.wait(timeout=30)
        except subprocess.TimeoutExpired:
            print("FAIL: daemon did not exit within 30s of SIGTERM", file=sys.stderr)
            return 1
        print(daemon.stdout.read(), end="")
        if code != 0:
            print(f"FAIL: daemon exited {code} on SIGTERM", file=sys.stderr)
            return 1
        print("serve smoke: OK (submit completed, daemon shut down cleanly)")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()


if __name__ == "__main__":
    sys.exit(main())
