#!/usr/bin/env python
"""CI smoke test of the ``repro serve`` daemon, over real processes.

Starts the daemon as a subprocess on an ephemeral port, submits a
rob-scaling sweep at a small instruction budget through the ``repro
submit`` CLI, follows with a cell-document submission of a wish-branch
cell (the non-paper scheme kinds go through the same submit path), polls
both to completion, then sends SIGTERM and asserts the daemon exits
cleanly (status 0).  A *second* daemon is then started over
the same cache directory: its job journal must list the first daemon's
job as done (``recovered``) and still serve its result — the restart
recovery path, over the wire.  Exercises exactly what a deployment
would: process startup, the HTTP API, the client CLI, signal-driven
shutdown, and journal-based recovery.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [instruction-budget]
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def start_daemon(env):
    daemon = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--max-store-bytes",
            "64M",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    banner = daemon.stdout.readline()
    print(banner.strip())
    match = re.search(r"http://[\d.]+:\d+", banner)
    return daemon, (match.group(0) if match else None)


def stop_daemon(daemon):
    """SIGTERM the daemon; return its exit code (None on timeout)."""
    daemon.send_signal(signal.SIGTERM)
    try:
        code = daemon.wait(timeout=30)
    except subprocess.TimeoutExpired:
        return None
    print(daemon.stdout.read(), end="")
    return code


def get_json(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read())


def main() -> int:
    budget = sys.argv[1] if len(sys.argv) > 1 else "3000"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env.setdefault("REPRO_CACHE_DIR", os.path.join(REPO_ROOT, ".serve-smoke-cache"))

    daemon, url = start_daemon(env)
    revived = None
    try:
        if url is None:
            print("FAIL: daemon did not print its bound address", file=sys.stderr)
            return 1

        submit = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "--instructions",
                budget,
                "submit",
                "rob-scaling",
                "--url",
                url,
                "--timeout",
                "300",
                "--retries",
                "3",
            ],
            env=env,
            cwd=REPO_ROOT,
            timeout=420,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        print(submit.stdout, end="")
        if submit.returncode != 0:
            print(f"FAIL: repro submit exited {submit.returncode}", file=sys.stderr)
            return 1
        match = re.search(r"job ([0-9a-f]+):", submit.stdout)
        if not match:
            print("FAIL: submit output did not name its job id", file=sys.stderr)
            return 1
        job_id = match.group(1)

        # A cell document naming a non-paper scheme kind: the wish-branch
        # scheme must flow through submit -> parse -> engine like any other.
        with tempfile.NamedTemporaryFile(
            "w", suffix=".json", dir=REPO_ROOT, delete=False
        ) as handle:
            json.dump(
                {
                    "cells": [
                        {"benchmark": "gzip", "scheme": {"kind": "wish"}},
                    ],
                    "instructions": int(budget),
                },
                handle,
            )
            cells_path = handle.name
        try:
            wish = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "submit",
                    cells_path,
                    "--url",
                    url,
                    "--timeout",
                    "300",
                    "--retries",
                    "3",
                ],
                env=env,
                cwd=REPO_ROOT,
                timeout=420,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
        finally:
            os.unlink(cells_path)
        print(wish.stdout, end="")
        if wish.returncode != 0:
            print(f"FAIL: wish-cell submit exited {wish.returncode}", file=sys.stderr)
            return 1
        if "wish" not in wish.stdout:
            print(
                "FAIL: wish-cell result does not mention the wish scheme",
                file=sys.stderr,
            )
            return 1

        code = stop_daemon(daemon)
        if code != 0:
            print(f"FAIL: daemon exited {code!r} on SIGTERM", file=sys.stderr)
            return 1

        # Restart over the same cache directory: the journal must bring the
        # finished job back, listable and with its result still servable.
        revived, revived_url = start_daemon(env)
        if revived_url is None:
            print("FAIL: restarted daemon printed no address", file=sys.stderr)
            return 1
        jobs = get_json(f"{revived_url}/v1/jobs")["jobs"]
        recovered = {job["id"]: job for job in jobs}.get(job_id)
        if recovered is None:
            print(
                f"FAIL: restarted daemon does not list job {job_id}",
                file=sys.stderr,
            )
            return 1
        if recovered["state"] != "done" or not recovered["recovered"]:
            print(
                f"FAIL: job {job_id} came back as {recovered['state']} "
                f"(recovered={recovered['recovered']}), expected a recovered "
                "'done'",
                file=sys.stderr,
            )
            return 1
        result = get_json(f"{revived_url}/v1/jobs/{job_id}/result?format=json")
        if not result.get("cells"):
            print(
                f"FAIL: recovered job {job_id} served no result cells",
                file=sys.stderr,
            )
            return 1

        code = stop_daemon(revived)
        if code != 0:
            print(f"FAIL: restarted daemon exited {code!r} on SIGTERM", file=sys.stderr)
            return 1
        print(
            "serve smoke: OK (submit completed, daemon restarted, "
            f"job {job_id} recovered from the journal)"
        )
        return 0
    finally:
        for process in (daemon, revived):
            if process is not None and process.poll() is None:
                process.kill()


if __name__ == "__main__":
    sys.exit(main())
