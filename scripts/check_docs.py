#!/usr/bin/env python
"""Check that intra-repository markdown links resolve.

Walks every ``*.md`` file of the repository (skipping VCS/cache
directories), extracts inline markdown links, and verifies that every
relative link points at an existing file or directory.  External links
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#...``) are not
checked.

Used by the CI ``docs`` job and by ``tests/docs/test_docs_consistency.py``;
run manually with::

    python scripts/check_docs.py [root]

Exits non-zero listing every broken link.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterator, List, Optional, Tuple

#: Inline markdown links: [text](target).  Reference-style links are not
#: used in this repository.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_SKIP_DIRS = {
    ".git",
    "__pycache__",
    ".repro-cache",
    ".ruff_cache",
    ".pytest_cache",
    "node_modules",
}


def markdown_files(root: str) -> Iterator[str]:
    """Yield every ``*.md`` path under ``root`` (skipping tool caches)."""
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def broken_links(
    root: str, files: Optional[List[str]] = None
) -> List[Tuple[str, str]]:
    """Return ``(markdown file, unresolved target)`` pairs under ``root``.

    ``files`` lets a caller that already walked the tree reuse its listing.
    """
    failures: List[Tuple[str, str]] = []
    for path in files if files is not None else markdown_files(root):
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]  # strip in-page anchors
            if not target:
                continue  # pure anchor into the same document
            resolved = os.path.normpath(os.path.join(os.path.dirname(path), target))
            if not os.path.exists(resolved):
                failures.append((os.path.relpath(path, root), match.group(1)))
    return failures


def main(argv: List[str]) -> int:
    root = os.path.abspath(argv[1]) if len(argv) > 1 else os.getcwd()
    files = list(markdown_files(root))
    failures = broken_links(root, files)
    checked = len(files)
    if failures:
        for path, target in failures:
            print(f"BROKEN {path}: ({target})")
        print(f"{len(failures)} broken link(s) across {checked} markdown file(s)")
        return 1
    print(f"ok: all intra-repo links resolve across {checked} markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
