#!/usr/bin/env python
"""Check that intra-repository markdown links resolve and docs are reachable.

Two checks over every ``*.md`` file of the repository (skipping VCS/cache
directories):

* **links** — every inline relative link points at an existing file or
  directory.  External links (``http(s)://``, ``mailto:``) and pure
  in-page anchors (``#...``) are not checked.
* **orphans** — every page under ``docs/`` is the target of at least one
  link from some *other* markdown file, so a new page cannot silently
  fall out of the README/architecture navigation.

Used by the CI ``docs`` job and by ``tests/docs/test_docs_consistency.py``;
run manually with::

    python scripts/check_docs.py [root]

Exits non-zero listing every broken link and orphaned page.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterator, List, Optional, Tuple

#: Inline markdown links: [text](target).  Reference-style links are not
#: used in this repository.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_SKIP_DIRS = {
    ".git",
    "__pycache__",
    ".repro-cache",
    ".ruff_cache",
    ".pytest_cache",
    "node_modules",
}


def markdown_files(root: str) -> Iterator[str]:
    """Yield every ``*.md`` path under ``root`` (skipping tool caches)."""
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def _iter_links(files: List[str]) -> Iterator[Tuple[str, str, str]]:
    """Yield ``(source file, raw target, resolved path)`` for every
    checkable intra-repo link — the single place the skip rules (external
    schemes, pure anchors) and path resolution live, so the broken-link and
    orphan checks can never disagree about what a link is."""
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        for match in _LINK.finditer(text):
            raw = match.group(1)
            if raw.startswith(("http://", "https://", "mailto:")):
                continue
            target = raw.split("#", 1)[0]  # strip in-page anchors
            if not target:
                continue  # pure anchor into the same document
            resolved = os.path.normpath(os.path.join(os.path.dirname(path), target))
            yield path, raw, resolved


def broken_links(
    root: str, files: Optional[List[str]] = None
) -> List[Tuple[str, str]]:
    """Return ``(markdown file, unresolved target)`` pairs under ``root``.

    ``files`` lets a caller that already walked the tree reuse its listing.
    """
    if files is None:
        files = list(markdown_files(root))
    return [
        (os.path.relpath(path, root), raw)
        for path, raw, resolved in _iter_links(files)
        if not os.path.exists(resolved)
    ]


def orphan_docs(root: str, files: Optional[List[str]] = None) -> List[str]:
    """Pages under ``docs/`` that no *other* markdown file links to."""
    if files is None:
        files = list(markdown_files(root))
    docs_root = os.path.abspath(os.path.join(root, "docs"))
    targets = {
        (os.path.abspath(path), os.path.abspath(resolved))
        for path, _, resolved in _iter_links(files)
        if os.path.exists(resolved)
    }
    orphans = []
    for path in files:
        page = os.path.abspath(path)
        if os.path.commonpath([docs_root, page]) != docs_root:
            continue
        if not any(resolved == page and source != page for source, resolved in targets):
            orphans.append(os.path.relpath(path, root))
    return orphans


def main(argv: List[str]) -> int:
    root = os.path.abspath(argv[1]) if len(argv) > 1 else os.getcwd()
    files = list(markdown_files(root))
    failures = broken_links(root, files)
    orphans = orphan_docs(root, files)
    checked = len(files)
    if failures or orphans:
        for path, target in failures:
            print(f"BROKEN {path}: ({target})")
        for path in orphans:
            print(f"ORPHAN {path}: no other markdown file links to it")
        print(
            f"{len(failures)} broken link(s), {len(orphans)} orphaned doc page(s) "
            f"across {checked} markdown file(s)"
        )
        return 1
    print(
        f"ok: all intra-repo links resolve and all docs pages are reachable "
        f"across {checked} markdown file(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
