#!/usr/bin/env python
"""Refresh the committed throughput baseline in one command.

Re-runs the quick bench suite (the same cells CI measures), rewrites
``benchmarks/baseline_bench.json`` with the new numbers and the machine
metadata of the host that produced them, and appends the run to the
performance trajectory under ``benchmarks/history/``.  Run it after a
deliberate performance change, commit the result, and the CI gate compares
future pull requests against it.

Usage::

    PYTHONPATH=src python scripts/update_bench_baseline.py [--repeat N] [--output PATH]
"""

from __future__ import annotations

import argparse
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.perf import bench  # noqa: E402
from repro.perf.report import render_table  # noqa: E402

DEFAULT_BASELINE = os.path.join(REPO_ROOT, "benchmarks", "baseline_bench.json")
DEFAULT_HISTORY = os.path.join(REPO_ROOT, "benchmarks", "history")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="simulate each cell N times and keep the fastest (default: 3)",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=DEFAULT_BASELINE,
        help=f"baseline path to rewrite (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--history",
        type=str,
        default=DEFAULT_HISTORY,
        help=f"history directory to append to (default: {DEFAULT_HISTORY}; "
        "empty string disables)",
    )
    args = parser.parse_args(argv)

    report = bench.run_bench(quick=True, repeats=args.repeat)
    print(render_table(report))
    path = bench.write_report(report, args.output)
    print(
        f"\nrewrote {path} (rev {report['revision']}, "
        f"normalized score {report['aggregate']['normalized_score']:.4f})"
    )
    if args.history:
        print(f"appended history to {bench.append_history(report, args.history)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
