#!/usr/bin/env python
"""Correlation-loss study: why if-conversion hurts a conventional predictor.

This example isolates the central mechanism of the paper.  It builds one
control-heavy benchmark whose *remaining* branches correlate with the
conditions of branches that if-conversion removes, then measures — on the
identical dynamic trace — how each scheme predicts each static branch site.

The printout shows, per branch site of the if-converted binary:

* its dynamic execution count and taken rate;
* the misprediction rate of the conventional two-level predictor (which has
  lost the removed branches' history bits);
* the misprediction rate of the predicate predictor (which still sees every
  compare), and how often the branch was early-resolved.

Run with::

    python examples/correlation_loss_study.py [benchmark] [budget]
"""

import sys
from collections import defaultdict

from repro.compiler import BinaryFactory
from repro.core import ConventionalScheme, PredicatePredictionScheme
from repro.emulator import Emulator
from repro.pipeline import OutOfOrderCore
from repro.api import build_workload
from repro.stats.reporting import format_table


def per_site_stats(records):
    """Aggregate BranchRecord lists per static branch PC."""
    sites = defaultdict(lambda: {"count": 0, "taken": 0, "wrong": 0, "early": 0})
    for record in records:
        site = sites[record.pc]
        site["count"] += 1
        site["taken"] += record.actual
        site["wrong"] += record.mispredicted
        site["early"] += record.early_resolved
    return sites


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "crafty"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 25_000

    factory = BinaryFactory()
    pair = factory.build_pair(benchmark, lambda: build_workload(benchmark))
    trace = list(Emulator(pair.if_converted).run(budget))
    print(
        f"{benchmark}: {pair.removed_branches} branches removed by if-conversion, "
        f"{len(trace)} dynamic instructions simulated"
    )

    conventional = OutOfOrderCore().run(iter(trace), ConventionalScheme(), benchmark)
    predicate = OutOfOrderCore().run(iter(trace), PredicatePredictionScheme(), benchmark)

    conventional_sites = per_site_stats(conventional.accuracy.records)
    predicate_sites = per_site_stats(predicate.accuracy.records)

    rows = []
    for pc in sorted(conventional_sites):
        conv = conventional_sites[pc]
        pred = predicate_sites[pc]
        rows.append(
            [
                f"{pc:#x}",
                conv["count"],
                f"{100 * conv['taken'] / conv['count']:.0f}%",
                f"{100 * conv['wrong'] / conv['count']:.1f}%",
                f"{100 * pred['wrong'] / pred['count']:.1f}%",
                f"{100 * pred['early'] / pred['count']:.0f}%",
            ]
        )
    print()
    print(
        format_table(
            ["branch PC", "execs", "taken", "conv mispred", "pred mispred", "early-resolved"],
            rows,
            title=f"{benchmark} (if-converted): per-branch-site comparison",
        )
    )

    print()
    print(
        f"overall: conventional {100 * conventional.misprediction_rate:.2f}% vs "
        f"predicate predictor {100 * predicate.misprediction_rate:.2f}% "
        f"({100 * (conventional.misprediction_rate - predicate.misprediction_rate):.2f}% "
        f"accuracy recovered by keeping the compares' correlation information)"
    )


if __name__ == "__main__":
    main()
