#!/usr/bin/env python
"""Quickstart: simulate one benchmark under all three prediction schemes.

This example walks the full public API path:

1. build a synthetic SPEC2000-like benchmark (``twolf``);
2. compile it twice — without predication and with if-conversion;
3. run both binaries on the out-of-order core under the conventional
   two-level predictor, the PEP-PA predictor and the paper's predicate
   predictor;
4. print misprediction rates, early-resolved fractions and IPC, next to the
   Table 1 machine configuration.

Run with::

    python examples/quickstart.py [benchmark-name] [instruction-budget]
"""

import sys

from repro.compiler import BinaryFactory
from repro.core import ConventionalScheme, PEPPAScheme, PredicatePredictionScheme
from repro.emulator import Emulator
from repro.experiments.setup import paper_table1
from repro.pipeline import OutOfOrderCore
from repro.stats.reporting import format_table
from repro.workloads import build_workload, workload_names


def simulate(program, scheme, budget):
    """Run ``program`` for ``budget`` fetched instructions under ``scheme``."""
    core = OutOfOrderCore()
    trace = Emulator(program).run(budget)
    return core.run(trace, scheme, program_name=program.name)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "twolf"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    if benchmark not in workload_names():
        raise SystemExit(f"unknown benchmark {benchmark!r}; pick one of {workload_names()}")

    print("Simulated machine (Table 1)")
    print("-" * 60)
    for key, value in paper_table1().items():
        print(f"{key:28s} {value}")
    print()

    factory = BinaryFactory()
    pair = factory.build_pair(benchmark, lambda: build_workload(benchmark))
    print(
        f"benchmark {benchmark!r}: if-conversion removed "
        f"{pair.removed_branches} hard-to-predict branches"
    )
    print()

    schemes = {
        "conventional": ConventionalScheme,
        "pep-pa": PEPPAScheme,
        "predicate-predictor": PredicatePredictionScheme,
    }

    for flavour, program in (("non-if-converted", pair.baseline),
                             ("if-converted", pair.if_converted)):
        rows = []
        for label, scheme_class in schemes.items():
            result = simulate(program, scheme_class(), budget)
            rows.append(
                [
                    label,
                    f"{100 * result.misprediction_rate:.2f}%",
                    f"{100 * result.accuracy.early_resolved_fraction:.1f}%",
                    f"{result.ipc:.3f}",
                    f"{result.metrics.cancelled_at_rename}",
                ]
            )
        print(
            format_table(
                ["scheme", "mispredict", "early-resolved", "IPC", "cancelled@rename"],
                rows,
                title=f"{benchmark} - {flavour} binary ({budget} instructions)",
            )
        )
        print()


if __name__ == "__main__":
    main()
