#!/usr/bin/env python
"""Reproduce every figure of the paper's evaluation in one run.

Runs Figure 5, Figure 6a/6b, the idealized-predictor study and the selective
predicated-execution IPC comparison over the full 22-program synthetic
suite, and prints the paper's headline numbers next to the measured ones.

This is the script behind EXPERIMENTS.md.  A full run takes several minutes
in pure Python; pass a smaller per-benchmark instruction budget or a
benchmark subset to iterate faster::

    python examples/reproduce_paper_figures.py                 # full suite
    python examples/reproduce_paper_figures.py 10000           # smaller budget
    python examples/reproduce_paper_figures.py 10000 gzip,swim # subset
"""

import sys
import time

from repro.api import BASELINE, ExecutionEngine, IF_CONVERTED
from repro.experiments import (
    run_figure5,
    run_figure6,
    run_idealized_study,
    run_selective_ipc,
)
from repro.experiments.setup import ExperimentProfile, paper_table1


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    benchmarks = sys.argv[2].split(",") if len(sys.argv) > 2 else None
    profile = ExperimentProfile(
        name="figures",
        instructions_per_benchmark=budget,
        benchmarks=benchmarks,
        profile_budget=min(budget, 20_000),
    )
    engine = ExecutionEngine(profile)
    started = time.time()

    print("Table 1 - main architectural parameters")
    print("-" * 60)
    for key, value in paper_table1().items():
        print(f"{key:28s} {value}")

    print()
    figure5 = run_figure5(engine=engine)
    print(figure5.render())

    print()
    figure6 = run_figure6(engine=engine)
    print(figure6.render())

    print()
    idealized = run_idealized_study(BASELINE, engine=engine)
    print(idealized.render())

    print()
    idealized_converted = run_idealized_study(IF_CONVERTED, engine=engine)
    print(idealized_converted.render())

    print()
    ipc = run_selective_ipc(engine=engine)
    print(ipc.render())

    print()
    print(f"total wall-clock time: {time.time() - started:.0f} s")


if __name__ == "__main__":
    main()
