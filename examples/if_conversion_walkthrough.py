#!/usr/bin/env python
"""Figure 1 walkthrough: what if-conversion does to the code.

Builds a small routine shaped like Figure 1a of the paper — two nested
hard-to-predict conditions guarding an early return — then runs the
if-converter and prints the before/after disassembly, pointing out the
phenomena the paper builds on:

* the removed conditional branches (their correlation information leaves a
  conventional branch predictor's history);
* the guarded *region branch* (``(p) br.ret``) that now needs prediction at
  every fetch;
* the ``cmp.unc`` compares produced for the nested condition;
* the unchanged architectural results (both versions are executed to
  completion and compared).

Run with::

    python examples/if_conversion_walkthrough.py
"""

from repro.compiler.if_conversion import IfConversionOptions, IfConversionPass
from repro.emulator import Emulator
from repro.isa import GR, PR, CompareRelation, disassemble
from repro.program import ProgramBuilder, validate_program


def build_figure1_like_program():
    """A loop whose body mirrors Figure 1a: nested conditions + early exit."""
    values_a = [3, 9, 1, 8, 2, 7, 4, 6, 0, 5] * 4
    values_b = [7, 2, 8, 1, 9, 3, 6, 4, 5, 0] * 4
    pb = ProgramBuilder("figure1")
    base_a = pb.array("cond1_data", values_a)
    base_b = pb.array("cond2_data", values_b)
    rb = pb.routine("main")

    rb.block("entry")
    rb.movi(GR(10), base_a)
    rb.movi(GR(11), base_b)
    rb.movi(GR(1), 0)                 # i
    rb.movi(GR(2), len(values_a))     # n
    rb.movi(GR(32), 0)                # r32 of Figure 1
    rb.movi(GR(33), 0)                # r33 of Figure 1
    rb.movi(GR(35), 0)                # r35 of Figure 1

    rb.block("loop")
    rb.load(GR(20), GR(10))
    rb.cmp(CompareRelation.GT, PR(1), PR(2), GR(20), 5)   # cond1 -> p1/p2
    rb.br_cond("cond1_true", qp=PR(1))

    rb.block("cond1_false")
    rb.movi(GR(32), 1, )
    rb.load(GR(21), GR(11))
    rb.cmp(CompareRelation.GT, PR(3), PR(4), GR(21), 5)   # cond2 -> p3/p4
    rb.br_cond("skip_exit", qp=PR(4))
    rb.block("early_exit")
    rb.addi(GR(35), GR(35), 1)
    rb.br("latch")                     # escapes the region (Figure 1a br.ret)
    rb.block("skip_exit")
    rb.br("join")

    rb.block("cond1_true")
    rb.movi(GR(32), 0)

    rb.block("join")
    rb.add(GR(33), GR(33), GR(32))

    rb.block("latch")
    rb.addi(GR(10), GR(10), 8)
    rb.addi(GR(11), GR(11), 8)
    rb.addi(GR(1), GR(1), 1)
    rb.cmp(CompareRelation.LT, PR(6), PR(7), GR(1), GR(2))
    rb.br_cond("loop", qp=PR(6))

    rb.block("exit")
    rb.br_ret()
    program = pb.finish()
    validate_program(program)
    return program


def run_to_completion(program):
    emulator = Emulator(program)
    list(emulator.run(200_000))
    assert emulator.halted
    return emulator.state


def main() -> None:
    original = build_figure1_like_program()
    print("=" * 72)
    print("Original code (Figure 1a shape): multiple control-flow paths")
    print("=" * 72)
    print(disassemble(original.routine("main").instructions(), with_addresses=False))

    converted = build_figure1_like_program()
    report = IfConversionPass(IfConversionOptions(ignore_profile=True, max_passes=3)).run(
        converted
    )
    converted.layout()
    validate_program(converted)

    print()
    print("=" * 72)
    print("If-converted code (Figure 1b shape): paths collapsed, code predicated")
    print("=" * 72)
    print(disassemble(converted.routine("main").instructions(), with_addresses=False))

    print()
    print(
        f"branches removed by if-conversion: {report.total_converted} "
        f"(hammocks={report.converted_hammocks}, diamonds={report.converted_diamonds}, "
        f"escapes={report.converted_escapes})"
    )
    print(f"guarded region branches created: {report.region_branches_created}")

    before = run_to_completion(original)
    after = run_to_completion(converted)
    registers = [32, 33, 35]
    print()
    print("architectural results (must match):")
    for register in registers:
        print(
            f"  r{register}: original={before.general[register]} "
            f"if-converted={after.general[register]}"
        )
    assert [before.general[r] for r in registers] == [after.general[r] for r in registers]
    print("identical - if-conversion preserved the program's semantics")


if __name__ == "__main__":
    main()
