#!/usr/bin/env python
"""Custom workloads end-to-end: declare a spec, ingest a trace, simulate both.

This example walks the whole custom-workload subsystem
(``docs/workloads.md``):

1. declare a new benchmark as a **workload spec** (the same document a
   ``.toml``/``.json`` file would hold), validate it, and write it to disk;
2. synthesise a small CBP-style **branch-outcome trace** and ingest it as a
   second benchmark;
3. resolve both through the **workload registry** — by file path, exactly
   as ``--benchmarks`` would — and simulate them next to a built-in
   program under the conventional and predicate-prediction schemes;
4. print the misprediction/IPC table plus each workload's registry
   provenance and content fingerprint.

Run with::

    python examples/custom_workload.py [instruction-budget]
"""

import json
import os
import sys
import tempfile

from repro.api import ExecutionEngine, IF_CONVERTED, SchemeSpec, resolve_workload
from repro.experiments.setup import ExperimentProfile
from repro.stats.reporting import format_table
from repro.workloads import parse_workload

#: The spec document: a moderately hard integer benchmark with one
#: correlated branch — the mechanism Figure 6 measures.
SPEC = {
    "workload": {
        "name": "example-spec",
        "category": "int",
        "seed": 1234,
        "filler_alu": 5,
    },
    "hard_regions": [
        {"bias": 0.62, "body_size": 4, "kind": "hammock"},
        {"bias": 0.7, "body_size": 4, "kind": "diamond"},
    ],
    "correlated_branches": [
        {"sources": [0, 1], "op": "or", "lag": 1, "noise": 0.08, "early_compare": True}
    ],
    "easy_branches": [{"bias": 0.94, "body_size": 3, "early_compare": True}],
}


def synthesize_trace_text(lines=600):
    """A deterministic two-site outcome stream (no recording hardware here)."""
    out = ["# synthetic capture: one hard site, one well-biased site"]
    state = 12345
    for _ in range(lines):
        state = (1103515245 * state + 12345) % (1 << 31)
        out.append(f"0x4000 {'T' if state % 100 < 60 else 'N'}")
        state = (1103515245 * state + 12345) % (1 << 31)
        out.append(f"0x4010 {'T' if state % 100 < 96 else 'N'}")
    return "\n".join(out)


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000

    # Eager validation happens before anything is written or compiled.
    parse_workload(SPEC)

    with tempfile.TemporaryDirectory(prefix="repro-custom-workload-") as scratch:
        spec_path = os.path.join(scratch, "example-spec.json")
        with open(spec_path, "w", encoding="utf-8") as handle:
            json.dump(SPEC, handle, indent=2)
        trace_path = os.path.join(scratch, "captured.trace")
        with open(trace_path, "w", encoding="utf-8") as handle:
            handle.write(synthesize_trace_text())

        benchmarks = ["gzip", spec_path, trace_path]

        print("workload registry resolution")
        print("-" * 72)
        for benchmark in benchmarks:
            definition = resolve_workload(benchmark)
            print(
                f"{definition.display_name:14s} [{definition.origin:9s}] "
                f"fingerprint {definition.fingerprint[:12]}  "
                f"{definition.traits.describe()}"
            )
        print()

        profile = ExperimentProfile(
            name="custom-workload-example",
            instructions_per_benchmark=budget,
            benchmarks=benchmarks,
            profile_budget=min(budget, 20_000),
        )
        engine = ExecutionEngine(profile, store=None)
        schemes = {
            "conventional": SchemeSpec.make("conventional"),
            "predicate": SchemeSpec.make("predicate"),
        }
        rows = []
        for benchmark in benchmarks:
            display = resolve_workload(benchmark).display_name
            for label, spec in schemes.items():
                result = engine.simulate(benchmark, IF_CONVERTED, spec)
                rows.append(
                    [
                        display,
                        label,
                        f"{100 * result.misprediction_rate:.2f}%",
                        f"{100 * result.accuracy.early_resolved_fraction:.1f}%",
                        f"{result.ipc:.3f}",
                    ]
                )
        print(
            format_table(
                ["workload", "scheme", "mispredict", "early-resolved", "IPC"],
                rows,
                title=f"if-converted binaries, {budget} instructions",
            )
        )
        print()
        print(
            "spec and trace workloads work everywhere a benchmark name does:\n"
            f"  python -m repro --benchmarks {os.path.basename(spec_path)} figure6\n"
            "  python -m repro workloads describe <path>\n"
            "(see docs/workloads.md for both file formats)"
        )


if __name__ == "__main__":
    main()
