"""Result tables: the structure each experiment returns.

A :class:`ResultTable` holds one row per benchmark program and one column
per scheme/metric, plus derived summary rows (mean, and "accuracy delta"
rows matching how the paper reports improvements, e.g. "on average, it
obtains an accuracy increase of 1.5%").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro.stats.reporting import format_table


@dataclass
class ResultTable:
    """A named table of per-benchmark results."""

    title: str
    columns: List[str]
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def add_row(self, benchmark: str, values: Dict[str, float]) -> None:
        missing = set(self.columns) - set(values)
        if missing:
            raise ValueError(f"row {benchmark!r} missing columns: {sorted(missing)}")
        self.rows[benchmark] = {c: float(values[c]) for c in self.columns}

    @classmethod
    def from_results(
        cls,
        title: str,
        columns: Sequence[str],
        benchmarks: Sequence[str],
        outputs: Mapping[Tuple[str, str], object],
        value: Callable[[object], float] = lambda r: r.misprediction_rate,
    ) -> "ResultTable":
        """Build a table from experiment-engine outputs.

        ``outputs`` maps (benchmark, column-label) to a simulation result —
        the structure :meth:`repro.engine.ExecutionEngine.run` returns per
        experiment; ``value`` extracts the tabulated metric from each result.
        """
        table = cls(title=title, columns=list(columns))
        for benchmark in benchmarks:
            table.add_row(
                benchmark,
                {c: value(outputs[(benchmark, c)]) for c in table.columns},
            )
        return table

    # ------------------------------------------------------------------
    def column(self, name: str) -> List[float]:
        return [self.rows[b][name] for b in self.rows]

    def mean(self, name: str) -> float:
        values = self.column(name)
        return sum(values) / len(values) if values else 0.0

    def benchmarks(self) -> List[str]:
        return list(self.rows)

    def value(self, benchmark: str, column: str) -> float:
        return self.rows[benchmark][column]

    def delta(self, better: str, baseline: str) -> float:
        """Average (baseline − better) across benchmarks.

        When columns hold misprediction rates, a positive delta means the
        ``better`` column achieves that much *accuracy increase* on average,
        matching the paper's phrasing.
        """
        return self.mean(baseline) - self.mean(better)

    def wins(self, candidate: str, baseline: str) -> int:
        """Number of benchmarks where ``candidate`` is strictly lower."""
        return sum(
            1
            for b in self.rows
            if self.rows[b][candidate] < self.rows[b][baseline]
        )

    # ------------------------------------------------------------------
    def render(self, percent: bool = True, decimals: int = 2) -> str:
        def fmt(value: float) -> str:
            if percent:
                return f"{100.0 * value:.{decimals}f}"
            return f"{value:.{decimals}f}"

        body = [
            [name] + [fmt(self.rows[name][c]) for c in self.columns]
            for name in self.rows
        ]
        body.append(
            ["average"] + [fmt(self.mean(c)) for c in self.columns]
        )
        unit = " (%)" if percent else ""
        headers = ["benchmark"] + [c + unit for c in self.columns]
        return format_table(headers, body, title=self.title)

    def __repr__(self) -> str:
        return f"<ResultTable {self.title!r}: {len(self.rows)} rows>"
