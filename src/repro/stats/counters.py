"""A small named-counter container used across the simulator."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple


class CounterSet:
    """A dictionary of named integer counters with convenience helpers."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)

    def bump(self, name: str, amount: int = 1) -> None:
        self._counters[name] += amount

    def set(self, name: str, value: int) -> None:
        self._counters[name] = value

    def get(self, name: str) -> int:
        return self._counters.get(name, 0)

    def ratio(self, numerator: str, denominator: str) -> float:
        denom = self.get(denominator)
        return self.get(numerator) / denom if denom else 0.0

    def merge(self, other: "CounterSet") -> None:
        for name, value in other.items():
            self._counters[name] += value

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._counters.items()))

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counters)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __repr__(self) -> str:
        return f"<CounterSet {dict(self._counters)!r}>"
