"""Branch-prediction accuracy accounting.

Every scheme records one :class:`BranchRecord` per dynamic conditional
branch.  Keeping the full per-branch vector (rather than only aggregate
counts) is what allows the Figure 6b breakdown, which needs to intersect
"early-resolved in the predicate scheme" with "mispredicted by the
conventional scheme" on a per-dynamic-branch basis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class BranchRecord:
    """Outcome of predicting one dynamic conditional branch."""

    pc: int
    actual: bool
    predicted: bool
    #: Prediction made by the fast first-level predictor at fetch (if any).
    fetch_prediction: Optional[bool] = None
    #: True when the guarding predicate's computed value was already
    #: available when the branch renamed (the paper's early-resolved case).
    early_resolved: bool = False

    @property
    def mispredicted(self) -> bool:
        return self.predicted != self.actual

    @property
    def overridden(self) -> bool:
        return self.fetch_prediction is not None and self.fetch_prediction != self.predicted


@dataclass
class BranchAccuracy:
    """Aggregated prediction accuracy over one simulation run."""

    records: List[BranchRecord] = field(default_factory=list)

    def record(self, record: BranchRecord) -> None:
        self.records.append(record)

    # ------------------------------------------------------------------
    @property
    def branches(self) -> int:
        return len(self.records)

    @property
    def mispredictions(self) -> int:
        return sum(1 for r in self.records if r.mispredicted)

    @property
    def misprediction_rate(self) -> float:
        """Mispredictions per conditional branch, in [0, 1]."""
        return self.mispredictions / self.branches if self.branches else 0.0

    @property
    def accuracy(self) -> float:
        return 1.0 - self.misprediction_rate

    @property
    def early_resolved_count(self) -> int:
        return sum(1 for r in self.records if r.early_resolved)

    @property
    def early_resolved_fraction(self) -> float:
        return self.early_resolved_count / self.branches if self.branches else 0.0

    @property
    def override_count(self) -> int:
        return sum(1 for r in self.records if r.overridden)

    # ------------------------------------------------------------------
    def mispredicted_vector(self) -> List[bool]:
        """Per-dynamic-branch mispredict flags (in fetch order)."""
        return [r.mispredicted for r in self.records]

    def early_resolved_vector(self) -> List[bool]:
        """Per-dynamic-branch early-resolved flags (in fetch order)."""
        return [r.early_resolved for r in self.records]

    def __repr__(self) -> str:
        return (
            f"<BranchAccuracy {self.branches} branches, "
            f"{100 * self.misprediction_rate:.2f}% mispredicted>"
        )
