"""Statistics collection and reporting."""

from repro.stats.counters import CounterSet
from repro.stats.accuracy import BranchAccuracy, BranchRecord
from repro.stats.reporting import format_table, format_percent
from repro.stats.tables import ResultTable

__all__ = [
    "CounterSet",
    "BranchAccuracy",
    "BranchRecord",
    "format_table",
    "format_percent",
    "ResultTable",
]
