"""Plain-text report formatting helpers."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_percent(value: float, decimals: int = 2) -> str:
    """Format a [0, 1] fraction as a percentage string."""
    return f"{100.0 * value:.{decimals}f}%"


def report_slug(title: str, max_length: int = 80) -> str:
    """A filesystem-safe slug of a report title."""
    return "".join(
        c if c.isalnum() or c in "-_" else "_" for c in title.lower()
    )[:max_length]


def report_block(title: str, body: str) -> str:
    """One titled report block, as archived under ``results/``.

    Single-sourced here so the ``repro all`` command and the benchmark
    harness write interchangeable files.
    """
    separator = "=" * max(len(title), 8)
    return f"{separator}\n{title}\n{separator}\n{body}\n"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table.

    Numeric cells are right-aligned; everything else is left-aligned.  Used
    by the benchmark harness to print the per-figure result tables.
    """
    materialised: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if _is_numeric(cells[i]) and i > 0:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append(render_row(row))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _is_numeric(text: str) -> bool:
    stripped = text.replace("%", "").replace("-", "").replace(".", "").replace("+", "")
    return stripped.isdigit() and bool(stripped)
