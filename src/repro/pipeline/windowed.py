"""Windowed simulation: checkpoint/resume and sampled execution.

The fast timing loop (:meth:`~repro.pipeline.core.OutOfOrderCore._run_fast`)
is a pure fold over trace rows: all of its mutable state lives in one
:class:`~repro.pipeline.core._FastState`.  This module drives that fold in
fixed-size **windows** over a pack's range cursor, which buys two things the
streaming-scale methodology needs:

* **Checkpoint/resume** — after each window the state (predictor weight
  tables included) can be pickled into a :class:`SimulationCheckpoint`;
  restoring it and draining the remaining rows is bit-identical to a
  straight-through run, because the windowed fold *is* the straight-through
  fold with pauses.  The execution engine writes checkpoints through the
  artifact store so a killed worker's retry resumes mid-trace.
* **Sampled simulation** — for huge traces, simulate every ``k``-th window
  (plus a warmup prefix whose events are excluded from the counters) and
  skip the rest.  Measured cycles are the sum of per-window commit-cycle
  deltas; whole-run observables that cannot be windowed (memory hierarchy
  statistics, functional-unit utilisation) reflect only the simulated rows
  — a documented approximation.  Sampled results carry their
  :class:`SamplingSpec` so tables can flag them.

Both modes require the optimized pack path (numpy, ``REPRO_OPT`` unset or
true); anything else falls back to a plain straight-through run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.emulator.tracepack import ChunkedTracePack, TracePack
from repro.log import get_logger
from repro.pipeline.core import OutOfOrderCore, SimulationResult, _FastState
from repro.pipeline.scheme_api import BranchHandlingScheme

_log = get_logger(__name__)

#: Bump when the pickled checkpoint layout changes; a mismatched checkpoint
#: is ignored (the run restarts from row zero) rather than mis-restored.
CHECKPOINT_VERSION = 1

#: Default rows per simulation window when only sampling asks for windows.
DEFAULT_WINDOW_ROWS = 4096

#: Default warmup rows simulated (but not measured) before each sampled
#: window.
DEFAULT_WARMUP_ROWS = 512


@dataclass(frozen=True)
class SamplingSpec:
    """Sampled-simulation parameters: every ``interval``-th window measured.

    ``window`` is the row count of one window, ``warmup`` the number of
    rows simulated-but-not-counted immediately before each measured window
    (clamped to the gap since the previous measured window, so no row is
    simulated twice).  ``interval=1`` degenerates to a full windowed run.
    """

    interval: int
    window: int = DEFAULT_WINDOW_ROWS
    warmup: int = DEFAULT_WARMUP_ROWS

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError(f"sampling interval must be >= 1, got {self.interval}")
        if self.window < 1:
            raise ValueError(f"sampling window must be >= 1, got {self.window}")
        if self.warmup < 0:
            raise ValueError(f"sampling warmup must be >= 0, got {self.warmup}")

    @classmethod
    def parse(cls, text: str) -> "SamplingSpec":
        """Parse ``interval[:window[:warmup]]`` (the CLI/scenario syntax)."""
        parts = str(text).split(":")
        if len(parts) > 3 or not parts[0]:
            raise ValueError(
                f"sampling spec {text!r} is not 'interval[:window[:warmup]]'"
            )
        try:
            values = [int(part) for part in parts]
        except ValueError:
            raise ValueError(
                f"sampling spec {text!r} has a non-integer field"
            ) from None
        interval = values[0]
        window = values[1] if len(values) > 1 else DEFAULT_WINDOW_ROWS
        warmup = values[2] if len(values) > 2 else DEFAULT_WARMUP_ROWS
        return cls(interval=interval, window=window, warmup=warmup)

    def token(self) -> Dict[str, int]:
        """Stable cache-key payload (folded into simulate-job keys)."""
        return {
            "interval": self.interval,
            "window": self.window,
            "warmup": self.warmup,
        }

    def describe(self) -> str:
        return (
            f"1/{self.interval} windows of {self.window} rows"
            f" (warmup {self.warmup})"
        )


@dataclass
class SimulationCheckpoint:
    """A resumable mid-trace snapshot of one windowed simulation.

    ``state`` is the pickled-together fast-loop state graph; ``rows_done``
    / ``total_rows`` locate it within the trace.  Checkpoints are only
    taken at window boundaries, so ``rows_done`` is always a boundary.
    """

    version: int
    rows_done: int
    total_rows: int
    state: _FastState

    def matches(self, total_rows: int) -> bool:
        """True when this checkpoint can resume a run over ``total_rows``."""
        return (
            self.version == CHECKPOINT_VERSION
            and self.total_rows == total_rows
            and 0 < self.rows_done <= total_rows
            and isinstance(self.state, _FastState)
        )


def _snapshot_scheme(scheme: BranchHandlingScheme):
    """Measurement state of a scheme before a warmup region."""
    records_length = len(scheme.accuracy.records)
    counters = dict(scheme.counters._counters)
    return records_length, counters


def _restore_scheme(scheme: BranchHandlingScheme, snapshot) -> None:
    """Roll the scheme's *measurement* state (not predictor state) back."""
    records_length, counters = snapshot
    del scheme.accuracy.records[records_length:]
    scheme.counters._counters.clear()
    scheme.counters._counters.update(counters)


def simulate_windowed(
    core: OutOfOrderCore,
    trace,
    scheme: BranchHandlingScheme,
    program_name: str = "program",
    *,
    window_rows: Optional[int] = None,
    sampling: Optional[SamplingSpec] = None,
    checkpoint: Optional[SimulationCheckpoint] = None,
    on_checkpoint: Optional[Callable[[SimulationCheckpoint], None]] = None,
) -> SimulationResult:
    """Run ``trace`` under ``scheme`` in windows; optionally sampled/resumed.

    ``window_rows`` sets the checkpoint cadence (``on_checkpoint`` receives
    one :class:`SimulationCheckpoint` after each completed window);
    ``sampling`` selects sampled mode (its ``window`` is used when
    ``window_rows`` is not given).  ``checkpoint`` — typically loaded from
    the artifact store — resumes mid-trace; an incompatible checkpoint is
    ignored.  Requires the optimized pack path; otherwise (object traces,
    ``REPRO_OPT=0``, no numpy) this falls back to a plain straight-through
    ``core.run`` without checkpoints or sampling.
    """
    if not core.optimized or not isinstance(trace, (TracePack, ChunkedTracePack)):
        if sampling is not None or on_checkpoint is not None:
            _log.warning(
                "windowed simulation needs the optimized pack path; "
                "running straight through (no sampling, no checkpoints)"
            )
        return core.run(trace, scheme, program_name=program_name)

    total = len(trace)
    window = window_rows if window_rows is not None else (
        sampling.window if sampling is not None else max(total, 1)
    )
    if window < 1:
        raise ValueError(f"window_rows must be positive, got {window}")

    if checkpoint is not None and checkpoint.matches(total):
        state = checkpoint.state
        scheme = state.scheme
    else:
        if checkpoint is not None:
            _log.warning(
                "ignoring incompatible checkpoint (version %s, %s/%s rows)",
                checkpoint.version,
                checkpoint.rows_done,
                checkpoint.total_rows,
            )
        state = core._fast_state(scheme)
        if sampling is not None:
            state.sampled_cycles = 0

    def emit_checkpoint() -> None:
        if on_checkpoint is not None and state.rows_done < total:
            on_checkpoint(
                SimulationCheckpoint(
                    version=CHECKPOINT_VERSION,
                    rows_done=state.rows_done,
                    total_rows=total,
                    state=state,
                )
            )

    if sampling is None:
        while state.rows_done < total:
            stop = min(state.rows_done + window, total)
            core._run_fast_window(state, trace.cursor(state.rows_done, stop))
            state.rows_done = stop
            emit_checkpoint()
    else:
        interval = sampling.interval
        # Warmup cannot reach into (or past) the previous measured window:
        # those rows were already simulated.
        max_warmup = (
            min(sampling.warmup, (interval - 1) * sampling.window)
            if interval > 1
            else 0
        )
        while state.rows_done < total:
            index = state.rows_done // sampling.window
            start = index * sampling.window
            stop = min(start + sampling.window, total)
            if index % interval == 0:
                warmup_start = start if index == 0 else start - max_warmup
                if warmup_start < start:
                    # Simulate the warmup rows for predictor/cache warmth,
                    # then roll the *measurement* state back so their events
                    # never reach the counters or the accuracy records.
                    counters = state.counter_snapshot()
                    scheme_snapshot = _snapshot_scheme(state.scheme)
                    core._run_fast_window(
                        state, trace.cursor(warmup_start, start)
                    )
                    state.restore_counters(counters)
                    _restore_scheme(state.scheme, scheme_snapshot)
                commit_before = state.last_commit
                core._run_fast_window(state, trace.cursor(start, stop))
                state.sampled_cycles += state.last_commit - commit_before
            state.rows_done = stop
            emit_checkpoint()

    result = core._finalize_fast(state, program_name)
    result.sampling = sampling
    return result
