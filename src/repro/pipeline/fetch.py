"""The fetch engine: fetch grouping, instruction cache, redirects.

Fetch delivers up to two bundles (six instructions) per cycle (Table 1).  A
taken control transfer terminates its fetch group; the next group starts the
following cycle from the branch target.  Instruction-cache and ITLB misses
stall the front end.  Redirects — branch misprediction recovery, front-end
override flushes and predicate-misprediction flushes — are communicated by
the core through :meth:`FetchEngine.redirect`.
"""

from __future__ import annotations

from typing import Optional

from repro.emulator.executor import DynInst
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import PipelineConfig


class FetchEngine:
    """Assigns a fetch cycle to every dynamic instruction, in order."""

    __slots__ = (
        "config",
        "memory",
        "_fetch_width",
        "_fetch_latency",
        "_group_cycle",
        "_group_slots",
        "_last_block",
        "_pending_redirect",
        "icache_stall_cycles",
        "redirects",
    )

    def __init__(self, config: PipelineConfig, memory: Optional[MemoryHierarchy]) -> None:
        self.config = config
        self.memory = memory
        # Bound copies of the per-fetch constants: ``_fetch_at`` runs once
        # per dynamic instruction and attribute chains through ``config``
        # and ``memory`` are measurable there.
        self._fetch_width = config.fetch_width
        self._fetch_latency = memory.fetch_latency if memory is not None else None
        self._group_cycle = 0
        self._group_slots = 0
        self._last_block: Optional[int] = None
        self._pending_redirect: Optional[int] = None
        self.icache_stall_cycles = 0
        self.redirects = 0

    # ------------------------------------------------------------------
    def redirect(self, resume_cycle: int) -> None:
        """Block fetch of all subsequent instructions until ``resume_cycle``.

        Used after branch misprediction recovery, after a front-end override
        flush, and after a predicate-misprediction flush.  The most
        restrictive pending redirect wins.
        """
        if self._pending_redirect is None or resume_cycle > self._pending_redirect:
            self._pending_redirect = resume_cycle
        self.redirects += 1

    def refetch_current(self, dyn: DynInst, resume_cycle: int) -> int:
        """Re-fetch ``dyn`` itself at ``resume_cycle`` (predicate flush from
        the ROB pointer: the first speculative consumer is squashed and
        re-fetched along with everything younger)."""
        self._group_cycle = max(self._group_cycle, resume_cycle)
        self._group_slots = 0
        self._last_block = None
        self.redirects += 1
        return self._fetch_at(dyn, self._group_cycle)

    # ------------------------------------------------------------------
    def fetch(self, dyn: DynInst) -> int:
        """Return the fetch cycle of ``dyn`` and update fetch state."""
        cycle = self._group_cycle
        if self._pending_redirect is not None:
            if self._pending_redirect > cycle:
                cycle = self._pending_redirect
                self._group_slots = 0
            self._pending_redirect = None
        return self._fetch_at(dyn, cycle)

    def _fetch_at(self, dyn: DynInst, cycle: int) -> int:
        if self._group_slots >= self._fetch_width:
            cycle += 1
            self._group_slots = 0

        block = dyn.pc >> 6
        if block != self._last_block:
            self._last_block = block
            if self._fetch_latency is not None:
                latency = self._fetch_latency(dyn.pc, cycle)
                if latency > 1:
                    stall = latency - 1
                    cycle += stall
                    self.icache_stall_cycles += stall
                    self._group_slots = 0

        fetch_cycle = cycle
        self._group_slots += 1
        self._group_cycle = cycle

        # A taken control transfer ends the fetch group; fetch resumes at the
        # target the next cycle (the BTB/return stack supplies the target).
        if dyn.is_branch and dyn.taken:
            self._group_cycle = cycle + 1
            self._group_slots = 0
            self._last_block = None
        return fetch_cycle
