"""Lane-batched multi-cell simulation: N (scheme, machine) cells, one trace.

Sweep-shaped workloads (the ROB-scaling scenario, predictor-geometry
studies, Table 4 idealization ladders) simulate the *same benchmark trace*
under many (scheme, machine) configurations.  The scalar engine runs each
cell through :meth:`~repro.pipeline.core.OutOfOrderCore._run_fast`, paying
the trace-decoding and per-row bookkeeping cost once per cell.  This module
runs all cells of one :class:`~repro.emulator.tracepack.TracePack` as
*lanes* of a single batched job:

* **Shared, once per batch** — the pack's column decode (one ``tolist`` per
  column), the per-static-instruction decode records (register keys, issue
  queue selection, functional-unit class — the ``_Decode`` work of the
  scalar fast loop), fetch-block ids, fetch-group-ending flags, and the
  per-unit issue totals.
* **Per lane** — everything cycle-dependent: the memory hierarchy (the
  shared L2 makes fetch stalls a function of the lane's own data-side
  traffic), load/store unit, issue queues, ROB window, register timing and
  functional-unit slots.

Lanes come in two tiers:

* **Stream lanes** — schemes that declare
  :attr:`~repro.pipeline.scheme_api.BranchHandlingScheme.timing_independent`
  and override no other hook.  Their prediction evolution is a pure
  function of the branch rows, so it is replayed *once per scheme spec* in
  a prepass (the **decision stream**: per-conditional-branch override and
  mispredict flags) and shared by every machine lane of that spec.  The
  timing loop for these lanes (:func:`_run_stream_lane`) makes no scheme
  calls at all: it reads two precomputed flags per conditional branch and
  keeps the fetch engine and rename slotter inlined as locals.
* **Hook lanes** — timing-dependent schemes (predicate prediction, PEP-PA
  read producer/consumer cycles).  These run the *scalar* fast loop with a
  per-lane scheme over a shared-column cursor, so their semantics are the
  scalar path's by construction; they still save the per-lane column
  decode.

When a batch carries several *distinct* stream specs with the same
predictor geometry (``lane_bank_profile``), the prepass steps them in
lockstep through a :class:`~repro.predictors.batched.ConventionalLaneBank`,
which keeps the divergent perceptron weights as one lane-axis numpy array.

Bit-exactness contract: every lane's :class:`SimulationResult` — metrics,
counters, per-branch accuracy records — is identical to what the scalar
engine produces for that (scheme, machine) cell.  The parity suite
(``tests/perf/test_batched_parity.py``) enforces this over randomized lane
sets; any change here must keep it green.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.emulator.tracepack import PackCursor, TracePack
from repro.isa.branches import BranchInstruction
from repro.isa.compare import CompareInstruction
from repro.isa.opcodes import FunctionalUnitClass, OpClass
from repro.isa.registers import Register
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import PipelineConfig
from repro.pipeline.core import OutOfOrderCore, SimulationResult, _reg_key
from repro.pipeline.lsq import LoadStoreUnit
from repro.pipeline.metrics import PipelineMetrics
from repro.pipeline.resources import FunctionalUnitPool
from repro.pipeline.scheme_api import BranchHandlingScheme
from repro.predictors.batched import ConventionalLaneBank, lane_bank_supported
from repro.stats.accuracy import BranchAccuracy, BranchRecord

#: Stable small-integer ids for functional-unit classes, shared by every
#: lane of a batch (the per-lane slot tables are plain lists indexed by
#: these instead of dicts keyed by enum members).
_UNITS: Tuple[FunctionalUnitClass, ...] = tuple(FunctionalUnitClass)
_UNIT_INDEX: Dict[FunctionalUnitClass, int] = {u: i for i, u in enumerate(_UNITS)}


class LaneSpec:
    """One cell of a batch: how to build its scheme, and its machine config.

    ``group_key`` identifies the scheme *spec* (any hashable; the engine
    passes the :class:`~repro.engine.jobs.SchemeSpec`).  Lanes with equal
    keys share one decision stream in the prepass; ``None`` opts a lane out
    of sharing.
    """

    __slots__ = ("scheme_factory", "config", "group_key")

    def __init__(self, scheme_factory, config: PipelineConfig, group_key=None) -> None:
        self.scheme_factory = scheme_factory
        self.config = config
        self.group_key = group_key


class _StaticDecode:
    """Machine-independent decode record of one static instruction.

    The pure subset of the scalar fast loop's ``_Decode``: everything that
    does not capture run-local resource objects, so one record serves every
    lane of the batch.  Lanes map ``unit_index`` / ``queue_sel`` to their
    own slot lists and deques.
    """

    __slots__ = (
        "kind",  # 0 = simple, 1 = branch, 2 = compare
        "latency",
        "unit",
        "unit_index",
        "queue_sel",  # -1 = memory (LSQ), 0 = int, 1 = fp, 2 = branch
        "is_memory",
        "is_load",
        "is_store",
        "is_predicated",
        "qp_key",
        "is_cond_branch",
        "src_keys",
        "cons_keys",
        "cmp_src_keys",
        "dest_keys",
        "stream_keys",  # source set of a stream lane (always conservative)
    )


def _build_static(inst) -> _StaticDecode:
    """Shared-decode one static instruction (reference: ``_build_decode``)."""
    info = inst.info
    opclass = info.opclass
    de = _StaticDecode()
    de.latency = info.latency
    de.is_load = opclass is OpClass.LOAD
    de.is_store = opclass is OpClass.STORE
    de.is_memory = de.is_load or de.is_store
    de.is_predicated = inst.is_predicated
    de.qp_key = _reg_key(inst.qp) if de.is_predicated else -1

    if opclass is OpClass.BRANCH:
        de.kind = 1
        unit = FunctionalUnitClass.BRANCH_UNIT
        de.is_cond_branch = isinstance(inst, BranchInstruction) and inst.is_conditional
    elif opclass is OpClass.COMPARE:
        de.kind = 2
        unit = info.unit
        de.is_cond_branch = False
    else:
        de.kind = 0
        unit = info.unit
        de.is_cond_branch = False
    de.unit = unit
    de.unit_index = _UNIT_INDEX[unit]

    if de.is_memory:
        de.queue_sel = -1
    elif opclass is OpClass.BRANCH:
        de.queue_sel = 2
    elif info.unit is FunctionalUnitClass.FP_UNIT:
        de.queue_sel = 1
    else:
        de.queue_sel = 0

    src_regs = [s for s in inst.srcs if isinstance(s, Register)]
    de.src_keys = tuple(_reg_key(r) for r in src_regs if not r.is_hardwired)
    de.dest_keys = tuple(_reg_key(r) for r in inst.destination_registers())
    cons = list(de.src_keys)
    if de.is_predicated:
        cons.append(de.qp_key)
    cons.extend(de.dest_keys)
    de.cons_keys = tuple(cons)
    cmp_keys = list(de.src_keys)
    if de.is_predicated:
        cmp_keys.append(de.qp_key)
    if isinstance(inst, CompareInstruction) and inst.ctype.depends_on_previous_values:
        cmp_keys.extend(_reg_key(r) for r in inst.predicate_destinations())
    de.cmp_src_keys = cmp_keys and tuple(cmp_keys) or ()
    # A stream lane handles every predicated instruction conservatively
    # (the base scheme's on_predicated_rename), so its source set is fixed.
    de.stream_keys = de.cons_keys if de.is_predicated else de.src_keys
    return de


class _SharedTrace:
    """One pack decoded into row lists + static decodes, shared by all lanes."""

    __slots__ = (
        "n_rows",
        "insts",
        "statics",
        "inst_idx",
        "seqs",
        "pcs",
        "qps",
        "execs",
        "takens",
        "targets",
        "nexts",
        "mems",
        "writes",
        "producers",
        "branch_flags",
        "compare_flags",
        "cond_flags",
        "row_decodes",
        "blocks",
        "ends_group",
        "branch_row_indices",
        "n_cond",
        "executed_count",
        "conservative_count",
        "unit_counts",
    )

    def __init__(self, pack: TracePack) -> None:
        self.insts = pack.insts
        self.inst_idx = pack.inst_index.tolist()
        self.seqs = pack.seq.tolist()
        self.pcs = pack.pc.tolist()
        self.qps = (pack.qp_value != 0).tolist()
        self.execs = (pack.executed != 0).tolist()
        self.takens = [None if t < 0 else bool(t) for t in pack.taken.tolist()]
        self.targets = [None if t < 0 else t for t in pack.target_pc.tolist()]
        self.nexts = [None if t < 0 else t for t in pack.next_pc.tolist()]
        self.mems = [
            m if v else None
            for m, v in zip(pack.mem_address.tolist(), pack.mem_valid.tolist())
        ]
        self.writes = pack._materialise_pred_writes()
        self.producers = pack.guard_producer_seq.tolist()
        branch_f, compare_f, cond_f = pack._cursor_static_flags()
        self.branch_flags = branch_f
        self.compare_flags = compare_f
        self.cond_flags = cond_f
        self.n_rows = len(self.seqs)

        statics = [_build_static(inst) for inst in self.insts]
        self.statics = statics
        inst_idx = self.inst_idx
        self.row_decodes = [statics[j] for j in inst_idx]
        self.blocks = [pc >> 6 for pc in self.pcs]
        self.ends_group = [
            branch_f[j] and t is True for j, t in zip(inst_idx, self.takens)
        ]
        self.branch_row_indices = [
            i for i, j in enumerate(inst_idx) if cond_f[j]
        ]
        self.n_cond = len(self.branch_row_indices)
        self.executed_count = sum(self.execs)

        # Lane-invariant issue accounting of stream lanes: every dynamic
        # row issues exactly once there (no rename-stage cancels without
        # predicate prediction), so the per-unit totals are row counts.
        unit_counts: Dict[FunctionalUnitClass, int] = {}
        conservative = 0
        for de in self.row_decodes:
            unit = de.unit
            unit_counts[unit] = unit_counts.get(unit, 0) + 1
            if de.kind == 0 and de.is_predicated:
                conservative += 1
        self.unit_counts = unit_counts
        self.conservative_count = conservative

    # ------------------------------------------------------------------
    def cursor(self) -> Iterator[PackCursor]:
        """A pack-cursor view over the shared row lists (hook lanes).

        Field-for-field the generator of :meth:`TracePack.cursor`, minus
        the per-lane column decode — hook lanes feed this straight into
        the scalar fast loop.
        """
        cur = PackCursor()
        insts = self.insts
        inst_idx = self.inst_idx
        seqs = self.seqs
        pcs = self.pcs
        qps = self.qps
        execs = self.execs
        takens = self.takens
        targets = self.targets
        nexts = self.nexts
        mems = self.mems
        writes = self.writes
        producers = self.producers
        branch_f = self.branch_flags
        compare_f = self.compare_flags
        cond_f = self.cond_flags
        for i in range(self.n_rows):
            static = inst_idx[i]
            cur.seq = seqs[i]
            cur.inst = insts[static]
            cur.pc = pcs[i]
            cur.qp_value = qps[i]
            cur.executed = execs[i]
            cur.taken = takens[i]
            cur.target_pc = targets[i]
            cur.next_pc = nexts[i]
            cur.mem_address = mems[i]
            cur.pred_writes = writes[i]
            cur.guard_producer_seq = producers[i]
            cur.is_branch = branch_f[static]
            cur.is_compare = compare_f[static]
            cur.is_conditional_branch = cond_f[static]
            yield cur

    def _branch_cursor_at(self, cur: PackCursor, i: int) -> PackCursor:
        """Populate ``cur`` with conditional-branch row ``i`` (prepass)."""
        static = self.inst_idx[i]
        cur.seq = self.seqs[i]
        cur.inst = self.insts[static]
        cur.pc = self.pcs[i]
        cur.qp_value = self.qps[i]
        cur.executed = self.execs[i]
        cur.taken = self.takens[i]
        cur.target_pc = self.targets[i]
        cur.next_pc = self.nexts[i]
        cur.mem_address = self.mems[i]
        cur.pred_writes = self.writes[i]
        cur.guard_producer_seq = self.producers[i]
        cur.is_branch = True
        cur.is_compare = False
        cur.is_conditional_branch = True
        return cur


class _DecisionStream:
    """One scheme spec's prediction evolution over the batch's trace."""

    __slots__ = ("overrides", "mispreds", "override_count", "mispredict_count", "records")

    def __init__(
        self,
        overrides: List[bool],
        mispreds: List[bool],
        records: List[BranchRecord],
    ) -> None:
        self.overrides = overrides
        self.mispreds = mispreds
        self.override_count = sum(overrides)
        self.mispredict_count = sum(mispreds)
        self.records = records


def stream_eligible(scheme: BranchHandlingScheme) -> bool:
    """True when ``scheme`` can run as a decision-stream lane.

    Requires the scheme's declaration that its hooks ignore pipeline
    timestamps, *and* that it overrides no hook beyond the branch pair —
    an overridden compare/fetch/predicate hook means the scheme observes
    (or steers) rows the stream replay never visits.
    """
    cls = type(scheme)
    base = BranchHandlingScheme
    return (
        scheme.timing_independent
        and cls.on_fetch is base.on_fetch
        and cls.on_compare_rename is base.on_compare_rename
        and cls.on_compare_complete is base.on_compare_complete
        and cls.on_predicated_rename is base.on_predicated_rename
    )


def _drive_scheme_stream(
    scheme: BranchHandlingScheme, shared: _SharedTrace
) -> _DecisionStream:
    """Replay the branch rows through a scheme's own hooks (one spec).

    Cycle arguments are zero: a ``timing_independent`` scheme ignores them
    by contract.  The hook call sequence per branch (rename immediately
    followed by resolved) is exactly the scalar fast loop's, so the
    scheme's accuracy records and counters come out bit-identical.
    """
    cur = PackCursor()
    on_rename = scheme.on_branch_rename
    on_resolved = scheme.on_branch_resolved
    fill = shared._branch_cursor_at
    overrides: List[bool] = []
    mispreds: List[bool] = []
    for i in shared.branch_row_indices:
        fill(cur, i)
        handling = on_rename(cur, 0, 0, 0)
        mispredicted = handling.final_prediction != cur.taken
        on_resolved(cur, 0, mispredicted)
        overrides.append(handling.override_flush)
        mispreds.append(mispredicted)
    return _DecisionStream(overrides, mispreds, scheme.accuracy.records)


def _drive_bank(
    profile, schemes: Sequence[BranchHandlingScheme], shared: _SharedTrace
) -> List[_DecisionStream]:
    """Replay the branch rows through a lane-axis predictor bank.

    ``schemes`` are the representatives of distinct same-geometry specs;
    their accuracy records are filled exactly as their own hooks would
    have, while the perceptron state steps as one ``(lanes, entries,
    num_weights)`` array (:class:`ConventionalLaneBank`).
    """
    lanes = len(schemes)
    bank = ConventionalLaneBank(profile, lanes)
    step = bank.step
    record_lists = [scheme.accuracy.records for scheme in schemes]
    override_lists: List[List[bool]] = [[] for _ in range(lanes)]
    mispred_lists: List[List[bool]] = [[] for _ in range(lanes)]
    pcs = shared.pcs
    takens = shared.takens
    for i in shared.branch_row_indices:
        pc = pcs[i]
        actual = takens[i] is True
        fast, finals, overrides = step(pc, actual)
        for k in range(lanes):
            final = finals[k]
            record_lists[k].append(
                BranchRecord(
                    pc=pc,
                    actual=actual,
                    predicted=final,
                    fetch_prediction=fast,
                    early_resolved=False,
                )
            )
            override_lists[k].append(overrides[k])
            mispred_lists[k].append(final != actual)
    return [
        _DecisionStream(override_lists[k], mispred_lists[k], record_lists[k])
        for k in range(lanes)
    ]


def _run_stream_lane(
    shared: _SharedTrace,
    cfg: PipelineConfig,
    stream: _DecisionStream,
    accuracy: BranchAccuracy,
    scheme_name: str,
    program_name: str,
) -> SimulationResult:
    """The stream-lane timing loop: scalar-fast-loop semantics, no scheme.

    Per conditional branch the loop reads two precomputed flags from the
    spec's decision stream; the fetch engine, rename/commit slotters and
    sliding windows are inlined as locals (with ``-1`` sentinels replacing
    the scalar path's ``None`` states).  Any edit here must keep the
    batched parity suite bit-identical against ``_run_fast``.
    """
    memory = MemoryHierarchy()
    fetch_latency = memory.fetch_latency
    lsu = LoadStoreUnit(cfg, memory)
    fus = FunctionalUnitPool(cfg.fu_counts)
    slot_table = [fus._next_free.get(unit) for unit in _UNITS]

    rob_q: deque = deque()
    rob_cap = cfg.rob_entries
    int_q: deque = deque()
    fp_q: deque = deque()
    br_q: deque = deque()
    queues = (int_q, fp_q, br_q)
    caps = (cfg.int_queue_entries, cfg.fp_queue_entries, cfg.branch_queue_entries)
    br_cap = cfg.branch_queue_entries
    rn_width = cfg.rename_width
    cm_width = cfg.commit_width
    fetch_width = cfg.fetch_width
    fetch_to_rename = cfg.fetch_to_rename
    override_flush_penalty = cfg.override_flush_penalty
    branch_mispredict_penalty = cfg.branch_mispredict_penalty

    queue_constraint = lsu.queue_constraint
    load_complete_cycle = lsu.load_complete_cycle
    store_execute = lsu.store_execute
    store_commit_penalty = lsu.store_commit_penalty
    record_allocation = lsu.record_allocation

    regs: Dict[int, int] = {}
    regs_get = regs.get

    overrides = stream.overrides
    mispreds = stream.mispreds
    bi = 0  # decision-stream position (conditional branches, fetch order)

    # Inlined FetchEngine state (-1 sentinels for "no block"/"no redirect").
    group_cycle = 0
    group_slots = 0
    last_block = -1
    pending_redirect = -1
    icache_stalls = 0
    redirects = 0
    # Inlined rename/commit slotters.
    rn_cycle = -1
    rn_used = 0
    cm_cycle = -1
    cm_used = 0
    last_commit = 0

    for de, pc, block, ends_group, execd, mem in zip(
        shared.row_decodes,
        shared.pcs,
        shared.blocks,
        shared.ends_group,
        shared.execs,
        shared.mems,
    ):
        # ----------------------------------------------------- fetch
        cycle = group_cycle
        if pending_redirect >= 0:
            if pending_redirect > cycle:
                cycle = pending_redirect
                group_slots = 0
            pending_redirect = -1
        if group_slots >= fetch_width:
            cycle += 1
            group_slots = 0
        if block != last_block:
            last_block = block
            latency = fetch_latency(pc, cycle)
            if latency > 1:
                stall = latency - 1
                cycle += stall
                icache_stalls += stall
                group_slots = 0
        fetch_cycle = cycle
        group_slots += 1
        group_cycle = cycle
        if ends_group:  # taken control transfer ends the fetch group
            group_cycle = cycle + 1
            group_slots = 0
            last_block = -1

        # ---------------------------------------------------- rename
        cycle = fetch_cycle + fetch_to_rename
        if len(rob_q) >= rob_cap and rob_q[0] > cycle:
            cycle = rob_q[0]
        qsel = de.queue_sel
        if qsel < 0:
            cycle = queue_constraint(de.is_store, cycle)
        else:
            queue = queues[qsel]
            if len(queue) >= caps[qsel] and queue[0] > cycle:
                cycle = queue[0]
        if cycle < rn_cycle:
            cycle = rn_cycle
        if cycle == rn_cycle and rn_used >= rn_width:
            cycle += 1
        if cycle > rn_cycle:
            rn_cycle = cycle
            rn_used = 1
        else:
            rn_used += 1
        rename_cycle = cycle

        kind = de.kind
        # ------------------------------------------- per-class handling
        if kind == 1:  # branch
            ready = rename_cycle + 2
            if de.is_predicated:
                guard_ready = regs_get(de.qp_key, 0)
                if guard_ready > ready:
                    ready = guard_ready
            slots = slot_table[de.unit_index]
            best = min(slots)
            issue = ready if ready > best else best
            slots[slots.index(best)] = issue + 1
            if len(br_q) >= br_cap:
                br_q.popleft()
            br_q.append(issue)
            complete = issue + de.latency

            if de.is_cond_branch:
                over = overrides[bi]
                mis = mispreds[bi]
                bi += 1
                if mis:
                    redirects += 1
                    redirect = complete + branch_mispredict_penalty
                    if redirect > pending_redirect:
                        pending_redirect = redirect
                elif over:
                    redirects += 1
                    redirect = rename_cycle + override_flush_penalty
                    if redirect > pending_redirect:
                        pending_redirect = redirect

        elif kind == 2:  # compare
            ready = rename_cycle + 2
            for key in de.cmp_src_keys:
                t = regs_get(key, 0)
                if t > ready:
                    ready = t
            slots = slot_table[de.unit_index]
            best = min(slots)
            issue = ready if ready > best else best
            slots[slots.index(best)] = issue + 1
            queue = queues[qsel]
            if len(queue) >= caps[qsel]:
                queue.popleft()
            queue.append(issue)
            complete = issue + de.latency
            for key in de.dest_keys:
                regs[key] = complete

        else:  # simple; always conservative (no predicate prediction)
            ready = rename_cycle + 2
            for key in de.stream_keys:
                t = regs_get(key, 0)
                if t > ready:
                    ready = t
            slots = slot_table[de.unit_index]
            best = min(slots)
            issue = ready if ready > best else best
            slots[slots.index(best)] = issue + 1
            if qsel < 0:
                address = mem if execd else None
                if de.is_load:
                    complete = load_complete_cycle(address, issue)
                else:
                    complete = issue + de.latency
                    store_execute(address, complete)
            else:
                queue = queues[qsel]
                if len(queue) >= caps[qsel]:
                    queue.popleft()
                queue.append(issue)
                complete = issue + de.latency
            for key in de.dest_keys:
                regs[key] = complete

        # ---------------------------------------------------- commit
        commit = complete + 1
        if de.is_store and execd:
            commit += store_commit_penalty(mem, complete)
        if commit < cm_cycle:
            commit = cm_cycle
        if commit == cm_cycle and cm_used >= cm_width:
            commit += 1
        if commit > cm_cycle:
            cm_cycle = commit
            cm_used = 0
        cm_used += 1
        if commit > last_commit:
            last_commit = commit

        if len(rob_q) >= rob_cap:
            rob_q.popleft()
        rob_q.append(commit)
        if qsel < 0:
            record_allocation(de.is_store, commit)

    metrics = PipelineMetrics()
    n = shared.n_rows
    metrics.fetched_instructions = n
    metrics.committed_instructions = n
    metrics.executed_instructions = shared.executed_count
    metrics.nullified_instructions = n - shared.executed_count
    metrics.conditional_branches = shared.n_cond
    metrics.branch_mispredictions = stream.mispredict_count
    metrics.override_flushes = stream.override_count
    metrics.predicate_flushes = 0
    metrics.cancelled_at_rename = 0
    metrics.conservative_predicated = shared.conservative_count
    metrics.assume_true_predicated = 0
    metrics.cycles = last_commit
    metrics.memory_stats = memory.statistics()
    issue_counts = fus.issue_counts
    for unit, count in shared.unit_counts.items():
        issue_counts[unit] = issue_counts.get(unit, 0) + count
    metrics.fu_utilisation = fus.utilisation()
    metrics.counters.set("lsq_forwarded_loads", lsu.forwarded_loads)
    metrics.counters.set("fetch_redirects", redirects)
    metrics.counters.set("icache_stall_cycles", icache_stalls)

    return SimulationResult(
        program_name=program_name,
        scheme_name=scheme_name,
        metrics=metrics,
        accuracy=accuracy,
        uops=None,
    )


def simulate_lanes(
    pack: TracePack,
    lanes: Sequence[LaneSpec],
    program_name: str = "program",
) -> List[SimulationResult]:
    """Simulate every lane over one trace pack; results in lane order.

    Each result is bit-identical to running that lane's (scheme, machine)
    cell through the scalar engine.  Stream-eligible lanes share one
    decision-stream prepass per scheme spec (lane-axis banked across
    same-geometry specs); the rest run the scalar fast loop over the
    shared column decode.
    """
    shared = _SharedTrace(pack)
    schemes = [lane.scheme_factory() for lane in lanes]
    results: List[Optional[SimulationResult]] = [None] * len(lanes)

    stream_idx = [i for i, s in enumerate(schemes) if stream_eligible(s)]
    hook_idx = [i for i in range(len(lanes)) if i not in set(stream_idx)]

    # One decision stream per scheme spec (lanes without a group key get a
    # private stream).
    spec_groups: Dict[object, List[int]] = {}
    for i in stream_idx:
        key = lanes[i].group_key
        if key is None:
            key = ("__lane__", i)
        spec_groups.setdefault(key, []).append(i)

    # Distinct same-geometry specs step in lockstep through the lane bank.
    streams: Dict[object, _DecisionStream] = {}
    if lane_bank_supported():
        profile_groups: Dict[object, List[object]] = {}
        for key, members in spec_groups.items():
            profile = schemes[members[0]].lane_bank_profile()
            if profile is not None:
                profile_groups.setdefault(profile, []).append(key)
        for profile, keys in profile_groups.items():
            if len(keys) < 2:
                continue
            reps = [schemes[spec_groups[key][0]] for key in keys]
            for key, stream in zip(keys, _drive_bank(profile, reps, shared)):
                streams[key] = stream

    for key, members in spec_groups.items():
        if key not in streams:
            streams[key] = _drive_scheme_stream(schemes[members[0]], shared)

    for key, members in spec_groups.items():
        stream = streams[key]
        for position, i in enumerate(members):
            if position == 0:
                # The spec representative's scheme already holds the
                # stream's records (its hooks — or the bank — built them).
                accuracy = schemes[i].accuracy
            else:
                accuracy = BranchAccuracy(records=list(stream.records))
            results[i] = _run_stream_lane(
                shared,
                lanes[i].config,
                stream,
                accuracy,
                schemes[i].name,
                program_name,
            )

    for i in hook_idx:
        core = OutOfOrderCore(config=lanes[i].config, optimized=True)
        results[i] = core._run_fast(shared.cursor(), schemes[i], program_name)

    return results
