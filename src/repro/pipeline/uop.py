"""Dynamic micro-operations flowing through the pipeline."""

from __future__ import annotations

import enum
from repro.emulator.executor import DynInst


class RenameDecision(enum.Enum):
    """How the rename stage handles a predicated (non-branch) instruction.

    ``CONSERVATIVE``
        Keep the predicate as a data dependence and add a dependence on the
        previous value of every destination (the standard solution to the
        multiple-register-definition problem: the instruction behaves like a
        conditional move).  This is what the baseline schemes do.

    ``ASSUME_TRUE``
        Selective predicate prediction predicted the guard confidently true:
        the instruction is dispatched as if it were not predicated at all
        (no predicate dependence, no old-destination dependence).

    ``CANCEL``
        Selective predicate prediction predicted the guard confidently
        false: the instruction is cancelled at rename and never consumes an
        issue-queue entry or functional unit.
    """

    CONSERVATIVE = "conservative"
    ASSUME_TRUE = "assume-true"
    CANCEL = "cancel"


class Uop:
    """Per-dynamic-instruction pipeline bookkeeping (stage timestamps)."""

    __slots__ = (
        "dyn",
        "fetch_cycle",
        "decode_cycle",
        "rename_cycle",
        "dispatch_cycle",
        "ready_cycle",
        "issue_cycle",
        "complete_cycle",
        "commit_cycle",
        "rename_decision",
        "cancelled",
        "predicate_flush",
        "override_flush",
        "branch_mispredicted",
    )

    def __init__(self, dyn: DynInst) -> None:
        self.dyn = dyn
        self.fetch_cycle: int = 0
        self.decode_cycle: int = 0
        self.rename_cycle: int = 0
        self.dispatch_cycle: int = 0
        self.ready_cycle: int = 0
        self.issue_cycle: int = 0
        self.complete_cycle: int = 0
        self.commit_cycle: int = 0
        self.rename_decision: RenameDecision = RenameDecision.CONSERVATIVE
        #: True when the uop was removed from the pipeline at rename.
        self.cancelled: bool = False
        #: True when this uop was refetched because of a predicate
        #: misprediction discovered by its own guard's producer.
        self.predicate_flush: bool = False
        #: True when the uop is a branch whose slow prediction overrode the
        #: fetch-time prediction (front-end flush).
        self.override_flush: bool = False
        #: True when the uop is a branch whose final prediction was wrong.
        self.branch_mispredicted: bool = False

    # ------------------------------------------------------------------
    @property
    def inst(self):
        return self.dyn.inst

    @property
    def pc(self) -> int:
        return self.dyn.pc

    @property
    def is_branch(self) -> bool:
        return self.dyn.is_branch

    @property
    def is_conditional_branch(self) -> bool:
        return self.dyn.is_conditional_branch

    @property
    def is_compare(self) -> bool:
        return self.dyn.is_compare

    def __repr__(self) -> str:
        return (
            f"<Uop #{self.dyn.seq} pc={self.pc:#x} F{self.fetch_cycle} "
            f"R{self.rename_cycle} I{self.issue_cycle} C{self.complete_cycle} "
            f"X{self.commit_cycle}>"
        )
