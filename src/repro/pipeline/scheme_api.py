"""The contract between the pipeline and a branch-handling scheme.

A *scheme* decides how conditional branches and predicated instructions are
handled: which predictor structures exist, when they are read, how
predictions reach their consumers, and what has to be flushed when a
prediction is wrong.  The three schemes evaluated in the paper —
conventional two-level branch prediction, PEP-PA, and the proposed predicate
prediction scheme — are implemented in :mod:`repro.core` against this
interface.

The pipeline calls the hooks in program order and supplies the timestamps it
has computed so far:

``on_fetch``
    every instruction, with its fetch cycle;
``on_compare_rename`` / ``on_compare_complete``
    compare instructions at rename and at completion (when the predicate
    values are computed);
``on_branch_rename``
    conditional branches at rename; the scheme returns the final prediction
    used for this branch, whether the fetch-time prediction was overridden,
    and whether the branch was early-resolved;
``on_branch_resolved``
    conditional branches when they resolve (train, repair history);
``on_predicated_rename``
    predicated non-branch instructions at rename; the scheme returns how the
    rename stage must handle them (conservative, assume-true or cancel) and,
    when the underlying speculation is wrong, when the misprediction will be
    discovered so the pipeline can charge the flush.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.emulator.executor import DynInst
from repro.stats.accuracy import BranchAccuracy
from repro.stats.counters import CounterSet
from repro.pipeline.uop import RenameDecision


@dataclass
class BranchHandling:
    """What the scheme decided for one dynamic conditional branch."""

    #: The prediction that steers the front end after rename (and is checked
    #: against the architectural outcome at resolution).
    final_prediction: bool
    #: The fast, fetch-time prediction (``None`` if the scheme has none).
    fetch_prediction: Optional[bool] = None
    #: True when the computed predicate value was available at rename
    #: (the paper's early-resolved branches — always correct).
    early_resolved: bool = False
    #: True when the final prediction disagrees with the fetch prediction,
    #: which costs a front-end flush.
    override_flush: bool = False


@dataclass
class PredicatedHandling:
    """What the scheme decided for one predicated non-branch instruction."""

    decision: RenameDecision = RenameDecision.CONSERVATIVE
    #: When the decision speculates (cancel / assume-true) and the
    #: speculation is wrong, the cycle at which the producing compare
    #: computes the true value and the misprediction is discovered.
    flush_discovery_cycle: Optional[int] = None

    @property
    def mispredicted(self) -> bool:
        return self.flush_discovery_cycle is not None


class BranchHandlingScheme(abc.ABC):
    """Base class of all branch-handling schemes."""

    #: Short machine-readable name used in result tables.
    name: str = "abstract"

    #: True when the scheme's hook results depend only on the dynamic
    #: instruction stream, never on the pipeline timestamps passed to the
    #: hooks.  The lane-batched kernel (:mod:`repro.pipeline.batched`) may
    #: then replay such a scheme once per spec and share the resulting
    #: prediction stream across every lane (machine configuration) of a
    #: batch.  Schemes that read cycle arguments (predicate prediction,
    #: PEP-PA) must leave this ``False``.
    timing_independent: bool = False

    def __init__(self) -> None:
        self.accuracy = BranchAccuracy()
        self.counters = CounterSet()

    # ------------------------------------------------------------------
    # Hooks with default no-op behaviour
    # ------------------------------------------------------------------
    def on_fetch(self, dyn: DynInst, fetch_cycle: int) -> None:
        """Called for every fetched instruction."""

    def on_compare_rename(self, dyn: DynInst, fetch_cycle: int, rename_cycle: int) -> None:
        """Called when a compare instruction renames."""

    def on_compare_complete(self, dyn: DynInst, complete_cycle: int) -> None:
        """Called when a compare executes and its predicate values are known."""

    @abc.abstractmethod
    def on_branch_rename(
        self,
        dyn: DynInst,
        fetch_cycle: int,
        rename_cycle: int,
        guard_ready_cycle: int,
    ) -> BranchHandling:
        """Called when a conditional branch renames; must return the handling."""

    def on_branch_resolved(self, dyn: DynInst, resolve_cycle: int, mispredicted: bool) -> None:
        """Called when a conditional branch resolves."""

    def on_predicated_rename(
        self,
        dyn: DynInst,
        fetch_cycle: int,
        rename_cycle: int,
        guard_ready_cycle: int,
    ) -> PredicatedHandling:
        """Called when a predicated non-branch instruction renames."""
        return PredicatedHandling(RenameDecision.CONSERVATIVE)

    # ------------------------------------------------------------------
    def lane_bank_profile(self):
        """Hashable predictor-geometry token for lane-axis batching, or
        ``None``.

        Timing-independent schemes whose predictor state can be stepped as
        lane-axis arrays (see :mod:`repro.predictors.batched`) return a
        token; two schemes returning equal tokens can share one bank, each
        occupying one lane.  The base implementation opts out.
        """
        return None

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable description used by reports."""
        return self.name
