"""Pipeline-level metrics (cycles, IPC, flush accounting)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.stats.counters import CounterSet


@dataclass
class PipelineMetrics:
    """Timing results of one simulation run."""

    cycles: int = 0
    fetched_instructions: int = 0
    committed_instructions: int = 0
    executed_instructions: int = 0
    nullified_instructions: int = 0
    cancelled_at_rename: int = 0
    conservative_predicated: int = 0
    assume_true_predicated: int = 0
    conditional_branches: int = 0
    branch_mispredictions: int = 0
    override_flushes: int = 0
    predicate_flushes: int = 0
    counters: CounterSet = field(default_factory=CounterSet)
    memory_stats: Dict[str, float] = field(default_factory=dict)
    fu_utilisation: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.committed_instructions / self.cycles if self.cycles else 0.0

    @property
    def useful_ipc(self) -> float:
        """Committed, architecturally-executed instructions per cycle
        (nullified instructions excluded)."""
        return self.executed_instructions / self.cycles if self.cycles else 0.0

    @property
    def branch_misprediction_rate(self) -> float:
        if not self.conditional_branches:
            return 0.0
        return self.branch_mispredictions / self.conditional_branches

    @property
    def mpki(self) -> float:
        """Branch mispredictions per thousand committed instructions."""
        if not self.committed_instructions:
            return 0.0
        return 1000.0 * self.branch_mispredictions / self.committed_instructions

    def summary(self) -> Dict[str, float]:
        return {
            "cycles": float(self.cycles),
            "committed": float(self.committed_instructions),
            "ipc": self.ipc,
            "useful_ipc": self.useful_ipc,
            "branch_misprediction_rate": self.branch_misprediction_rate,
            "mpki": self.mpki,
            "override_flushes": float(self.override_flushes),
            "predicate_flushes": float(self.predicate_flushes),
            "cancelled_at_rename": float(self.cancelled_at_rename),
        }

    def __repr__(self) -> str:
        return (
            f"<PipelineMetrics cycles={self.cycles} ipc={self.ipc:.3f} "
            f"bmr={100 * self.branch_misprediction_rate:.2f}%>"
        )
