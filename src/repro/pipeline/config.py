"""Pipeline configuration (Table 1 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.isa.opcodes import FunctionalUnitClass


def _default_fu_counts() -> Dict[FunctionalUnitClass, int]:
    return {
        FunctionalUnitClass.INT_ALU: 4,
        FunctionalUnitClass.INT_MUL: 1,
        FunctionalUnitClass.FP_UNIT: 2,
        FunctionalUnitClass.LOAD_PORT: 2,
        FunctionalUnitClass.STORE_PORT: 1,
        FunctionalUnitClass.BRANCH_UNIT: 1,
    }


@dataclass
class PipelineConfig:
    """All pipeline parameters.

    Defaults reproduce Table 1: an eight-stage out-of-order core fetching up
    to two bundles (six instructions) per cycle, 80-entry integer and
    floating-point issue queues, a 32-entry branch queue, two 64-entry
    load/store queues, a 256-entry reorder buffer, and 10-cycle misprediction
    recovery.
    """

    # Front end -------------------------------------------------------
    fetch_width: int = 6
    bundles_per_fetch: int = 2
    bundle_slots: int = 3
    decode_latency: int = 1
    rename_width: int = 6
    #: pipeline depth between fetch and rename (the paper's eight-stage core
    #: has two front-end stages between them: decode and the rename itself).
    fetch_to_rename: int = 2

    # Windows and queues ----------------------------------------------
    rob_entries: int = 256
    int_queue_entries: int = 80
    fp_queue_entries: int = 80
    branch_queue_entries: int = 32
    load_queue_entries: int = 64
    store_queue_entries: int = 64

    # Back end ----------------------------------------------------------
    commit_width: int = 6
    fu_counts: Dict[FunctionalUnitClass, int] = field(default_factory=_default_fu_counts)
    store_forward_latency: int = 2
    store_forward_window: int = 200

    # Prediction-related timing -----------------------------------------
    #: cycles of recovery charged after a resolved branch misprediction.
    branch_mispredict_penalty: int = 10
    #: cycles of recovery charged after a predicate misprediction flush
    #: (selective predicate prediction; same recovery path as branches).
    predicate_mispredict_penalty: int = 10
    #: front-end flush cost when the slow second-level prediction (or the
    #: PPRF value read at rename) overrides the fast fetch-time prediction.
    override_flush_penalty: int = 3
    #: access latency of the second-level predictor (Table 1: 3 cycles).
    second_level_latency: int = 3

    def __post_init__(self) -> None:
        if self.fetch_width < 1 or self.rename_width < 1 or self.commit_width < 1:
            raise ValueError("pipeline widths must be at least 1")
        if self.rob_entries < 1:
            raise ValueError("reorder buffer needs at least one entry")


#: The exact configuration used in the paper's evaluation (alias of the
#: defaults; exposed under a separate name so experiment code reads clearly).
def paper_pipeline_config() -> PipelineConfig:
    """Return the Table 1 pipeline configuration."""
    return PipelineConfig()
