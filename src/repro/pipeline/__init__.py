"""Out-of-order pipeline timing model.

The core (:class:`~repro.pipeline.core.OutOfOrderCore`) is a trace-driven,
eight-stage out-of-order timing model of the processor in Table 1.  It
replays the correct-path dynamic instruction stream produced by
:mod:`repro.emulator` and computes, for every dynamic instruction, the cycle
at which it passes each pipeline stage (fetch, decode, rename, dispatch,
issue, execute/complete, commit) subject to:

* fetch-width / bundle limits, instruction-cache and ITLB latency, and
  fetch redirects after mispredictions and front-end overrides;
* rename width, reorder-buffer occupancy, issue-queue occupancy and
  load/store-queue occupancy;
* true data dependences through general, floating-point and predicate
  registers (plus the conservative old-destination dependence of predicated
  instructions that are not handled by selective predicate prediction);
* functional-unit contention and instruction latencies;
* data-cache, DTLB and store-buffer behaviour for memory operations.

Branch-handling policy is delegated to a *scheme*
(:mod:`repro.core`): the pipeline calls scheme hooks at fetch, rename,
completion and resolution times, and charges the flush/redirect penalties the
scheme's decisions imply.  This is exactly the separation the paper draws
between the microarchitectural substrate (the LSE-based IA-64 core model) and
the three prediction schemes being compared.
"""

from repro.pipeline.config import PipelineConfig
from repro.pipeline.uop import Uop
from repro.pipeline.metrics import PipelineMetrics
from repro.pipeline.pprf import PredicatePhysicalRegisterFile, PPRFEntry
from repro.pipeline.core import OutOfOrderCore, SimulationResult

__all__ = [
    "PipelineConfig",
    "Uop",
    "PipelineMetrics",
    "PredicatePhysicalRegisterFile",
    "PPRFEntry",
    "OutOfOrderCore",
    "SimulationResult",
]
