"""The Predicate Physical Register File (PPRF).

Section 3.1/3.2 of the paper: every predicate (like every other register) is
renamed to a physical location.  The predicate prediction produced at the
compare's fetch is written into the physical register allocated at rename;
the computed value is written into the *same* physical register when the
compare executes.  Consumers (branches and if-converted instructions) rename
their guarding predicate and read that physical register — if the compare
has already executed they read the computed value (early-resolved, always
correct), otherwise they read the prediction.

For selective predicate prediction each entry is extended with three fields
(Figure 3): a confidence bit, a speculative bit, and a ROB pointer to the
first speculative consumer (used to flush the pipeline from that point when
the prediction turns out wrong).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class PPRFEntry:
    """One physical predicate register."""

    physical_id: int
    #: Logical predicate register this physical register currently renames.
    logical_index: int
    #: PC of the compare that allocated the entry.
    producer_pc: int
    #: Which of the compare's two predicate targets this entry holds (0/1).
    producer_slot: int
    #: Dynamic sequence number of the producer compare.
    producer_seq: int
    #: Predicted value written at rename (None when no prediction was made).
    predicted_value: Optional[bool] = None
    #: Computed value written at execute (None until the compare executes).
    computed_value: Optional[bool] = None
    #: Cycle at which the prediction was written (producer rename).
    predicted_cycle: Optional[int] = None
    #: Cycle at which the computed value becomes available (producer complete).
    computed_cycle: Optional[int] = None
    #: Speculative bit: set when a prediction is written, cleared when the
    #: computed value arrives.
    speculative: bool = True
    #: Confidence bit: set when the confidence estimator deemed the
    #: prediction usable for speculation.
    confident: bool = False
    #: ROB pointer: sequence number of the first speculative consumer.
    rob_pointer: Optional[int] = None
    #: Predictor table index used for this prediction (for confidence update).
    predictor_index: Optional[int] = None
    #: Token identifying the global-history bit pushed for this prediction.
    history_token: Optional[int] = None

    def value_at(self, cycle: int) -> Optional[bool]:
        """Value a consumer reading this entry at ``cycle`` observes."""
        if self.computed_cycle is not None and self.computed_cycle <= cycle:
            return self.computed_value
        return self.predicted_value

    def is_resolved_at(self, cycle: int) -> bool:
        """True when the computed value is available at ``cycle``."""
        return self.computed_cycle is not None and self.computed_cycle <= cycle


class PredicatePhysicalRegisterFile:
    """Rename map + physical storage for predicate registers.

    The file is unbounded (physical ids grow monotonically) because the
    trace-driven pipeline never needs to reclaim predicate registers to make
    progress; the number of *live* mappings is still exactly 64, one per
    logical predicate register.
    """

    def __init__(self) -> None:
        self._next_id = 0
        #: logical predicate index -> current physical entry.
        self._map: Dict[int, PPRFEntry] = {}
        self.allocations = 0

    # ------------------------------------------------------------------
    def allocate(
        self,
        logical_index: int,
        producer_pc: int,
        producer_slot: int,
        producer_seq: int,
    ) -> PPRFEntry:
        """Allocate a fresh physical register for a compare target."""
        entry = PPRFEntry(
            physical_id=self._next_id,
            logical_index=logical_index,
            producer_pc=producer_pc,
            producer_slot=producer_slot,
            producer_seq=producer_seq,
        )
        self._next_id += 1
        self.allocations += 1
        self._map[logical_index] = entry
        return entry

    def current(self, logical_index: int) -> Optional[PPRFEntry]:
        """The physical entry a consumer of ``p<logical_index>`` renames to."""
        return self._map.get(logical_index)

    def live_entries(self) -> List[PPRFEntry]:
        return list(self._map.values())

    def __len__(self) -> int:
        return len(self._map)
