"""Load/store unit: the two 64-entry queues, forwarding and cache access."""

from __future__ import annotations

from typing import Optional

from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import PipelineConfig
from repro.pipeline.resources import SlidingWindowResource, StoreForwardingTable


class LoadStoreUnit:
    """Models the memory-side constraints of the pipeline.

    * load-queue and store-queue occupancy (entries held from rename until
      commit);
    * store-to-load forwarding through the store queue;
    * data-cache / DTLB latency for loads that are not forwarded;
    * store write-buffer pressure at commit.
    """

    def __init__(self, config: PipelineConfig, memory: Optional[MemoryHierarchy]) -> None:
        self.config = config
        self.memory = memory
        self.load_queue = SlidingWindowResource("load-queue", config.load_queue_entries)
        self.store_queue = SlidingWindowResource("store-queue", config.store_queue_entries)
        self.forwarding = StoreForwardingTable(config.store_forward_window)
        self.loads = 0
        self.stores = 0
        self.forwarded_loads = 0

    # ------------------------------------------------------------------
    def queue_constraint(self, is_store: bool, desired_cycle: int) -> int:
        """Earliest cycle a load/store can be renamed given queue occupancy."""
        queue = self.store_queue if is_store else self.load_queue
        return queue.earliest_allocation(desired_cycle)

    def record_allocation(self, is_store: bool, commit_cycle: int) -> None:
        queue = self.store_queue if is_store else self.load_queue
        queue.allocate(commit_cycle)

    # ------------------------------------------------------------------
    def load_complete_cycle(self, address: Optional[int], issue_cycle: int) -> int:
        """Completion cycle of a load issued at ``issue_cycle``."""
        self.loads += 1
        if address is None:
            # Nullified load (false qualifying predicate) — no memory access.
            return issue_cycle + 1
        forward_cycle = self.forwarding.forwarding_cycle(address, issue_cycle)
        if forward_cycle is not None:
            self.forwarded_loads += 1
            data_ready = max(issue_cycle, forward_cycle)
            return data_ready + self.config.store_forward_latency
        if self.memory is None:
            return issue_cycle + 2
        return issue_cycle + self.memory.load_latency(address, issue_cycle)

    def store_execute(self, address: Optional[int], data_ready_cycle: int) -> None:
        """Record a store's data for later forwarding."""
        self.stores += 1
        if address is not None:
            self.forwarding.record_store(address, data_ready_cycle)

    def store_commit_penalty(self, address: Optional[int], commit_cycle: int) -> int:
        """Extra commit latency charged to a store (write buffer / DTLB)."""
        if address is None or self.memory is None:
            return 0
        return self.memory.store_latency(address, commit_cycle)
