"""Pipeline resource models: occupancy windows, functional units, register
timing.

The timing model is a one-pass computation over the dynamic instruction
stream, so resources are expressed as constraints on stage timestamps:

* a :class:`SlidingWindowResource` models a queue of N entries where an
  entry is allocated at one pipeline event and released at another — the
  N-th most recent allocation cannot happen before the matching release
  (e.g. rename cannot proceed while the ROB is full);
* a :class:`FunctionalUnitPool` hands out the earliest free slot of a pool
  of fully-pipelined units;
* a :class:`RegisterTimingTable` records, per architectural register, the
  cycle at which the value of its most recent (in program order) writer
  becomes available — exactly the information rename obtains by mapping the
  register to the physical register of that writer.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from repro.isa.opcodes import FunctionalUnitClass
from repro.isa.registers import Register


class SlidingWindowResource:
    """A queue with ``capacity`` entries: allocation N waits for release N-capacity."""

    __slots__ = ("name", "capacity", "_release_cycles")

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"{name}: capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._release_cycles: Deque[int] = deque()

    def earliest_allocation(self, desired_cycle: int) -> int:
        """Earliest cycle an allocation can happen, given the desired cycle."""
        if len(self._release_cycles) < self.capacity:
            return desired_cycle
        oldest_release = self._release_cycles[0]
        return max(desired_cycle, oldest_release)

    def allocate(self, release_cycle: int) -> None:
        """Record an allocation whose entry frees at ``release_cycle``."""
        if len(self._release_cycles) >= self.capacity:
            self._release_cycles.popleft()
        self._release_cycles.append(release_cycle)

    def __repr__(self) -> str:
        return f"<SlidingWindowResource {self.name} capacity={self.capacity}>"


class FunctionalUnitPool:
    """A pool of fully-pipelined functional units per unit class."""

    def __init__(self, counts: Dict[FunctionalUnitClass, int]) -> None:
        self._next_free: Dict[FunctionalUnitClass, List[int]] = {
            unit: [0] * max(1, count) for unit, count in counts.items()
        }
        self.issue_counts: Dict[FunctionalUnitClass, int] = {
            unit: 0 for unit in counts
        }

    def acquire(self, unit: FunctionalUnitClass, ready_cycle: int) -> int:
        """Return the issue cycle on the earliest available unit of ``unit``.

        Units are fully pipelined: a unit accepts a new operation every
        cycle, so acquiring it pushes its next-free time one cycle past the
        issue cycle.
        """
        slots = self._next_free[unit]
        best_index = 0
        best_cycle = slots[0]
        for index in range(1, len(slots)):
            if slots[index] < best_cycle:
                best_cycle = slots[index]
                best_index = index
        issue_cycle = max(ready_cycle, best_cycle)
        slots[best_index] = issue_cycle + 1
        self.issue_counts[unit] = self.issue_counts.get(unit, 0) + 1
        return issue_cycle

    def utilisation(self) -> Dict[str, int]:
        return {unit.value: count for unit, count in self.issue_counts.items()}


class RegisterTimingTable:
    """Per-architectural-register value-ready cycles (program order writers)."""

    def __init__(self) -> None:
        self._ready: Dict[Register, int] = {}

    def ready_cycle(self, reg: Register) -> int:
        """Cycle at which the current (program-order latest) value of ``reg``
        is available; 0 for registers not written inside the trace."""
        if reg.is_hardwired:
            return 0
        return self._ready.get(reg, 0)

    def ready_for(self, regs: Iterable[Register]) -> int:
        latest = 0
        for reg in regs:
            cycle = self.ready_cycle(reg)
            if cycle > latest:
                latest = cycle
        return latest

    def set_ready(self, reg: Register, cycle: int) -> None:
        if not reg.is_hardwired:
            self._ready[reg] = cycle


class StoreForwardingTable:
    """Recent stores by word address, used for memory dependences."""

    __slots__ = ("window", "_stores")

    def __init__(self, window: int) -> None:
        self.window = window
        self._stores: Dict[int, int] = {}

    def record_store(self, address: int, data_ready_cycle: int) -> None:
        self._stores[address & ~7] = data_ready_cycle

    def forwarding_cycle(self, address: int, load_issue_cycle: int) -> Optional[int]:
        """If a recent store wrote this word, return the cycle its data is
        forwardable; ``None`` when the load should go to the cache."""
        ready = self._stores.get(address & ~7)
        if ready is None:
            return None
        if ready < load_issue_cycle - self.window:
            return None
        return ready
