"""The out-of-order core: a one-pass, trace-driven timing engine.

For every dynamic instruction the engine computes the cycle at which it
passes each stage of the eight-stage pipeline, subject to the fetch, rename,
window, functional-unit and memory constraints configured in
:class:`~repro.pipeline.config.PipelineConfig`, and calls the branch-handling
scheme's hooks at the pipeline positions the paper's mechanisms care about:

* predictions are initiated at **fetch** (``on_fetch``);
* the PPRF is written and read at **rename** (``on_compare_rename``,
  ``on_branch_rename``, ``on_predicated_rename``) — this is where the
  prediction stored by the compare overrides the fetch-time prediction, and
  where early-resolved branches read the already-computed value;
* computed predicate values appear at **execute/writeback**
  (``on_compare_complete``), which is also when mispredictions caused by
  consumed predictions are discovered and flushes are charged;
* branches train their predictors when they **resolve**
  (``on_branch_resolved``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.emulator.executor import DynInst
from repro.isa.compare import CompareInstruction
from repro.isa.opcodes import FunctionalUnitClass, OpClass
from repro.isa.registers import Register
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import PipelineConfig
from repro.pipeline.fetch import FetchEngine
from repro.pipeline.lsq import LoadStoreUnit
from repro.pipeline.metrics import PipelineMetrics
from repro.pipeline.resources import (
    FunctionalUnitPool,
    RegisterTimingTable,
    SlidingWindowResource,
)
from repro.pipeline.scheme_api import BranchHandlingScheme
from repro.pipeline.uop import RenameDecision, Uop
from repro.stats.accuracy import BranchAccuracy


@dataclass
class SimulationResult:
    """Everything a simulation run produces."""

    program_name: str
    scheme_name: str
    metrics: PipelineMetrics
    accuracy: BranchAccuracy
    uops: Optional[List[Uop]] = field(default=None, repr=False)

    @property
    def ipc(self) -> float:
        return self.metrics.ipc

    @property
    def misprediction_rate(self) -> float:
        return self.accuracy.misprediction_rate


class _InOrderSlotter:
    """Width-limited, in-order slot assignment (rename and commit stages)."""

    __slots__ = ("width", "_cycle", "_used")

    def __init__(self, width: int) -> None:
        self.width = width
        self._cycle = -1
        self._used = 0

    def place(self, earliest: int) -> int:
        cycle = max(earliest, self._cycle)
        if cycle == self._cycle and self._used >= self.width:
            cycle += 1
        if cycle > self._cycle:
            self._cycle = cycle
            self._used = 0
        self._used += 1
        return cycle


class OutOfOrderCore:
    """Trace-driven out-of-order timing model."""

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        memory: Optional[MemoryHierarchy] = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.memory = memory if memory is not None else MemoryHierarchy()

    # ------------------------------------------------------------------
    def run(
        self,
        trace: Iterable[DynInst],
        scheme: BranchHandlingScheme,
        program_name: str = "program",
        keep_uops: bool = False,
    ) -> SimulationResult:
        """Simulate ``trace`` under ``scheme`` and return the results."""
        cfg = self.config
        fetch = FetchEngine(cfg, self.memory)
        regs = RegisterTimingTable()
        fus = FunctionalUnitPool(cfg.fu_counts)
        lsu = LoadStoreUnit(cfg, self.memory)
        rob = SlidingWindowResource("rob", cfg.rob_entries)
        int_queue = SlidingWindowResource("int-iq", cfg.int_queue_entries)
        fp_queue = SlidingWindowResource("fp-iq", cfg.fp_queue_entries)
        branch_queue = SlidingWindowResource("br-iq", cfg.branch_queue_entries)
        rename_slots = _InOrderSlotter(cfg.rename_width)
        commit_slots = _InOrderSlotter(cfg.commit_width)

        metrics = PipelineMetrics()
        kept: Optional[List[Uop]] = [] if keep_uops else None
        last_commit = 0

        for dyn in trace:
            uop = Uop(dyn)
            inst = dyn.inst

            # ----------------------------------------------------- fetch
            uop.fetch_cycle = fetch.fetch(dyn)
            scheme.on_fetch(dyn, uop.fetch_cycle)
            uop.decode_cycle = uop.fetch_cycle + cfg.decode_latency

            # ---------------------------------------------------- rename
            queue = self._queue_resource(inst, int_queue, fp_queue, branch_queue)
            uop.rename_cycle = self._rename_cycle(uop, rob, lsu, rename_slots, queue)
            guard_ready = (
                regs.ready_cycle(inst.qp) if inst.is_predicated else 0
            )

            # ------------------------------------------- per-class handling
            if dyn.is_branch:
                self._handle_branch(
                    uop, scheme, fetch, fus, branch_queue, regs, metrics, guard_ready
                )
            elif dyn.is_compare:
                self._handle_compare(uop, scheme, fus, int_queue, fp_queue, regs)
            else:
                self._handle_simple(
                    uop,
                    scheme,
                    fetch,
                    fus,
                    int_queue,
                    fp_queue,
                    regs,
                    lsu,
                    rob,
                    rename_slots,
                    metrics,
                    guard_ready,
                )

            # ---------------------------------------------------- commit
            store_penalty = 0
            if inst.is_store and dyn.executed:
                store_penalty = lsu.store_commit_penalty(dyn.mem_address, uop.complete_cycle)
            uop.commit_cycle = commit_slots.place(uop.complete_cycle + 1 + store_penalty)
            last_commit = max(last_commit, uop.commit_cycle)

            rob.allocate(uop.commit_cycle)
            if inst.is_memory and not uop.cancelled:
                lsu.record_allocation(inst.is_store, uop.commit_cycle)

            # -------------------------------------------------- accounting
            metrics.fetched_instructions += 1
            metrics.committed_instructions += 1
            if dyn.executed:
                metrics.executed_instructions += 1
            else:
                metrics.nullified_instructions += 1
            if kept is not None:
                kept.append(uop)

        metrics.cycles = last_commit
        metrics.memory_stats = self.memory.statistics() if self.memory else {}
        metrics.fu_utilisation = fus.utilisation()
        metrics.counters.set("lsq_forwarded_loads", lsu.forwarded_loads)
        metrics.counters.set("fetch_redirects", fetch.redirects)
        metrics.counters.set("icache_stall_cycles", fetch.icache_stall_cycles)

        return SimulationResult(
            program_name=program_name,
            scheme_name=scheme.name,
            metrics=metrics,
            accuracy=scheme.accuracy,
            uops=kept,
        )

    # ------------------------------------------------------------------
    # Stage helpers
    # ------------------------------------------------------------------
    def _rename_cycle(
        self,
        uop: Uop,
        rob: SlidingWindowResource,
        lsu: LoadStoreUnit,
        rename_slots: _InOrderSlotter,
        queue: Optional[SlidingWindowResource],
    ) -> int:
        cfg = self.config
        desired = uop.fetch_cycle + cfg.fetch_to_rename
        cycle = rob.earliest_allocation(desired)
        if uop.inst.is_memory:
            cycle = lsu.queue_constraint(uop.inst.is_store, cycle)
        elif queue is not None:
            # A full issue queue stalls dispatch, which backs up rename.
            cycle = queue.earliest_allocation(cycle)
        return rename_slots.place(cycle)

    def _queue_resource(
        self,
        inst,
        int_queue: SlidingWindowResource,
        fp_queue: SlidingWindowResource,
        branch_queue: SlidingWindowResource,
    ) -> Optional[SlidingWindowResource]:
        """The issue queue an instruction dispatches into (None for memory
        operations, which occupy the load/store queues instead)."""
        if inst.is_memory:
            return None
        if inst.opclass is OpClass.BRANCH:
            return branch_queue
        if inst.info.unit is FunctionalUnitClass.FP_UNIT:
            return fp_queue
        return int_queue

    def _source_registers(self, dyn: DynInst, decision: RenameDecision) -> List[Register]:
        inst = dyn.inst
        sources = [s for s in inst.srcs if isinstance(s, Register)]
        if not inst.is_predicated:
            return sources
        if decision is RenameDecision.ASSUME_TRUE:
            return sources
        # Conservative handling: the predicate is a data dependence, and a
        # predicated definition also depends on the previous value of its
        # destination (conditional-move expansion of the multiple-definition
        # problem).
        sources = sources + [inst.qp]
        sources.extend(inst.destination_registers())
        return sources

    # ------------------------------------------------------------------
    def _handle_branch(
        self,
        uop: Uop,
        scheme: BranchHandlingScheme,
        fetch: FetchEngine,
        fus: FunctionalUnitPool,
        branch_queue: SlidingWindowResource,
        regs: RegisterTimingTable,
        metrics: PipelineMetrics,
        guard_ready: int,
    ) -> None:
        cfg = self.config
        dyn = uop.dyn
        uop.dispatch_cycle = uop.rename_cycle + 1
        ready = max(uop.dispatch_cycle + 1, guard_ready)
        uop.ready_cycle = ready
        uop.issue_cycle = fus.acquire(FunctionalUnitClass.BRANCH_UNIT, ready)
        branch_queue.allocate(uop.issue_cycle)
        uop.complete_cycle = uop.issue_cycle + dyn.inst.latency

        if not dyn.is_conditional_branch:
            return

        metrics.conditional_branches += 1
        handling = scheme.on_branch_rename(
            dyn, uop.fetch_cycle, uop.rename_cycle, guard_ready
        )
        resolve_cycle = uop.complete_cycle
        mispredicted = handling.final_prediction != bool(dyn.taken)
        uop.branch_mispredicted = mispredicted
        uop.override_flush = handling.override_flush

        redirect: Optional[int] = None
        if handling.override_flush:
            metrics.override_flushes += 1
            redirect = uop.rename_cycle + cfg.override_flush_penalty
        if mispredicted:
            metrics.branch_mispredictions += 1
            redirect = resolve_cycle + cfg.branch_mispredict_penalty
        if redirect is not None:
            fetch.redirect(redirect)

        scheme.on_branch_resolved(dyn, resolve_cycle, mispredicted)

    def _handle_compare(
        self,
        uop: Uop,
        scheme: BranchHandlingScheme,
        fus: FunctionalUnitPool,
        int_queue: SlidingWindowResource,
        fp_queue: SlidingWindowResource,
        regs: RegisterTimingTable,
    ) -> None:
        dyn = uop.dyn
        inst = dyn.inst
        scheme.on_compare_rename(dyn, uop.fetch_cycle, uop.rename_cycle)

        uop.dispatch_cycle = uop.rename_cycle + 1
        sources = [s for s in inst.srcs if isinstance(s, Register)]
        if inst.is_predicated:
            sources.append(inst.qp)
        if isinstance(inst, CompareInstruction) and inst.ctype.depends_on_previous_values:
            sources.extend(inst.predicate_destinations())
        ready = max(uop.dispatch_cycle + 1, regs.ready_for(sources))
        uop.ready_cycle = ready

        queue = (
            fp_queue if inst.info.unit is FunctionalUnitClass.FP_UNIT else int_queue
        )
        uop.issue_cycle = fus.acquire(inst.info.unit, ready)
        queue.allocate(uop.issue_cycle)
        uop.complete_cycle = uop.issue_cycle + inst.latency

        for dest in inst.destination_registers():
            regs.set_ready(dest, uop.complete_cycle)
        scheme.on_compare_complete(dyn, uop.complete_cycle)

    def _handle_simple(
        self,
        uop: Uop,
        scheme: BranchHandlingScheme,
        fetch: FetchEngine,
        fus: FunctionalUnitPool,
        int_queue: SlidingWindowResource,
        fp_queue: SlidingWindowResource,
        regs: RegisterTimingTable,
        lsu: LoadStoreUnit,
        rob: SlidingWindowResource,
        rename_slots: _InOrderSlotter,
        metrics: PipelineMetrics,
        guard_ready: int,
    ) -> None:
        cfg = self.config
        dyn = uop.dyn
        inst = dyn.inst

        decision = RenameDecision.CONSERVATIVE
        if inst.is_predicated:
            handling = scheme.on_predicated_rename(
                dyn, uop.fetch_cycle, uop.rename_cycle, guard_ready
            )
            decision = handling.decision
            if handling.mispredicted:
                # The speculation was wrong: the pipeline is flushed from
                # this instruction (the PPRF entry's ROB pointer) once the
                # compare computes the true value; the instruction is then
                # re-fetched and handled conservatively.
                metrics.predicate_flushes += 1
                uop.predicate_flush = True
                resume = handling.flush_discovery_cycle + cfg.predicate_mispredict_penalty
                uop.fetch_cycle = fetch.refetch_current(dyn, resume)
                uop.decode_cycle = uop.fetch_cycle + cfg.decode_latency
                queue = self._queue_resource(inst, int_queue, fp_queue, None)
                uop.rename_cycle = self._rename_cycle(uop, rob, lsu, rename_slots, queue)
                decision = RenameDecision.CONSERVATIVE

        uop.rename_decision = decision
        if decision is RenameDecision.CANCEL:
            # Cancelled at rename: never dispatched, no issue queue entry,
            # no functional unit, destinations keep their previous mapping.
            uop.cancelled = True
            metrics.cancelled_at_rename += 1
            uop.dispatch_cycle = uop.rename_cycle
            uop.issue_cycle = uop.rename_cycle
            uop.complete_cycle = uop.rename_cycle
            return

        if inst.is_predicated:
            if decision is RenameDecision.ASSUME_TRUE:
                metrics.assume_true_predicated += 1
            else:
                metrics.conservative_predicated += 1

        uop.dispatch_cycle = uop.rename_cycle + 1
        sources = self._source_registers(dyn, decision)
        ready = max(uop.dispatch_cycle + 1, regs.ready_for(sources))
        uop.ready_cycle = ready

        if inst.is_memory:
            uop.issue_cycle = fus.acquire(inst.info.unit, ready)
            if inst.is_load:
                address = dyn.mem_address if dyn.executed else None
                uop.complete_cycle = lsu.load_complete_cycle(address, uop.issue_cycle)
            else:
                uop.complete_cycle = uop.issue_cycle + inst.latency
                address = dyn.mem_address if dyn.executed else None
                lsu.store_execute(address, uop.complete_cycle)
        else:
            queue = (
                fp_queue
                if inst.info.unit is FunctionalUnitClass.FP_UNIT
                else int_queue
            )
            uop.issue_cycle = fus.acquire(inst.info.unit, ready)
            queue.allocate(uop.issue_cycle)
            uop.complete_cycle = uop.issue_cycle + inst.latency

        for dest in inst.destination_registers():
            regs.set_ready(dest, uop.complete_cycle)
