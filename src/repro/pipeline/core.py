"""The out-of-order core: a one-pass, trace-driven timing engine.

For every dynamic instruction the engine computes the cycle at which it
passes each stage of the eight-stage pipeline, subject to the fetch, rename,
window, functional-unit and memory constraints configured in
:class:`~repro.pipeline.config.PipelineConfig`, and calls the branch-handling
scheme's hooks at the pipeline positions the paper's mechanisms care about:

* predictions are initiated at **fetch** (``on_fetch``);
* the PPRF is written and read at **rename** (``on_compare_rename``,
  ``on_branch_rename``, ``on_predicated_rename``) — this is where the
  prediction stored by the compare overrides the fetch-time prediction, and
  where early-resolved branches read the already-computed value;
* computed predicate values appear at **execute/writeback**
  (``on_compare_complete``), which is also when mispredictions caused by
  consumed predictions are discovered and flushes are charged;
* branches train their predictors when they **resolve**
  (``on_branch_resolved``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.emulator.executor import DynInst
from repro.emulator.tracepack import ChunkedTracePack, TracePack
from repro.isa.branches import BranchInstruction
from repro.isa.compare import CompareInstruction
from repro.isa.opcodes import FunctionalUnitClass, OpClass
from repro.isa.registers import Register, RegisterKind
from repro.memory.hierarchy import MemoryHierarchy
from repro.perf.flags import resolve_optimized
from repro.pipeline.config import PipelineConfig
from repro.pipeline.fetch import FetchEngine
from repro.pipeline.lsq import LoadStoreUnit
from repro.pipeline.metrics import PipelineMetrics
from repro.pipeline.resources import (
    FunctionalUnitPool,
    RegisterTimingTable,
    SlidingWindowResource,
)
from repro.pipeline.scheme_api import BranchHandlingScheme
from repro.pipeline.uop import RenameDecision, Uop
from repro.stats.accuracy import BranchAccuracy


@dataclass
class SimulationResult:
    """Everything a simulation run produces."""

    program_name: str
    scheme_name: str
    metrics: PipelineMetrics
    accuracy: BranchAccuracy
    uops: Optional[List[Uop]] = field(default=None, repr=False)
    #: Set by the windowed runner when the run was *sampled* (a
    #: :class:`repro.pipeline.windowed.SamplingSpec`): the metrics cover
    #: only the measured windows, so result tables must flag them.
    sampling: Optional[object] = None

    @property
    def sampled(self) -> bool:
        return self.sampling is not None

    @property
    def ipc(self) -> float:
        return self.metrics.ipc

    @property
    def misprediction_rate(self) -> float:
        return self.accuracy.misprediction_rate


class _InOrderSlotter:
    """Width-limited, in-order slot assignment (rename and commit stages)."""

    __slots__ = ("width", "_cycle", "_used")

    def __init__(self, width: int) -> None:
        self.width = width
        self._cycle = -1
        self._used = 0

    def place(self, earliest: int) -> int:
        cycle = max(earliest, self._cycle)
        if cycle == self._cycle and self._used >= self.width:
            cycle += 1
        if cycle > self._cycle:
            self._cycle = cycle
            self._used = 0
        self._used += 1
        return cycle


#: Compact integer keys for architectural registers, used by the fast
#: path's register-timing dict (hashing a small int is much cheaper than
#: hashing a frozen ``Register`` dataclass).
_KIND_CODE = {
    RegisterKind.GENERAL: 0,
    RegisterKind.PREDICATE: 1,
    RegisterKind.BRANCH: 2,
    RegisterKind.FLOAT: 3,
}


def _reg_key(reg: Register) -> int:
    return (_KIND_CODE[reg.kind] << 8) | reg.index


class _Decode:
    """Per-static-instruction decode/dispatch record of the fast path.

    Everything the timing loop derives from an :class:`Instruction` through
    property chains (``info`` -> ``opclass`` -> ``is_*``, issue queue
    selection, source/destination register sets) is computed once per
    static instruction and reused for every dynamic instance.  Built per
    run because it captures run-local resource objects (functional-unit
    slot lists, issue-queue deques).
    """

    __slots__ = (
        "kind",  # 0 = simple, 1 = branch, 2 = compare
        "latency",
        "unit",
        "slots",  # functional-unit next-free list (fast acquire)
        "count_cell",  # shared per-unit issue counter cell
        "queue",  # issue-queue deque (None for memory operations)
        "queue_cap",
        "is_memory",
        "is_load",
        "is_store",
        "is_predicated",
        "qp_key",
        "is_cond_branch",
        "src_keys",  # non-hardwired source register keys
        "cons_keys",  # conservative sources (srcs + qp + old dests)
        "cmp_src_keys",  # compare-path sources
        "dest_keys",  # non-hardwired destination register keys
    )


class _FastState:
    """The complete mutable state of one fast-loop run between windows.

    Everything :meth:`OutOfOrderCore._run_fast_window` reads or writes lives
    here — resource models, the register-timing dict, the decode cache, the
    metric accumulators and the scheme (whose predictors carry the branch
    history that makes resume correctness non-trivial).  Pickling one
    ``_FastState`` pickles the whole object graph in a single blob, so the
    shared-identity invariants the fast loop relies on (a ``_Decode``'s
    ``slots`` list *is* the functional-unit pool's next-free list, its
    ``queue`` *is* one of the issue-queue deques) survive a
    checkpoint/restore round trip via the pickle memo.  ``rows_done`` is
    the resume point; ``sampled_cycles`` accumulates measured-window cycle
    deltas when sampling is active (``None`` for full runs).
    """

    __slots__ = (
        "scheme",
        "fetch",
        "fus",
        "lsu",
        "memory",
        "rob_q",
        "int_q",
        "fp_q",
        "br_q",
        "rn_state",
        "cm_cycle",
        "cm_used",
        "regs",
        "unit_cells",
        "dcache",
        "n_insts",
        "n_executed",
        "n_cond_branches",
        "n_mispredictions",
        "n_override_flushes",
        "n_predicate_flushes",
        "n_cancelled",
        "n_conservative",
        "n_assume_true",
        "last_commit",
        "rows_done",
        "sampled_cycles",
    )

    #: The integer metric accumulators (snapshotted around sampling warmup).
    COUNTER_SLOTS = (
        "n_insts",
        "n_executed",
        "n_cond_branches",
        "n_mispredictions",
        "n_override_flushes",
        "n_predicate_flushes",
        "n_cancelled",
        "n_conservative",
        "n_assume_true",
    )

    def counter_snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.COUNTER_SLOTS}

    def restore_counters(self, snapshot: Dict[str, int]) -> None:
        for name, value in snapshot.items():
            setattr(self, name, value)


class OutOfOrderCore:
    """Trace-driven out-of-order timing model.

    The model has two implementations of the same semantics: the reference
    one-pass loop (:meth:`_run_reference`) and a profile-guided fast loop
    (:meth:`_run_fast`) that caches per-static-instruction decode records,
    inlines the resource models and keeps stage timestamps in locals
    instead of allocating a :class:`Uop` per dynamic instruction.  The
    parity tests assert bit-identical results on every tier-1 workload;
    ``optimized=None`` defers to the ``REPRO_OPT`` environment flag.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        memory: Optional[MemoryHierarchy] = None,
        optimized: Optional[bool] = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.memory = memory if memory is not None else MemoryHierarchy()
        self.optimized = resolve_optimized(optimized)

    # ------------------------------------------------------------------
    def run(
        self,
        trace: Iterable[DynInst],
        scheme: BranchHandlingScheme,
        program_name: str = "program",
        keep_uops: bool = False,
    ) -> SimulationResult:
        """Simulate ``trace`` under ``scheme`` and return the results.

        ``trace`` is either an iterable of :class:`DynInst` or a columnar
        :class:`~repro.emulator.tracepack.TracePack`.  The fast loop consumes
        a pack through its reusable cursor (no per-instruction object is
        materialised); the reference loop — and ``keep_uops``, which must
        retain per-instruction records — materialises the object trace.
        """
        if self.optimized and not keep_uops:
            if isinstance(trace, (TracePack, ChunkedTracePack)):
                trace = trace.cursor()
            return self._run_fast(trace, scheme, program_name)
        if isinstance(trace, (TracePack, ChunkedTracePack)):
            trace = trace.to_dyninsts()
        return self._run_reference(trace, scheme, program_name, keep_uops)

    # ------------------------------------------------------------------
    def _run_reference(
        self,
        trace: Iterable[DynInst],
        scheme: BranchHandlingScheme,
        program_name: str = "program",
        keep_uops: bool = False,
    ) -> SimulationResult:
        """The reference implementation of the timing loop."""
        cfg = self.config
        fetch = FetchEngine(cfg, self.memory)
        regs = RegisterTimingTable()
        fus = FunctionalUnitPool(cfg.fu_counts)
        lsu = LoadStoreUnit(cfg, self.memory)
        rob = SlidingWindowResource("rob", cfg.rob_entries)
        int_queue = SlidingWindowResource("int-iq", cfg.int_queue_entries)
        fp_queue = SlidingWindowResource("fp-iq", cfg.fp_queue_entries)
        branch_queue = SlidingWindowResource("br-iq", cfg.branch_queue_entries)
        rename_slots = _InOrderSlotter(cfg.rename_width)
        commit_slots = _InOrderSlotter(cfg.commit_width)

        metrics = PipelineMetrics()
        kept: Optional[List[Uop]] = [] if keep_uops else None
        last_commit = 0

        for dyn in trace:
            uop = Uop(dyn)
            inst = dyn.inst

            # ----------------------------------------------------- fetch
            uop.fetch_cycle = fetch.fetch(dyn)
            scheme.on_fetch(dyn, uop.fetch_cycle)
            uop.decode_cycle = uop.fetch_cycle + cfg.decode_latency

            # ---------------------------------------------------- rename
            queue = self._queue_resource(inst, int_queue, fp_queue, branch_queue)
            uop.rename_cycle = self._rename_cycle(uop, rob, lsu, rename_slots, queue)
            guard_ready = (
                regs.ready_cycle(inst.qp) if inst.is_predicated else 0
            )

            # ------------------------------------------- per-class handling
            if dyn.is_branch:
                self._handle_branch(
                    uop, scheme, fetch, fus, branch_queue, regs, metrics, guard_ready
                )
            elif dyn.is_compare:
                self._handle_compare(uop, scheme, fus, int_queue, fp_queue, regs)
            else:
                self._handle_simple(
                    uop,
                    scheme,
                    fetch,
                    fus,
                    int_queue,
                    fp_queue,
                    regs,
                    lsu,
                    rob,
                    rename_slots,
                    metrics,
                    guard_ready,
                )

            # ---------------------------------------------------- commit
            store_penalty = 0
            if inst.is_store and dyn.executed:
                store_penalty = lsu.store_commit_penalty(dyn.mem_address, uop.complete_cycle)
            uop.commit_cycle = commit_slots.place(uop.complete_cycle + 1 + store_penalty)
            last_commit = max(last_commit, uop.commit_cycle)

            rob.allocate(uop.commit_cycle)
            if inst.is_memory and not uop.cancelled:
                lsu.record_allocation(inst.is_store, uop.commit_cycle)

            # -------------------------------------------------- accounting
            metrics.fetched_instructions += 1
            metrics.committed_instructions += 1
            if dyn.executed:
                metrics.executed_instructions += 1
            else:
                metrics.nullified_instructions += 1
            if kept is not None:
                kept.append(uop)

        metrics.cycles = last_commit
        metrics.memory_stats = self.memory.statistics() if self.memory else {}
        metrics.fu_utilisation = fus.utilisation()
        metrics.counters.set("lsq_forwarded_loads", lsu.forwarded_loads)
        metrics.counters.set("fetch_redirects", fetch.redirects)
        metrics.counters.set("icache_stall_cycles", fetch.icache_stall_cycles)

        return SimulationResult(
            program_name=program_name,
            scheme_name=scheme.name,
            metrics=metrics,
            accuracy=scheme.accuracy,
            uops=kept,
        )

    # ------------------------------------------------------------------
    # Fast path
    # ------------------------------------------------------------------
    def _build_decode(
        self,
        inst,
        fus: FunctionalUnitPool,
        unit_cells: Dict[FunctionalUnitClass, List[int]],
        int_q: deque,
        int_cap: int,
        fp_q: deque,
        fp_cap: int,
        br_q: deque,
        br_cap: int,
    ) -> _Decode:
        """Build the decode/dispatch record of one static instruction."""
        info = inst.info
        opclass = info.opclass
        de = _Decode()
        de.latency = info.latency
        de.is_load = opclass is OpClass.LOAD
        de.is_store = opclass is OpClass.STORE
        de.is_memory = de.is_load or de.is_store
        de.is_predicated = inst.is_predicated
        de.qp_key = _reg_key(inst.qp) if de.is_predicated else -1

        if opclass is OpClass.BRANCH:
            de.kind = 1
            unit = FunctionalUnitClass.BRANCH_UNIT
            de.is_cond_branch = isinstance(inst, BranchInstruction) and inst.is_conditional
        elif opclass is OpClass.COMPARE:
            de.kind = 2
            unit = info.unit
            de.is_cond_branch = False
        else:
            de.kind = 0
            unit = info.unit
            de.is_cond_branch = False
        de.unit = unit
        de.slots = fus._next_free[unit]
        cell = unit_cells.get(unit)
        if cell is None:
            cell = [0]
            unit_cells[unit] = cell
        de.count_cell = cell

        # Issue-queue selection (reference: _queue_resource).
        if de.is_memory:
            de.queue, de.queue_cap = None, 0
        elif opclass is OpClass.BRANCH:
            de.queue, de.queue_cap = br_q, br_cap
        elif info.unit is FunctionalUnitClass.FP_UNIT:
            de.queue, de.queue_cap = fp_q, fp_cap
        else:
            de.queue, de.queue_cap = int_q, int_cap

        # Register sets.  Hardwired registers always read as ready at cycle
        # 0 and readiness is lower-bounded by dispatch + 1 > 0, so they are
        # dropped from the source sets; destination_registers() and
        # predicate_destinations() already exclude hardwired targets.
        src_regs = [s for s in inst.srcs if isinstance(s, Register)]
        de.src_keys = [_reg_key(r) for r in src_regs if not r.is_hardwired]
        dest_regs = inst.destination_registers()
        de.dest_keys = [_reg_key(r) for r in dest_regs]
        cons = list(de.src_keys)
        if de.is_predicated:
            cons.append(de.qp_key)
        cons.extend(de.dest_keys)
        de.cons_keys = cons
        cmp_keys = list(de.src_keys)
        if de.is_predicated:
            cmp_keys.append(de.qp_key)
        if isinstance(inst, CompareInstruction) and inst.ctype.depends_on_previous_values:
            cmp_keys.extend(_reg_key(r) for r in inst.predicate_destinations())
        de.cmp_src_keys = cmp_keys
        return de

    def _run_fast(
        self,
        trace: Iterable[DynInst],
        scheme: BranchHandlingScheme,
        program_name: str = "program",
    ) -> SimulationResult:
        """Optimized timing loop: same semantics as :meth:`_run_reference`.

        One full-range window over a fresh :class:`_FastState` — exactly
        what the windowed runner (:mod:`repro.pipeline.windowed`) does in
        pieces, so windowed and straight-through execution are bit-identical
        by construction.
        """
        state = self._fast_state(scheme)
        self._run_fast_window(state, trace)
        return self._finalize_fast(state, program_name)

    def _fast_state(self, scheme: BranchHandlingScheme) -> _FastState:
        """A fresh fast-loop state (row zero, all resources idle)."""
        cfg = self.config
        state = _FastState()
        state.scheme = scheme
        state.memory = self.memory
        state.fetch = FetchEngine(cfg, self.memory)
        state.fus = FunctionalUnitPool(cfg.fu_counts)
        state.lsu = LoadStoreUnit(cfg, self.memory)
        state.rob_q = deque()
        state.int_q = deque()
        state.fp_q = deque()
        state.br_q = deque()
        state.rn_state = [-1, 0]  # rename slotter: (cycle, slots used)
        state.cm_cycle = -1
        state.cm_used = 0
        state.regs = {}
        state.unit_cells = {}
        state.dcache = {}
        for name in _FastState.COUNTER_SLOTS:
            setattr(state, name, 0)
        state.last_commit = 0
        state.rows_done = 0
        state.sampled_cycles = None
        return state

    def _run_fast_window(self, state: _FastState, trace: Iterable[DynInst]) -> None:
        """Drain ``trace`` through the fast timing loop, mutating ``state``.

        The loop keeps every per-instruction timestamp in locals, consults a
        per-static-instruction :class:`_Decode` record instead of walking
        instruction property chains, and inlines the sliding-window, slotter
        and functional-unit resource models.  Any behavioural change here
        must keep the parity tests green (bit-identical IPC and
        misprediction counters against the reference loop).  Callers bound
        the window by bounding ``trace`` (a range cursor); the loop itself
        has no notion of position beyond ``state.rows_done``.
        """
        cfg = self.config
        scheme = state.scheme
        fetch = state.fetch
        fus = state.fus
        lsu = state.lsu

        # Inline resource state (parity with SlidingWindowResource /
        # _InOrderSlotter, held as locals and written back on exit).
        rob_q = state.rob_q
        rob_cap = cfg.rob_entries
        int_q = state.int_q
        fp_q = state.fp_q
        br_q = state.br_q
        int_cap = cfg.int_queue_entries
        fp_cap = cfg.fp_queue_entries
        br_cap = cfg.branch_queue_entries
        rn_width = cfg.rename_width
        rn_state = state.rn_state
        cm_width = cfg.commit_width
        cm_cycle, cm_used = state.cm_cycle, state.cm_used

        # Register readiness: int register key -> value-ready cycle.
        regs = state.regs
        regs_get = regs.get

        # Per-static-instruction decode records, keyed by instruction uid.
        unit_cells = state.unit_cells
        dcache = state.dcache
        dcache_get = dcache.get
        build_decode = self._build_decode

        # Bound hot callables.  ``on_fetch`` runs once per dynamic
        # instruction; when the scheme never overrode the base no-op hook
        # (none of the paper's schemes do) the call is skipped entirely.
        fetch_one = fetch.fetch
        on_fetch = scheme.on_fetch
        if type(scheme).on_fetch is BranchHandlingScheme.on_fetch:
            on_fetch = None
        on_branch_rename = scheme.on_branch_rename
        on_branch_resolved = scheme.on_branch_resolved
        on_compare_rename = scheme.on_compare_rename
        on_compare_complete = scheme.on_compare_complete
        on_predicated_rename = scheme.on_predicated_rename
        fetch_to_rename = cfg.fetch_to_rename
        override_flush_penalty = cfg.override_flush_penalty
        branch_mispredict_penalty = cfg.branch_mispredict_penalty
        predicate_mispredict_penalty = cfg.predicate_mispredict_penalty
        CONSERVATIVE = RenameDecision.CONSERVATIVE
        ASSUME_TRUE = RenameDecision.ASSUME_TRUE
        CANCEL = RenameDecision.CANCEL

        def place_rename(fetch_cycle: int, de: _Decode) -> int:
            """Rename-stage placement (reference: _rename_cycle + slotter).

            Shared by the main loop and the predicate-flush re-rename path
            so the rename constraints cannot drift apart.
            """
            cycle = fetch_cycle + fetch_to_rename
            if len(rob_q) >= rob_cap and rob_q[0] > cycle:
                cycle = rob_q[0]
            if de.is_memory:
                cycle = lsu.queue_constraint(de.is_store, cycle)
            else:
                queue = de.queue
                if queue is not None and len(queue) >= de.queue_cap and queue[0] > cycle:
                    cycle = queue[0]
            slot_cycle, slot_used = rn_state
            if cycle < slot_cycle:
                cycle = slot_cycle
            if cycle == slot_cycle and slot_used >= rn_width:
                cycle += 1
            if cycle > slot_cycle:
                rn_state[0] = cycle
                rn_state[1] = 1
            else:
                rn_state[1] = slot_used + 1
            return cycle

        # Metric accumulators (carried across windows via the state).
        n_insts = state.n_insts
        n_executed = state.n_executed
        n_cond_branches = state.n_cond_branches
        n_mispredictions = state.n_mispredictions
        n_override_flushes = state.n_override_flushes
        n_predicate_flushes = state.n_predicate_flushes
        n_cancelled = state.n_cancelled
        n_conservative = state.n_conservative
        n_assume_true = state.n_assume_true
        last_commit = state.last_commit

        for dyn in trace:
            inst = dyn.inst
            de = dcache_get(inst.uid)
            if de is None:
                de = build_decode(
                    inst, fus, unit_cells, int_q, int_cap, fp_q, fp_cap, br_q, br_cap
                )
                dcache[inst.uid] = de

            # ----------------------------------------------------- fetch
            fetch_cycle = fetch_one(dyn)
            if on_fetch is not None:
                on_fetch(dyn, fetch_cycle)

            # ---------------------------------------------------- rename
            rename_cycle = place_rename(fetch_cycle, de)

            is_predicated = de.is_predicated
            guard_ready = regs_get(de.qp_key, 0) if is_predicated else 0

            cancelled = False
            kind = de.kind
            # ------------------------------------------- per-class handling
            if kind == 1:  # branch
                ready = rename_cycle + 2
                if guard_ready > ready:
                    ready = guard_ready
                slots = de.slots
                best_i = 0
                best = slots[0]
                for i in range(1, len(slots)):
                    if slots[i] < best:
                        best = slots[i]
                        best_i = i
                issue = ready if ready > best else best
                slots[best_i] = issue + 1
                de.count_cell[0] += 1
                if len(br_q) >= br_cap:
                    br_q.popleft()
                br_q.append(issue)
                complete = issue + de.latency

                if de.is_cond_branch:
                    n_cond_branches += 1
                    handling = on_branch_rename(dyn, fetch_cycle, rename_cycle, guard_ready)
                    mispredicted = handling.final_prediction != bool(dyn.taken)
                    redirect = None
                    if handling.override_flush:
                        n_override_flushes += 1
                        redirect = rename_cycle + override_flush_penalty
                    if mispredicted:
                        n_mispredictions += 1
                        redirect = complete + branch_mispredict_penalty
                    if redirect is not None:
                        fetch.redirect(redirect)
                    on_branch_resolved(dyn, complete, mispredicted)

            elif kind == 2:  # compare
                on_compare_rename(dyn, fetch_cycle, rename_cycle)
                ready = rename_cycle + 2
                for key in de.cmp_src_keys:
                    t = regs_get(key, 0)
                    if t > ready:
                        ready = t
                slots = de.slots
                best_i = 0
                best = slots[0]
                for i in range(1, len(slots)):
                    if slots[i] < best:
                        best = slots[i]
                        best_i = i
                issue = ready if ready > best else best
                slots[best_i] = issue + 1
                de.count_cell[0] += 1
                queue = de.queue
                if len(queue) >= de.queue_cap:
                    queue.popleft()
                queue.append(issue)
                complete = issue + de.latency
                for key in de.dest_keys:
                    regs[key] = complete
                on_compare_complete(dyn, complete)

            else:  # simple (ALU / FP / move / memory / nop)
                decision = CONSERVATIVE
                if is_predicated:
                    handling = on_predicated_rename(
                        dyn, fetch_cycle, rename_cycle, guard_ready
                    )
                    decision = handling.decision
                    if handling.flush_discovery_cycle is not None:
                        # Wrong speculation: flush, re-fetch, handle
                        # conservatively (reference: _handle_simple).
                        n_predicate_flushes += 1
                        resume = (
                            handling.flush_discovery_cycle + predicate_mispredict_penalty
                        )
                        fetch_cycle = fetch.refetch_current(dyn, resume)
                        rename_cycle = place_rename(fetch_cycle, de)
                        decision = CONSERVATIVE

                if decision is CANCEL:
                    cancelled = True
                    n_cancelled += 1
                    complete = rename_cycle
                else:
                    if is_predicated:
                        if decision is ASSUME_TRUE:
                            n_assume_true += 1
                        else:
                            n_conservative += 1
                    ready = rename_cycle + 2
                    keys = de.src_keys if decision is ASSUME_TRUE else de.cons_keys
                    if not is_predicated:
                        keys = de.src_keys
                    for key in keys:
                        t = regs_get(key, 0)
                        if t > ready:
                            ready = t
                    slots = de.slots
                    best_i = 0
                    best = slots[0]
                    for i in range(1, len(slots)):
                        if slots[i] < best:
                            best = slots[i]
                            best_i = i
                    issue = ready if ready > best else best
                    slots[best_i] = issue + 1
                    de.count_cell[0] += 1
                    if de.is_memory:
                        address = dyn.mem_address if dyn.executed else None
                        if de.is_load:
                            complete = lsu.load_complete_cycle(address, issue)
                        else:
                            complete = issue + de.latency
                            lsu.store_execute(address, complete)
                    else:
                        queue = de.queue
                        if len(queue) >= de.queue_cap:
                            queue.popleft()
                        queue.append(issue)
                        complete = issue + de.latency
                    for key in de.dest_keys:
                        regs[key] = complete

            # ---------------------------------------------------- commit
            commit = complete + 1
            if de.is_store and dyn.executed:
                commit += lsu.store_commit_penalty(dyn.mem_address, complete)
            if commit < cm_cycle:
                commit = cm_cycle
            if commit == cm_cycle and cm_used >= cm_width:
                commit += 1
            if commit > cm_cycle:
                cm_cycle, cm_used = commit, 0
            cm_used += 1
            if commit > last_commit:
                last_commit = commit

            if len(rob_q) >= rob_cap:
                rob_q.popleft()
            rob_q.append(commit)
            if de.is_memory and not cancelled:
                lsu.record_allocation(de.is_store, commit)

            # -------------------------------------------------- accounting
            n_insts += 1
            if dyn.executed:
                n_executed += 1

        # Write the scalar locals back; the mutable containers (deques,
        # dicts, rn_state) were mutated in place.
        state.cm_cycle, state.cm_used = cm_cycle, cm_used
        state.n_insts = n_insts
        state.n_executed = n_executed
        state.n_cond_branches = n_cond_branches
        state.n_mispredictions = n_mispredictions
        state.n_override_flushes = n_override_flushes
        state.n_predicate_flushes = n_predicate_flushes
        state.n_cancelled = n_cancelled
        state.n_conservative = n_conservative
        state.n_assume_true = n_assume_true
        state.last_commit = last_commit

    def _finalize_fast(self, state: _FastState, program_name: str) -> SimulationResult:
        """Fold a finished :class:`_FastState` into a :class:`SimulationResult`.

        Reads the memory hierarchy *from the state* — after a checkpoint
        restore it is the unpickled hierarchy shared by the state's fetch
        engine and load/store unit, not this core's own ``self.memory``.
        """
        metrics = PipelineMetrics()
        metrics.fetched_instructions = state.n_insts
        metrics.committed_instructions = state.n_insts
        metrics.executed_instructions = state.n_executed
        metrics.nullified_instructions = state.n_insts - state.n_executed
        metrics.conditional_branches = state.n_cond_branches
        metrics.branch_mispredictions = state.n_mispredictions
        metrics.override_flushes = state.n_override_flushes
        metrics.predicate_flushes = state.n_predicate_flushes
        metrics.cancelled_at_rename = state.n_cancelled
        metrics.conservative_predicated = state.n_conservative
        metrics.assume_true_predicated = state.n_assume_true
        metrics.cycles = (
            state.last_commit if state.sampled_cycles is None else state.sampled_cycles
        )
        metrics.memory_stats = state.memory.statistics() if state.memory else {}
        fus = state.fus
        for unit, cell in state.unit_cells.items():
            fus.issue_counts[unit] = fus.issue_counts.get(unit, 0) + cell[0]
        metrics.fu_utilisation = fus.utilisation()
        metrics.counters.set("lsq_forwarded_loads", state.lsu.forwarded_loads)
        metrics.counters.set("fetch_redirects", state.fetch.redirects)
        metrics.counters.set("icache_stall_cycles", state.fetch.icache_stall_cycles)

        return SimulationResult(
            program_name=program_name,
            scheme_name=state.scheme.name,
            metrics=metrics,
            accuracy=state.scheme.accuracy,
            uops=None,
        )

    # ------------------------------------------------------------------
    # Stage helpers
    # ------------------------------------------------------------------
    def _rename_cycle(
        self,
        uop: Uop,
        rob: SlidingWindowResource,
        lsu: LoadStoreUnit,
        rename_slots: _InOrderSlotter,
        queue: Optional[SlidingWindowResource],
    ) -> int:
        cfg = self.config
        desired = uop.fetch_cycle + cfg.fetch_to_rename
        cycle = rob.earliest_allocation(desired)
        if uop.inst.is_memory:
            cycle = lsu.queue_constraint(uop.inst.is_store, cycle)
        elif queue is not None:
            # A full issue queue stalls dispatch, which backs up rename.
            cycle = queue.earliest_allocation(cycle)
        return rename_slots.place(cycle)

    def _queue_resource(
        self,
        inst,
        int_queue: SlidingWindowResource,
        fp_queue: SlidingWindowResource,
        branch_queue: SlidingWindowResource,
    ) -> Optional[SlidingWindowResource]:
        """The issue queue an instruction dispatches into (None for memory
        operations, which occupy the load/store queues instead)."""
        if inst.is_memory:
            return None
        if inst.opclass is OpClass.BRANCH:
            return branch_queue
        if inst.info.unit is FunctionalUnitClass.FP_UNIT:
            return fp_queue
        return int_queue

    def _source_registers(self, dyn: DynInst, decision: RenameDecision) -> List[Register]:
        inst = dyn.inst
        sources = [s for s in inst.srcs if isinstance(s, Register)]
        if not inst.is_predicated:
            return sources
        if decision is RenameDecision.ASSUME_TRUE:
            return sources
        # Conservative handling: the predicate is a data dependence, and a
        # predicated definition also depends on the previous value of its
        # destination (conditional-move expansion of the multiple-definition
        # problem).
        sources = sources + [inst.qp]
        sources.extend(inst.destination_registers())
        return sources

    # ------------------------------------------------------------------
    def _handle_branch(
        self,
        uop: Uop,
        scheme: BranchHandlingScheme,
        fetch: FetchEngine,
        fus: FunctionalUnitPool,
        branch_queue: SlidingWindowResource,
        regs: RegisterTimingTable,
        metrics: PipelineMetrics,
        guard_ready: int,
    ) -> None:
        cfg = self.config
        dyn = uop.dyn
        uop.dispatch_cycle = uop.rename_cycle + 1
        ready = max(uop.dispatch_cycle + 1, guard_ready)
        uop.ready_cycle = ready
        uop.issue_cycle = fus.acquire(FunctionalUnitClass.BRANCH_UNIT, ready)
        branch_queue.allocate(uop.issue_cycle)
        uop.complete_cycle = uop.issue_cycle + dyn.inst.latency

        if not dyn.is_conditional_branch:
            return

        metrics.conditional_branches += 1
        handling = scheme.on_branch_rename(
            dyn, uop.fetch_cycle, uop.rename_cycle, guard_ready
        )
        resolve_cycle = uop.complete_cycle
        mispredicted = handling.final_prediction != bool(dyn.taken)
        uop.branch_mispredicted = mispredicted
        uop.override_flush = handling.override_flush

        redirect: Optional[int] = None
        if handling.override_flush:
            metrics.override_flushes += 1
            redirect = uop.rename_cycle + cfg.override_flush_penalty
        if mispredicted:
            metrics.branch_mispredictions += 1
            redirect = resolve_cycle + cfg.branch_mispredict_penalty
        if redirect is not None:
            fetch.redirect(redirect)

        scheme.on_branch_resolved(dyn, resolve_cycle, mispredicted)

    def _handle_compare(
        self,
        uop: Uop,
        scheme: BranchHandlingScheme,
        fus: FunctionalUnitPool,
        int_queue: SlidingWindowResource,
        fp_queue: SlidingWindowResource,
        regs: RegisterTimingTable,
    ) -> None:
        dyn = uop.dyn
        inst = dyn.inst
        scheme.on_compare_rename(dyn, uop.fetch_cycle, uop.rename_cycle)

        uop.dispatch_cycle = uop.rename_cycle + 1
        sources = [s for s in inst.srcs if isinstance(s, Register)]
        if inst.is_predicated:
            sources.append(inst.qp)
        if isinstance(inst, CompareInstruction) and inst.ctype.depends_on_previous_values:
            sources.extend(inst.predicate_destinations())
        ready = max(uop.dispatch_cycle + 1, regs.ready_for(sources))
        uop.ready_cycle = ready

        queue = (
            fp_queue if inst.info.unit is FunctionalUnitClass.FP_UNIT else int_queue
        )
        uop.issue_cycle = fus.acquire(inst.info.unit, ready)
        queue.allocate(uop.issue_cycle)
        uop.complete_cycle = uop.issue_cycle + inst.latency

        for dest in inst.destination_registers():
            regs.set_ready(dest, uop.complete_cycle)
        scheme.on_compare_complete(dyn, uop.complete_cycle)

    def _handle_simple(
        self,
        uop: Uop,
        scheme: BranchHandlingScheme,
        fetch: FetchEngine,
        fus: FunctionalUnitPool,
        int_queue: SlidingWindowResource,
        fp_queue: SlidingWindowResource,
        regs: RegisterTimingTable,
        lsu: LoadStoreUnit,
        rob: SlidingWindowResource,
        rename_slots: _InOrderSlotter,
        metrics: PipelineMetrics,
        guard_ready: int,
    ) -> None:
        cfg = self.config
        dyn = uop.dyn
        inst = dyn.inst

        decision = RenameDecision.CONSERVATIVE
        if inst.is_predicated:
            handling = scheme.on_predicated_rename(
                dyn, uop.fetch_cycle, uop.rename_cycle, guard_ready
            )
            decision = handling.decision
            if handling.mispredicted:
                # The speculation was wrong: the pipeline is flushed from
                # this instruction (the PPRF entry's ROB pointer) once the
                # compare computes the true value; the instruction is then
                # re-fetched and handled conservatively.
                metrics.predicate_flushes += 1
                uop.predicate_flush = True
                resume = handling.flush_discovery_cycle + cfg.predicate_mispredict_penalty
                uop.fetch_cycle = fetch.refetch_current(dyn, resume)
                uop.decode_cycle = uop.fetch_cycle + cfg.decode_latency
                queue = self._queue_resource(inst, int_queue, fp_queue, None)
                uop.rename_cycle = self._rename_cycle(uop, rob, lsu, rename_slots, queue)
                decision = RenameDecision.CONSERVATIVE

        uop.rename_decision = decision
        if decision is RenameDecision.CANCEL:
            # Cancelled at rename: never dispatched, no issue queue entry,
            # no functional unit, destinations keep their previous mapping.
            uop.cancelled = True
            metrics.cancelled_at_rename += 1
            uop.dispatch_cycle = uop.rename_cycle
            uop.issue_cycle = uop.rename_cycle
            uop.complete_cycle = uop.rename_cycle
            return

        if inst.is_predicated:
            if decision is RenameDecision.ASSUME_TRUE:
                metrics.assume_true_predicated += 1
            else:
                metrics.conservative_predicated += 1

        uop.dispatch_cycle = uop.rename_cycle + 1
        sources = self._source_registers(dyn, decision)
        ready = max(uop.dispatch_cycle + 1, regs.ready_for(sources))
        uop.ready_cycle = ready

        if inst.is_memory:
            uop.issue_cycle = fus.acquire(inst.info.unit, ready)
            if inst.is_load:
                address = dyn.mem_address if dyn.executed else None
                uop.complete_cycle = lsu.load_complete_cycle(address, uop.issue_cycle)
            else:
                uop.complete_cycle = uop.issue_cycle + inst.latency
                address = dyn.mem_address if dyn.executed else None
                lsu.store_execute(address, uop.complete_cycle)
        else:
            queue = (
                fp_queue
                if inst.info.unit is FunctionalUnitClass.FP_UNIT
                else int_queue
            )
            uop.issue_cycle = fus.acquire(inst.info.unit, ready)
            queue.allocate(uop.issue_cycle)
            uop.complete_cycle = uop.issue_cycle + inst.latency

        for dest in inst.destination_registers():
            regs.set_ready(dest, uop.complete_cycle)
