"""Declarable machine configurations: overrides on the Table 1 machine.

The paper evaluates exactly one machine (Table 1), and for the first three
PRs of this code base that machine flowed implicitly — every simulation
constructed a default :class:`~repro.pipeline.config.PipelineConfig`.  The
design-space exploration subsystem (:mod:`repro.sweep`) opens that axis: a
:class:`MachineSpec` is an explicit, validated, *hashable* set of overrides
on the Table 1 defaults that can be declared in a scenario file, carried
inside an engine :class:`~repro.engine.jobs.SimulateJob` across process
boundaries, and folded into artifact cache keys.

Two properties matter for caching and are enforced here:

* **Normalization** — overrides equal to the default value are dropped at
  construction, so ``MachineSpec.make(rob_entries=256)`` *is* the default
  spec: a machine's identity (and therefore its cache-key contribution)
  changes iff an *effective* parameter changes.
* **Validation** — unknown field names and non-scalar fields raise
  :class:`ValueError` at construction, long before a worker process would
  try to simulate with them.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Tuple

from repro.pipeline.config import PipelineConfig

#: Fields that exist only to *describe* the Table 1 machine — nothing in
#: the timing model reads them (`fetch_width` is the effective per-cycle
#: cap; the second-level access latency is modelled through
#: ``override_flush_penalty`` at rename).  Excluded from the overridable
#: set so a scenario cannot declare a sweep axis that would silently be a
#: no-op.
_DESCRIPTIVE_ONLY = {"bundles_per_fetch", "bundle_slots", "second_level_latency"}

#: Fields of :class:`PipelineConfig` that a spec may override: every scalar
#: (int) field the timing model consumes.  Structured fields (the
#: functional-unit count map) are not declarable through scenario files;
#: they would need per-unit-class keys and no planned sweep axis requires
#: them.
_OVERRIDABLE: Dict[str, Any] = {
    field.name: field.default
    for field in dataclasses.fields(PipelineConfig)
    if isinstance(field.default, int)
    and not isinstance(field.default, bool)
    and field.name not in _DESCRIPTIVE_ONLY
}


def overridable_fields() -> Dict[str, int]:
    """Name → Table 1 default of every field a :class:`MachineSpec` may set."""
    return dict(_OVERRIDABLE)


@dataclasses.dataclass(frozen=True)
class MachineSpec:
    """A validated, normalized set of overrides on the Table 1 machine.

    ``pipeline`` is a sorted tuple of ``(field, value)`` pairs — the frozen,
    picklable form a job can carry.  Use :meth:`make` (which validates and
    normalizes) rather than the raw constructor.
    """

    pipeline: Tuple[Tuple[str, int], ...] = ()

    # ------------------------------------------------------------------
    @classmethod
    def make(cls, **overrides: int) -> "MachineSpec":
        """Build a spec from keyword overrides on :class:`PipelineConfig`.

        Raises :class:`ValueError` for unknown field names, non-integer
        values, and values the config itself rejects; silently drops
        overrides equal to the Table 1 default so that the spec's identity
        tracks *effective* parameters only.
        """
        effective: Dict[str, int] = {}
        for name, value in overrides.items():
            if name not in _OVERRIDABLE:
                raise ValueError(
                    f"unknown machine parameter {name!r}; configurable "
                    f"parameters: {', '.join(sorted(_OVERRIDABLE))}"
                )
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(
                    f"machine parameter {name!r} must be an integer, "
                    f"got {value!r}"
                )
            if value != _OVERRIDABLE[name]:
                effective[name] = value
        spec = cls(pipeline=tuple(sorted(effective.items())))
        spec.build_config()  # surface PipelineConfig.__post_init__ rejections now
        return spec

    # ------------------------------------------------------------------
    def build_config(self) -> PipelineConfig:
        """Materialise the (validated) :class:`PipelineConfig` of this spec."""
        return PipelineConfig(**dict(self.pipeline))

    def is_default(self) -> bool:
        """True when this spec is exactly the Table 1 machine."""
        return not self.pipeline

    def overrides(self) -> Dict[str, int]:
        """The effective overrides as a plain dict (empty for the default)."""
        return dict(self.pipeline)

    def describe(self) -> str:
        """Compact human-readable form, e.g. ``rob_entries=64`` (``table1``
        for the default machine)."""
        if not self.pipeline:
            return "table1"
        return ",".join(f"{name}={value}" for name, value in self.pipeline)
