"""Structured logging for the repro runtime.

Every long-running layer of the system — the execution engine's worker
supervision, the artifact store's integrity checks, the serve daemon's job
scheduler and the HTTP client's retry loop — reports operational events
through one ``repro``-rooted :mod:`logging` hierarchy instead of printing
(or staying silent).  Libraries only ever call :func:`get_logger`; the
hierarchy carries a ``NullHandler`` by default, so importing the package
never spams a host application's stderr.

Entry points (the CLI's global ``--log-level`` flag, the serve daemon, the
smoke scripts) opt in by calling :func:`configure_logging`, which attaches
one stderr handler with a timestamped single-line format.  The level
resolves as: explicit argument > ``$REPRO_LOG_LEVEL`` > ``WARNING`` — so a
deployment can turn on debug logging without touching the command line.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import IO, Optional

#: Environment variable consulted when no explicit level is passed.
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

#: Root of the package's logger hierarchy.
ROOT_LOGGER = "repro"

#: One event per line: time, severity, component, message.
LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
DATE_FORMAT = "%H:%M:%S"

# Importing the package must never emit "no handler" warnings into a host
# application; opted-in handlers are attached by configure_logging().
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """The ``repro``-rooted logger of one component.

    ``name`` may be a module's ``__name__`` (already under ``repro.``) or a
    bare component name, which is nested under the package root so one
    :func:`configure_logging` call controls everything.
    """
    if name == ROOT_LOGGER or name.startswith(f"{ROOT_LOGGER}."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def resolve_level(level: Optional[str] = None) -> int:
    """Map a level name to its numeric value (arg > env > WARNING).

    Unknown names raise :class:`ValueError` naming the accepted levels, so
    a typo in ``--log-level``/``$REPRO_LOG_LEVEL`` fails loudly instead of
    silently logging nothing.
    """
    raw = level or os.environ.get(LOG_LEVEL_ENV) or "warning"
    resolved = logging.getLevelName(str(raw).strip().upper())
    if not isinstance(resolved, int):
        raise ValueError(
            f"unknown log level {raw!r}; expected one of "
            "debug, info, warning, error, critical"
        )
    return resolved


def configure_logging(
    level: Optional[str] = None, stream: Optional[IO[str]] = None
) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` logger hierarchy.

    ``level`` is a case-insensitive level name (``debug``/``info``/
    ``warning``/``error``/``critical``); when omitted, ``$REPRO_LOG_LEVEL``
    applies, then ``warning``.  Calling again reconfigures (the previous
    stream handler is replaced, not stacked), so tests and long-lived
    processes can adjust verbosity at runtime.  Returns the root ``repro``
    logger.
    """
    resolved = resolve_level(level)
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if isinstance(handler, logging.StreamHandler) and not isinstance(
            handler, logging.NullHandler
        ):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(LOG_FORMAT, DATE_FORMAT))
    root.addHandler(handler)
    root.setLevel(resolved)
    # Events stay inside the repro hierarchy: do not double-log through any
    # root handlers a host application may have installed.
    root.propagate = False
    return root
