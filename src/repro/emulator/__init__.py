"""Functional emulator for the predicated ISA.

The emulator maintains correct architectural state (general, floating-point,
predicate and branch registers plus memory) and walks programs along their
*correct* control-flow path, producing the dynamic instruction stream that
the timing pipeline consumes.  It plays the role of the "IA64 functional
emulator that maintains the correct machine state" provided by the Liberty
Simulation Environment in the original paper (section 4.1).
"""

from repro.emulator.state import ArchState
from repro.emulator.memory_image import MemoryImage
from repro.emulator.executor import Emulator, DynInst, EmulationLimit
from repro.emulator.tracepack import PackCursor, TracePack, TracePackBuilder, pack_supported
from repro.emulator.trace import (
    TRACE_FORMAT_VERSION,
    TraceStatistics,
    collect_trace,
    collect_trace_pack,
    trace_statistics,
)

__all__ = [
    "ArchState",
    "MemoryImage",
    "Emulator",
    "DynInst",
    "EmulationLimit",
    "PackCursor",
    "TracePack",
    "TracePackBuilder",
    "TRACE_FORMAT_VERSION",
    "TraceStatistics",
    "collect_trace",
    "collect_trace_pack",
    "pack_supported",
    "trace_statistics",
]
