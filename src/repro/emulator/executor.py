"""The functional executor: walks a program along its correct path.

The executor produces :class:`DynInst` records — one per *fetched* dynamic
instruction along the correct control-flow path, including instructions whose
qualifying predicate evaluates to false (they are fetched and occupy pipeline
resources until nullified, which is precisely the cost the selective
predicate predictor removes).

The timing pipeline (:mod:`repro.pipeline`) is trace-driven: it replays this
stream, charging mispredicted branches with flush/refill penalties rather
than simulating wrong-path instructions.  This is a standard simplification
for predictor studies; the quantities the paper reports (misprediction rates
per scheme, early-resolved counts, relative IPC) are preserved because every
prediction, every PPRF read and every predicate computation happens at the
same pipeline positions as in an execution-driven model.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.emulator.memory_image import to_signed64
from repro.emulator.state import ArchState
from repro.isa.branches import BranchInstruction, BranchKind
from repro.isa.compare import CompareInstruction
from repro.isa.instructions import (
    Instruction,
    LoadInstruction,
    StoreInstruction,
)
from repro.isa.opcodes import Opcode
from repro.isa.operands import Immediate, Label
from repro.isa.registers import Register, RegisterKind
from repro.perf.flags import resolve_optimized
from repro.program.program import Program
from repro.program.routine import Routine


class EmulationLimit(Exception):
    """Raised when the executor exceeds a hard safety limit."""


class DynInst:
    """One dynamic (fetched) instruction along the correct path."""

    __slots__ = (
        "seq",
        "inst",
        "pc",
        "qp_value",
        "executed",
        "taken",
        "target_pc",
        "next_pc",
        "mem_address",
        "pred_writes",
        "guard_producer_seq",
    )

    def __init__(
        self,
        seq: int,
        inst: Instruction,
        pc: int,
        qp_value: bool,
        guard_producer_seq: int,
    ) -> None:
        self.seq = seq
        self.inst = inst
        self.pc = pc
        #: Architectural value of the qualifying predicate when executed.
        self.qp_value = qp_value
        #: True when the instruction's qualifying predicate was true.
        self.executed = qp_value
        #: For branches: whether the branch was architecturally taken.
        self.taken: Optional[bool] = None
        #: For taken branches: address of the branch target.
        self.target_pc: Optional[int] = None
        #: Address of the next dynamic instruction on the correct path.
        self.next_pc: Optional[int] = None
        #: For memory operations with a true predicate: effective address.
        self.mem_address: Optional[int] = None
        #: Architectural predicate writes performed: tuple of (index, value).
        self.pred_writes: Tuple[Tuple[int, bool], ...] = ()
        #: Dynamic sequence number of the instruction that produced the
        #: current value of this instruction's qualifying predicate
        #: (-1 when the value predates the trace, e.g. ``p0``).
        self.guard_producer_seq = guard_producer_seq

    # ------------------------------------------------------------------
    @property
    def is_branch(self) -> bool:
        return self.inst.is_branch

    @property
    def is_compare(self) -> bool:
        return self.inst.is_compare

    @property
    def is_conditional_branch(self) -> bool:
        return isinstance(self.inst, BranchInstruction) and self.inst.is_conditional

    def __repr__(self) -> str:
        return f"<DynInst #{self.seq} pc={self.pc:#x} {self.inst!r}>"

    # ------------------------------------------------------------------
    # Serialization (used by the trace artifact store).  ``__slots__``
    # classes pickle through protocol 2 anyway, but an explicit tuple state
    # is smaller and keeps the on-disk format independent of slot order.
    def __getstate__(self):
        return (
            self.seq,
            self.inst,
            self.pc,
            self.qp_value,
            self.executed,
            self.taken,
            self.target_pc,
            self.next_pc,
            self.mem_address,
            self.pred_writes,
            self.guard_producer_seq,
        )

    def __setstate__(self, state) -> None:
        (
            self.seq,
            self.inst,
            self.pc,
            self.qp_value,
            self.executed,
            self.taken,
            self.target_pc,
            self.next_pc,
            self.mem_address,
            self.pred_writes,
            self.guard_producer_seq,
        ) = state


class _Frame:
    """A call frame: where execution resumes inside a routine."""

    __slots__ = ("routine", "block_index", "inst_index")

    def __init__(self, routine: Routine, block_index: int, inst_index: int) -> None:
        self.routine = routine
        self.block_index = block_index
        self.inst_index = inst_index


class Emulator:
    """Functional emulator over a laid-out program."""

    #: Hard cap on dynamic instructions to protect against infinite loops in
    #: malformed programs; the run budget passed to :meth:`run` is normally
    #: far lower.
    HARD_LIMIT = 50_000_000

    def __init__(self, program: Program, optimized: Optional[bool] = None) -> None:
        if not program.laid_out:
            program.layout()
        self.program = program
        self.state = ArchState.for_program(program)
        self._seq = 0
        #: seq of the last architectural writer of each predicate register.
        self._pred_writer = [-1] * 64
        self.fetched_instructions = 0
        self.executed_instructions = 0
        self.halted = False
        #: Decode/dispatch cache of the optimized path: per-static-instruction
        #: compiled handlers, keyed by instruction uid.  The reference
        #: interpreter (:meth:`_execute_straightline`) stays reachable with
        #: ``optimized=False`` / ``REPRO_OPT=0``; the parity tests assert both
        #: produce identical traces.
        self.optimized = resolve_optimized(optimized)
        self._handlers: Dict[int, Callable[[DynInst], None]] = {}

    # ------------------------------------------------------------------
    def run(self, max_instructions: int) -> Iterator[DynInst]:
        """Yield dynamic instructions until the program halts or the budget
        of fetched instructions is exhausted."""
        routine = self.program.entry_routine
        frame = _Frame(routine, 0, 0)
        call_stack: List[_Frame] = []
        handlers = self._handlers if self.optimized else None
        handlers_get = handlers.get if handlers is not None else None

        while self.fetched_instructions < max_instructions:
            if self._seq >= self.HARD_LIMIT:
                raise EmulationLimit(
                    f"exceeded hard emulation limit of {self.HARD_LIMIT} instructions"
                )
            blocks = frame.routine.blocks
            if frame.block_index >= len(blocks):
                # Fell off the end of the routine: treat as routine return.
                if not call_stack:
                    self.halted = True
                    return
                frame = call_stack.pop()
                continue
            block = blocks[frame.block_index]
            if frame.inst_index >= len(block.instructions):
                frame.block_index += 1
                frame.inst_index = 0
                continue

            inst = block.instructions[frame.inst_index]
            dyn = self._make_dyn(inst)
            self.fetched_instructions += 1

            if isinstance(inst, BranchInstruction):
                frame, call_stack, stop = self._execute_branch(
                    dyn, inst, frame, call_stack
                )
                yield dyn
                if stop:
                    self.halted = True
                    return
            else:
                if handlers is None:
                    self._execute_straightline(dyn, inst)
                else:
                    handler = handlers_get(inst.uid)
                    if handler is None:
                        handler = self._compile_straightline(inst)
                        handlers[inst.uid] = handler
                    handler(dyn)
                frame.inst_index += 1
                dyn.next_pc = self._pc_after(frame)
                yield dyn

    def run_pack(
        self,
        max_instructions: int,
        segment_rows: Optional[int] = None,
        on_segment=None,
    ):
        """Run like :meth:`run` but collect directly into a columnar pack.

        This is the optimized trace-build path: instead of allocating one
        :class:`DynInst` per fetched instruction, the loop reuses a single
        scratch record (the compiled handlers mutate it exactly as they
        mutate a real ``DynInst``) and appends its fields as one row into a
        :class:`~repro.emulator.tracepack.TracePackBuilder`.  The emulator
        parity tests assert ``run_pack(n).to_dyninsts()`` is bit-identical
        to ``list(run(n))``.

        Returns a :class:`~repro.emulator.tracepack.TracePack`; requires
        numpy (see :func:`~repro.emulator.tracepack.pack_supported`).

        With ``segment_rows`` set, the trace is cut into fixed-size row
        segments.  Each completed segment is finalized immediately and
        either handed to ``on_segment`` — the streaming mode: nothing is
        retained here, the caller typically appends it to a
        :class:`~repro.emulator.tracepack.ChunkedPackWriter`, and the
        return value is the total row count — or collected into a
        :class:`~repro.emulator.tracepack.ChunkedTracePack`.  A run that
        fits in a single segment returns a plain monolithic pack, so small
        budgets behave exactly as before.
        """
        # Imported here: tracepack imports DynInst from this module.
        from repro.emulator.tracepack import ChunkedTracePack, TracePackBuilder

        if on_segment is not None and segment_rows is None:
            raise ValueError("on_segment requires segment_rows")
        if segment_rows is not None and segment_rows < 1:
            raise ValueError(f"segment_rows must be positive, got {segment_rows}")

        segments: List[Any] = []
        rows_flushed = 0

        def flush(pack) -> None:
            nonlocal rows_flushed
            rows_flushed += len(pack)
            if on_segment is not None:
                on_segment(pack)
            else:
                segments.append(pack)

        builder = TracePackBuilder()
        append = builder.append_row
        scratch = DynInst(0, None, 0, False, -1)  # type: ignore[arg-type]
        routine = self.program.entry_routine
        frame = _Frame(routine, 0, 0)
        call_stack: List[_Frame] = []
        handlers = self._handlers if self.optimized else None
        handlers_get = handlers.get if handlers is not None else None
        predicate = self.state.predicate
        pred_writer = self._pred_writer

        while self.fetched_instructions < max_instructions:
            if self._seq >= self.HARD_LIMIT:
                raise EmulationLimit(
                    f"exceeded hard emulation limit of {self.HARD_LIMIT} instructions"
                )
            blocks = frame.routine.blocks
            if frame.block_index >= len(blocks):
                if not call_stack:
                    self.halted = True
                    break
                frame = call_stack.pop()
                continue
            block = blocks[frame.block_index]
            if frame.inst_index >= len(block.instructions):
                frame.block_index += 1
                frame.inst_index = 0
                continue

            inst = block.instructions[frame.inst_index]
            # Inlined _make_dyn, written into the reused scratch record.
            qp_index = inst.qp.index
            qp_value = True if predicate[qp_index] else False
            scratch.seq = self._seq
            scratch.inst = inst
            scratch.pc = inst.address
            scratch.qp_value = qp_value
            scratch.executed = qp_value
            scratch.taken = None
            scratch.target_pc = None
            scratch.next_pc = None
            scratch.mem_address = None
            scratch.pred_writes = ()
            scratch.guard_producer_seq = pred_writer[qp_index] if qp_index else -1
            self._seq += 1
            if qp_value:
                self.executed_instructions += 1
            self.fetched_instructions += 1

            if isinstance(inst, BranchInstruction):
                frame, call_stack, stop = self._execute_branch(
                    scratch, inst, frame, call_stack
                )
                append(scratch)
                if segment_rows is not None and len(builder) >= segment_rows:
                    flush(builder.finalize())
                    builder = TracePackBuilder()
                    append = builder.append_row
                if stop:
                    self.halted = True
                    break
            else:
                if handlers_get is None:
                    self._execute_straightline(scratch, inst)
                else:
                    handler = handlers_get(inst.uid)
                    if handler is None:
                        handler = self._compile_straightline(inst)
                        handlers[inst.uid] = handler
                    handler(scratch)
                frame.inst_index += 1
                scratch.next_pc = self._pc_after(frame)
                append(scratch)
                if segment_rows is not None and len(builder) >= segment_rows:
                    flush(builder.finalize())
                    builder = TracePackBuilder()
                    append = builder.append_row

        if segment_rows is None:
            return builder.finalize()
        if len(builder) or not rows_flushed:
            flush(builder.finalize())
        if on_segment is not None:
            return rows_flushed
        if len(segments) == 1:
            return segments[0]
        return ChunkedTracePack.from_segments(segments)

    # ------------------------------------------------------------------
    def _make_dyn(self, inst: Instruction) -> DynInst:
        qp_value = bool(self.state.predicate[inst.qp.index])
        producer = (
            self._pred_writer[inst.qp.index] if inst.qp.index != 0 else -1
        )
        dyn = DynInst(self._seq, inst, inst.address, qp_value, producer)
        self._seq += 1
        if qp_value:
            self.executed_instructions += 1
        return dyn

    def _pc_after(self, frame: _Frame) -> Optional[int]:
        blocks = frame.routine.blocks
        block_index, inst_index = frame.block_index, frame.inst_index
        while block_index < len(blocks):
            block = blocks[block_index]
            if inst_index < len(block.instructions):
                return block.instructions[inst_index].address
            block_index += 1
            inst_index = 0
        return None

    # ------------------------------------------------------------------
    # Straight-line instruction semantics
    # ------------------------------------------------------------------
    def _operand_value(self, operand, floating: bool = False):
        if isinstance(operand, Immediate):
            return operand.value
        if isinstance(operand, Register):
            return self.state.read(operand)
        if isinstance(operand, Label):  # pragma: no cover - labels only on branches
            raise TypeError("label operands cannot be evaluated")
        raise TypeError(f"unsupported operand {operand!r}")  # pragma: no cover

    def _execute_straightline(self, dyn: DynInst, inst: Instruction) -> None:
        if isinstance(inst, CompareInstruction):
            self._execute_compare(dyn, inst)
            return
        if not dyn.qp_value:
            return
        if isinstance(inst, LoadInstruction):
            base = self.state.read(inst.base)
            address = to_signed64(base + inst.offset)
            dyn.mem_address = address
            value = self.state.memory.read_word(address)
            if inst.opcode is Opcode.LDF:
                self.state.write(inst.dests[0], float(value))
            else:
                self.state.write(inst.dests[0], value)
            return
        if isinstance(inst, StoreInstruction):
            base = self.state.read(inst.base)
            address = to_signed64(base + inst.offset)
            dyn.mem_address = address
            value = self.state.read(inst.value)
            self.state.memory.write_word(address, int(value))
            return
        opcode = inst.opcode
        if opcode in (Opcode.MOV, Opcode.MOVI):
            self.state.write(inst.dests[0], self._operand_value(inst.srcs[0]))
            return
        if opcode is Opcode.MOV_TO_BR:
            self.state.write(inst.dests[0], self._operand_value(inst.srcs[0]))
            return
        if opcode is Opcode.NOP:
            return
        if opcode in _INT_ALU_OPS:
            lhs = self._operand_value(inst.srcs[0])
            rhs = self._operand_value(inst.srcs[1])
            self.state.write(inst.dests[0], _INT_ALU_OPS[opcode](int(lhs), int(rhs)))
            return
        if opcode in _FP_OPS:
            values = [float(self._operand_value(s)) for s in inst.srcs]
            self.state.write(inst.dests[0], _FP_OPS[opcode](values))
            return
        raise NotImplementedError(f"no semantics for opcode {opcode}")

    def _execute_compare(self, dyn: DynInst, inst: CompareInstruction) -> None:
        lhs = self._operand_value(inst.srcs[0])
        rhs = self._operand_value(inst.srcs[1])
        result = inst.relation.evaluate(int(lhs), int(rhs))
        old_pt = bool(self.state.predicate[inst.pt.index])
        old_pf = bool(self.state.predicate[inst.pf.index])
        new_pt, new_pf = inst.compute_targets(dyn.qp_value, result, old_pt, old_pf)
        writes: List[Tuple[int, bool]] = []
        for reg, value in ((inst.pt, new_pt), (inst.pf, new_pf)):
            if value is None:
                continue
            if self.state.write(reg, value):
                self._pred_writer[reg.index] = dyn.seq
                writes.append((reg.index, bool(value)))
        dyn.pred_writes = tuple(writes)

    # ------------------------------------------------------------------
    # Decode/dispatch cache (optimized path)
    # ------------------------------------------------------------------
    def _compile_read(self, operand) -> Callable[[], object]:
        """Compile an operand into a zero-argument value accessor."""
        if isinstance(operand, Immediate):
            value = operand.value
            return lambda: value
        if isinstance(operand, Register):
            kind = operand.kind
            index = operand.index
            if kind is RegisterKind.GENERAL:
                file_ = self.state.general
            elif kind is RegisterKind.PREDICATE:
                file_ = self.state.predicate
            elif kind is RegisterKind.FLOAT:
                file_ = self.state.floating
            else:
                file_ = self.state.branch
            return lambda: file_[index]

        def unreadable():  # pragma: no cover - labels only on branches
            raise TypeError("label operands cannot be evaluated")

        return unreadable

    def _compile_write(self, reg: Register) -> Callable[[object], None]:
        """Compile a register destination into a value setter.

        Mirrors :meth:`ArchState.write`: per-file value coercion, writes to
        hard-wired registers silently discarded.
        """
        if reg.is_hardwired:
            return lambda value: None
        kind = reg.kind
        index = reg.index
        if kind is RegisterKind.GENERAL:
            general = self.state.general

            def write_general(value) -> None:
                general[index] = to_signed64(int(value))

            return write_general
        if kind is RegisterKind.PREDICATE:
            predicate = self.state.predicate

            def write_predicate(value) -> None:
                predicate[index] = bool(value)

            return write_predicate
        if kind is RegisterKind.FLOAT:
            floating = self.state.floating

            def write_float(value) -> None:
                floating[index] = float(value)

            return write_float
        branch = self.state.branch

        def write_branch(value) -> None:
            branch[index] = int(value)

        return write_branch

    def _compile_straightline(self, inst: Instruction) -> Callable[[DynInst], None]:
        """Compile one static non-branch instruction into a handler.

        Each handler reproduces :meth:`_execute_straightline` for exactly
        this instruction, with operand dispatch, opcode dispatch and
        register-file selection resolved at compile time.
        """
        if isinstance(inst, CompareInstruction):
            evaluate = inst.relation.evaluate
            compute_targets = inst.compute_targets
            lhs = self._compile_read(inst.srcs[0])
            rhs = self._compile_read(inst.srcs[1])
            predicate = self.state.predicate
            pred_writer = self._pred_writer
            pt_index, pf_index = inst.pt.index, inst.pf.index
            pt_writable = not inst.pt.is_hardwired
            pf_writable = not inst.pf.is_hardwired

            def compare_handler(dyn: DynInst) -> None:
                result = evaluate(int(lhs()), int(rhs()))
                old_pt = bool(predicate[pt_index])
                old_pf = bool(predicate[pf_index])
                new_pt, new_pf = compute_targets(dyn.qp_value, result, old_pt, old_pf)
                writes = ()
                if new_pt is not None and pt_writable:
                    value = bool(new_pt)
                    predicate[pt_index] = value
                    pred_writer[pt_index] = dyn.seq
                    writes = ((pt_index, value),)
                if new_pf is not None and pf_writable:
                    value = bool(new_pf)
                    predicate[pf_index] = value
                    pred_writer[pf_index] = dyn.seq
                    writes = writes + ((pf_index, value),)
                dyn.pred_writes = writes

            return compare_handler

        opcode = inst.opcode
        if isinstance(inst, LoadInstruction):
            base = self._compile_read(inst.base)
            offset = inst.offset
            read_word = self.state.memory.read_word
            write_dest = self._compile_write(inst.dests[0])
            is_float_load = opcode is Opcode.LDF

            def load_handler(dyn: DynInst) -> None:
                if not dyn.qp_value:
                    return
                address = to_signed64(base() + offset)
                dyn.mem_address = address
                value = read_word(address)
                write_dest(float(value) if is_float_load else value)

            return load_handler
        if isinstance(inst, StoreInstruction):
            base = self._compile_read(inst.base)
            value_read = self._compile_read(inst.value)
            offset = inst.offset
            write_word = self.state.memory.write_word

            def store_handler(dyn: DynInst) -> None:
                if not dyn.qp_value:
                    return
                address = to_signed64(base() + offset)
                dyn.mem_address = address
                write_word(address, int(value_read()))

            return store_handler
        if opcode in (Opcode.MOV, Opcode.MOVI, Opcode.MOV_TO_BR):
            src = self._compile_read(inst.srcs[0])
            write_dest = self._compile_write(inst.dests[0])

            def move_handler(dyn: DynInst) -> None:
                if dyn.qp_value:
                    write_dest(src())

            return move_handler
        if opcode is Opcode.NOP:
            return lambda dyn: None
        if opcode in _INT_ALU_OPS:
            operation = _INT_ALU_OPS[opcode]
            lhs = self._compile_read(inst.srcs[0])
            rhs = self._compile_read(inst.srcs[1])
            write_dest = self._compile_write(inst.dests[0])

            def alu_handler(dyn: DynInst) -> None:
                if dyn.qp_value:
                    write_dest(operation(int(lhs()), int(rhs())))

            return alu_handler
        if opcode in _FP_OPS:
            operation = _FP_OPS[opcode]
            readers = tuple(self._compile_read(s) for s in inst.srcs)
            write_dest = self._compile_write(inst.dests[0])

            def fp_handler(dyn: DynInst) -> None:
                if dyn.qp_value:
                    write_dest(operation([float(read()) for read in readers]))

            return fp_handler
        raise NotImplementedError(f"no semantics for opcode {opcode}")

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def _execute_branch(
        self,
        dyn: DynInst,
        inst: BranchInstruction,
        frame: _Frame,
        call_stack: List[_Frame],
    ) -> Tuple[_Frame, List[_Frame], bool]:
        taken = inst.outcome(dyn.qp_value)
        dyn.taken = taken

        if not taken:
            frame.inst_index += 1
            dyn.next_pc = self._pc_after(frame)
            return frame, call_stack, False

        if inst.kind in (BranchKind.COND, BranchKind.UNCOND):
            target_block = frame.routine.block(inst.target.name)
            target_index = frame.routine.block_index(inst.target.name)
            frame.block_index = target_index
            frame.inst_index = 0
            dyn.target_pc = target_block.address
            dyn.next_pc = target_block.address
            return frame, call_stack, False

        if inst.kind is BranchKind.CALL:
            callee = self.program.routine(inst.callee)
            # The return point is the instruction after the call.
            return_frame = _Frame(frame.routine, frame.block_index, frame.inst_index + 1)
            call_stack.append(return_frame)
            new_frame = _Frame(callee, 0, 0)
            dyn.target_pc = callee.entry.address
            dyn.next_pc = callee.entry.address
            return new_frame, call_stack, False

        if inst.kind is BranchKind.RET:
            if not call_stack:
                dyn.next_pc = None
                return frame, call_stack, True
            frame = call_stack.pop()
            dyn.next_pc = self._pc_after(frame)
            dyn.target_pc = dyn.next_pc
            return frame, call_stack, False

        raise AssertionError(f"unhandled branch kind {inst.kind}")  # pragma: no cover


_U64 = (1 << 64) - 1

_INT_ALU_OPS = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.ADDI: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.ANDI: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.ORI: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.XORI: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << (b & 63),
    Opcode.SHLI: lambda a, b: a << (b & 63),
    Opcode.SHR: lambda a, b: (a & _U64) >> (b & 63),
    Opcode.SHRI: lambda a, b: (a & _U64) >> (b & 63),
    Opcode.MUL: lambda a, b: a * b,
}

_FP_OPS = {
    Opcode.FADD: lambda v: v[0] + v[1],
    Opcode.FSUB: lambda v: v[0] - v[1],
    Opcode.FMUL: lambda v: v[0] * v[1],
    Opcode.FMA: lambda v: v[0] * v[1] + v[2],
    Opcode.FDIV: lambda v: v[0] / v[1] if v[1] else 0.0,
    Opcode.FMOV: lambda v: v[0],
}
