"""Architectural state: register files and memory."""

from __future__ import annotations

from typing import Dict, Optional

from repro.emulator.memory_image import MemoryImage, to_signed64
from repro.isa.registers import (
    NUM_BRANCH_REGISTERS,
    NUM_GENERAL_REGISTERS,
    NUM_PREDICATE_REGISTERS,
    Register,
    RegisterKind,
)
from repro.program.program import Program


class ArchState:
    """Complete architectural state of the machine.

    The state is deliberately simple: integer general registers, float
    registers, boolean predicate registers (``p0`` pinned to true), branch
    registers, and a sparse word-addressed memory.
    """

    __slots__ = ("general", "floating", "predicate", "branch", "memory")

    def __init__(self, memory: Optional[MemoryImage] = None) -> None:
        self.general = [0] * NUM_GENERAL_REGISTERS
        self.floating = [0.0] * NUM_GENERAL_REGISTERS
        self.predicate = [False] * NUM_PREDICATE_REGISTERS
        self.predicate[0] = True
        self.branch = [0] * NUM_BRANCH_REGISTERS
        self.memory = memory if memory is not None else MemoryImage()

    # ------------------------------------------------------------------
    @classmethod
    def for_program(cls, program: Program) -> "ArchState":
        """Create the initial state for ``program`` (data segment loaded)."""
        return cls(memory=MemoryImage(program.data.words))

    # ------------------------------------------------------------------
    def read(self, reg: Register):
        """Read an architectural register."""
        kind = reg.kind
        if kind is RegisterKind.GENERAL:
            return self.general[reg.index]
        if kind is RegisterKind.PREDICATE:
            return self.predicate[reg.index]
        if kind is RegisterKind.FLOAT:
            return self.floating[reg.index]
        if kind is RegisterKind.BRANCH:
            return self.branch[reg.index]
        raise AssertionError(f"unknown register kind {kind}")  # pragma: no cover

    def write(self, reg: Register, value) -> bool:
        """Write an architectural register.

        Returns ``True`` when the write took architectural effect; writes to
        hard-wired registers (``r0``, ``p0``) are discarded and return
        ``False``.
        """
        if reg.is_hardwired:
            return False
        kind = reg.kind
        if kind is RegisterKind.GENERAL:
            self.general[reg.index] = to_signed64(int(value))
            return True
        if kind is RegisterKind.PREDICATE:
            self.predicate[reg.index] = bool(value)
            return True
        if kind is RegisterKind.FLOAT:
            self.floating[reg.index] = float(value)
            return True
        if kind is RegisterKind.BRANCH:
            self.branch[reg.index] = int(value)
            return True
        raise AssertionError(f"unknown register kind {kind}")  # pragma: no cover

    # ------------------------------------------------------------------
    def snapshot_predicates(self) -> Dict[int, bool]:
        """Return a copy of the predicate register file (for debugging)."""
        return {i: v for i, v in enumerate(self.predicate)}

    def __repr__(self) -> str:
        nonzero = sum(1 for v in self.general if v)
        true_preds = sum(1 for v in self.predicate if v)
        return f"<ArchState {nonzero} non-zero GRs, {true_preds} true PRs>"
