"""Trace collection helpers and trace-level statistics.

These helpers are used by the tests, the examples and the experiment runner
to characterise workloads: branch counts, per-branch-site bias, the dynamic
distance between a compare and its consuming branch, and the fraction of
fetched instructions that were nullified (false qualifying predicate).
"""

from __future__ import annotations

import pickle
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List

from repro.emulator.executor import DynInst, Emulator
from repro.program.program import Program

#: Bump when the on-disk trace encoding changes (invalidates stored traces).
TRACE_FORMAT_VERSION = 1


@dataclass
class BranchSiteStats:
    """Dynamic statistics for one static conditional branch."""

    pc: int
    executions: int = 0
    taken: int = 0

    @property
    def taken_rate(self) -> float:
        return self.taken / self.executions if self.executions else 0.0

    @property
    def bias(self) -> float:
        """Bias towards the dominant direction, in [0.5, 1.0]."""
        rate = self.taken_rate
        return max(rate, 1.0 - rate) if self.executions else 1.0


@dataclass
class TraceStatistics:
    """Aggregate statistics over a dynamic instruction trace."""

    fetched: int = 0
    executed: int = 0
    nullified: int = 0
    conditional_branches: int = 0
    taken_branches: int = 0
    unconditional_branches: int = 0
    compares: int = 0
    loads: int = 0
    stores: int = 0
    predicated_instructions: int = 0
    branch_sites: Dict[int, BranchSiteStats] = field(default_factory=dict)
    #: Distribution of dynamic distance (in instructions) between a
    #: conditional branch and the compare that produced its guard.
    guard_distances: List[int] = field(default_factory=list)

    @property
    def nullification_rate(self) -> float:
        return self.nullified / self.fetched if self.fetched else 0.0

    @property
    def conditional_branch_fraction(self) -> float:
        return self.conditional_branches / self.fetched if self.fetched else 0.0

    @property
    def mean_guard_distance(self) -> float:
        if not self.guard_distances:
            return 0.0
        return sum(self.guard_distances) / len(self.guard_distances)

    def hard_branch_fraction(self, bias_threshold: float = 0.9) -> float:
        """Fraction of dynamic conditional branches from low-bias sites."""
        hard = sum(
            s.executions
            for s in self.branch_sites.values()
            if s.bias < bias_threshold and s.executions > 0
        )
        return hard / self.conditional_branches if self.conditional_branches else 0.0


def collect_trace(program: Program, max_instructions: int) -> List[DynInst]:
    """Run ``program`` and return the dynamic instruction list."""
    emulator = Emulator(program)
    return list(emulator.run(max_instructions))


# ----------------------------------------------------------------------
# Trace serialization
# ----------------------------------------------------------------------
def serialize_trace(trace: List[DynInst]) -> bytes:
    """Encode a dynamic trace for the on-disk artifact store.

    The encoding carries a format version and is self-contained: the
    ``Instruction`` objects referenced by the trace are serialized with it
    (shared instances are preserved by pickle memoization), so a trace can be
    re-simulated without re-materialising the program it came from.
    """
    return pickle.dumps(
        (TRACE_FORMAT_VERSION, trace), protocol=pickle.HIGHEST_PROTOCOL
    )


def deserialize_trace(data: bytes) -> List[DynInst]:
    """Decode a trace produced by :func:`serialize_trace`.

    Raises :class:`ValueError` on a format-version mismatch so callers (the
    artifact store) treat stale encodings as cache misses.
    """
    version, trace = pickle.loads(data)
    if version != TRACE_FORMAT_VERSION:
        raise ValueError(
            f"trace format version {version} != expected {TRACE_FORMAT_VERSION}"
        )
    return trace


def save_trace(path: str, trace: List[DynInst]) -> None:
    """Write a trace to ``path`` (see :func:`serialize_trace`)."""
    with open(path, "wb") as handle:
        handle.write(serialize_trace(trace))


def load_trace(path: str) -> List[DynInst]:
    """Read a trace written by :func:`save_trace`."""
    with open(path, "rb") as handle:
        return deserialize_trace(handle.read())


def trace_statistics(trace: List[DynInst]) -> TraceStatistics:
    """Compute :class:`TraceStatistics` over a dynamic trace."""
    stats = TraceStatistics()
    for dyn in trace:
        stats.fetched += 1
        if dyn.executed:
            stats.executed += 1
        else:
            stats.nullified += 1
        inst = dyn.inst
        if inst.is_predicated:
            stats.predicated_instructions += 1
        if dyn.is_compare:
            stats.compares += 1
        elif inst.is_load:
            stats.loads += 1
        elif inst.is_store:
            stats.stores += 1
        elif dyn.is_branch:
            if dyn.is_conditional_branch:
                stats.conditional_branches += 1
                site = stats.branch_sites.get(dyn.pc)
                if site is None:
                    site = BranchSiteStats(pc=dyn.pc)
                    stats.branch_sites[dyn.pc] = site
                site.executions += 1
                if dyn.taken:
                    site.taken += 1
                    stats.taken_branches += 1
                if dyn.guard_producer_seq >= 0:
                    stats.guard_distances.append(dyn.seq - dyn.guard_producer_seq)
            else:
                stats.unconditional_branches += 1
                if dyn.taken:
                    stats.taken_branches += 1
    return stats


def branch_outcome_stream(trace: List[DynInst]) -> List[bool]:
    """Return the sequence of conditional-branch outcomes in fetch order."""
    return [bool(d.taken) for d in trace if d.is_conditional_branch]


def per_site_outcomes(trace: List[DynInst]) -> Dict[int, List[bool]]:
    """Return per-branch-site outcome sequences (keyed by branch PC)."""
    outcomes: Dict[int, List[bool]] = defaultdict(list)
    for dyn in trace:
        if dyn.is_conditional_branch:
            outcomes[dyn.pc].append(bool(dyn.taken))
    return dict(outcomes)
