"""Trace collection helpers and trace-level statistics.

These helpers are used by the tests, the examples and the experiment runner
to characterise workloads: branch counts, per-branch-site bias, the dynamic
distance between a compare and its consuming branch, and the fraction of
fetched instructions that were nullified (false qualifying predicate).

Traces have two interchangeable representations:

* the reference object form — a ``List[DynInst]`` — which every analysis
  here supports with plain Python loops; and
* the columnar :class:`~repro.emulator.tracepack.TracePack`, for which the
  statistics below run as vectorized numpy array passes over the pack's
  columns (bit-identical results; the equality is under test).

The on-disk encoding is versioned.  Format 3 (current) adds the *chunked*
pack encoding — a sequence of independently decodable format-2 segments
(see :class:`~repro.emulator.tracepack.ChunkedTracePack`) for streaming-
scale traces.  Format 2 monolithic packs and format 1 pickles of the
``DynInst`` list are both still read; format 2 is still written for
single-segment packs and format 1 when a caller hands us an object trace
(the ``REPRO_OPT=0`` reference path).
"""

from __future__ import annotations

import pickle
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Union

from repro.emulator.executor import DynInst, Emulator
from repro.emulator.tracepack import (
    CHUNK_MAGIC,
    OPCLASS_CODES,
    PACK_MAGIC,
    ChunkedTracePack,
    TracePack,
)
from repro.isa.opcodes import OpClass
from repro.program.program import Program

#: Bump when the on-disk trace encoding changes.  Folded into the artifact
#: store's TRACES cache keys (see :mod:`repro.engine.planner`), so a format
#: bump invalidates stale cached traces instead of failing at load time.
TRACE_FORMAT_VERSION = 3

#: Pickle-container versions :func:`deserialize_trace` still accepts.
_READABLE_PICKLE_VERSIONS = (1, 2, 3)

#: Any trace representation.
Trace = Union[List[DynInst], TracePack, ChunkedTracePack]


@dataclass
class BranchSiteStats:
    """Dynamic statistics for one static conditional branch."""

    pc: int
    executions: int = 0
    taken: int = 0

    @property
    def taken_rate(self) -> float:
        return self.taken / self.executions if self.executions else 0.0

    @property
    def bias(self) -> float:
        """Bias towards the dominant direction, in [0.5, 1.0]."""
        rate = self.taken_rate
        return max(rate, 1.0 - rate) if self.executions else 1.0


@dataclass
class TraceStatistics:
    """Aggregate statistics over a dynamic instruction trace."""

    fetched: int = 0
    executed: int = 0
    nullified: int = 0
    conditional_branches: int = 0
    taken_branches: int = 0
    unconditional_branches: int = 0
    compares: int = 0
    loads: int = 0
    stores: int = 0
    predicated_instructions: int = 0
    branch_sites: Dict[int, BranchSiteStats] = field(default_factory=dict)
    #: Distribution of dynamic distance (in instructions) between a
    #: conditional branch and the compare that produced its guard.
    guard_distances: List[int] = field(default_factory=list)

    @property
    def nullification_rate(self) -> float:
        return self.nullified / self.fetched if self.fetched else 0.0

    @property
    def conditional_branch_fraction(self) -> float:
        return self.conditional_branches / self.fetched if self.fetched else 0.0

    @property
    def mean_guard_distance(self) -> float:
        if not self.guard_distances:
            return 0.0
        return sum(self.guard_distances) / len(self.guard_distances)

    def hard_branch_fraction(self, bias_threshold: float = 0.9) -> float:
        """Fraction of dynamic conditional branches from low-bias sites."""
        hard = sum(
            s.executions
            for s in self.branch_sites.values()
            if s.bias < bias_threshold and s.executions > 0
        )
        return hard / self.conditional_branches if self.conditional_branches else 0.0

    def static_oracle_accuracy(self) -> float:
        """Accuracy of a per-site oracle static predictor.

        Every site is predicted in its dominant direction — the alias-free,
        perfect-history limit of any per-site static predictor, used by the
        idealized-predictor study as a trace-level upper-bound reference.
        """
        if not self.conditional_branches:
            return 1.0
        correct = sum(
            max(s.taken, s.executions - s.taken) for s in self.branch_sites.values()
        )
        return correct / self.conditional_branches


def collect_trace(program: Program, max_instructions: int) -> List[DynInst]:
    """Run ``program`` and return the dynamic instruction list."""
    emulator = Emulator(program)
    return list(emulator.run(max_instructions))


def collect_trace_pack(program: Program, max_instructions: int) -> TracePack:
    """Run ``program`` and return its trace as a columnar pack."""
    return Emulator(program).run_pack(max_instructions)


# ----------------------------------------------------------------------
# Trace serialization
# ----------------------------------------------------------------------
def serialize_trace(trace: Trace) -> bytes:
    """Encode a dynamic trace for the on-disk artifact store.

    A :class:`TracePack` is written in the columnar format-2 encoding (raw
    compressed column buffers; only the deduplicated static instruction
    table is pickled).  An object trace is written as the legacy versioned
    pickle, keeping the ``REPRO_OPT=0`` reference path end-to-end
    object-based.  Both encodings are self-contained: a trace can be
    re-simulated without re-materialising the program it came from.
    """
    if isinstance(trace, (TracePack, ChunkedTracePack)):
        return trace.to_bytes()
    return pickle.dumps(
        (TRACE_FORMAT_VERSION, list(trace)), protocol=pickle.HIGHEST_PROTOCOL
    )


def deserialize_trace(data: bytes) -> Trace:
    """Decode a trace produced by :func:`serialize_trace`.

    Columnar payloads decode to a :class:`TracePack`; pickle payloads
    (format 1 archives included) decode to the object list they carry.
    Raises :class:`ValueError` on an unknown encoding so callers (the
    artifact store) treat stale formats as cache misses.
    """
    if data[:4] == CHUNK_MAGIC:
        return ChunkedTracePack.from_bytes(data)
    if data[:4] == PACK_MAGIC:
        return TracePack.from_bytes(data)
    version, trace = pickle.loads(data)
    if version not in _READABLE_PICKLE_VERSIONS:
        raise ValueError(
            f"trace format version {version} != expected {TRACE_FORMAT_VERSION}"
        )
    return trace


def save_trace(path: str, trace: Trace) -> None:
    """Write a trace to ``path`` (see :func:`serialize_trace`)."""
    with open(path, "wb") as handle:
        handle.write(serialize_trace(trace))


def load_trace(path: str) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with open(path, "rb") as handle:
        return deserialize_trace(handle.read())


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
def trace_statistics(trace: Trace) -> TraceStatistics:
    """Compute :class:`TraceStatistics` over a dynamic trace.

    Object traces take the reference per-instruction loop; packs take the
    vectorized column pass.  Both produce equal statistics (under test in
    ``tests/emulator/test_tracepack.py``).  Chunked packs run the column
    pass one segment at a time and merge — never holding more than the
    decode LRU's worth of expanded columns.
    """
    if isinstance(trace, ChunkedTracePack):
        stats = TraceStatistics()
        for index in range(trace.segment_count):
            _merge_statistics(stats, _trace_statistics_pack(trace.segment(index)))
        return stats
    if isinstance(trace, TracePack):
        return _trace_statistics_pack(trace)
    stats = TraceStatistics()
    for dyn in trace:
        stats.fetched += 1
        if dyn.executed:
            stats.executed += 1
        else:
            stats.nullified += 1
        inst = dyn.inst
        if inst.is_predicated:
            stats.predicated_instructions += 1
        if dyn.is_compare:
            stats.compares += 1
        elif inst.is_load:
            stats.loads += 1
        elif inst.is_store:
            stats.stores += 1
        elif dyn.is_branch:
            if dyn.is_conditional_branch:
                stats.conditional_branches += 1
                site = stats.branch_sites.get(dyn.pc)
                if site is None:
                    site = BranchSiteStats(pc=dyn.pc)
                    stats.branch_sites[dyn.pc] = site
                site.executions += 1
                if dyn.taken:
                    site.taken += 1
                    stats.taken_branches += 1
                if dyn.guard_producer_seq >= 0:
                    stats.guard_distances.append(dyn.seq - dyn.guard_producer_seq)
            else:
                stats.unconditional_branches += 1
                if dyn.taken:
                    stats.taken_branches += 1
    return stats


def _trace_statistics_pack(pack: TracePack) -> TraceStatistics:
    """Vectorized :func:`trace_statistics` over a pack's columns."""
    import numpy as np

    stats = TraceStatistics()
    n = len(pack)
    stats.fetched = n
    if n == 0:
        return stats

    flags = pack.static_flags()
    idx = pack.inst_index
    executed = pack.executed != 0
    taken = pack.taken == 1
    # Opcode classes come straight from the per-row ``opclass`` column;
    # predication and branch conditionality need the static table.
    opclass = pack.opclass
    compare = opclass == OPCLASS_CODES[OpClass.COMPARE]
    load = opclass == OPCLASS_CODES[OpClass.LOAD]
    store = opclass == OPCLASS_CODES[OpClass.STORE]
    branch = opclass == OPCLASS_CODES[OpClass.BRANCH]
    predicated = flags["is_predicated"][idx]
    cond = flags["is_conditional_branch"][idx]
    uncond = branch & ~cond

    stats.executed = int(executed.sum())
    stats.nullified = n - stats.executed
    stats.predicated_instructions = int(predicated.sum())
    stats.compares = int(compare.sum())
    stats.loads = int(load.sum())
    stats.stores = int(store.sum())
    stats.conditional_branches = int(cond.sum())
    stats.unconditional_branches = int(uncond.sum())
    stats.taken_branches = int((branch & taken).sum())

    if stats.conditional_branches:
        cond_pcs = pack.pc[cond]
        cond_taken = taken[cond]
        # First-occurrence site order matches the reference loop's insertion
        # order (dict equality does not depend on it, but renderings do).
        first = np.sort(np.unique(cond_pcs, return_index=True)[1])
        ordered_pcs = cond_pcs[first]
        executions = {
            int(pc): int(count)
            for pc, count in zip(*np.unique(cond_pcs, return_counts=True))
        }
        taken_counts = {
            int(pc): int(count)
            for pc, count in zip(*np.unique(cond_pcs[cond_taken], return_counts=True))
        }
        for pc in ordered_pcs.tolist():
            stats.branch_sites[pc] = BranchSiteStats(
                pc=pc, executions=executions[pc], taken=taken_counts.get(pc, 0)
            )
        producers = pack.guard_producer_seq
        guarded = cond & (producers >= 0)
        stats.guard_distances = (pack.seq[guarded] - producers[guarded]).tolist()
    return stats


def _merge_statistics(into: TraceStatistics, part: TraceStatistics) -> None:
    """Fold one segment's statistics into the running aggregate.

    Branch sites keep first-occurrence order across segments (segments are
    consumed in fetch order), matching the reference loop's insertion order.
    """
    into.fetched += part.fetched
    into.executed += part.executed
    into.nullified += part.nullified
    into.conditional_branches += part.conditional_branches
    into.taken_branches += part.taken_branches
    into.unconditional_branches += part.unconditional_branches
    into.compares += part.compares
    into.loads += part.loads
    into.stores += part.stores
    into.predicated_instructions += part.predicated_instructions
    for pc, site in part.branch_sites.items():
        merged = into.branch_sites.get(pc)
        if merged is None:
            into.branch_sites[pc] = BranchSiteStats(
                pc=pc, executions=site.executions, taken=site.taken
            )
        else:
            merged.executions += site.executions
            merged.taken += site.taken
    into.guard_distances.extend(part.guard_distances)


def branch_outcome_stream(trace: Trace) -> List[bool]:
    """Return the sequence of conditional-branch outcomes in fetch order."""
    if isinstance(trace, ChunkedTracePack):
        stream: List[bool] = []
        for index in range(trace.segment_count):
            stream.extend(branch_outcome_stream(trace.segment(index)))
        return stream
    if isinstance(trace, TracePack):
        if len(trace) == 0:
            return []
        cond = trace.static_flags()["is_conditional_branch"][trace.inst_index]
        return (trace.taken[cond] == 1).tolist()
    return [bool(d.taken) for d in trace if d.is_conditional_branch]


def per_site_outcomes(trace: Trace) -> Dict[int, List[bool]]:
    """Return per-branch-site outcome sequences (keyed by branch PC)."""
    if isinstance(trace, ChunkedTracePack):
        merged: Dict[int, List[bool]] = {}
        for index in range(trace.segment_count):
            for pc, seg_outcomes in _per_site_outcomes_pack(trace.segment(index)).items():
                merged.setdefault(pc, []).extend(seg_outcomes)
        return merged
    if isinstance(trace, TracePack):
        return _per_site_outcomes_pack(trace)
    outcomes: Dict[int, List[bool]] = defaultdict(list)
    for dyn in trace:
        if dyn.is_conditional_branch:
            outcomes[dyn.pc].append(bool(dyn.taken))
    return dict(outcomes)


def _per_site_outcomes_pack(pack: TracePack) -> Dict[int, List[bool]]:
    import numpy as np

    if len(pack) == 0:
        return {}
    cond = pack.static_flags()["is_conditional_branch"][pack.inst_index]
    pcs = pack.pc[cond]
    taken = pack.taken[cond] == 1
    if pcs.shape[0] == 0:
        return {}
    # Stable sort groups rows by site while preserving fetch order inside
    # each group; np.unique on the sorted keys yields the split points.
    order = np.argsort(pcs, kind="stable")
    sorted_pcs = pcs[order]
    sorted_taken = taken[order]
    unique_pcs, starts = np.unique(sorted_pcs, return_index=True)
    splits = np.split(sorted_taken, starts[1:])
    return {
        int(pc): outcomes.tolist() for pc, outcomes in zip(unique_pcs, splits)
    }


def as_trace_pack(trace: Trace) -> TracePack:
    """Return ``trace`` as one monolithic columnar pack.

    Object lists are columnarised; chunked packs are concatenated (this
    materialises every segment — use only where a single pack is required).
    """
    if isinstance(trace, ChunkedTracePack):
        return trace.concat()
    if isinstance(trace, TracePack):
        return trace
    return TracePack.from_dyninsts(trace)
