"""Columnar (struct-of-arrays) dynamic traces: the ``TracePack``.

A dynamic trace at paper budgets is tens of thousands of records, and the
object representation (:class:`~repro.emulator.executor.DynInst` per fetched
instruction) is expensive in exactly the three places large sweeps hurt:
building it allocates one Python object per instruction, storing it pickles
every object, and analysing it walks attribute chains per element.

:class:`TracePack` keeps the same information as parallel typed arrays —
one numpy column per ``DynInst`` field — plus a deduplicated table of the
static :class:`~repro.isa.instructions.Instruction` objects the rows refer
to.  The columns are:

========================  =======  ==============================================
column                    dtype    meaning
========================  =======  ==============================================
``seq``                   int64    dynamic sequence number
``inst_index``            int32    row -> index into :attr:`insts`
``pc``                    int64    instruction address
``opclass``               uint8    opcode class code (see :data:`OPCLASS_CODES`)
``qp_value``              uint8    qualifying-predicate value at execution
``executed``              uint8    1 when the qualifying predicate was true
``taken``                 int8     -1 = not a branch, else 0/1
``target_pc``             int64    branch target (-1 = none)
``next_pc``               int64    next correct-path pc (-1 = none)
``mem_valid``             uint8    1 when ``mem_address`` carries a value
``mem_address``           int64    effective address of memory operations
``guard_producer_seq``    int64    seq of the guard's producer (-1 = pre-trace)
``pred_offsets``          int64    ragged index (length ``n + 1``) into the
``pred_index``            int16    flattened architectural predicate writes
``pred_value``            uint8    (register index, written value) pairs
========================  =======  ==============================================

Everything round-trips: ``TracePack.from_dyninsts(trace).to_dyninsts()``
reproduces bit-identical ``DynInst`` state, which is what the parity tests
assert.  The on-disk form (:meth:`to_bytes` / :meth:`from_bytes`) is a small
JSON header plus the zlib-compressed raw column buffers; only the static
instruction table is pickled, never the per-instruction rows.

numpy is the only dependency and is gated: when it is unavailable
:func:`pack_supported` returns ``False`` and every caller (the engine, the
emulator, the bench harness) falls back to the object-based reference
representation.
"""

from __future__ import annotations

import json
import pickle
import struct
import zlib
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised implicitly by every test
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is part of the toolchain
    _np = None

from repro.emulator.executor import DynInst
from repro.isa.branches import BranchInstruction
from repro.isa.opcodes import OpClass

#: Magic prefix of the columnar on-disk encoding (trace format version 2).
PACK_MAGIC = b"RTP2"

#: Magic prefix of the chunked on-disk encoding (trace format version 3):
#: ``CHUNK_MAGIC`` followed by ``<u64 size><RTP2 segment>`` records and a
#: ``<u64 0>`` terminator.  Each segment is a complete, self-contained v2
#: pack, so the chunked format reuses the v2 codec byte for byte.
CHUNK_MAGIC = b"RTP3"

#: Opcode-class codes used by the ``opclass`` column.  Pinned explicitly —
#: the codes are part of the on-disk format-2 encoding, so they must not
#: shift when ``OpClass`` gains or reorders members; a new member must be
#: appended here with a fresh code (building a pack for an unpinned class
#: raises ``KeyError`` loudly rather than encoding wrong codes).
OPCLASS_CODES: Dict[OpClass, int] = {
    OpClass.ALU: 0,
    OpClass.MUL: 1,
    OpClass.FP: 2,
    OpClass.LOAD: 3,
    OpClass.STORE: 4,
    OpClass.COMPARE: 5,
    OpClass.BRANCH: 6,
    OpClass.MOVE: 7,
    OpClass.NOP: 8,
}

#: The column layout: (name, dtype string).  ``pred_offsets`` has length
#: ``n + 1`` and the two ``pred_*`` payload columns are ragged; everything
#: else has one element per dynamic instruction.
_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("seq", "<i8"),
    ("inst_index", "<i4"),
    ("pc", "<i8"),
    ("opclass", "u1"),
    ("qp_value", "u1"),
    ("executed", "u1"),
    ("taken", "i1"),
    ("target_pc", "<i8"),
    ("next_pc", "<i8"),
    ("mem_valid", "u1"),
    ("mem_address", "<i8"),
    ("guard_producer_seq", "<i8"),
    ("pred_offsets", "<i8"),
    ("pred_index", "<i2"),
    ("pred_value", "u1"),
)


def pack_supported() -> bool:
    """True when the columnar backend can be used (numpy importable)."""
    return _np is not None


class PackBackendUnavailable(RuntimeError):
    """Raised when a columnar operation needs numpy and it is missing.

    Distinct from decode errors on purpose: the artifact store treats this
    as a plain cache miss and leaves the (valid) stored artifact in place,
    whereas a corrupt artifact is deleted.
    """


def _require_numpy():
    if _np is None:  # pragma: no cover - numpy is part of the toolchain
        raise PackBackendUnavailable(
            "TracePack requires numpy; use the object trace representation "
            "(REPRO_OPT=0) when numpy is unavailable"
        )
    return _np


class PackCursor:
    """A reusable flyweight with the ``DynInst`` attribute interface.

    :meth:`TracePack.cursor` yields one instance of this class per pack
    iteration, mutating it in place for every row — the pipeline's fast loop
    and the scheme hooks read all fields synchronously and never retain the
    object, so a single instance replaces one allocation per dynamic
    instruction.  ``is_branch`` / ``is_compare`` / ``is_conditional_branch``
    are plain attributes (precomputed per static instruction) instead of the
    property chains of ``DynInst``.
    """

    __slots__ = (
        "seq",
        "inst",
        "pc",
        "qp_value",
        "executed",
        "taken",
        "target_pc",
        "next_pc",
        "mem_address",
        "pred_writes",
        "guard_producer_seq",
        "is_branch",
        "is_compare",
        "is_conditional_branch",
    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PackCursor #{self.seq} pc={self.pc:#x} {self.inst!r}>"


class TracePackBuilder:
    """Accumulates dynamic-instruction rows and finalizes a :class:`TracePack`.

    Rows are appended straight into compact typed columns
    (:class:`array.array`), so building a pack never materialises
    per-instruction objects *or* row tuples: the transient footprint equals
    the final columnar footprint (~60 bytes per instruction), several times
    below the object trace it replaces.  Static instructions are
    deduplicated on the fly by ``uid``.
    """

    __slots__ = (
        "_seq",
        "_inst_index",
        "_pc",
        "_qp_value",
        "_executed",
        "_taken",
        "_target_pc",
        "_next_pc",
        "_mem_valid",
        "_mem_address",
        "_producer",
        "_pred_offsets",
        "_pred_index",
        "_pred_value",
        "_insts",
        "_uid_to_index",
    )

    def __init__(self) -> None:
        from array import array

        self._seq = array("q")
        self._inst_index = array("i")
        self._pc = array("q")
        self._qp_value = array("B")
        self._executed = array("B")
        self._taken = array("b")
        self._target_pc = array("q")
        self._next_pc = array("q")
        self._mem_valid = array("B")
        self._mem_address = array("q")
        self._producer = array("q")
        self._pred_offsets = array("q", [0])
        self._pred_index = array("h")
        self._pred_value = array("B")
        self._insts: List[Any] = []
        self._uid_to_index: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._seq)

    def append_row(self, dyn) -> None:
        """Append one row from any object with the ``DynInst`` fields."""
        inst = dyn.inst
        index = self._uid_to_index.get(inst.uid)
        if index is None:
            index = len(self._insts)
            self._uid_to_index[inst.uid] = index
            self._insts.append(inst)
        self._seq.append(dyn.seq)
        self._inst_index.append(index)
        self._pc.append(dyn.pc)
        self._qp_value.append(1 if dyn.qp_value else 0)
        self._executed.append(1 if dyn.executed else 0)
        value = dyn.taken
        self._taken.append(-1 if value is None else (1 if value else 0))
        value = dyn.target_pc
        self._target_pc.append(-1 if value is None else value)
        value = dyn.next_pc
        self._next_pc.append(-1 if value is None else value)
        value = dyn.mem_address
        if value is None:
            self._mem_valid.append(0)
            self._mem_address.append(0)
        else:
            self._mem_valid.append(1)
            self._mem_address.append(value)
        self._producer.append(dyn.guard_producer_seq)
        writes = dyn.pred_writes
        if writes:
            for reg_index, reg_value in writes:
                self._pred_index.append(reg_index)
                self._pred_value.append(1 if reg_value else 0)
        self._pred_offsets.append(len(self._pred_index))

    def finalize(self) -> "TracePack":
        """Wrap the typed columns as a :class:`TracePack` (zero-copy).

        The numpy columns view the builder's buffers directly; exporting
        them freezes the builder (a later ``append_row`` raises
        ``BufferError``), which is the intended single-use lifecycle.
        """
        np = _require_numpy()
        if not self._seq:
            return TracePack._empty()
        inst_index = np.frombuffer(self._inst_index, dtype=np.int32)
        static_opclass = np.array(
            [OPCLASS_CODES[inst.opclass] for inst in self._insts], dtype=np.uint8
        )
        return TracePack(
            insts=self._insts,
            seq=np.frombuffer(self._seq, dtype=np.int64),
            inst_index=inst_index,
            pc=np.frombuffer(self._pc, dtype=np.int64),
            opclass=static_opclass[inst_index],
            qp_value=np.frombuffer(self._qp_value, dtype=np.uint8),
            executed=np.frombuffer(self._executed, dtype=np.uint8),
            taken=np.frombuffer(self._taken, dtype=np.int8),
            target_pc=np.frombuffer(self._target_pc, dtype=np.int64),
            next_pc=np.frombuffer(self._next_pc, dtype=np.int64),
            mem_valid=np.frombuffer(self._mem_valid, dtype=np.uint8),
            mem_address=np.frombuffer(self._mem_address, dtype=np.int64),
            guard_producer_seq=np.frombuffer(self._producer, dtype=np.int64),
            pred_offsets=np.frombuffer(self._pred_offsets, dtype=np.int64),
            pred_index=np.frombuffer(self._pred_index, dtype=np.int16),
            pred_value=np.frombuffer(self._pred_value, dtype=np.uint8),
        )


class TracePack:
    """A struct-of-arrays dynamic trace (see the module docstring)."""

    __slots__ = tuple(name for name, _ in _COLUMNS) + (
        "insts",
        "_static_flags",
    )

    def __init__(self, insts: Sequence[Any], **columns) -> None:
        _require_numpy()
        self.insts = list(insts)
        for name, _dtype in _COLUMNS:
            setattr(self, name, columns[name])
        self._static_flags: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    @classmethod
    def _empty(cls) -> "TracePack":
        np = _require_numpy()
        columns = {}
        for name, dtype in _COLUMNS:
            length = 1 if name == "pred_offsets" else 0
            columns[name] = np.zeros(length, dtype=np.dtype(dtype))
        return cls(insts=[], **columns)

    @classmethod
    def from_dyninsts(cls, trace: Sequence[DynInst]) -> "TracePack":
        """Columnarise an object trace (shared identity preserved by uid)."""
        builder = TracePackBuilder()
        append = builder.append_row
        for dyn in trace:
            append(dyn)
        return builder.finalize()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.seq.shape[0])

    def __iter__(self) -> Iterator[DynInst]:
        """Iterate as materialised ``DynInst`` objects (compatibility API).

        Hot paths should use :meth:`cursor` instead; this exists so legacy
        call sites (``iter(trace)``, list comprehensions over a trace) keep
        working when the engine hands them a pack.
        """
        return iter(self.to_dyninsts())

    @property
    def nbytes(self) -> int:
        """In-memory footprint of the columns (instruction table excluded)."""
        return int(sum(getattr(self, name).nbytes for name, _ in _COLUMNS))

    # ------------------------------------------------------------------
    def pred_writes_at(self, row: int) -> Tuple[Tuple[int, bool], ...]:
        """The architectural predicate writes of one row, as ``DynInst`` has
        them."""
        start = int(self.pred_offsets[row])
        stop = int(self.pred_offsets[row + 1])
        if start == stop:
            return ()
        return tuple(
            (int(self.pred_index[i]), bool(self.pred_value[i]))
            for i in range(start, stop)
        )

    def _materialise_pred_writes(
        self, start: int = 0, stop: Optional[int] = None
    ) -> List[Tuple[Tuple[int, bool], ...]]:
        stop = len(self) if stop is None else stop
        count = max(0, stop - start)
        writes: List[Tuple[Tuple[int, bool], ...]] = [()] * count
        if not count:
            return writes
        offsets = self.pred_offsets[start : stop + 1].tolist()
        low, high = offsets[0], offsets[-1]
        if high != low:
            # Slice the ragged payload once; local positions are offset-low.
            indices = self.pred_index[low:high].tolist()
            values = self.pred_value[low:high].tolist()
            for row in range(count):
                first, last = offsets[row] - low, offsets[row + 1] - low
                if first != last:
                    writes[row] = tuple(
                        (indices[i], bool(values[i])) for i in range(first, last)
                    )
        return writes

    def to_dyninsts(self) -> List[DynInst]:
        """Materialise the reference object representation (bit-identical)."""
        insts = self.insts
        seqs = self.seq.tolist()
        inst_idx = self.inst_index.tolist()
        pcs = self.pc.tolist()
        qps = (self.qp_value != 0).tolist()
        execs = (self.executed != 0).tolist()
        takens = self.taken.tolist()
        targets = self.target_pc.tolist()
        nexts = self.next_pc.tolist()
        mem_valid = self.mem_valid.tolist()
        mems = self.mem_address.tolist()
        producers = self.guard_producer_seq.tolist()
        writes = self._materialise_pred_writes()

        out: List[DynInst] = []
        append = out.append
        new = DynInst.__new__
        for i in range(len(seqs)):
            dyn = new(DynInst)
            taken = takens[i]
            dyn.__setstate__(
                (
                    seqs[i],
                    insts[inst_idx[i]],
                    pcs[i],
                    qps[i],
                    execs[i],
                    None if taken < 0 else bool(taken),
                    None if targets[i] < 0 else targets[i],
                    None if nexts[i] < 0 else nexts[i],
                    mems[i] if mem_valid[i] else None,
                    writes[i],
                    producers[i],
                )
            )
            append(dyn)
        return out

    # ------------------------------------------------------------------
    def cursor(self, start: int = 0, stop: Optional[int] = None) -> Iterator[PackCursor]:
        """Yield one reusable :class:`PackCursor` per row of ``[start, stop)``.

        This is the pipeline fast loop's view of a pack: no per-row object
        is allocated; the flyweight's fields are rewritten in place.  The
        per-column Python lists below are working state of one iteration —
        deliberately *not* cached on the pack, so a pack parked in the
        engine's trace LRU keeps only its compact typed columns.  The range
        form backs windowed simulation: only the requested rows are ever
        materialised as Python objects.
        """
        stop = len(self) if stop is None else min(stop, len(self))
        start = max(0, start)
        branch_f, compare_f, cond_f = self._cursor_static_flags()
        seqs = self.seq[start:stop].tolist()
        inst_idx = self.inst_index[start:stop].tolist()
        pcs = self.pc[start:stop].tolist()
        qps = (self.qp_value[start:stop] != 0).tolist()
        execs = (self.executed[start:stop] != 0).tolist()
        takens = [None if t < 0 else bool(t) for t in self.taken[start:stop].tolist()]
        targets = [None if t < 0 else t for t in self.target_pc[start:stop].tolist()]
        nexts = [None if t < 0 else t for t in self.next_pc[start:stop].tolist()]
        mems = [
            m if v else None
            for m, v in zip(
                self.mem_address[start:stop].tolist(),
                self.mem_valid[start:stop].tolist(),
            )
        ]
        writes = self._materialise_pred_writes(start, stop)
        producers = self.guard_producer_seq[start:stop].tolist()
        insts = self.insts
        cur = PackCursor()
        for i in range(len(seqs)):
            static = inst_idx[i]
            cur.seq = seqs[i]
            cur.inst = insts[static]
            cur.pc = pcs[i]
            cur.qp_value = qps[i]
            cur.executed = execs[i]
            cur.taken = takens[i]
            cur.target_pc = targets[i]
            cur.next_pc = nexts[i]
            cur.mem_address = mems[i]
            cur.pred_writes = writes[i]
            cur.guard_producer_seq = producers[i]
            cur.is_branch = branch_f[static]
            cur.is_compare = compare_f[static]
            cur.is_conditional_branch = cond_f[static]
            yield cur

    def _cursor_static_flags(self) -> Tuple[List[bool], List[bool], List[bool]]:
        branch_f = [inst.is_branch for inst in self.insts]
        compare_f = [inst.is_compare for inst in self.insts]
        cond_f = [
            isinstance(inst, BranchInstruction) and inst.is_conditional
            for inst in self.insts
        ]
        return branch_f, compare_f, cond_f

    # ------------------------------------------------------------------
    def static_flags(self) -> Dict[str, Any]:
        """Per-static-instruction flag arrays, indexed by ``inst_index``.

        Cached; used by the vectorized statistics passes in
        :mod:`repro.emulator.trace`.
        """
        flags = self._static_flags
        if flags is None:
            np = _require_numpy()
            branch_f, compare_f, cond_f = self._cursor_static_flags()
            flags = {
                "is_predicated": np.array(
                    [inst.is_predicated for inst in self.insts], dtype=bool
                ),
                "is_compare": np.array(compare_f, dtype=bool),
                "is_load": np.array(
                    [inst.is_load for inst in self.insts], dtype=bool
                ),
                "is_store": np.array(
                    [inst.is_store for inst in self.insts], dtype=bool
                ),
                "is_branch": np.array(branch_f, dtype=bool),
                "is_conditional_branch": np.array(cond_f, dtype=bool),
            }
            self._static_flags = flags
        return flags

    # ------------------------------------------------------------------
    # On-disk encoding (trace format version 2)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Encode as ``PACK_MAGIC + header + zlib(column buffers + insts)``.

        The dynamic rows are raw little-endian array buffers — no pickle is
        involved for them; only the (small, deduplicated) static instruction
        table is pickled.
        """
        np = _require_numpy()
        header_columns = []
        buffers = []
        for name, dtype in _COLUMNS:
            array = np.ascontiguousarray(getattr(self, name), dtype=np.dtype(dtype))
            header_columns.append([name, dtype, int(array.shape[0])])
            buffers.append(array.tobytes())
        insts_blob = pickle.dumps(self.insts, protocol=pickle.HIGHEST_PROTOCOL)
        header = json.dumps(
            {"n": len(self), "columns": header_columns, "insts_bytes": len(insts_blob)},
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        body = zlib.compress(b"".join(buffers) + insts_blob, 6)
        return PACK_MAGIC + struct.pack("<I", len(header)) + header + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "TracePack":
        """Decode a pack written by :meth:`to_bytes`."""
        np = _require_numpy()
        if data[:4] != PACK_MAGIC:
            raise ValueError("not a columnar trace pack (bad magic)")
        (header_len,) = struct.unpack_from("<I", data, 4)
        header_end = 8 + header_len
        header = json.loads(data[8:header_end].decode("utf-8"))
        body = zlib.decompress(data[header_end:])
        columns: Dict[str, Any] = {}
        offset = 0
        for name, dtype, length in header["columns"]:
            dt = np.dtype(dtype)
            size = dt.itemsize * length
            columns[name] = np.frombuffer(body, dtype=dt, count=length, offset=offset)
            offset += size
        insts_blob = body[offset : offset + header["insts_bytes"]]
        insts = pickle.loads(insts_blob)
        expected = {name for name, _ in _COLUMNS}
        missing = expected - set(columns)
        if missing:
            raise ValueError(f"trace pack is missing columns {sorted(missing)}")
        return cls(insts=insts, **{name: columns[name] for name in expected})


# ----------------------------------------------------------------------
# Chunked packs (trace format version 3)
# ----------------------------------------------------------------------
def _segment_row_count(blob) -> int:
    """Row count of one RTP2 segment, read from its uncompressed header.

    Cheap on purpose: indexing a chunked pack touches only the JSON headers,
    never the zlib bodies, so opening a multi-gigabyte trace costs a few
    hundred bytes of parsing per segment.
    """
    if bytes(blob[:4]) != PACK_MAGIC:
        raise ValueError("chunked trace pack segment has a bad magic")
    (header_len,) = struct.unpack_from("<I", blob, 4)
    if 8 + header_len > len(blob):
        raise ValueError("chunked trace pack segment header is truncated")
    header = json.loads(bytes(blob[8 : 8 + header_len]).decode("utf-8"))
    return int(header["n"])


class ChunkedPackWriter:
    """Streams RTP3 segment records into a binary file object.

    The writer is what keeps ingestion's peak memory bounded: the emulator
    hands over one finalized segment at a time, the writer encodes and
    appends it, and nothing upstream retains the segment.  Callers must
    invoke :meth:`finish` to append the terminator record; a file without it
    is detectably truncated.
    """

    __slots__ = ("_handle", "rows", "segments", "_finished")

    def __init__(self, handle) -> None:
        handle.write(CHUNK_MAGIC)
        self._handle = handle
        self.rows = 0
        self.segments = 0
        self._finished = False

    def add_segment(self, pack: "TracePack") -> None:
        if self._finished:
            raise ValueError("ChunkedPackWriter is finished")
        blob = pack.to_bytes()
        self._handle.write(struct.pack("<Q", len(blob)))
        self._handle.write(blob)
        self.rows += len(pack)
        self.segments += 1

    def finish(self) -> int:
        """Write the terminator record; return the total row count."""
        if not self._finished:
            self._handle.write(struct.pack("<Q", 0))
            self._finished = True
        return self.rows


class ChunkedTracePack:
    """A dynamic trace stored as a sequence of :class:`TracePack` segments.

    The streaming counterpart of :class:`TracePack`: segments decode lazily
    (an LRU of :data:`_DECODE_CACHE` blob-backed segments stays decoded), so
    iterating a huge trace holds at most a couple of segments' worth of
    decoded columns plus the compressed payload.  :meth:`cursor` hides the
    segmentation completely — consumers see one uninterrupted row stream,
    and the range form serves windowed simulation without decoding skipped
    segments.

    Each segment pickles its own copy of the static instruction table; rows
    of different segments referring to the same static instruction therefore
    yield *equal* (same ``uid``, same fields) but not *identical* objects,
    which every consumer keyed on ``uid`` or field equality handles.
    """

    #: Blob-backed segments kept decoded at once (adjacent-window locality).
    _DECODE_CACHE = 2

    __slots__ = ("_packs", "_blobs", "_lengths", "_starts", "_decoded")

    def __init__(self, packs, blobs, lengths) -> None:
        _require_numpy()
        self._packs: List[Optional[TracePack]] = list(packs)
        self._blobs: List[Optional[Any]] = list(blobs)
        self._lengths: List[int] = [int(length) for length in lengths]
        starts = [0]
        for length in self._lengths:
            starts.append(starts[-1] + length)
        self._starts: List[int] = starts
        self._decoded: List[int] = []

    # ------------------------------------------------------------------
    @classmethod
    def from_segments(cls, packs: Sequence["TracePack"]) -> "ChunkedTracePack":
        """Wrap already-decoded segments (all stay resident; no eviction)."""
        packs = list(packs)
        return cls(
            packs=packs,
            blobs=[None] * len(packs),
            lengths=[len(pack) for pack in packs],
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ChunkedTracePack":
        """Open an RTP3 payload; only segment headers are parsed eagerly."""
        _require_numpy()
        if bytes(data[:4]) != CHUNK_MAGIC:
            raise ValueError("not a chunked trace pack (bad magic)")
        view = memoryview(data)
        offset = 4
        blobs: List[Any] = []
        lengths: List[int] = []
        while True:
            if offset + 8 > len(data):
                raise ValueError("chunked trace pack is truncated (no terminator)")
            (size,) = struct.unpack_from("<Q", view, offset)
            offset += 8
            if size == 0:
                break
            if offset + size > len(data):
                raise ValueError("chunked trace pack segment overruns the payload")
            blob = view[offset : offset + size]
            offset += size
            lengths.append(_segment_row_count(blob))
            blobs.append(blob)
        if offset != len(data):
            raise ValueError("chunked trace pack has trailing bytes")
        return cls(packs=[None] * len(blobs), blobs=blobs, lengths=lengths)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._starts[-1]

    def __iter__(self) -> Iterator[DynInst]:
        for index in range(self.segment_count):
            for dyn in self.segment(index).to_dyninsts():
                yield dyn

    @property
    def segment_count(self) -> int:
        return len(self._lengths)

    @property
    def segment_lengths(self) -> Tuple[int, ...]:
        return tuple(self._lengths)

    @property
    def nbytes(self) -> int:
        """Encoded size of blob-backed segments plus resident column bytes."""
        total = 0
        for index in range(self.segment_count):
            blob = self._blobs[index]
            if blob is not None:
                total += len(blob)
            elif self._packs[index] is not None:
                total += self._packs[index].nbytes
        return total

    # ------------------------------------------------------------------
    def segment(self, index: int) -> TracePack:
        """The decoded segment at ``index`` (LRU-cached for blob-backed)."""
        pack = self._packs[index]
        if pack is not None:
            if self._blobs[index] is not None and index in self._decoded:
                self._decoded.remove(index)
                self._decoded.append(index)
            return pack
        pack = TracePack.from_bytes(bytes(self._blobs[index]))
        self._packs[index] = pack
        self._decoded.append(index)
        while len(self._decoded) > self._DECODE_CACHE:
            self._packs[self._decoded.pop(0)] = None
        return pack

    def cursor(self, start: int = 0, stop: Optional[int] = None) -> Iterator[PackCursor]:
        """One uninterrupted flyweight row stream across segment boundaries.

        Only the segments overlapping ``[start, stop)`` are decoded, in
        order, so a windowed caller pays for exactly the rows it simulates.
        """
        total = len(self)
        stop = total if stop is None else min(stop, total)
        start = max(0, start)
        for index in range(self.segment_count):
            seg_start = self._starts[index]
            seg_stop = self._starts[index + 1]
            if seg_stop <= start:
                continue
            if seg_start >= stop:
                break
            pack = self.segment(index)
            for row in pack.cursor(max(0, start - seg_start), min(stop, seg_stop) - seg_start):
                yield row

    def to_dyninsts(self) -> List[DynInst]:
        """Materialise the reference object representation, segment by segment."""
        out: List[DynInst] = []
        for index in range(self.segment_count):
            out.extend(self.segment(index).to_dyninsts())
        return out

    def concat(self) -> TracePack:
        """Merge every segment into one monolithic :class:`TracePack`.

        Deliberately materialises everything — the escape hatch for
        consumers that need a single pack (e.g. tests comparing the two
        layouts), not a streaming path.  Static instruction tables are
        re-deduplicated by ``uid`` and ``inst_index`` remapped accordingly.
        """
        np = _require_numpy()
        if not self._lengths:
            return TracePack._empty()
        insts: List[Any] = []
        uid_to_index: Dict[int, int] = {}
        columns: Dict[str, List[Any]] = {name: [] for name, _ in _COLUMNS}
        payload_base = 0
        for index in range(self.segment_count):
            pack = self.segment(index)
            remap = np.empty(max(1, len(pack.insts)), dtype=np.int32)
            for position, inst in enumerate(pack.insts):
                merged = uid_to_index.get(inst.uid)
                if merged is None:
                    merged = len(insts)
                    uid_to_index[inst.uid] = merged
                    insts.append(inst)
                remap[position] = merged
            for name, _dtype in _COLUMNS:
                if name == "pred_offsets":
                    offsets = pack.pred_offsets + payload_base
                    columns[name].append(offsets if index == 0 else offsets[1:])
                elif name == "inst_index":
                    columns[name].append(remap[pack.inst_index])
                else:
                    columns[name].append(getattr(pack, name))
            payload_base += int(pack.pred_offsets[-1])
        merged_columns = {
            name: np.concatenate(parts).astype(np.dtype(dtype), copy=False)
            for (name, dtype), parts in zip(_COLUMNS, columns.values())
        }
        return TracePack(insts=insts, **merged_columns)

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Encode as RTP3: magic, ``<u64 size><segment>`` records, terminator."""
        parts: List[bytes] = [CHUNK_MAGIC]
        for index in range(self.segment_count):
            blob = self._blobs[index]
            blob = self._packs[index].to_bytes() if blob is None else bytes(blob)
            parts.append(struct.pack("<Q", len(blob)))
            parts.append(blob)
        parts.append(struct.pack("<Q", 0))
        return b"".join(parts)
