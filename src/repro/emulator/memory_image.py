"""Sparse memory image used by the functional emulator.

Memory is modelled as a sparse dictionary of 8-byte words.  Unwritten
locations read as zero, which matches the workloads' expectation of
zero-initialised data and keeps the image cheap for large address ranges.
"""

from __future__ import annotations

from typing import Dict, Optional

WORD_BYTES = 8

_WORD_MASK = (1 << 64) - 1
_SIGN_BIT = 1 << 63


def to_signed64(value: int) -> int:
    """Wrap ``value`` to a signed 64-bit integer."""
    value &= _WORD_MASK
    if value & _SIGN_BIT:
        return value - (1 << 64)
    return value


class MemoryImage:
    """Word-granular sparse memory."""

    __slots__ = ("_words",)

    def __init__(self, initial: Optional[Dict[int, int]] = None) -> None:
        self._words: Dict[int, int] = {}
        if initial:
            for address, value in initial.items():
                self.write_word(address, value)

    # ------------------------------------------------------------------
    @staticmethod
    def _align(address: int) -> int:
        return address - (address % WORD_BYTES)

    def read_word(self, address: int) -> int:
        """Read the 8-byte word containing ``address`` (unaligned accesses
        are clamped to their containing word)."""
        return self._words.get(self._align(address), 0)

    def write_word(self, address: int, value: int) -> None:
        """Write an 8-byte word, wrapping the value to 64 bits."""
        self._words[self._align(address)] = to_signed64(int(value))

    # ------------------------------------------------------------------
    def copy(self) -> "MemoryImage":
        clone = MemoryImage()
        clone._words = dict(self._words)
        return clone

    def __len__(self) -> int:
        return len(self._words)

    def __contains__(self, address: int) -> bool:
        return self._align(address) in self._words
