"""Deterministic fault injection: named failure points for chaos testing.

The fault-tolerance layer (worker-crash recovery, store quarantine, serve
deadlines, client retries) is only trustworthy if its failure paths are
*exercised*, and real faults — OOM kills, bit-flips, dropped connections —
are not reproducible.  This module provides the deterministic stand-ins:
a small catalog of named injection points, compiled into the production
code paths at their natural trigger sites, activated entirely through the
``REPRO_FAULTS`` environment variable::

    REPRO_FAULTS="kill-worker-on-nth-simulate:2,corrupt-artifact-bytes:1"

Each entry is ``point[:arg]`` where ``arg`` is a positive integer (default
1).  The semantics per point:

``kill-worker-on-nth-simulate:N``
    The process executing its ``N``-th simulate launch dies hard
    (``os._exit``) — the stand-in for an OOM-killed worker.  Fires once.
``kill-worker-on-nth-checkpoint:N``
    The process dies hard immediately *after* persisting its ``N``-th
    mid-simulation checkpoint — the stand-in for a worker killed partway
    through a windowed run.  A retry must resume from that checkpoint and
    finish bit-identically.  Fires once.
``corrupt-artifact-bytes:N``
    The ``N``-th artifact written to a store has one payload byte flipped
    after the digest was recorded — the stand-in for at-rest bit rot.
    Fires once.
``truncate-payload:N``
    The ``N``-th artifact written to a store loses the second half of its
    payload — the stand-in for a torn write.  Fires once.
``drop-http-response:N``
    The first ``N`` idempotent GET requests a :class:`~repro.client.ServeClient`
    issues fail with a connection error — the stand-in for a flaky network.
``stall-simulate:SECONDS``
    The first simulate launch sleeps ``SECONDS`` before running — the
    stand-in for a wedged worker, which the executor's progress watchdog
    must kill.  Fires once.

**Determinism.** Counting points fire on an exact event ordinal, and
*one-shot* points (everything except ``drop-http-response``) fire at most
once per run: the first process to reach the ordinal claims the fault
atomically.  Within one process the claim is an in-memory flag; across
worker processes, set ``REPRO_FAULTS_STATE`` to a scratch directory and
the claim becomes an ``O_EXCL`` marker file — so a retried run after a
worker kill proceeds clean instead of dying again, which is what lets the
chaos tests assert bit-identical results under injection.

Production overhead is one environment lookup per site when no faults are
configured (the parse is cached on the raw variable value).
"""

from __future__ import annotations

import os
import time
from functools import lru_cache
from typing import Dict, Optional, Set, Tuple

from repro.log import get_logger

#: Environment variable holding the active fault spec.
FAULTS_ENV = "REPRO_FAULTS"

#: Directory for cross-process one-shot claims (optional).
FAULTS_STATE_ENV = "REPRO_FAULTS_STATE"

#: The injection-point catalog.
KILL_WORKER = "kill-worker-on-nth-simulate"
KILL_CHECKPOINT = "kill-worker-on-nth-checkpoint"
CORRUPT_ARTIFACT = "corrupt-artifact-bytes"
TRUNCATE_PAYLOAD = "truncate-payload"
DROP_HTTP = "drop-http-response"
STALL_SIMULATE = "stall-simulate"

#: Points that fire at most once per run (vs. counting down N events).
_ONE_SHOT = (KILL_WORKER, KILL_CHECKPOINT, CORRUPT_ARTIFACT, TRUNCATE_PAYLOAD, STALL_SIMULATE)

_log = get_logger(__name__)


def fault_points() -> Tuple[str, ...]:
    """The catalog of named injection points ``REPRO_FAULTS`` accepts."""
    return (
        KILL_WORKER,
        KILL_CHECKPOINT,
        CORRUPT_ARTIFACT,
        TRUNCATE_PAYLOAD,
        DROP_HTTP,
        STALL_SIMULATE,
    )


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` value does not parse (unknown point or bad arg)."""


@lru_cache(maxsize=8)
def _parse(raw: str) -> Dict[str, int]:
    spec: Dict[str, int] = {}
    for entry in raw.split(","):
        entry = entry.strip()
        if not entry:
            continue
        point, _, arg = entry.partition(":")
        point = point.strip()
        if point not in fault_points():
            raise FaultSpecError(
                f"unknown fault point {point!r}; expected one of "
                + ", ".join(fault_points())
            )
        if arg.strip():
            try:
                value = int(arg)
            except ValueError:
                raise FaultSpecError(
                    f"fault point {point!r} needs an integer argument, got {arg!r}"
                ) from None
        else:
            value = 1
        if value < 1:
            raise FaultSpecError(
                f"fault point {point!r} needs a positive argument, got {value}"
            )
        spec[point] = value
    return spec


def active_faults() -> Dict[str, int]:
    """The parsed ``REPRO_FAULTS`` spec of this process ({} when unset)."""
    raw = os.environ.get(FAULTS_ENV, "")
    if not raw:
        return {}
    return _parse(raw)


# ----------------------------------------------------------------------
# Firing machinery
# ----------------------------------------------------------------------
#: Per-process event counters, keyed by point.
_counters: Dict[str, int] = {}

#: Per-process one-shot claims (used when no state directory is set).
_claimed: Set[str] = set()


def reset() -> None:
    """Clear this process's counters and claims (test isolation)."""
    _counters.clear()
    _claimed.clear()
    _parse.cache_clear()


def _claim(point: str) -> bool:
    """Atomically claim a one-shot fault; True exactly once per run.

    With ``REPRO_FAULTS_STATE`` set, the claim is an ``O_EXCL`` marker file
    shared by every process of the run; otherwise it is process-local.
    """
    state = os.environ.get(FAULTS_STATE_ENV)
    if state:
        try:
            os.makedirs(state, exist_ok=True)
            fd = os.open(
                os.path.join(state, f"{point}.fired"),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            return False
        except OSError:
            return False
        os.close(fd)
        return True
    if point in _claimed:
        return False
    _claimed.add(point)
    return True


def should_fire(point: str) -> Optional[int]:
    """Count one event at ``point``; return its argument when it fires.

    A counting event fires exactly when this process's event ordinal
    reaches the configured argument *and* (for one-shot points) the global
    claim succeeds.  Returns the configured argument on fire, ``None``
    otherwise — callers use the argument where it is a parameter (stall
    seconds) and ignore it where it is an ordinal.
    """
    faults = active_faults()
    if point not in faults:
        return None
    arg = faults[point]
    _counters[point] = _counters.get(point, 0) + 1
    if point in _ONE_SHOT:
        # stall-simulate's argument is a *parameter* (seconds), not an
        # ordinal: it fires on the first event.  The other one-shots fire
        # on their N-th event.
        ordinal = 1 if point == STALL_SIMULATE else arg
        if _counters[point] < ordinal:
            return None
        if _counters[point] > ordinal or not _claim(point):
            return None
        _log.warning("fault %r firing (event #%d)", point, ordinal)
        return arg
    # Counting points (drop-http-response): fire on the first N events.
    if _counters[point] > arg:
        return None
    _log.warning("fault %r firing (%d/%d)", point, _counters[point], arg)
    return arg


# ----------------------------------------------------------------------
# Site helpers (what the production code paths call)
# ----------------------------------------------------------------------
def on_simulate_launch() -> None:
    """Injection site: the engine is about to launch one simulate job.

    May stall the process (``stall-simulate``) or kill it outright
    (``kill-worker-on-nth-simulate``) — both count the same event stream,
    so their ordinals refer to the same thing.
    """
    stall = should_fire(STALL_SIMULATE)
    if stall is not None:
        _log.warning("stall-simulate: sleeping %ds", stall)
        time.sleep(stall)
    if should_fire(KILL_WORKER) is not None:
        # A hard exit, exactly like the OOM killer: no exception handling,
        # no atexit, no queue cleanup.
        os._exit(17)


def on_checkpoint_write() -> None:
    """Injection site: a windowed simulation just persisted a checkpoint.

    Fires *after* the store write, so a killed worker's retry finds the
    checkpoint and must resume mid-trace — the scenario the resume parity
    tests pin down.
    """
    if should_fire(KILL_CHECKPOINT) is not None:
        os._exit(17)


def corrupt_payload(path: str) -> None:
    """Injection site: a store just wrote the payload at ``path``.

    Applies ``corrupt-artifact-bytes`` (flip one byte mid-payload) or
    ``truncate-payload`` (drop the second half) when they fire.  The store
    already recorded the true digest, so the next ``get`` must detect the
    damage and quarantine the artifact.
    """
    if should_fire(CORRUPT_ARTIFACT) is not None:
        try:
            with open(path, "r+b") as handle:
                data = handle.read()
                if data:
                    position = len(data) // 2
                    handle.seek(position)
                    handle.write(bytes([data[position] ^ 0xFF]))
            _log.warning("corrupt-artifact-bytes: flipped a byte in %s", path)
        except OSError:
            pass
    if should_fire(TRUNCATE_PAYLOAD) is not None:
        try:
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(max(1, size // 2))
            _log.warning("truncate-payload: truncated %s", path)
        except OSError:
            pass


def drop_http_response() -> bool:
    """Injection site: a client is about to issue an idempotent GET.

    True when ``drop-http-response`` says this request's response is lost
    (the caller raises the connection error a real drop would produce).
    """
    return should_fire(DROP_HTTP) is not None
