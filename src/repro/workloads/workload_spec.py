"""Declarative workload specifications: trait-spec files → benchmarks.

The 22 built-in benchmarks are :class:`~repro.workloads.traits.WorkloadTraits`
literals in :mod:`repro.workloads.spec_suite`; a *workload spec file* declares
the same traits as data, so a TOML or JSON file defines a new benchmark
without touching the package.  The format mirrors the sweep scenario
conventions (:mod:`repro.sweep.scenario`): TOML needs :mod:`tomllib`
(Python ≥ 3.11), JSON works everywhere, and validation is eager and total —
unknown sections, unknown fields, wrong types and out-of-range values all
raise :class:`WorkloadSpecError` at load time, before anything compiles.

A spec file has one ``[workload]`` header table plus three optional branch
population lists::

    [workload]                 # header — name/category/seed are required
    name = "branchy"
    category = "int"           # "int" | "fp"
    seed = 7
    array_length = 1024        # optional scalars, defaults = WorkloadTraits
    # outer_iterations, filler_alu, filler_fp, inner_loop_trips, pointer_chase

    [[hard_regions]]           # hard branches guarding if-convertible regions
    bias = 0.62
    body_size = 4
    kind = "hammock"           # "hammock" | "diamond" | "escape"
    nested = false

    [[correlated_branches]]    # branches correlated with hard conditions
    sources = [0]              # indices into hard_regions
    op = "copy"                # and|or|copy|not|majority|xor
    lag = 1
    noise = 0.08
    early_compare = true
    body_size = 20

    [[easy_branches]]          # well-biased branches
    bias = 0.95
    body_size = 3
    early_compare = false

The field-by-field reference, with the paper mechanism each knob probes,
lives in ``docs/workloads.md``.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, List, Mapping, Optional, Sequence, Tuple

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.10
    tomllib = None  # type: ignore[assignment]

from repro.workloads.traits import (
    CorrelatedBranchSpec,
    EasyBranchSpec,
    HardRegionSpec,
    RegionKind,
    WorkloadTraits,
)


class WorkloadSpecError(ValueError):
    """A workload spec file is malformed, unknown, or semantically invalid."""


#: Workload names share the scenario-name restrictions: they key registry
#: lookups, cache metadata and report rows, and built-in library specs are
#: resolved by file stem.
_NAME_PATTERN = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]*")

_HEADER_KEYS = {
    "name",
    "category",
    "seed",
    "array_length",
    "outer_iterations",
    "filler_alu",
    "filler_fp",
    "inner_loop_trips",
    "pointer_chase",
}

_HARD_REGION_KEYS = {"bias", "body_size", "kind", "nested"}
_CORRELATED_KEYS = {"sources", "op", "lag", "noise", "early_compare", "body_size"}
_EASY_KEYS = {"bias", "body_size", "early_compare"}

_REGION_KINDS = {kind.value: kind for kind in RegionKind}


# ----------------------------------------------------------------------
# Field-level validation helpers
# ----------------------------------------------------------------------
def _require_mapping(value: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise WorkloadSpecError(
            f"{what} must be a table/object, got {type(value).__name__}"
        )
    return value


def _require_int(value: Any, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise WorkloadSpecError(f"{what} must be an integer, got {value!r}")
    return value


def _require_number(value: Any, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WorkloadSpecError(f"{what} must be a number, got {value!r}")
    return float(value)


def _require_bool(value: Any, what: str) -> bool:
    if not isinstance(value, bool):
        raise WorkloadSpecError(f"{what} must be a boolean, got {value!r}")
    return value


def _reject_unknown(table: Mapping[str, Any], allowed: set, what: str) -> None:
    unknown = set(table) - allowed
    if unknown:
        raise WorkloadSpecError(
            f"{what}: unknown field(s) {sorted(unknown)}; expected among "
            f"{sorted(allowed)}"
        )


def _entries(raw: Any, what: str) -> List[Mapping[str, Any]]:
    """The list form of one branch-population section."""
    if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
        raise WorkloadSpecError(f"{what} must be a list of tables, got {raw!r}")
    return [_require_mapping(entry, f"{what}[{i}]") for i, entry in enumerate(raw)]


def _parse_hard_region(entry: Mapping[str, Any], what: str) -> HardRegionSpec:
    _reject_unknown(entry, _HARD_REGION_KEYS, what)
    kind_name = entry.get("kind", RegionKind.HAMMOCK.value)
    if kind_name not in _REGION_KINDS:
        raise WorkloadSpecError(
            f"{what}: unknown region kind {kind_name!r}; expected one of "
            f"{sorted(_REGION_KINDS)}"
        )
    try:
        return HardRegionSpec(
            bias=_require_number(entry.get("bias", 0.55), f"{what}.bias"),
            body_size=_require_int(entry.get("body_size", 4), f"{what}.body_size"),
            kind=_REGION_KINDS[kind_name],
            nested=_require_bool(entry.get("nested", False), f"{what}.nested"),
        )
    except WorkloadSpecError:
        raise
    except ValueError as error:
        raise WorkloadSpecError(f"{what}: {error}") from None


def _parse_correlated(entry: Mapping[str, Any], what: str) -> CorrelatedBranchSpec:
    _reject_unknown(entry, _CORRELATED_KEYS, what)
    sources = entry.get("sources", [0])
    if not isinstance(sources, Sequence) or isinstance(sources, (str, bytes)):
        raise WorkloadSpecError(
            f"{what}.sources must be a list of hard-region indices, got {sources!r}"
        )
    indices = tuple(
        _require_int(source, f"{what}.sources[{i}]") for i, source in enumerate(sources)
    )
    try:
        return CorrelatedBranchSpec(
            sources=indices,
            op=entry.get("op", "and"),
            lag=_require_int(entry.get("lag", 1), f"{what}.lag"),
            noise=_require_number(entry.get("noise", 0.05), f"{what}.noise"),
            early_compare=_require_bool(
                entry.get("early_compare", True), f"{what}.early_compare"
            ),
            body_size=_require_int(entry.get("body_size", 20), f"{what}.body_size"),
        )
    except WorkloadSpecError:
        raise
    except ValueError as error:
        raise WorkloadSpecError(f"{what}: {error}") from None


def _parse_easy(entry: Mapping[str, Any], what: str) -> EasyBranchSpec:
    _reject_unknown(entry, _EASY_KEYS, what)
    try:
        return EasyBranchSpec(
            bias=_require_number(entry.get("bias", 0.95), f"{what}.bias"),
            body_size=_require_int(entry.get("body_size", 3), f"{what}.body_size"),
            early_compare=_require_bool(
                entry.get("early_compare", False), f"{what}.early_compare"
            ),
        )
    except WorkloadSpecError:
        raise
    except ValueError as error:
        raise WorkloadSpecError(f"{what}: {error}") from None


# ----------------------------------------------------------------------
# Document parsing
# ----------------------------------------------------------------------
def parse_workload(data: Mapping[str, Any], source: str = "<workload>") -> WorkloadTraits:
    """Validate a decoded workload document and return its traits.

    Total and eager: every structural problem raises
    :class:`WorkloadSpecError` naming ``source`` and the offending field.
    """
    data = _require_mapping(data, f"{source}: workload document")
    unknown = set(data) - {
        "workload",
        "hard_regions",
        "correlated_branches",
        "easy_branches",
    }
    if unknown:
        raise WorkloadSpecError(
            f"{source}: unknown top-level section(s) {sorted(unknown)}; expected "
            "[workload], [[hard_regions]], [[correlated_branches]], [[easy_branches]]"
        )
    if "workload" not in data:
        raise WorkloadSpecError(f"{source}: missing the required [workload] table")
    header = _require_mapping(data["workload"], f"{source}: [workload]")
    _reject_unknown(header, _HEADER_KEYS, f"{source}: [workload]")
    for required in ("name", "category", "seed"):
        if required not in header:
            raise WorkloadSpecError(
                f"{source}: [workload] needs a {required!r} field"
            )
    name = header["name"]
    if not isinstance(name, str) or not _NAME_PATTERN.fullmatch(name):
        raise WorkloadSpecError(
            f"{source}: workload name {name!r} must be a string of letters, "
            "digits, '.', '_' and '-' starting with a letter or digit"
        )
    category = header["category"]
    if category not in ("int", "fp"):
        raise WorkloadSpecError(
            f"{source}: category must be 'int' or 'fp', got {category!r}"
        )

    hard_regions = tuple(
        _parse_hard_region(entry, f"{source}: hard_regions[{i}]")
        for i, entry in enumerate(_entries(data.get("hard_regions", ()), f"{source}: hard_regions"))
    )
    correlated = tuple(
        _parse_correlated(entry, f"{source}: correlated_branches[{i}]")
        for i, entry in enumerate(
            _entries(data.get("correlated_branches", ()), f"{source}: correlated_branches")
        )
    )
    easy = tuple(
        _parse_easy(entry, f"{source}: easy_branches[{i}]")
        for i, entry in enumerate(
            _entries(data.get("easy_branches", ()), f"{source}: easy_branches")
        )
    )

    scalar_keys = (
        "array_length",
        "outer_iterations",
        "filler_alu",
        "filler_fp",
        "inner_loop_trips",
    )
    scalars = {
        key: _require_int(header[key], f"{source}: [workload].{key}")
        for key in scalar_keys
        if key in header
    }
    if "pointer_chase" in header:
        scalars["pointer_chase"] = _require_bool(
            header["pointer_chase"], f"{source}: [workload].pointer_chase"
        )
    try:
        return WorkloadTraits(
            name=name,
            category=category,
            seed=_require_int(header["seed"], f"{source}: [workload].seed"),
            hard_regions=hard_regions,
            correlated_branches=correlated,
            easy_branches=easy,
            **scalars,
        )
    except WorkloadSpecError:
        raise
    except ValueError as error:
        # WorkloadTraits cross-validates (e.g. correlated sources must index
        # an existing hard region); surface those with the file context too.
        raise WorkloadSpecError(f"{source}: {error}") from None


# ----------------------------------------------------------------------
# File loading
# ----------------------------------------------------------------------
def decode_workload_text(text: str, path: str) -> Mapping[str, Any]:
    """Decode spec-file text by extension (``.toml`` or ``.json``)."""
    if path.endswith(".json"):
        try:
            return json.loads(text)
        except json.JSONDecodeError as error:
            raise WorkloadSpecError(f"{path}: invalid JSON: {error}") from None
    if path.endswith(".toml"):
        if tomllib is None:
            raise WorkloadSpecError(
                f"{path}: TOML workload specs need Python >= 3.11 (tomllib); "
                "use a .json spec on this interpreter"
            )
        try:
            return tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise WorkloadSpecError(f"{path}: invalid TOML: {error}") from None
    raise WorkloadSpecError(
        f"{path}: unsupported workload-spec extension (expected .toml or .json)"
    )


def read_workload_text(path: str) -> str:
    """Read a spec file's text (:class:`WorkloadSpecError` on I/O failure)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except OSError as error:
        raise WorkloadSpecError(f"cannot read workload spec {path}: {error}") from None


def load_workload_text(path: str, name: Optional[str] = None) -> Tuple[WorkloadTraits, str]:
    """Parse one workload spec file; return ``(traits, raw text)``.

    The text comes back alongside the traits so callers that fingerprint
    file content (the workload registry) read the file exactly once.
    ``name`` (e.g. a library file's stem) must match the declared
    ``[workload].name`` when given — a library spec whose filename disagrees
    with its declared name would register under one name and report under
    another.
    """
    text = read_workload_text(path)
    traits = parse_workload(
        decode_workload_text(text, path), source=os.path.basename(path)
    )
    if name is not None and traits.name != name:
        raise WorkloadSpecError(
            f"{os.path.basename(path)}: declared workload name {traits.name!r} "
            f"does not match the file stem {name!r}"
        )
    return traits, text


def load_workload_file(path: str, name: Optional[str] = None) -> WorkloadTraits:
    """Parse one workload spec file into validated traits."""
    return load_workload_text(path, name=name)[0]


def spec_document(traits: WorkloadTraits) -> Mapping[str, Any]:
    """Render traits back into the (JSON-serialisable) spec document form.

    Round-trip helper used by ``repro workloads describe`` and the example
    script: ``parse_workload(spec_document(t))`` reproduces ``t``.
    """
    return {
        "workload": {
            "name": traits.name,
            "category": traits.category,
            "seed": traits.seed,
            "array_length": traits.array_length,
            "outer_iterations": traits.outer_iterations,
            "filler_alu": traits.filler_alu,
            "filler_fp": traits.filler_fp,
            "inner_loop_trips": traits.inner_loop_trips,
            "pointer_chase": traits.pointer_chase,
        },
        "hard_regions": [
            {
                "bias": spec.bias,
                "body_size": spec.body_size,
                "kind": spec.kind.value,
                "nested": spec.nested,
            }
            for spec in traits.hard_regions
        ],
        "correlated_branches": [
            {
                "sources": list(spec.sources),
                "op": spec.op,
                "lag": spec.lag,
                "noise": spec.noise,
                "early_compare": spec.early_compare,
                "body_size": spec.body_size,
            }
            for spec in traits.correlated_branches
        ],
        "easy_branches": [
            {
                "bias": spec.bias,
                "body_size": spec.body_size,
                "early_compare": spec.early_compare,
            }
            for spec in traits.easy_branches
        ],
    }
