"""Program construction from workload traits.

:func:`build_program_from_traits` turns a :class:`WorkloadTraits` description
plus its generated condition streams into an executable program with the
following per-iteration structure (labels shown for one iteration of the main
loop)::

    iter:    early loads + compares of "early" correlated conditions,
             integer / floating-point filler, optional pointer chase
    hrK...:  hard regions (hammock / diamond / escape), compare adjacent to
             the branch; optionally containing a nested inner hammock
    crK...:  correlated branches guarding large (non-convertible) bodies
    ezK...:  well-biased easy branches
    inner:   optional fixed-trip inner loop
    latch:   pointer bumps, induction-variable update, loop-back branch
    outer:   array-pointer reset and outer-loop branch
    done:    return

The layout is deliberately compiler-like: conditions that guard convertible
regions are computed right next to their branches (so their correlation
information disappears from a conventional predictor once the branch is
removed), while the "remaining" correlated branches may have their compares
scheduled at the top of the iteration, far ahead of the branch (the paper's
early-resolved opportunity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.isa.compare import CompareRelation
from repro.isa.registers import FR, GR, PR, Register
from repro.program.builder import ProgramBuilder, RoutineBuilder
from repro.program.program import Program
from repro.workloads.generators import (
    CONDITION_THRESHOLD,
    ConditionStreams,
    generate_condition_streams,
)
from repro.workloads.traits import RegionKind, WorkloadTraits

# ----------------------------------------------------------------------
# Register-allocation conventions of the generated programs
# ----------------------------------------------------------------------
REG_INDEX = GR(1)  # i: index into the data arrays
REG_LENGTH = GR(2)  # n: array length
REG_OUTER = GR(3)  # outer-loop counter
REG_OUTER_LIMIT = GR(4)
REG_INNER = GR(5)  # inner-loop counter
REG_INNER_LIMIT = GR(6)
REG_CHASE_INDEX = GR(64)
REG_CHASE_TMP1 = GR(65)
REG_CHASE_TMP2 = GR(66)
REG_CHAIN_BASE = GR(67)

_FIRST_POINTER_REG = 10
_FIRST_VALUE_REG = 24
_FIRST_ACCUM_REG = 70
_NUM_ACCUM_REGS = 4
_FIRST_TEMP_REG = 80
_NUM_TEMP_REGS = 6
_FIRST_FP_ACCUM = 33
_NUM_FP_ACCUM = 4
_FIRST_CONDITION_PR = 6
# Loop-control predicates (the complementary sense is never needed, so the
# compares use p0 as their second target, like the condition compares).
_LOOP_PR_TRUE = PR(56)
_OUTER_PR_TRUE = PR(58)
_INNER_PR_TRUE = PR(60)


@dataclass
class _Condition:
    """A data-driven condition: its array, pointer/value registers, predicates."""

    name: str
    pointer: Register
    value: Register
    pt: Register
    pf: Register


class _KernelBuilder:
    """Stateful helper that emits the main loop of a workload."""

    def __init__(self, traits: WorkloadTraits, streams: ConditionStreams) -> None:
        self.traits = traits
        self.streams = streams
        self.pb = ProgramBuilder(traits.name)
        self.rb: RoutineBuilder = self.pb.routine("main")
        self._conditions: Dict[str, _Condition] = {}
        self._array_order: List[str] = []
        self._next_pointer = _FIRST_POINTER_REG
        self._next_value = _FIRST_VALUE_REG
        self._next_pr = _FIRST_CONDITION_PR
        self._filler_state = 0
        self._label_counter = 0

    # ------------------------------------------------------------------
    # Condition / array management
    # ------------------------------------------------------------------
    def _register_condition(self, name: str) -> _Condition:
        values = self.streams.value_arrays[name]
        self.pb.array(name, values)
        # Only the false-sense predicate is architecturally needed before
        # if-conversion (the branch skips the body when the condition is
        # false), so the true-sense target is the read-only p0 — the common
        # IA-64 idiom the paper's section 3.3 mentions.  The if-converter
        # rewrites p0 into a fresh predicate when it needs the complement.
        condition = _Condition(
            name=name,
            pointer=GR(self._next_pointer),
            value=GR(self._next_value),
            pt=PR(0),
            pf=PR(self._next_pr),
        )
        self._next_pointer += 1
        self._next_value += 1
        self._next_pr += 1
        self._conditions[name] = condition
        self._array_order.append(name)
        return condition

    def _condition(self, name: str) -> _Condition:
        return self._conditions[name]

    def _label(self, prefix: str) -> str:
        self._label_counter += 1
        return f"{prefix}{self._label_counter}"

    # ------------------------------------------------------------------
    # Code emission helpers
    # ------------------------------------------------------------------
    def _emit_load_and_compare(self, condition: _Condition, offset: int = 0) -> None:
        """Load the condition's element at ``pointer + offset`` and evaluate it."""
        self.rb.load(condition.value, condition.pointer, offset=offset)
        self.rb.cmp(
            CompareRelation.GT,
            condition.pt,
            condition.pf,
            condition.value,
            CONDITION_THRESHOLD,
        )

    def _emit_filler(self, count: int, qp: Register = PR(0)) -> None:
        """Emit ``count`` integer filler operations (accumulator updates)."""
        rb = self.rb
        for _ in range(count):
            state = self._filler_state
            self._filler_state += 1
            accum = GR(_FIRST_ACCUM_REG + state % _NUM_ACCUM_REGS)
            temp = GR(_FIRST_TEMP_REG + state % _NUM_TEMP_REGS)
            pattern = state % 4
            if pattern == 0:
                rb.addi(temp, accum, (state % 31) + 1, qp=qp)
            elif pattern == 1:
                rb.xor(accum, accum, temp, qp=qp)
            elif pattern == 2:
                rb.shl(temp, accum, (state % 5) + 1, qp=qp)
            else:
                rb.add(accum, accum, temp, qp=qp)

    def _emit_fp_filler(self, count: int) -> None:
        rb = self.rb
        for _ in range(count):
            state = self._filler_state
            self._filler_state += 1
            dst = FR(_FIRST_FP_ACCUM + state % _NUM_FP_ACCUM)
            src = FR(_FIRST_FP_ACCUM + (state + 1) % _NUM_FP_ACCUM)
            if state % 3 == 0:
                rb.fmul(dst, dst, src)
            else:
                rb.fadd(dst, dst, src)

    def _emit_pointer_chase(self) -> None:
        """One step of a pointer-chasing chain (mcf/art-like)."""
        rb = self.rb
        rb.shl(REG_CHASE_TMP1, REG_CHASE_INDEX, 3)
        rb.add(REG_CHASE_TMP2, REG_CHAIN_BASE, REG_CHASE_TMP1)
        rb.load(REG_CHASE_INDEX, REG_CHASE_TMP2)
        rb.add(GR(_FIRST_ACCUM_REG), GR(_FIRST_ACCUM_REG), REG_CHASE_INDEX)

    # ------------------------------------------------------------------
    # Region emission
    # ------------------------------------------------------------------
    def _emit_hard_region(self, index: int) -> None:
        spec = self.traits.hard_regions[index]
        condition = self._condition(f"hard{index}")
        rb = self.rb
        self._emit_load_and_compare(condition)

        if spec.kind is RegionKind.HAMMOCK:
            skip = self._label("hskip")
            rb.br_cond(skip, qp=condition.pf)
            rb.block(self._label("hbody"))
            self._emit_region_body(index, spec.body_size)
            rb.block(skip)
        elif spec.kind is RegionKind.DIAMOND:
            else_label = self._label("delse")
            join_label = self._label("djoin")
            rb.br_cond(else_label, qp=condition.pf)
            rb.block(self._label("dthen"))
            self._emit_filler(max(1, spec.body_size // 2))
            rb.br(join_label)
            rb.block(else_label)
            self._emit_filler(max(1, spec.body_size - spec.body_size // 2))
            rb.block(join_label)
        elif spec.kind is RegionKind.ESCAPE:
            cont = self._label("econt")
            rb.br_cond(cont, qp=condition.pf)
            rb.block(self._label("eesc"))
            self._emit_filler(max(1, spec.body_size))
            rb.br("latch")
            rb.block(cont)
        else:  # pragma: no cover - exhaustive over RegionKind
            raise AssertionError(f"unhandled region kind {spec.kind}")

    def _emit_region_body(self, index: int, body_size: int) -> None:
        """Body of a hammock; may contain a nested inner hammock."""
        spec = self.traits.hard_regions[index]
        if not spec.nested:
            self._emit_filler(body_size)
            return
        rb = self.rb
        outer_ops = max(1, body_size // 2)
        self._emit_filler(outer_ops)
        inner = self._condition(f"hard{index}_inner")
        self._emit_load_and_compare(inner)
        inner_skip = self._label("nskip")
        rb.br_cond(inner_skip, qp=inner.pf)
        rb.block(self._label("nbody"))
        self._emit_filler(max(1, body_size - outer_ops))
        rb.block(inner_skip)

    def _emit_correlated_branch(self, index: int) -> None:
        spec = self.traits.correlated_branches[index]
        condition = self._condition(f"corr{index}")
        rb = self.rb
        if not spec.early_compare:
            self._emit_load_and_compare(condition)
        skip = self._label("cskip")
        rb.br_cond(skip, qp=condition.pf)
        rb.block(self._label("cbody"))
        self._emit_filler(spec.body_size)
        rb.block(skip)

    def _emit_easy_branch(self, index: int) -> None:
        spec = self.traits.easy_branches[index]
        condition = self._condition(f"easy{index}")
        rb = self.rb
        if not spec.early_compare:
            self._emit_load_and_compare(condition)
        skip = self._label("zskip")
        rb.br_cond(skip, qp=condition.pf)
        rb.block(self._label("zbody"))
        self._emit_filler(spec.body_size)
        rb.block(skip)

    def _emit_inner_loop(self) -> None:
        trips = self.traits.inner_loop_trips
        rb = self.rb
        rb.movi(REG_INNER, 0)
        rb.movi(REG_INNER_LIMIT, trips)
        rb.block("inner")
        if self.traits.is_floating_point:
            self._emit_fp_filler(3)
        else:
            self._emit_filler(3)
        rb.addi(REG_INNER, REG_INNER, 1)
        rb.cmp(CompareRelation.LT, _INNER_PR_TRUE, PR(0), REG_INNER, REG_INNER_LIMIT)
        rb.br_cond("inner", qp=_INNER_PR_TRUE)

    # ------------------------------------------------------------------
    # Whole-program emission
    # ------------------------------------------------------------------
    def build(self) -> Program:
        traits = self.traits
        rb = self.rb

        # Register every condition's data array (and the pointer-chase chain).
        for index in range(len(traits.hard_regions)):
            self._register_condition(f"hard{index}")
            if traits.hard_regions[index].nested:
                self._register_condition(f"hard{index}_inner")
        for index in range(len(traits.correlated_branches)):
            self._register_condition(f"corr{index}")
        for index in range(len(traits.easy_branches)):
            self._register_condition(f"easy{index}")
        if traits.pointer_chase:
            self.pb.array("chain", self.streams.value_arrays["chain"])

        # -------------------------------------------------------- entry
        rb.block("entry")
        rb.movi(REG_LENGTH, traits.array_length)
        rb.movi(REG_OUTER_LIMIT, traits.outer_iterations)
        rb.movi(REG_OUTER, 0)
        for offset in range(_NUM_ACCUM_REGS):
            rb.movi(GR(_FIRST_ACCUM_REG + offset), offset + 1)
        for offset in range(_NUM_TEMP_REGS):
            rb.movi(GR(_FIRST_TEMP_REG + offset), offset + 3)
        if traits.pointer_chase:
            rb.movi(REG_CHAIN_BASE, self.pb.array_base("chain"))
            rb.movi(REG_CHASE_INDEX, 0)

        # -------------------------------------------------------- reset
        rb.block("reset")
        for name in self._array_order:
            condition = self._conditions[name]
            rb.movi(condition.pointer, self.pb.array_base(name))
        rb.movi(REG_INDEX, 0)
        # Prologue: conditions whose compares are software-pipelined one
        # iteration ahead are evaluated here for element 0.
        for index, spec in enumerate(traits.correlated_branches):
            if spec.early_compare:
                self._emit_load_and_compare(self._condition(f"corr{index}"))
        for index, spec in enumerate(traits.easy_branches):
            if spec.early_compare:
                self._emit_load_and_compare(self._condition(f"easy{index}"))

        # ----------------------------------------------------- iteration
        rb.block("iter")
        self._emit_filler(traits.filler_alu)
        if traits.filler_fp:
            self._emit_fp_filler(traits.filler_fp)
        if traits.pointer_chase:
            self._emit_pointer_chase()

        for index in range(len(traits.hard_regions)):
            self._emit_hard_region(index)
        for index in range(len(traits.correlated_branches)):
            self._emit_correlated_branch(index)
        for index in range(len(traits.easy_branches)):
            self._emit_easy_branch(index)
        if traits.inner_loop_trips > 0:
            self._emit_inner_loop()

        # -------------------------------------------------------- latch
        rb.block("latch")
        for name in self._array_order:
            condition = self._conditions[name]
            rb.addi(condition.pointer, condition.pointer, 8)
        # Software-pipelined conditions for the *next* iteration: computing
        # them here, a full loop body ahead of their consuming branch, is
        # what makes those branches early-resolved (their compare has long
        # executed by the time the branch renames).
        for index, spec in enumerate(traits.correlated_branches):
            if spec.early_compare:
                self._emit_load_and_compare(self._condition(f"corr{index}"))
        for index, spec in enumerate(traits.easy_branches):
            if spec.early_compare:
                self._emit_load_and_compare(self._condition(f"easy{index}"))
        rb.addi(REG_INDEX, REG_INDEX, 1)
        rb.cmp(CompareRelation.LT, _LOOP_PR_TRUE, PR(0), REG_INDEX, REG_LENGTH)
        rb.br_cond("iter", qp=_LOOP_PR_TRUE)

        # -------------------------------------------------------- outer
        rb.block("outer")
        rb.addi(REG_OUTER, REG_OUTER, 1)
        rb.cmp(CompareRelation.LT, _OUTER_PR_TRUE, PR(0), REG_OUTER, REG_OUTER_LIMIT)
        rb.br_cond("reset", qp=_OUTER_PR_TRUE)

        rb.block("done")
        rb.br_ret()

        program = self.pb.finish(layout=True)
        program.metadata["workload"] = traits.name
        program.metadata["category"] = traits.category
        program.metadata["traits"] = traits
        return program


def build_program_from_traits(
    traits: WorkloadTraits,
    streams: Optional[ConditionStreams] = None,
) -> Program:
    """Build the (uncompiled) program for ``traits``.

    The same function is used for both binary flavours; the compiler driver
    applies (or does not apply) if-conversion afterwards.
    """
    if streams is None:
        streams = generate_condition_streams(traits)
    return _KernelBuilder(traits, streams).build()
