"""Workload trait descriptions.

A :class:`WorkloadTraits` instance fully determines a synthetic benchmark:
the branch population (how many hard regions, which branches correlate with
which, how biased the easy branches are), the amount of straight-line work
between branches, and the data-set size.  The 22 instances mimicking the
SPEC CPU2000 programs live in :mod:`repro.workloads.spec_suite`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class RegionKind(enum.Enum):
    """Shape of the region a hard branch guards."""

    HAMMOCK = "hammock"
    DIAMOND = "diamond"
    ESCAPE = "escape"


@dataclass(frozen=True)
class HardRegionSpec:
    """A hard-to-predict branch guarding a small, if-convertible region.

    ``bias`` is the probability that the condition is true (the region body
    executes).  The region is kept small so the profile-guided if-converter
    removes the branch in the if-converted binary.
    """

    bias: float = 0.55
    body_size: int = 4
    kind: RegionKind = RegionKind.HAMMOCK
    #: When true the region body contains a second, inner hammock guarded by
    #: its own hard condition — converting it produces the nested
    #: ``cmp.unc`` + guarded-code shape of Figure 1b.
    nested: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.bias < 1.0:
            raise ValueError("bias must be strictly between 0 and 1")
        if self.body_size < 1:
            raise ValueError("body_size must be positive")


@dataclass(frozen=True)
class CorrelatedBranchSpec:
    """A branch whose condition is a boolean function of hard conditions.

    ``sources`` are indices into the workload's ``hard_regions`` list;
    ``lag`` expresses how many loop iterations back the source conditions are
    taken from (lagged correlation is what a global-history predictor can
    exploit reliably); ``noise`` is the probability that the constructed
    condition is flipped.  The guarded body is made larger than the
    if-converter's region limit, so the branch *remains* after if-conversion
    — these are the branches whose accuracy the paper's Figure 6 measures.

    ``early_compare`` controls code placement: when true, the condition's
    compare is emitted at the top of the loop iteration, far ahead of the
    branch, giving the predicate predictor an early-resolved branch; when
    false the compare sits right next to the branch.
    """

    sources: Tuple[int, ...] = (0,)
    op: str = "and"  # "and" | "or" | "copy" | "not" | "majority" | "xor"
    lag: int = 1
    noise: float = 0.05
    early_compare: bool = True
    body_size: int = 20

    def __post_init__(self) -> None:
        if self.op not in ("and", "or", "copy", "not", "majority", "xor"):
            raise ValueError(f"unknown correlation op {self.op!r}")
        if not self.sources:
            raise ValueError("correlated branch needs at least one source")
        if self.lag < 0:
            raise ValueError("lag must be non-negative")
        if not 0.0 <= self.noise < 0.5:
            raise ValueError("noise must be in [0, 0.5)")


@dataclass(frozen=True)
class EasyBranchSpec:
    """A well-biased branch (kept by if-conversion because it is easy).

    ``early_compare`` software-pipelines the condition's compare one loop
    iteration ahead of the branch, exactly like
    :class:`CorrelatedBranchSpec.early_compare`: such branches become
    early-resolved under the predicate predictor while remaining ordinary
    (occasionally mispredicted) branches for a conventional predictor — the
    source of the paper's Figure 5 improvement on non-if-converted code.
    """

    bias: float = 0.95
    body_size: int = 3
    early_compare: bool = False

    def __post_init__(self) -> None:
        if not 0.5 <= self.bias < 1.0:
            raise ValueError("easy-branch bias must be in [0.5, 1.0)")


@dataclass(frozen=True)
class WorkloadTraits:
    """Complete description of one synthetic benchmark."""

    name: str
    category: str  # "int" | "fp"
    seed: int
    array_length: int = 1024
    outer_iterations: int = 10_000
    hard_regions: Tuple[HardRegionSpec, ...] = ()
    correlated_branches: Tuple[CorrelatedBranchSpec, ...] = ()
    easy_branches: Tuple[EasyBranchSpec, ...] = ()
    #: Straight-line integer filler operations at the top of each iteration.
    filler_alu: int = 6
    #: Straight-line floating-point filler operations per iteration.
    filler_fp: int = 0
    #: Trip count of an inner, perfectly-predictable loop (0 disables it).
    inner_loop_trips: int = 0
    #: Add a pointer-chasing chain (mcf/art-like memory behaviour).
    pointer_chase: bool = False

    def __post_init__(self) -> None:
        if self.category not in ("int", "fp"):
            raise ValueError("category must be 'int' or 'fp'")
        if self.array_length < 16:
            raise ValueError("array_length too small")
        for spec in self.correlated_branches:
            for source in spec.sources:
                if not 0 <= source < len(self.hard_regions):
                    raise ValueError(
                        f"{self.name}: correlated branch references hard region "
                        f"{source}, but only {len(self.hard_regions)} exist"
                    )

    # ------------------------------------------------------------------
    @property
    def condition_count(self) -> int:
        """Total number of distinct data-driven conditions."""
        return (
            len(self.hard_regions)
            + len(self.correlated_branches)
            + len(self.easy_branches)
        )

    @property
    def is_floating_point(self) -> bool:
        return self.category == "fp"

    def describe(self) -> str:
        return (
            f"{self.name} ({self.category}): {len(self.hard_regions)} hard regions, "
            f"{len(self.correlated_branches)} correlated branches, "
            f"{len(self.easy_branches)} easy branches, "
            f"array={self.array_length}"
        )
