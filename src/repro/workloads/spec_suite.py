"""The 22 synthetic SPEC CPU2000-like benchmarks.

Each entry mirrors one of the SPEC CPU2000 programs used by the paper
(eleven integer, eleven floating-point).  The traits are chosen so that the
*relative* branch behaviour is plausible for the program being mimicked —
control-heavy integer codes (``twolf``, ``vpr``, ``crafty``, ``gcc``) carry
several hard-to-predict regions and correlated branches, while loop-dominated
floating-point codes (``swim``, ``mgrid``, ``applu``, ``lucas``) are almost
entirely predictable — without claiming to reproduce the actual programs'
algorithms.

Calibration intent (not absolute-number matching):

* baseline (non-if-converted) misprediction rates for the conventional
  predictor span roughly 1–15 %, integer programs higher than floating
  point, with ``twolf``/``vpr``/``crafty`` at the top — the spread Figure 5
  shows;
* every integer program has at least one small, genuinely hard region that
  the profile-guided if-converter removes, plus one or more *remaining*
  branches correlated with those removed conditions — the Figure 6
  mechanism;
* ``twolf`` uses an exclusive-or correlation, which no perceptron can
  capture, to play the role of the paper's single exception benchmark.

``build_workload(name)`` is deterministic: it always returns an identical
program for a given name, which is what allows the evaluation to compile the
same "source" twice (with and without if-conversion).
"""

from __future__ import annotations

from typing import Dict, List

from repro.program.program import Program
from repro.workloads.kernels import build_program_from_traits
from repro.workloads.traits import (
    CorrelatedBranchSpec,
    EasyBranchSpec,
    HardRegionSpec,
    RegionKind,
    WorkloadTraits,
)

_H = HardRegionSpec
_C = CorrelatedBranchSpec
_E = EasyBranchSpec


def _EZ(bias: float, body_size: int) -> EasyBranchSpec:
    """An easy branch whose compare is software-pipelined one iteration ahead
    (early-resolved under the predicate predictor)."""
    return EasyBranchSpec(bias, body_size, early_compare=True)

_HAM = RegionKind.HAMMOCK
_DIA = RegionKind.DIAMOND
_ESC = RegionKind.ESCAPE


def _suite() -> Dict[str, WorkloadTraits]:
    """Construct the full suite (kept in a function for readability)."""
    suite: List[WorkloadTraits] = [
        # ----------------------------------------------------------------
        # Integer benchmarks
        # ----------------------------------------------------------------
        WorkloadTraits(
            name="gzip",
            category="int",
            seed=101,
            array_length=1024,
            hard_regions=(_H(0.72, 5, _HAM), _H(0.68, 6, _DIA)),
            correlated_branches=(
                _C(sources=(0,), op="copy", lag=2, noise=0.10, early_compare=False),
                _C(sources=(0, 1), op="or", lag=1, noise=0.08, early_compare=True),
            ),
            easy_branches=(_EZ(0.94, 3), _E(0.96, 2), _E(0.92, 3)),
            filler_alu=6,
            inner_loop_trips=3,
        ),
        WorkloadTraits(
            name="vpr",
            category="int",
            seed=102,
            array_length=1024,
            hard_regions=(_H(0.66, 5, _HAM), _H(0.70, 4, _HAM), _H(0.20, 4, _ESC)),
            correlated_branches=(
                _C(sources=(1,), op="not", lag=1, noise=0.12, early_compare=False),
                _C(sources=(0, 1), op="or", lag=1, noise=0.10, early_compare=False),
            ),
            easy_branches=(_EZ(0.93, 3), _E(0.95, 2)),
            filler_alu=7,
        ),
        WorkloadTraits(
            name="gcc",
            category="int",
            seed=103,
            array_length=2048,
            hard_regions=(
                _H(0.68, 6, _HAM, nested=True),
                _H(0.72, 4, _HAM),
            ),
            correlated_branches=(
                _C(sources=(0, 1), op="or", lag=2, noise=0.12, early_compare=False),
                _C(sources=(1,), op="copy", lag=1, noise=0.08, early_compare=False),
            ),
            easy_branches=(_EZ(0.95, 2), _E(0.93, 3), _E(0.96, 2)),
            filler_alu=5,
            inner_loop_trips=2,
        ),
        WorkloadTraits(
            name="mcf",
            category="int",
            seed=104,
            array_length=2048,
            hard_regions=(_H(0.68, 4, _HAM), _H(0.22, 5, _ESC)),
            correlated_branches=(
                _C(sources=(0,), op="copy", lag=1, noise=0.10, early_compare=False),
            ),
            easy_branches=(_EZ(0.94, 3), _E(0.95, 2)),
            filler_alu=4,
            pointer_chase=True,
        ),
        WorkloadTraits(
            name="crafty",
            category="int",
            seed=105,
            array_length=1024,
            hard_regions=(
                _H(0.68, 5, _HAM, nested=True),
                _H(0.66, 5, _HAM),
            ),
            correlated_branches=(
                _C(sources=(1,), op="copy", lag=1, noise=0.09, early_compare=False),
                _C(sources=(0, 1), op="and", lag=1, noise=0.07, early_compare=False),
            ),
            easy_branches=(_EZ(0.95, 3), _E(0.93, 2)),
            filler_alu=8,
            inner_loop_trips=2,
        ),
        WorkloadTraits(
            name="parser",
            category="int",
            seed=106,
            array_length=1024,
            hard_regions=(_H(0.70, 5, _HAM), _H(0.65, 4, _HAM)),
            correlated_branches=(
                _C(sources=(0, 1), op="and", lag=2, noise=0.12, early_compare=False),
            ),
            easy_branches=(_EZ(0.93, 3), _E(0.96, 2), _E(0.94, 2)),
            filler_alu=6,
            inner_loop_trips=3,
        ),
        WorkloadTraits(
            name="perlbmk",
            category="int",
            seed=107,
            array_length=1024,
            hard_regions=(_H(0.68, 6, _HAM, nested=True), _H(0.72, 4, _DIA)),
            correlated_branches=(
                _C(sources=(0, 1), op="or", lag=1, noise=0.09, early_compare=True),
            ),
            easy_branches=(_EZ(0.95, 3), _E(0.94, 2), _E(0.97, 2)),
            filler_alu=7,
            inner_loop_trips=2,
        ),
        WorkloadTraits(
            name="gap",
            category="int",
            seed=108,
            array_length=1024,
            hard_regions=(_H(0.78, 5, _HAM),),
            correlated_branches=(
                _C(sources=(0,), op="copy", lag=1, noise=0.08, early_compare=False),
            ),
            easy_branches=(_EZ(0.95, 3), _E(0.96, 3), _E(0.94, 2)),
            filler_alu=8,
            inner_loop_trips=3,
        ),
        WorkloadTraits(
            name="vortex",
            category="int",
            seed=109,
            array_length=1024,
            hard_regions=(_H(0.84, 4, _HAM),),
            correlated_branches=(
                _C(sources=(0,), op="copy", lag=1, noise=0.05, early_compare=False),
            ),
            easy_branches=(_EZ(0.97, 3), _E(0.96, 2), _E(0.95, 2), _E(0.96, 2)),
            filler_alu=9,
            inner_loop_trips=4,
        ),
        WorkloadTraits(
            name="bzip2",
            category="int",
            seed=110,
            array_length=1024,
            hard_regions=(_H(0.68, 5, _HAM), _H(0.62, 4, _DIA)),
            correlated_branches=(
                _C(sources=(1,), op="copy", lag=3, noise=0.11, early_compare=False),
                _C(sources=(0, 1), op="or", lag=1, noise=0.09, early_compare=True),
            ),
            easy_branches=(_EZ(0.94, 3), _E(0.95, 2)),
            filler_alu=6,
            inner_loop_trips=2,
        ),
        WorkloadTraits(
            name="twolf",
            category="int",
            seed=111,
            array_length=1024,
            hard_regions=(_H(0.62, 5, _HAM), _H(0.60, 5, _HAM), _H(0.66, 4, _DIA)),
            correlated_branches=(
                # The paper's exception benchmark: an exclusive-or of two
                # same-iteration hard conditions is not linearly separable,
                # so neither predictor captures it, and the predicate
                # predictor's extra negative effects leave it slightly behind.
                _C(sources=(0, 1), op="xor", lag=0, noise=0.05, early_compare=False),
            ),
            easy_branches=(_EZ(0.93, 2), _E(0.92, 2)),
            filler_alu=5,
        ),
        # ----------------------------------------------------------------
        # Floating-point benchmarks
        # ----------------------------------------------------------------
        WorkloadTraits(
            name="wupwise",
            category="fp",
            seed=201,
            array_length=1024,
            hard_regions=(_H(0.75, 4, _HAM),),
            correlated_branches=(
                _C(sources=(0,), op="copy", lag=1, noise=0.06, early_compare=True),
            ),
            easy_branches=(_EZ(0.96, 2),),
            filler_alu=4,
            filler_fp=6,
            inner_loop_trips=4,
        ),
        WorkloadTraits(
            name="swim",
            category="fp",
            seed=202,
            array_length=1024,
            hard_regions=(),
            correlated_branches=(),
            easy_branches=(_EZ(0.97, 2), _E(0.96, 3)),
            filler_alu=3,
            filler_fp=10,
            inner_loop_trips=8,
        ),
        WorkloadTraits(
            name="mgrid",
            category="fp",
            seed=203,
            array_length=1024,
            hard_regions=(),
            correlated_branches=(),
            easy_branches=(_EZ(0.97, 2),),
            filler_alu=3,
            filler_fp=12,
            inner_loop_trips=8,
        ),
        WorkloadTraits(
            name="applu",
            category="fp",
            seed=204,
            array_length=1024,
            hard_regions=(_H(0.85, 3, _HAM),),
            correlated_branches=(),
            easy_branches=(_EZ(0.96, 2), _E(0.97, 2)),
            filler_alu=4,
            filler_fp=9,
            inner_loop_trips=6,
        ),
        WorkloadTraits(
            name="mesa",
            category="fp",
            seed=205,
            array_length=1024,
            hard_regions=(_H(0.70, 4, _HAM), _H(0.78, 4, _HAM)),
            correlated_branches=(
                _C(sources=(0,), op="copy", lag=1, noise=0.08, early_compare=False),
            ),
            easy_branches=(_EZ(0.95, 3), _E(0.96, 2)),
            filler_alu=5,
            filler_fp=5,
            inner_loop_trips=2,
        ),
        WorkloadTraits(
            name="art",
            category="fp",
            seed=206,
            array_length=2048,
            hard_regions=(_H(0.68, 4, _HAM), _H(0.25, 4, _ESC)),
            correlated_branches=(
                _C(sources=(0,), op="copy", lag=1, noise=0.09, early_compare=False),
            ),
            easy_branches=(_EZ(0.94, 2), _E(0.95, 2)),
            filler_alu=4,
            filler_fp=6,
            pointer_chase=True,
        ),
        WorkloadTraits(
            name="equake",
            category="fp",
            seed=207,
            array_length=1024,
            hard_regions=(_H(0.75, 4, _HAM),),
            correlated_branches=(
                _C(sources=(0,), op="not", lag=1, noise=0.06, early_compare=False),
            ),
            easy_branches=(_EZ(0.96, 2),),
            filler_alu=4,
            filler_fp=7,
            inner_loop_trips=4,
        ),
        WorkloadTraits(
            name="facerec",
            category="fp",
            seed=208,
            array_length=1024,
            hard_regions=(_H(0.72, 4, _HAM),),
            correlated_branches=(
                _C(sources=(0,), op="copy", lag=2, noise=0.09, early_compare=False),
            ),
            easy_branches=(_EZ(0.95, 2), _E(0.96, 2)),
            filler_alu=5,
            filler_fp=6,
            inner_loop_trips=2,
        ),
        WorkloadTraits(
            name="ammp",
            category="fp",
            seed=209,
            array_length=1024,
            hard_regions=(_H(0.72, 4, _HAM), _H(0.78, 3, _HAM)),
            correlated_branches=(
                _C(sources=(0, 1), op="and", lag=1, noise=0.10, early_compare=False),
            ),
            easy_branches=(_EZ(0.95, 2), _E(0.96, 2)),
            filler_alu=5,
            filler_fp=6,
            inner_loop_trips=2,
        ),
        WorkloadTraits(
            name="lucas",
            category="fp",
            seed=210,
            array_length=1024,
            hard_regions=(),
            correlated_branches=(),
            easy_branches=(_EZ(0.97, 2), _E(0.96, 2)),
            filler_alu=3,
            filler_fp=11,
            inner_loop_trips=6,
        ),
        WorkloadTraits(
            name="apsi",
            category="fp",
            seed=211,
            array_length=1024,
            hard_regions=(_H(0.76, 4, _HAM),),
            correlated_branches=(
                _C(sources=(0,), op="copy", lag=1, noise=0.07, early_compare=True),
            ),
            easy_branches=(_EZ(0.96, 2), _E(0.95, 2)),
            filler_alu=4,
            filler_fp=8,
            inner_loop_trips=4,
        ),
    ]
    return {traits.name: traits for traits in suite}


#: The full suite, keyed by benchmark name.
SPEC_SUITE: Dict[str, WorkloadTraits] = _suite()


def workload_names() -> List[str]:
    """All 22 benchmark names (integer first, then floating point)."""
    return list(SPEC_SUITE)


def integer_workload_names() -> List[str]:
    return [name for name, traits in SPEC_SUITE.items() if traits.category == "int"]


def fp_workload_names() -> List[str]:
    return [name for name, traits in SPEC_SUITE.items() if traits.category == "fp"]


def workload_traits(name: str) -> WorkloadTraits:
    try:
        return SPEC_SUITE[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(SPEC_SUITE)}"
        ) from None


def build_workload(name: str) -> Program:
    """Build the (uncompiled) program for benchmark ``name``.

    Deterministic: repeated calls return structurally identical programs
    driven by identical data.
    """
    return build_program_from_traits(workload_traits(name))
