"""The workload registry: one lookup for built-ins, spec files and traces.

Everything downstream of workload selection — the engine's compile step,
``--benchmarks`` parsing, sweep-scenario validation, the bench suite —
resolves benchmarks through :func:`resolve_workload`, which accepts:

* a **built-in** name (``gzip``, ``twolf``, … — the 22-program synthetic
  suite of :mod:`repro.workloads.spec_suite`);
* a **library** name: the stem of a spec file shipped in
  ``src/repro/workloads/library/`` (``branchy``, …);
* a **path** to a user workload: a ``.toml``/``.json`` trait-spec file
  (:mod:`repro.workloads.workload_spec`) or a ``.trace`` branch-outcome
  stream (:mod:`repro.workloads.trace_ingest`).

Resolution is a pure function of the name string (plus the file contents it
denotes), so worker processes resolve the same string to the same workload
without any registration handshake.  File-backed definitions are re-read on
every resolve — the files are small, and it is exactly what makes an edited
spec show up immediately.

Every definition carries a **content fingerprint** that the binary factory
folds into engine cache keys (:meth:`repro.compiler.binaries.BinaryFactory.
fingerprint`): editing a spec file changes only that workload's fingerprint,
so only its artifacts rebuild while everything else stays cached.  Built-in
fingerprints hash the canonicalized traits (stable across processes).

Unknown names raise :class:`UnknownWorkloadError` listing the registry and
suggesting close matches.
"""

from __future__ import annotations

import difflib
import hashlib
import os
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.program.program import Program
from repro.workloads.spec_suite import SPEC_SUITE, workload_names
from repro.workloads.kernels import build_program_from_traits
from repro.workloads.trace_ingest import TraceIngestError, ingest_trace_file
from repro.workloads.traits import WorkloadTraits
from repro.workloads.workload_spec import WorkloadSpecError

#: Extensions that mark a benchmark string as a user workload file.
SPEC_EXTENSIONS = (".toml", ".json")
TRACE_EXTENSIONS = (".trace",)

#: Directory of the spec files shipped with the package.
_LIBRARY_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "library")

#: Workload origins, in `workloads list` order.
BUILTIN = "builtin"
LIBRARY = "library"
SPEC_FILE = "spec-file"
TRACE = "trace"


class UnknownWorkloadError(KeyError):
    """A benchmark name resolves to nothing in the registry.

    ``str(error)`` is the full user-facing message (registry listing plus
    close-match suggestions); :class:`KeyError`'s quoting is bypassed.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


@dataclass(frozen=True)
class WorkloadDefinition:
    """One resolved workload: identity, provenance, traits and builder.

    ``name`` is the *registry identity* — the exact string jobs, reports and
    cache metadata carry (for file-backed workloads that is the path the
    user passed, so re-resolution works in any process).  ``display_name``
    is the declared workload name (identical for built-ins).
    """

    name: str
    display_name: str
    origin: str  # BUILTIN | LIBRARY | SPEC_FILE | TRACE
    source: str  # module or file path the definition came from
    traits: WorkloadTraits
    fingerprint: str
    _builder: Callable[[], Program]

    def build(self) -> Program:
        """Build the (uncompiled) program; deterministic per fingerprint."""
        return self._builder()

    def describe(self) -> str:
        return f"{self.display_name} [{self.origin}] {self.traits.describe()}"


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def _traits_fingerprint(traits: WorkloadTraits) -> str:
    """Content fingerprint of in-package traits (canonical, process-stable)."""
    from repro.engine.hashing import stable_hash  # lazy: engine imports workloads

    return stable_hash("workload-traits", traits)


def _text_fingerprint(kind: str, text: str) -> str:
    """Content fingerprint of a user file (spec or trace)."""
    digest = hashlib.sha256(f"{kind}\n{text}".encode("utf-8")).hexdigest()
    return digest[:32]


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
def is_workload_path(name: str) -> bool:
    """True when a benchmark string denotes a file, not a registry name."""
    return os.sep in name or name.endswith(SPEC_EXTENSIONS + TRACE_EXTENSIONS)


def _builtin_definition(name: str) -> WorkloadDefinition:
    traits = SPEC_SUITE[name]
    return WorkloadDefinition(
        name=name,
        display_name=name,
        origin=BUILTIN,
        source="repro.workloads.spec_suite",
        traits=traits,
        fingerprint=_traits_fingerprint(traits),
        _builder=lambda: build_program_from_traits(traits),
    )


def library_paths() -> List[str]:
    """Paths of the shipped library spec files, sorted by stem.

    ``.toml`` entries are skipped on interpreters without :mod:`tomllib`
    (mirroring scenario loading: TOML fails only when actually requested).
    """
    from repro.workloads.workload_spec import tomllib

    paths = []
    for entry in sorted(os.listdir(_LIBRARY_DIR)):
        stem, extension = os.path.splitext(entry)
        if extension not in SPEC_EXTENSIONS:
            continue
        if extension == ".toml" and tomllib is None:  # pragma: no cover - 3.10
            continue
        paths.append(os.path.join(_LIBRARY_DIR, entry))
    return paths


def _library_names() -> List[str]:
    return [os.path.splitext(os.path.basename(path))[0] for path in library_paths()]


def _library_definition(name: str) -> Optional[WorkloadDefinition]:
    for path in library_paths():
        stem = os.path.splitext(os.path.basename(path))[0]
        if stem == name:
            definition = _spec_file_definition(path, identity=name)
            return WorkloadDefinition(
                name=name,
                display_name=definition.display_name,
                origin=LIBRARY,
                source=path,
                traits=definition.traits,
                fingerprint=definition.fingerprint,
                _builder=definition._builder,
            )
    return None


def _spec_file_definition(path: str, identity: Optional[str] = None) -> WorkloadDefinition:
    from repro.workloads.workload_spec import load_workload_text

    traits, text = load_workload_text(path, name=identity)
    return WorkloadDefinition(
        name=identity if identity is not None else path,
        display_name=traits.name,
        origin=SPEC_FILE,
        source=path,
        traits=traits,
        fingerprint=_text_fingerprint("spec", text),
        _builder=lambda: build_program_from_traits(traits),
    )


def _trace_definition(path: str) -> WorkloadDefinition:
    stem = os.path.splitext(os.path.basename(path))[0]
    # Streaming on purpose: CBP-scale outcome streams do not fit in memory,
    # so both ingestion and the fingerprint fold the file in line by line.
    digest = hashlib.sha256(b"trace\n")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                digest.update(line.encode("utf-8"))
    except OSError as error:
        raise TraceIngestError(f"cannot read branch trace {path}: {error}") from None
    ingested = ingest_trace_file(path, name=stem)
    return WorkloadDefinition(
        name=path,
        display_name=ingested.name,
        origin=TRACE,
        source=path,
        traits=ingested.traits,
        fingerprint=digest.hexdigest()[:32],
        _builder=ingested.build,
    )


def registry_names() -> List[str]:
    """Every name the registry resolves: built-ins first, then the library."""
    return workload_names() + _library_names()


def _unknown(name: str) -> UnknownWorkloadError:
    suggestions = difflib.get_close_matches(name, registry_names(), n=3, cutoff=0.6)
    hint = f"; did you mean: {', '.join(suggestions)}?" if suggestions else ""
    return UnknownWorkloadError(
        f"unknown workload {name!r}{hint} "
        f"(registry: {', '.join(registry_names())}; or pass a "
        f".toml/.json workload spec or .trace outcome-stream path — "
        "see 'repro workloads list')"
    )


def resolve_workload(name: str) -> WorkloadDefinition:
    """Resolve a benchmark string to its definition.

    Raises :class:`UnknownWorkloadError` for unknown names,
    :class:`~repro.workloads.workload_spec.WorkloadSpecError` /
    :class:`~repro.workloads.trace_ingest.TraceIngestError` for files that
    exist but do not validate.
    """
    if is_workload_path(name):
        if name.endswith(TRACE_EXTENSIONS):
            return _trace_definition(name)
        if name.endswith(SPEC_EXTENSIONS):
            return _spec_file_definition(name)
        raise WorkloadSpecError(
            f"{name}: unsupported workload file extension (expected "
            f"{', '.join(SPEC_EXTENSIONS + TRACE_EXTENSIONS)})"
        )
    if name in SPEC_SUITE:
        return _builtin_definition(name)
    definition = _library_definition(name)
    if definition is not None:
        return definition
    raise _unknown(name)


def workload_fingerprint(name: str) -> str:
    """The content fingerprint the binary factory folds into cache keys."""
    return resolve_workload(name).fingerprint


def build_workload(name: str) -> Program:
    """Build any registry workload (built-in, library, spec path or trace)."""
    return resolve_workload(name).build()


__all__ = [
    "BUILTIN",
    "LIBRARY",
    "SPEC_FILE",
    "TRACE",
    "TraceIngestError",
    "UnknownWorkloadError",
    "WorkloadDefinition",
    "WorkloadSpecError",
    "build_workload",
    "is_workload_path",
    "library_paths",
    "registry_names",
    "resolve_workload",
    "workload_fingerprint",
]
