"""External branch-trace ingestion: outcome streams → replayable programs.

The synthetic suite *generates* branch behaviour from trait descriptions;
this adapter goes the other way, in the spirit of championship-branch-
prediction (CBP) trace suites: a recorded **conditional-branch outcome
stream** becomes a benchmark whose branches replay the recorded outcomes,
so the paper's predictors can be probed on behaviour captured from a real
program.

The ``.trace`` format is deliberately minimal — one conditional branch per
line, in dynamic execution order::

    # comment (blank lines are ignored)
    0x4000 T        # <branch pc> <outcome>
    0x4008 N
    16384 1         # pcs may be decimal; outcomes may be T/N or 1/0

Ingestion groups outcomes per static branch (by pc, in order of first
appearance) and builds a loop program via the condition-stream machinery
(:func:`~repro.workloads.kernels.build_program_from_traits` with explicit
:class:`~repro.workloads.generators.ConditionStreams`):

* a site whose empirical taken-rate is *hard* (between
  ``HARD_RATE_LOW`` and ``HARD_RATE_HIGH``) becomes a
  :class:`~repro.workloads.traits.HardRegionSpec` — a branch guarding a
  small, if-convertible hammock, so the profile-guided if-converter treats
  it the way it treats the synthetic suite's hard branches;
* every other site becomes an :class:`~repro.workloads.traits.EasyBranchSpec`
  (a well-biased branch that survives if-conversion);
* each site's recorded outcome sequence is tiled cyclically onto the
  workload's data arrays, so the emulated program's branch at that site
  reproduces the recorded stream exactly (per iteration of the sweep).

Everything is a deterministic function of the trace file's bytes: two
ingestions of the same file build bit-identical programs, which is what
lets the engine cache their artifacts under a content fingerprint.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.program.program import Program
from repro.workloads.generators import ConditionStreams, _encode_values
from repro.workloads.kernels import build_program_from_traits
from repro.workloads.traits import EasyBranchSpec, HardRegionSpec, WorkloadTraits


class TraceIngestError(ValueError):
    """A branch-trace file is malformed or unusable."""


#: Empirical taken-rate band that classifies a site as *hard* (guarding an
#: if-convertible region); everything outside is an easy (well-biased)
#: branch.  The band mirrors the bias range the synthetic suite uses for
#: its hard regions.
HARD_RATE_LOW = 0.20
HARD_RATE_HIGH = 0.90

#: Outcome tokens accepted by the parser.
_TAKEN_TOKENS = {"t", "1"}
_NOT_TAKEN_TOKENS = {"n", "0"}

#: Minimum data-array length of an ingested workload
#: (:class:`WorkloadTraits` rejects anything smaller than 16).
_MIN_LENGTH = 64

#: Per-site replay window: outcomes retained verbatim per static branch.
#: Sites longer than this replay their first ``MAX_SITE_OUTCOMES`` outcomes
#: cyclically, while rates/classification still reflect the *whole* recorded
#: stream — the bound that keeps ingestion's peak memory independent of the
#: trace's length (CBP-scale streams run to hundreds of millions of lines).
MAX_SITE_OUTCOMES = 1 << 16


@dataclass(frozen=True)
class BranchSite:
    """One static branch of an ingested trace.

    ``outcomes`` is the retained replay window (at most the parser's
    ``max_site_outcomes``); ``executions``/``taken`` count the whole
    recorded stream.  Constructing a site with the totals defaulted (as
    pre-streaming code did) makes the window the whole stream.
    """

    pc: int
    outcomes: Tuple[bool, ...]
    executions: int = 0
    taken: int = 0

    @property
    def recorded_executions(self) -> int:
        """Total recorded outcomes (>= ``len(outcomes)``)."""
        return self.executions or len(self.outcomes)

    @property
    def taken_rate(self) -> float:
        if self.executions:
            return self.taken / self.executions
        return sum(self.outcomes) / len(self.outcomes)

    @property
    def is_hard(self) -> bool:
        return HARD_RATE_LOW <= self.taken_rate <= HARD_RATE_HIGH


@dataclass(frozen=True)
class IngestedWorkload:
    """A parsed branch trace, ready to build as a benchmark."""

    name: str
    sites: Tuple[BranchSite, ...]
    traits: WorkloadTraits

    def build(self) -> Program:
        """Build the replayable program (deterministic per trace content)."""
        return build_program_from_traits(self.traits, self._streams())

    # ------------------------------------------------------------------
    def _streams(self) -> ConditionStreams:
        """Condition streams that tile each site's recorded outcomes."""
        length = self.traits.array_length
        streams = ConditionStreams(length=length)
        # Value encoding only needs *some* deterministic values on either
        # side of the threshold; the workload's seed (itself content-derived)
        # keeps it reproducible.
        rng = np.random.default_rng(self.traits.seed)
        hard_index = 0
        easy_index = 0
        for site in self.sites:
            tiled = np.resize(np.array(site.outcomes, dtype=bool), length)
            if site.is_hard:
                streams.hard.append(tiled)
                streams.value_arrays[f"hard{hard_index}"] = _encode_values(tiled, rng)
                hard_index += 1
            else:
                streams.easy.append(tiled)
                streams.value_arrays[f"easy{easy_index}"] = _encode_values(tiled, rng)
                easy_index += 1
        return streams


def _parse_outcome(token: str, where: str) -> bool:
    lowered = token.lower()
    if lowered in _TAKEN_TOKENS:
        return True
    if lowered in _NOT_TAKEN_TOKENS:
        return False
    raise TraceIngestError(
        f"{where}: unknown outcome {token!r}; expected T/N or 1/0"
    )


def _parse_pc(token: str, where: str) -> int:
    try:
        return int(token, 0)  # accepts decimal and 0x-prefixed hex
    except ValueError:
        raise TraceIngestError(
            f"{where}: branch pc {token!r} is not a decimal or 0x-hex integer"
        ) from None


def parse_outcome_lines(
    lines: Iterable[str],
    source: str = "<trace>",
    max_site_outcomes: int = MAX_SITE_OUTCOMES,
) -> Tuple[BranchSite, ...]:
    """Parse ``<pc> <outcome>`` lines into per-site outcome sequences.

    Sites are returned in order of first appearance, which fixes their
    mapping onto the generated program's branches.  ``lines`` is consumed
    strictly one line at a time and each site retains at most
    ``max_site_outcomes`` outcomes in a compact byte buffer (totals keep
    counting), so peak memory is bounded by the number of *static* sites —
    not by the stream's length.
    """
    if max_site_outcomes < 1:
        raise ValueError(f"max_site_outcomes must be positive, got {max_site_outcomes}")
    windows: Dict[int, bytearray] = {}
    executions: Dict[int, int] = {}
    taken_counts: Dict[int, int] = {}
    order: List[int] = []
    count = 0
    for number, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        where = f"{source}:{number}"
        fields = line.split()
        if len(fields) != 2:
            raise TraceIngestError(
                f"{where}: expected '<pc> <outcome>', got {raw.strip()!r}"
            )
        pc = _parse_pc(fields[0], where)
        outcome = _parse_outcome(fields[1], where)
        window = windows.get(pc)
        if window is None:
            window = windows[pc] = bytearray()
            executions[pc] = 0
            taken_counts[pc] = 0
            order.append(pc)
        if len(window) < max_site_outcomes:
            window.append(1 if outcome else 0)
        executions[pc] += 1
        if outcome:
            taken_counts[pc] += 1
        count += 1
    if not count:
        raise TraceIngestError(f"{source}: trace contains no branch outcomes")
    return tuple(
        BranchSite(
            pc=pc,
            outcomes=tuple(bool(value) for value in windows[pc]),
            executions=executions[pc],
            taken=taken_counts[pc],
        )
        for pc in order
    )


def _content_seed(text: str) -> int:
    """A deterministic 31-bit seed derived from the trace content."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


def _clamp(value: float, low: float, high: float) -> float:
    return min(max(value, low), high)


def _workload_from_sites(
    sites: Tuple[BranchSite, ...], name: str, seed: int
) -> IngestedWorkload:
    """The shared ingestion tail: sites + content seed → workload.

    The traits' ``bias`` fields describe the *recorded* rates (clamped into
    the ranges :class:`WorkloadTraits` validation accepts); the actual branch
    outcomes come from the recorded streams, not from those biases.
    """
    length = max(_MIN_LENGTH, max(len(site.outcomes) for site in sites))
    hard_regions = tuple(
        HardRegionSpec(bias=_clamp(site.taken_rate, 0.01, 0.99))
        for site in sites
        if site.is_hard
    )
    easy_branches = tuple(
        # An easy branch's *predictable* direction may be not-taken; the
        # traits field records the dominant-direction rate.
        EasyBranchSpec(bias=_clamp(max(site.taken_rate, 1 - site.taken_rate), 0.5, 0.99))
        for site in sites
        if not site.is_hard
    )
    traits = WorkloadTraits(
        name=name,
        category="int",
        seed=seed,
        array_length=length,
        hard_regions=hard_regions,
        easy_branches=easy_branches,
    )
    return IngestedWorkload(name=name, sites=sites, traits=traits)


def ingest_trace_text(text: str, name: str, source: str = "<trace>") -> IngestedWorkload:
    """Build an :class:`IngestedWorkload` from in-memory trace text."""
    sites = parse_outcome_lines(iter(text.splitlines()), source=source)
    return _workload_from_sites(sites, name=name, seed=_content_seed(text))


def ingest_trace_file(
    path: str, name: str, max_site_outcomes: int = MAX_SITE_OUTCOMES
) -> IngestedWorkload:
    """Ingest one ``.trace`` outcome-stream file, streaming line by line.

    The file is never read whole: each line is parsed and folded into the
    content digest as it arrives, so peak memory is bounded by the static
    site count (times the per-site replay window) no matter how long the
    recorded stream is.  The resulting workload is identical to
    ``ingest_trace_text(<file contents>, ...)``.
    """
    digest = hashlib.sha256()

    def hashed_lines(handle) -> Iterable[str]:
        for line in handle:
            digest.update(line.encode("utf-8"))
            yield line

    try:
        with open(path, "r", encoding="utf-8") as handle:
            sites = parse_outcome_lines(
                hashed_lines(handle),
                source=os.path.basename(path),
                max_site_outcomes=max_site_outcomes,
            )
    except OSError as error:
        raise TraceIngestError(f"cannot read branch trace {path}: {error}") from None
    seed = int.from_bytes(digest.digest()[:4], "big") & 0x7FFFFFFF
    return _workload_from_sites(sites, name=name, seed=seed)
