"""External branch-trace ingestion: outcome streams → replayable programs.

The synthetic suite *generates* branch behaviour from trait descriptions;
this adapter goes the other way, in the spirit of championship-branch-
prediction (CBP) trace suites: a recorded **conditional-branch outcome
stream** becomes a benchmark whose branches replay the recorded outcomes,
so the paper's predictors can be probed on behaviour captured from a real
program.

The ``.trace`` format is deliberately minimal — one conditional branch per
line, in dynamic execution order::

    # comment (blank lines are ignored)
    0x4000 T        # <branch pc> <outcome>
    0x4008 N
    16384 1         # pcs may be decimal; outcomes may be T/N or 1/0

Ingestion groups outcomes per static branch (by pc, in order of first
appearance) and builds a loop program via the condition-stream machinery
(:func:`~repro.workloads.kernels.build_program_from_traits` with explicit
:class:`~repro.workloads.generators.ConditionStreams`):

* a site whose empirical taken-rate is *hard* (between
  ``HARD_RATE_LOW`` and ``HARD_RATE_HIGH``) becomes a
  :class:`~repro.workloads.traits.HardRegionSpec` — a branch guarding a
  small, if-convertible hammock, so the profile-guided if-converter treats
  it the way it treats the synthetic suite's hard branches;
* every other site becomes an :class:`~repro.workloads.traits.EasyBranchSpec`
  (a well-biased branch that survives if-conversion);
* each site's recorded outcome sequence is tiled cyclically onto the
  workload's data arrays, so the emulated program's branch at that site
  reproduces the recorded stream exactly (per iteration of the sweep).

Everything is a deterministic function of the trace file's bytes: two
ingestions of the same file build bit-identical programs, which is what
lets the engine cache their artifacts under a content fingerprint.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.program.program import Program
from repro.workloads.generators import ConditionStreams, _encode_values
from repro.workloads.kernels import build_program_from_traits
from repro.workloads.traits import EasyBranchSpec, HardRegionSpec, WorkloadTraits


class TraceIngestError(ValueError):
    """A branch-trace file is malformed or unusable."""


#: Empirical taken-rate band that classifies a site as *hard* (guarding an
#: if-convertible region); everything outside is an easy (well-biased)
#: branch.  The band mirrors the bias range the synthetic suite uses for
#: its hard regions.
HARD_RATE_LOW = 0.20
HARD_RATE_HIGH = 0.90

#: Outcome tokens accepted by the parser.
_TAKEN_TOKENS = {"t", "1"}
_NOT_TAKEN_TOKENS = {"n", "0"}

#: Minimum data-array length of an ingested workload
#: (:class:`WorkloadTraits` rejects anything smaller than 16).
_MIN_LENGTH = 64


@dataclass(frozen=True)
class BranchSite:
    """One static branch of an ingested trace."""

    pc: int
    outcomes: Tuple[bool, ...]

    @property
    def taken_rate(self) -> float:
        return sum(self.outcomes) / len(self.outcomes)

    @property
    def is_hard(self) -> bool:
        return HARD_RATE_LOW <= self.taken_rate <= HARD_RATE_HIGH


@dataclass(frozen=True)
class IngestedWorkload:
    """A parsed branch trace, ready to build as a benchmark."""

    name: str
    sites: Tuple[BranchSite, ...]
    traits: WorkloadTraits

    def build(self) -> Program:
        """Build the replayable program (deterministic per trace content)."""
        return build_program_from_traits(self.traits, self._streams())

    # ------------------------------------------------------------------
    def _streams(self) -> ConditionStreams:
        """Condition streams that tile each site's recorded outcomes."""
        length = self.traits.array_length
        streams = ConditionStreams(length=length)
        # Value encoding only needs *some* deterministic values on either
        # side of the threshold; the workload's seed (itself content-derived)
        # keeps it reproducible.
        rng = np.random.default_rng(self.traits.seed)
        hard_index = 0
        easy_index = 0
        for site in self.sites:
            tiled = np.resize(np.array(site.outcomes, dtype=bool), length)
            if site.is_hard:
                streams.hard.append(tiled)
                streams.value_arrays[f"hard{hard_index}"] = _encode_values(tiled, rng)
                hard_index += 1
            else:
                streams.easy.append(tiled)
                streams.value_arrays[f"easy{easy_index}"] = _encode_values(tiled, rng)
                easy_index += 1
        return streams


def _parse_outcome(token: str, where: str) -> bool:
    lowered = token.lower()
    if lowered in _TAKEN_TOKENS:
        return True
    if lowered in _NOT_TAKEN_TOKENS:
        return False
    raise TraceIngestError(
        f"{where}: unknown outcome {token!r}; expected T/N or 1/0"
    )


def _parse_pc(token: str, where: str) -> int:
    try:
        return int(token, 0)  # accepts decimal and 0x-prefixed hex
    except ValueError:
        raise TraceIngestError(
            f"{where}: branch pc {token!r} is not a decimal or 0x-hex integer"
        ) from None


def parse_outcome_lines(
    lines: Iterable[str], source: str = "<trace>"
) -> Tuple[BranchSite, ...]:
    """Parse ``<pc> <outcome>`` lines into per-site outcome sequences.

    Sites are returned in order of first appearance, which fixes their
    mapping onto the generated program's branches.
    """
    per_site: Dict[int, List[bool]] = {}
    order: List[int] = []
    count = 0
    for number, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        where = f"{source}:{number}"
        fields = line.split()
        if len(fields) != 2:
            raise TraceIngestError(
                f"{where}: expected '<pc> <outcome>', got {raw.strip()!r}"
            )
        pc = _parse_pc(fields[0], where)
        outcome = _parse_outcome(fields[1], where)
        if pc not in per_site:
            per_site[pc] = []
            order.append(pc)
        per_site[pc].append(outcome)
        count += 1
    if not count:
        raise TraceIngestError(f"{source}: trace contains no branch outcomes")
    return tuple(BranchSite(pc=pc, outcomes=tuple(per_site[pc])) for pc in order)


def _content_seed(text: str) -> int:
    """A deterministic 31-bit seed derived from the trace content."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


def _clamp(value: float, low: float, high: float) -> float:
    return min(max(value, low), high)


def ingest_trace_text(text: str, name: str, source: str = "<trace>") -> IngestedWorkload:
    """Build an :class:`IngestedWorkload` from trace text.

    The traits' ``bias`` fields describe the *recorded* rates (clamped into
    the ranges :class:`WorkloadTraits` validation accepts); the actual branch
    outcomes come from the recorded streams, not from those biases.
    """
    sites = parse_outcome_lines(text.splitlines(), source=source)
    length = max(_MIN_LENGTH, max(len(site.outcomes) for site in sites))
    hard_regions = tuple(
        HardRegionSpec(bias=_clamp(site.taken_rate, 0.01, 0.99))
        for site in sites
        if site.is_hard
    )
    easy_branches = tuple(
        # An easy branch's *predictable* direction may be not-taken; the
        # traits field records the dominant-direction rate.
        EasyBranchSpec(bias=_clamp(max(site.taken_rate, 1 - site.taken_rate), 0.5, 0.99))
        for site in sites
        if not site.is_hard
    )
    traits = WorkloadTraits(
        name=name,
        category="int",
        seed=_content_seed(text),
        array_length=length,
        hard_regions=hard_regions,
        easy_branches=easy_branches,
    )
    return IngestedWorkload(name=name, sites=sites, traits=traits)


def ingest_trace_file(path: str, name: str) -> IngestedWorkload:
    """Ingest one ``.trace`` outcome-stream file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise TraceIngestError(f"cannot read branch trace {path}: {error}") from None
    return ingest_trace_text(text, name=name, source=os.path.basename(path))
