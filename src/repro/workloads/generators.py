"""Condition-stream and data-array synthesis for the synthetic workloads.

The interesting behaviour of the workloads lives entirely in their input
data: every conditional branch tests a loaded value against a fixed
threshold, so the per-iteration boolean streams generated here determine the
branch outcome sequences.  The generator produces:

* independent biased Bernoulli streams for the hard regions and the easy
  branches;
* *derived* streams for the correlated branches: a boolean function of the
  hard streams, applied at a configurable iteration lag and perturbed with
  flip noise;
* 64-bit value arrays encoding each boolean stream (value > THRESHOLD iff
  the condition is true) so the program can recover the condition with a
  single compare;
* optionally, a pointer-chasing permutation array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.workloads.traits import WorkloadTraits

#: Threshold the generated programs compare loaded values against.
CONDITION_THRESHOLD = 500

#: Range of generated data values: [0, 2 * CONDITION_THRESHOLD).
VALUE_RANGE = 2 * CONDITION_THRESHOLD


@dataclass
class ConditionStreams:
    """All boolean streams and their encoded value arrays for one workload."""

    length: int
    #: hard-region condition streams, one per HardRegionSpec.
    hard: List[np.ndarray] = field(default_factory=list)
    #: correlated-branch condition streams, one per CorrelatedBranchSpec.
    correlated: List[np.ndarray] = field(default_factory=list)
    #: easy-branch condition streams, one per EasyBranchSpec.
    easy: List[np.ndarray] = field(default_factory=list)
    #: value arrays encoding each stream (name -> 64-bit values).
    value_arrays: Dict[str, List[int]] = field(default_factory=dict)
    #: pointer-chase permutation (indices), empty when unused.
    chain: List[int] = field(default_factory=list)

    def hard_rate(self, index: int) -> float:
        return float(np.mean(self.hard[index]))

    def correlated_rate(self, index: int) -> float:
        return float(np.mean(self.correlated[index]))


def _encode_values(stream: np.ndarray, rng: np.random.Generator) -> List[int]:
    """Encode a boolean stream as values around the threshold."""
    high = rng.integers(CONDITION_THRESHOLD + 1, VALUE_RANGE, size=stream.size)
    low = rng.integers(0, CONDITION_THRESHOLD + 1, size=stream.size)
    return [int(h) if flag else int(l) for flag, h, l in zip(stream, high, low)]


def _apply_op(op: str, columns: List[np.ndarray]) -> np.ndarray:
    if op == "copy":
        return columns[0].copy()
    if op == "not":
        return ~columns[0]
    if op == "and":
        result = columns[0].copy()
        for column in columns[1:]:
            result &= column
        return result
    if op == "or":
        result = columns[0].copy()
        for column in columns[1:]:
            result |= column
        return result
    if op == "xor":
        # Deliberately not linearly separable: even a predictor that sees the
        # source conditions in its history cannot capture it with a single
        # perceptron (used by the ``twolf`` traits to reproduce the paper's
        # one exception benchmark).
        result = columns[0].copy()
        for column in columns[1:]:
            result ^= column
        return result
    if op == "majority":
        stacked = np.stack(columns)
        return stacked.sum(axis=0) * 2 > len(columns)
    raise ValueError(f"unknown correlation op {op!r}")


def generate_condition_streams(traits: WorkloadTraits) -> ConditionStreams:
    """Generate all boolean streams and value arrays for ``traits``."""
    rng = np.random.default_rng(traits.seed)
    length = traits.array_length
    streams = ConditionStreams(length=length)

    # Hard-region conditions: independent biased coins.  Nested regions get
    # an extra, independent inner condition stream.
    for index, spec in enumerate(traits.hard_regions):
        stream = rng.random(length) < spec.bias
        streams.hard.append(stream)
        if spec.nested:
            inner = rng.random(length) < spec.bias
            streams.value_arrays[f"hard{index}_inner"] = _encode_values(inner, rng)

    # Correlated-branch conditions: lagged boolean functions of the hard
    # conditions, with flip noise.  The lag wraps around the array because
    # the program sweeps the arrays repeatedly.
    for spec in traits.correlated_branches:
        columns = [np.roll(streams.hard[s], spec.lag) for s in spec.sources]
        derived = _apply_op(spec.op, columns)
        if spec.noise > 0.0:
            flips = rng.random(length) < spec.noise
            derived = derived ^ flips
        streams.correlated.append(derived)

    # Easy branches: heavily biased coins.
    for spec in traits.easy_branches:
        streams.easy.append(rng.random(length) < spec.bias)

    # Encode every stream as a value array the program can load and compare.
    for index, stream in enumerate(streams.hard):
        streams.value_arrays[f"hard{index}"] = _encode_values(stream, rng)
    for index, stream in enumerate(streams.correlated):
        streams.value_arrays[f"corr{index}"] = _encode_values(stream, rng)
    for index, stream in enumerate(streams.easy):
        streams.value_arrays[f"easy{index}"] = _encode_values(stream, rng)

    if traits.pointer_chase:
        permutation = rng.permutation(length)
        streams.chain = [int(x) for x in permutation]
        streams.value_arrays["chain"] = streams.chain

    return streams
