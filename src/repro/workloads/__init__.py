"""Synthetic SPEC CPU2000-like workload suite.

The original evaluation runs 22 SPEC CPU2000 programs (11 integer, 11
floating-point) compiled for IA-64 with MinneSpec inputs.  Neither the
benchmarks, the inputs, nor the IA-64 compiler are redistributable, so this
package provides 22 *synthetic* programs whose **branch populations** are
engineered to reproduce the properties the paper's mechanisms interact with:

* a mix of well-biased, loop-control and genuinely hard-to-predict branches,
  with per-program misprediction rates spanning the few-percent to
  mid-teens range reported in Figures 5 and 6;
* *hard* branches guarding small hammock/diamond/escape regions, which the
  profile-guided if-converter removes (these are the branches whose history
  the conventional predictor loses);
* *correlated* branches whose outcome is a (noisy, lagged) boolean function
  of the hard branches' conditions — predictable through global history when
  that history is available, nearly unpredictable otherwise;
* compares scheduled both far from and adjacent to their consuming branches,
  so a realistic fraction of branches becomes early-resolved;
* integer programs heavy in control, floating-point programs dominated by
  predictable loop control and arithmetic.

Every program is a deterministic function of its name (fixed seed), so the
non-if-converted and if-converted binaries of a benchmark are guaranteed to
come from identical sources.

Beyond the built-in suite, the package hosts the **custom-workload
subsystem** (``docs/workloads.md``): declarative trait-spec files
(:mod:`repro.workloads.workload_spec`), CBP-style branch-trace ingestion
(:mod:`repro.workloads.trace_ingest`), and the registry that unifies all
of them behind one lookup with content fingerprints folded into engine
cache keys (:mod:`repro.workloads.registry`).
"""

from repro.workloads.traits import (
    CorrelatedBranchSpec,
    EasyBranchSpec,
    HardRegionSpec,
    RegionKind,
    WorkloadTraits,
)
from repro.workloads.generators import ConditionStreams, generate_condition_streams
from repro.workloads.kernels import build_program_from_traits
from repro.workloads.spec_suite import (
    SPEC_SUITE,
    build_workload,
    fp_workload_names,
    integer_workload_names,
    workload_names,
    workload_traits,
)
from repro.workloads.workload_spec import (
    WorkloadSpecError,
    load_workload_file,
    parse_workload,
    spec_document,
)
from repro.workloads.trace_ingest import (
    IngestedWorkload,
    TraceIngestError,
    ingest_trace_file,
    ingest_trace_text,
)
from repro.workloads.registry import (
    UnknownWorkloadError,
    WorkloadDefinition,
    registry_names,
    resolve_workload,
    workload_fingerprint,
)

__all__ = [
    "CorrelatedBranchSpec",
    "EasyBranchSpec",
    "HardRegionSpec",
    "RegionKind",
    "WorkloadTraits",
    "ConditionStreams",
    "generate_condition_streams",
    "build_program_from_traits",
    "SPEC_SUITE",
    "build_workload",
    "workload_names",
    "integer_workload_names",
    "fp_workload_names",
    "workload_traits",
    "WorkloadSpecError",
    "load_workload_file",
    "parse_workload",
    "spec_document",
    "IngestedWorkload",
    "TraceIngestError",
    "ingest_trace_file",
    "ingest_trace_text",
    "UnknownWorkloadError",
    "WorkloadDefinition",
    "registry_names",
    "resolve_workload",
    "workload_fingerprint",
]
