"""The HTTP skin of the experiment service: ``repro serve``'s daemon.

A deliberately small, versioned HTTP+JSON API over
:class:`~repro.serve.service.ExperimentService`, built on the stdlib
:class:`http.server.ThreadingHTTPServer` (no new dependencies):

==============================  =======================================
``POST /v1/jobs``               submit a scenario/cells job document;
                                returns ``202 {"id", "state", ...}``
``GET /v1/jobs``                list every job's status snapshot
``GET /v1/jobs/<id>``           one job's status, with per-job
                                ``EngineStats`` and ``JobTiming`` records
``GET /v1/jobs/<id>/result``    the finished job's result — rendered
                                table (``?format=table``, the default,
                                as ``text/plain``) or raw counters
                                (``?format=json``)
``GET /v1/store/stats``         per-kind artifact counts/bytes, the
                                eviction budget and what it removed
``GET /v1/health``              liveness probe with degradation detail
                                (workers lost, jobs timed out,
                                quarantined artifacts, journal-recovered
                                jobs)
==============================  =======================================

Errors are JSON too: ``400`` for invalid documents (the
:class:`~repro.serve.service.SubmitError` message verbatim), ``404`` for
unknown paths/ids, ``409`` for a result requested before the job finished.

:func:`make_server` binds (port ``0`` picks a free port — the chosen one is
in ``server.server_address``); :func:`serve_until_shutdown` runs the accept
loop and arranges a clean SIGTERM/SIGINT shutdown, which is what the CLI's
``repro serve`` command and the CI smoke test drive.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.serve.service import DONE, ExperimentService, SubmitError

#: The API version prefix every route lives under.
API_VERSION = "v1"


class ServeHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ExperimentService`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: ExperimentService) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = True


class _Handler(BaseHTTPRequestHandler):
    """Routes ``/v1/...`` requests onto the server's service."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", True):  # pragma: no cover - debug aid
            super().log_message(format, *args)

    @property
    def service(self) -> ExperimentService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def _send(self, status: int, payload: Any, content_type: str = "application/json") -> None:
        if content_type == "application/json":
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
        else:
            body = str(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        if parsed.path.rstrip("/") != f"/{API_VERSION}/jobs":
            self._error(404, f"unknown endpoint {parsed.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self._error(400, "invalid Content-Length")
            return
        try:
            document = json.loads(self.rfile.read(length) or b"{}")
        except ValueError as error:
            self._error(400, f"invalid JSON body: {error}")
            return
        try:
            record = self.service.submit(document)
        except SubmitError as error:
            self._error(400, str(error))
            return
        self._send(202, record.snapshot())

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        if not parts or parts[0] != API_VERSION:
            self._error(404, f"unknown endpoint {parsed.path} (expected /{API_VERSION}/...)")
            return
        route = parts[1:]
        if route == ["health"]:
            payload = self.service.health()
            payload["version"] = API_VERSION
            self._send(200, payload)
            return
        if route == ["store", "stats"]:
            self._send(200, self.service.store_stats())
            return
        if route == ["jobs"]:
            self._send(
                200,
                {"jobs": [record.snapshot() for record in self.service.list_jobs()]},
            )
            return
        if len(route) >= 2 and route[0] == "jobs":
            try:
                record = self.service.job(route[1])
            except KeyError:
                self._error(404, f"unknown job id {route[1]!r}")
                return
            if len(route) == 2:
                self._send(200, record.snapshot())
                return
            if len(route) == 3 and route[2] == "result":
                self._serve_result(record, parsed.query)
                return
        self._error(404, f"unknown endpoint {parsed.path}")

    def _serve_result(self, record, query: str) -> None:
        formats = parse_qs(query).get("format", ["table"])
        format_ = formats[-1]
        if format_ not in ("table", "json"):
            self._error(400, f"unknown result format {format_!r} (expected table|json)")
            return
        if record.state != DONE:
            self._error(
                409,
                f"job {record.id} has no result yet (state: {record.state}"
                + (f", error: {record.error}" if record.error else "")
                + ")",
            )
            return
        if format_ == "json":
            self._send(200, {"id": record.id, "cells": record.result_json})
            return
        self._send(200, record.result_text, content_type="text/plain; charset=utf-8")


# ----------------------------------------------------------------------
# Daemon entry points
# ----------------------------------------------------------------------
def make_server(
    service: ExperimentService, host: str = "127.0.0.1", port: int = 0
) -> ServeHTTPServer:
    """Bind the service to ``host:port`` (``port=0`` picks a free port)."""
    server = ServeHTTPServer((host, port), service)
    service.start()
    return server


def serve_until_shutdown(
    server: ServeHTTPServer, install_signal_handlers: bool = True
) -> None:
    """Run the accept loop until SIGTERM/SIGINT (or ``server.shutdown()``).

    The signal handler triggers :meth:`~socketserver.BaseServer.shutdown`
    from a helper thread (calling it from the handler's own frame would
    deadlock the accept loop) and then drains the service's workers, so a
    SIGTERM'd daemon exits cleanly — the contract the CI smoke test checks.
    """
    stop = threading.Event()

    def _shutdown(signum: Optional[int] = None, frame: Any = None) -> None:
        if stop.is_set():
            return
        stop.set()
        threading.Thread(target=server.shutdown, daemon=True).start()

    if install_signal_handlers:
        signal.signal(signal.SIGTERM, _shutdown)
        signal.signal(signal.SIGINT, _shutdown)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
        server.service.shutdown(wait=False)
