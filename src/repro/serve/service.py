"""The experiment service: a job scheduler over one shared artifact store.

:class:`ExperimentService` is the in-process heart of the ``repro serve``
daemon (the HTTP layer in :mod:`repro.serve.http` is a thin skin over it).
Clients submit *job documents* — the same scenario/cell descriptions the
sweep and engine layers already validate — and a pool of worker threads
runs them through the unified :func:`repro.engine.run.run_cells` entrypoint
onto one shared :class:`~repro.engine.store.ArtifactStore`.

Two multi-tenant properties live here:

* **Request coalescing** — before executing, a job plans its deduplicated
  graph and checks every simulate key against the service-wide in-flight
  registry.  Keys another job is currently computing are *waited on*, not
  recomputed; once the owning job finishes, the waiter's engine run serves
  them straight from the store.  Two clients submitting the same sweep
  therefore cost one set of simulations: the second job's
  :class:`~repro.engine.EngineStats` shows ``simulations_run == 0``.
  The claim step is all-or-nothing under one lock and a job never *holds*
  claims while waiting on foreign keys, so overlapping jobs cannot
  deadlock.
* **Size-gated eviction** — with ``max_store_bytes`` set, every job
  completion triggers :meth:`~repro.engine.store.ArtifactStore.evict`:
  least-recently-hit artifacts are dropped (hot keys survive, because every
  cache hit refreshes an artifact's last-hit time) until the store fits the
  budget.  Artifacts of still-running jobs are protected.

Fault tolerance adds two more:

* **Job deadlines** — with ``job_timeout`` set, a job that has not
  finished within the window is failed and its coalescing claims released,
  so waiters re-plan against the store instead of hanging on a wedged job.
* **The job journal** — with ``journal`` set, every submission and state
  transition appends one JSONL event; a restarted daemon replays it, so
  previously completed jobs stay listable (and their results servable),
  jobs that died mid-run are reported ``failed``, and jobs that never
  started are re-queued.
"""

from __future__ import annotations

import dataclasses
import json
import os
import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.engine.executor import ExecutionEngine
from repro.engine.jobs import FLAVOURS, IF_CONVERTED, SchemeSpec
from repro.engine.planner import CellRequest, ExperimentDefinition
from repro.engine.run import run_cells
from repro.engine.store import ArtifactStore
from repro.log import get_logger
from repro.pipeline.machine import MachineSpec

_log = get_logger(__name__)

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Scheme kinds a cell document may request (mirrors the factory registry,
#: :data:`repro.experiments.setup.SCHEME_FACTORIES`).
_SCHEME_KINDS = ("conventional", "pep-pa", "predicate", "predicate-aware", "wish")


class SubmitError(ValueError):
    """A submitted job document is malformed or semantically invalid."""


# ----------------------------------------------------------------------
# Job records
# ----------------------------------------------------------------------
@dataclass
class JobRecord:
    """One submitted job: lifecycle state plus the engine's accounting."""

    id: str
    kind: str  # "scenario" | "cells"
    title: str
    state: str = QUEUED
    error: Optional[str] = None
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    #: Planned deduplicated job counts (builds/traces/simulations).
    planned: Dict[str, int] = field(default_factory=dict)
    #: Simulate keys served by waiting on another job's in-flight work.
    coalesced_keys: int = 0
    #: The engine's EngineStats.as_dict() after the run.
    stats: Optional[Dict[str, Any]] = None
    #: Per-simulate-job JobTiming records as dicts.
    timings: List[Dict[str, Any]] = field(default_factory=list)
    #: Rendered report text and raw per-cell counters, set on completion.
    result_text: Optional[str] = None
    result_json: Optional[Any] = None
    #: True when this record was reconstructed from the job journal after
    #: a daemon restart (its results come from the journal/store, not from
    #: an execution in this process).
    recovered: bool = False
    #: Signalled when the job reaches a terminal state.
    done_event: threading.Event = field(default_factory=threading.Event, repr=False)

    def snapshot(self) -> Dict[str, Any]:
        """The job's wire form for ``GET /v1/jobs/<id>`` (no result payload)."""
        return {
            "id": self.id,
            "kind": self.kind,
            "title": self.title,
            "state": self.state,
            "error": self.error,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "planned": dict(self.planned),
            "coalesced_keys": self.coalesced_keys,
            "stats": dict(self.stats) if self.stats is not None else None,
            "timings": list(self.timings),
            "recovered": self.recovered,
        }


@dataclass
class _ParsedJob:
    """A validated submission, ready to execute."""

    kind: str
    title: str
    requests: List[CellRequest]
    instructions: int
    scenario: Any = None  # sweep Scenario for scenario jobs


# ----------------------------------------------------------------------
# Submission parsing (eager validation, like the scenario loader)
# ----------------------------------------------------------------------
def parse_submission(
    document: Mapping[str, Any], default_instructions: Optional[int] = None
) -> _ParsedJob:
    """Validate one job document; raise :class:`SubmitError` on any problem.

    Two document shapes are accepted (exactly one of ``scenario``/``cells``):

    * ``{"scenario": <name or inline scenario document>, "instructions": N?}``
      — the same TOML/JSON scenario documents ``repro sweep`` runs, by
      built-in name or inline; ``instructions`` overrides the scenario's
      budget (mirroring the CLI's ``--instructions``).
    * ``{"cells": [{"benchmark": ..., "flavour"?, "scheme"?, "machine"?,
      "label"?}, ...], "instructions": N?}`` — explicit cell requests;
      ``scheme`` is a kind name or ``{"kind": ..., "options": {...}}`` and
      ``machine`` a mapping of Table 1 overrides.
    """
    if not isinstance(document, Mapping):
        raise SubmitError(
            f"job document must be a JSON object, got {type(document).__name__}"
        )
    unknown = set(document) - {"scenario", "cells", "instructions"}
    if unknown:
        raise SubmitError(
            f"unknown job document key(s) {sorted(unknown)}; "
            "expected 'scenario' or 'cells' plus optional 'instructions'"
        )
    has_scenario = "scenario" in document
    has_cells = "cells" in document
    if has_scenario == has_cells:
        raise SubmitError("a job document needs exactly one of 'scenario' or 'cells'")
    instructions = document.get("instructions", None)
    if instructions is not None and (
        isinstance(instructions, bool)
        or not isinstance(instructions, int)
        or instructions < 1
    ):
        raise SubmitError(
            f"'instructions' must be a positive integer, got {instructions!r}"
        )
    if has_scenario:
        return _parse_scenario_job(document["scenario"], instructions)
    return _parse_cells_job(document["cells"], instructions, default_instructions)


def _parse_scenario_job(raw: Any, instructions: Optional[int]) -> _ParsedJob:
    from repro.sweep.scenario import ScenarioError, load_scenario, parse_scenario
    from repro.sweep.spec import SweepSpec

    try:
        if isinstance(raw, str):
            scenario = load_scenario(raw)
        elif isinstance(raw, Mapping):
            scenario = parse_scenario(raw, source="<submitted scenario>")
        else:
            raise SubmitError(
                "'scenario' must be a built-in name or an inline scenario "
                f"document, got {type(raw).__name__}"
            )
    except ScenarioError as error:
        raise SubmitError(str(error)) from None
    if instructions is not None:
        scenario = dataclasses.replace(scenario, instructions=instructions)
    spec = SweepSpec(scenario)
    return _ParsedJob(
        kind="scenario",
        title=f"sweep:{scenario.name}",
        requests=list(spec.definition().requests),
        instructions=scenario.instructions,
        scenario=scenario,
    )


def _parse_cells_job(
    raw: Any, instructions: Optional[int], default_instructions: Optional[int]
) -> _ParsedJob:
    from repro.workloads.registry import UnknownWorkloadError, resolve_workload
    from repro.workloads.trace_ingest import TraceIngestError
    from repro.workloads.workload_spec import WorkloadSpecError

    if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)) or not raw:
        raise SubmitError("'cells' must be a non-empty list of cell objects")
    budget = instructions or default_instructions or 20_000
    requests: List[CellRequest] = []
    labels: Set[Tuple[str, str]] = set()
    for index, cell in enumerate(raw):
        what = f"cells[{index}]"
        if not isinstance(cell, Mapping):
            raise SubmitError(f"{what} must be an object, got {type(cell).__name__}")
        unknown = set(cell) - {"benchmark", "flavour", "scheme", "machine", "label"}
        if unknown:
            raise SubmitError(f"{what}: unknown key(s) {sorted(unknown)}")
        benchmark = cell.get("benchmark")
        if not isinstance(benchmark, str) or not benchmark:
            raise SubmitError(f"{what}: 'benchmark' must be a non-empty string")
        try:
            resolve_workload(benchmark)
        except (UnknownWorkloadError, WorkloadSpecError, TraceIngestError) as error:
            raise SubmitError(f"{what}: {error}") from None
        flavour = cell.get("flavour", IF_CONVERTED)
        if flavour not in FLAVOURS:
            raise SubmitError(
                f"{what}: unknown flavour {flavour!r}; expected one of {FLAVOURS}"
            )
        scheme = _parse_scheme(cell.get("scheme", "predicate"), what)
        machine = _parse_machine(cell.get("machine", {}), what)
        label = cell.get("label") or f"{scheme.describe()}@{machine.describe()}"
        if not isinstance(label, str):
            raise SubmitError(f"{what}: 'label' must be a string")
        if (benchmark, label) in labels:
            raise SubmitError(
                f"{what}: duplicate (benchmark, label) ({benchmark!r}, {label!r}); "
                "give duplicate cells distinct labels"
            )
        labels.add((benchmark, label))
        requests.append(
            CellRequest(
                benchmark=benchmark,
                flavour=flavour,
                label=label,
                scheme=scheme,
                machine=machine,
            )
        )
    return _ParsedJob(
        kind="cells",
        title=f"{len(requests)} cell(s)",
        requests=requests,
        instructions=budget,
    )


def _parse_scheme(raw: Any, what: str) -> SchemeSpec:
    if isinstance(raw, str):
        kind, options = raw, {}
    elif isinstance(raw, Mapping):
        unknown = set(raw) - {"kind", "options"}
        if unknown:
            raise SubmitError(f"{what}.scheme: unknown key(s) {sorted(unknown)}")
        kind = raw.get("kind")
        options = raw.get("options", {})
        if not isinstance(options, Mapping):
            raise SubmitError(f"{what}.scheme: 'options' must be an object")
    else:
        raise SubmitError(
            f"{what}: 'scheme' must be a kind name or {{'kind', 'options'}} object"
        )
    if kind not in _SCHEME_KINDS:
        raise SubmitError(
            f"{what}: unknown scheme kind {kind!r}; expected one of {_SCHEME_KINDS}"
        )
    spec = SchemeSpec.make(kind, **dict(options))
    try:
        spec.build()  # surface bad option names/values at submit time
    except (TypeError, ValueError) as error:
        raise SubmitError(f"{what}.scheme: {error}") from None
    return spec


def _parse_machine(raw: Any, what: str) -> MachineSpec:
    if not isinstance(raw, Mapping):
        raise SubmitError(f"{what}: 'machine' must be an object of overrides")
    try:
        return MachineSpec.make(**dict(raw))
    except (TypeError, ValueError) as error:
        raise SubmitError(f"{what}.machine: {error}") from None


# ----------------------------------------------------------------------
# The job journal
# ----------------------------------------------------------------------
class JobTimeoutError(RuntimeError):
    """A job exceeded the service's per-job deadline."""


class JobJournal:
    """An append-only JSONL record of job lifecycle events.

    Each line is one event object: ``submitted`` (with the original job
    document), ``started``, ``done`` (with the rendered results and engine
    stats) or ``failed`` (with the error).  The format is recovery-first:
    :meth:`replay` tolerates a truncated final line (the daemon may have
    died mid-append), and ``done`` events carry the full result payload so
    a restarted daemon serves prior results without re-running anything.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()

    def append(self, event: Dict[str, Any]) -> None:
        """Append one event line (best-effort: IO errors are logged, not raised)."""
        try:
            line = json.dumps(event, sort_keys=True, default=str)
        except (TypeError, ValueError) as error:  # pragma: no cover - defensive
            _log.warning("journal event not serialisable (%s); dropped", error)
            return
        try:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            with self._lock, open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
        except OSError as error:
            _log.warning("journal append to %s failed: %s", self.path, error)

    def replay(self) -> List[Dict[str, Any]]:
        """Every well-formed event, in order (missing file → empty list)."""
        events: List[Dict[str, Any]] = []
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        event = json.loads(line)
                    except ValueError:
                        # A torn final line from a crashed append; any
                        # malformed interior line is equally skippable.
                        continue
                    if isinstance(event, dict):
                        events.append(event)
        except OSError:
            return []
        return events


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class ExperimentService:
    """Schedules submitted jobs onto one shared store, with coalescing."""

    def __init__(
        self,
        store: ArtifactStore,
        *,
        jobs: int = 1,
        workers: int = 2,
        max_store_bytes: Optional[int] = None,
        default_instructions: Optional[int] = None,
        job_timeout: Optional[float] = None,
        journal: Optional[JobJournal] = None,
        checkpoint_every: Optional[int] = None,
    ) -> None:
        if store is None:
            raise ValueError(
                "ExperimentService needs an ArtifactStore: coalescing and "
                "cross-job deduplication hand results over through it"
            )
        if max_store_bytes is not None and max_store_bytes < 1:
            raise ValueError(
                f"max_store_bytes must be a positive integer, got {max_store_bytes}"
            )
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError(f"job_timeout must be positive, got {job_timeout}")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be a positive integer, got {checkpoint_every}"
            )
        self.store = store
        #: Rows per mid-simulation resume checkpoint for every job's engine
        #: (None = off).  A job killed by a crash or deadline resumes from
        #: its last checkpoint when retried instead of starting over.
        self.checkpoint_every = checkpoint_every
        self.jobs = max(1, int(jobs))
        self.workers = max(1, int(workers))
        self.max_store_bytes = max_store_bytes
        self.default_instructions = default_instructions
        self.job_timeout = job_timeout
        self.journal = journal
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Optional[JobRecord]]" = queue.Queue()
        self._records: Dict[str, JobRecord] = {}
        self._parsed: Dict[str, _ParsedJob] = {}
        #: simulate key → Event of the job currently computing it.
        self._inflight: Dict[str, threading.Event] = {}
        #: job id → every artifact key its graph touches (eviction shield).
        self._protected: Dict[str, Set[str]] = {}
        self._evicted = {"count": 0, "bytes": 0}
        self._timed_out = 0
        self._recovered = 0
        self._started = False
        self._threads: List[threading.Thread] = []
        if journal is not None:
            self._recover(journal.replay())

    # ------------------------------------------------------------------
    # Journal recovery
    # ------------------------------------------------------------------
    def _recover(self, events: List[Dict[str, Any]]) -> None:
        """Rebuild job records from a prior daemon's journal events.

        Jobs that finished (``done``/``failed``) come back as terminal
        records — listable, waitable, their results served straight from
        the journal.  Jobs that had ``started`` but never finished were
        killed with the old daemon and are reported ``failed``.  Jobs that
        were only ever ``submitted`` never ran at all: their documents are
        re-validated and re-queued.
        """
        latest: Dict[str, Dict[str, Any]] = {}
        order: List[str] = []
        for event in events:
            job_id = event.get("id")
            if not isinstance(job_id, str):
                continue
            if job_id not in latest:
                latest[job_id] = {}
                order.append(job_id)
            latest[job_id][event.get("event")] = event
        requeue: List[Tuple[JobRecord, _ParsedJob]] = []
        for job_id in order:
            seen = latest[job_id]
            submitted = seen.get("submitted", {})
            record = JobRecord(
                id=job_id,
                kind=submitted.get("kind", "cells"),
                title=submitted.get("title", "recovered job"),
                recovered=True,
            )
            if isinstance(submitted.get("created"), (int, float)):
                record.created = submitted["created"]
            if "done" in seen:
                done = seen["done"]
                record.state = DONE
                record.finished = done.get("time")
                record.result_text = done.get("result_text")
                record.result_json = done.get("result_json")
                record.stats = done.get("stats")
                record.planned = done.get("planned") or {}
                record.coalesced_keys = done.get("coalesced_keys") or 0
                record.done_event.set()
            elif "failed" in seen:
                record.state = FAILED
                record.error = seen["failed"].get("error") or "failed"
                record.finished = seen["failed"].get("time")
                record.done_event.set()
            elif "started" in seen:
                record.state = FAILED
                record.error = "interrupted by daemon restart"
                record.finished = time.time()
                record.done_event.set()
            else:
                # Submitted but never started: run it on this daemon.
                document = submitted.get("document")
                try:
                    parsed = parse_submission(
                        document or {}, self.default_instructions
                    )
                except SubmitError as error:
                    record.state = FAILED
                    record.error = f"re-queue after restart failed: {error}"
                    record.finished = time.time()
                    record.done_event.set()
                else:
                    record.state = QUEUED
                    requeue.append((record, parsed))
            self._records[job_id] = record
            self._recovered += 1
        if self._recovered:
            _log.info(
                "journal recovery: %d prior jobs restored (%d re-queued)",
                self._recovered,
                len(requeue),
            )
        for record, parsed in requeue:
            self._parsed[record.id] = parsed
        # Enqueue after every record exists; the jobs run once the worker
        # threads start (first submission, or the daemon's explicit start).
        for record, _ in requeue:
            self._queue.put(record)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the worker threads (idempotent)."""
        with self._lock:
            if self._started:
                return
            self._started = True
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-serve-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    def shutdown(self, wait: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the workers; with ``wait`` block until they drain."""
        with self._lock:
            threads, self._threads = self._threads, []
            self._started = False
        for _ in threads:
            self._queue.put(None)
        if wait:
            for thread in threads:
                thread.join(timeout)

    # ------------------------------------------------------------------
    # Submission and inspection
    # ------------------------------------------------------------------
    def submit(self, document: Mapping[str, Any]) -> JobRecord:
        """Validate ``document``, enqueue it, and return its job record."""
        parsed = parse_submission(document, self.default_instructions)
        record = JobRecord(
            id=uuid.uuid4().hex[:12], kind=parsed.kind, title=parsed.title
        )
        with self._lock:
            self._records[record.id] = record
            self._parsed[record.id] = parsed
        if self.journal is not None:
            self.journal.append(
                {
                    "event": "submitted",
                    "id": record.id,
                    "kind": record.kind,
                    "title": record.title,
                    "created": record.created,
                    "document": dict(document),
                }
            )
        self.start()
        self._queue.put(record)
        return record

    def job(self, job_id: str) -> JobRecord:
        """The record of one job (:class:`KeyError` for unknown ids)."""
        with self._lock:
            return self._records[job_id]

    def list_jobs(self) -> List[JobRecord]:
        """Every job record, oldest first."""
        with self._lock:
            return sorted(self._records.values(), key=lambda record: record.created)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> JobRecord:
        """Block until one job reaches a terminal state (or ``timeout``)."""
        record = self.job(job_id)
        record.done_event.wait(timeout)
        return record

    def store_stats(self) -> Dict[str, Any]:
        """Per-kind store usage plus the service's eviction accounting."""
        usage = self.store.usage()
        with self._lock:
            evicted = dict(self._evicted)
            inflight = len(self._inflight)
        return {
            "root": self.store.root,
            "kinds": usage,
            "max_store_bytes": self.max_store_bytes,
            "evicted": evicted,
            "inflight_keys": inflight,
        }

    def health(self) -> Dict[str, Any]:
        """Service health with degradation detail (``GET /v1/health``).

        ``status`` is ``"degraded"`` when any fault-recovery machinery has
        fired — workers lost or jobs timed out/retried, artifacts sitting
        in quarantine, or jobs recovered from a prior daemon's journal —
        and ``"ok"`` otherwise.  Degraded is informational, not fatal: it
        means the service *survived* something worth investigating.
        """
        with self._lock:
            records = list(self._records.values())
            timed_out = self._timed_out
            recovered = self._recovered
        workers_lost = 0
        jobs_retried = 0
        for record in records:
            stats = record.stats or {}
            workers_lost += int(stats.get("workers_lost", 0) or 0)
            jobs_retried += int(stats.get("jobs_retried", 0) or 0)
        quarantined = self.store.quarantine_usage()
        degraded = bool(
            workers_lost or jobs_retried or timed_out or quarantined["count"]
            or recovered
        )
        return {
            "status": "degraded" if degraded else "ok",
            "workers_lost": workers_lost,
            "jobs_retried": jobs_retried,
            "jobs_timed_out": timed_out,
            "quarantined": quarantined,
            "recovered_jobs": recovered,
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            record = self._queue.get()
            if record is None:
                return
            try:
                self._execute(record)
            except Exception as error:  # noqa: BLE001 - job isolation boundary
                record.state = FAILED
                record.error = f"{type(error).__name__}: {error}"
                record.finished = time.time()
                if isinstance(error, JobTimeoutError):
                    with self._lock:
                        self._timed_out += 1
                _log.warning("job %s failed: %s", record.id, record.error)
                if self.journal is not None:
                    self.journal.append(
                        {
                            "event": "failed",
                            "id": record.id,
                            "time": record.finished,
                            "error": record.error,
                        }
                    )
                record.done_event.set()

    def _engine(self, parsed: _ParsedJob) -> ExecutionEngine:
        from repro.experiments.setup import ExperimentProfile

        if parsed.kind == "scenario":
            from repro.sweep.runner import sweep_profile

            profile = sweep_profile(parsed.scenario)
        else:
            benchmarks: List[str] = []
            for request in parsed.requests:
                if request.benchmark not in benchmarks:
                    benchmarks.append(request.benchmark)
            profile = ExperimentProfile(
                name="serve",
                instructions_per_benchmark=parsed.instructions,
                benchmarks=benchmarks,
                profile_budget=min(parsed.instructions, 20_000),
            )
        return ExecutionEngine(
            profile=profile,
            store=self.store,
            jobs=self.jobs,
            checkpoint_every=self.checkpoint_every,
        )

    def _execute(self, record: JobRecord) -> None:
        with self._lock:
            parsed = self._parsed[record.id]
        record.state = RUNNING
        record.started = time.time()
        if self.journal is not None:
            self.journal.append(
                {"event": "started", "id": record.id, "time": record.started}
            )
        engine = self._engine(parsed)
        definition = ExperimentDefinition(
            name=record.id, requests=list(parsed.requests)
        )
        graph = engine.plan([definition])
        record.planned = graph.job_counts()
        simulate_keys = list(graph.simulations)
        protect = (
            set(graph.builds) | set(graph.traces) | set(graph.simulations)
        )
        own = threading.Event()
        claimed: List[str] = []
        waited: Set[str] = set()
        with self._lock:
            self._protected[record.id] = protect
        try:
            self._claim_or_wait(simulate_keys, own, claimed, waited)
            record.coalesced_keys = len(waited)
            outcome = self._run_with_deadline(record, parsed, definition, engine)
        finally:
            # Releases this job's claims whether it finished, failed or
            # timed out — waiters wake, re-check the store, and re-plan
            # whatever is missing instead of hanging on a dead job.
            with self._lock:
                for key in claimed:
                    self._inflight.pop(key, None)
                self._protected.pop(record.id, None)
            own.set()
        record.stats = outcome.stats.as_dict()
        record.timings = [dataclasses.asdict(timing) for timing in outcome.timings]
        self._render(record, parsed, outcome)
        record.state = DONE
        record.finished = time.time()
        if self.journal is not None:
            self.journal.append(
                {
                    "event": "done",
                    "id": record.id,
                    "time": record.finished,
                    "planned": dict(record.planned),
                    "coalesced_keys": record.coalesced_keys,
                    "stats": dict(record.stats),
                    "result_text": record.result_text,
                    "result_json": record.result_json,
                }
            )
        # Evict before signalling completion so a client that saw the job
        # finish also sees the store back under budget.
        self._evict()
        record.done_event.set()

    def _run_with_deadline(self, record, parsed, definition, engine):
        """Run one job's cells, enforcing the service's per-job deadline.

        Without a deadline the run happens inline.  With one, it happens in
        a helper thread joined for ``job_timeout`` seconds; on expiry this
        raises :class:`JobTimeoutError` (failing the job and releasing its
        claims) while the orphaned run finishes into the store, where its
        artifacts benefit whoever re-plans the work.
        """
        if self.job_timeout is None:
            return run_cells(parsed.requests, name=definition.name, engine=engine)
        box: Dict[str, Any] = {}

        def _target() -> None:
            try:
                box["outcome"] = run_cells(
                    parsed.requests, name=definition.name, engine=engine
                )
            except BaseException as error:  # noqa: BLE001 - crosses threads
                box["error"] = error

        thread = threading.Thread(
            target=_target, name=f"repro-serve-job-{record.id}", daemon=True
        )
        thread.start()
        thread.join(self.job_timeout)
        if thread.is_alive():
            raise JobTimeoutError(
                f"job exceeded the {self.job_timeout:.1f}s deadline"
            )
        if "error" in box:
            raise box["error"]
        return box["outcome"]

    def _claim_or_wait(
        self,
        simulate_keys: List[str],
        own: threading.Event,
        claimed: List[str],
        waited: Set[str],
    ) -> None:
        """Coalesce against in-flight work, then claim what remains.

        Loops until no foreign job holds any of ``simulate_keys``: each pass
        waits (holding no claims, so overlapping jobs cannot deadlock) for
        every foreign in-flight event, then re-checks.  On the final pass it
        atomically claims every key not already in the store, which is what
        makes a concurrent duplicate submission wait instead of re-running.
        """
        from repro.engine.store import RESULTS

        while True:
            with self._lock:
                foreign = {
                    key: self._inflight[key]
                    for key in simulate_keys
                    if key in self._inflight
                }
                if not foreign:
                    for key in simulate_keys:
                        if not self.store.contains(RESULTS, key):
                            self._inflight[key] = own
                            claimed.append(key)
                    return
                waited.update(foreign)
            for event in foreign.values():
                event.wait()

    def _render(self, record: JobRecord, parsed: _ParsedJob, outcome) -> None:
        """Fill ``result_text``/``result_json`` from a finished run."""
        if parsed.kind == "scenario":
            from repro.sweep.report import render_sweep
            from repro.sweep.runner import SweepRun
            from repro.sweep.spec import SweepSpec

            spec = SweepSpec(parsed.scenario)
            run = SweepRun(scenario=parsed.scenario, spec=spec, stats=outcome.stats)
            by_label = {
                label: (scheme, point)
                for (scheme, label), point in spec.labels().items()
            }
            rows = []
            for (benchmark, label), result in outcome.results.items():
                scheme, point = by_label[label]
                run.results[(scheme, point, benchmark)] = result
                rows.append(_result_row(result, benchmark, scheme, point.describe()))
            record.result_text = render_sweep(run)
            record.result_json = rows
            return
        by_request = {
            (request.benchmark, request.label): request for request in parsed.requests
        }
        rows = []
        lines = [f"{'benchmark':16s} {'label':32s} {'IPC':>7s} {'mispredict':>10s}"]
        for (benchmark, label), result in outcome.results.items():
            request = by_request[(benchmark, label)]
            rows.append(
                _result_row(result, benchmark, request.scheme.describe(), label)
            )
            lines.append(
                f"{benchmark:16s} {label:32s} {result.metrics.ipc:7.3f} "
                f"{100 * result.accuracy.misprediction_rate:9.2f}%"
            )
        record.result_text = "\n".join(lines)
        record.result_json = rows

    def _evict(self) -> None:
        if self.max_store_bytes is None:
            return
        with self._lock:
            protect: Set[str] = set(self._inflight)
            for keys in self._protected.values():
                protect |= keys
        removed = self.store.evict(self.max_store_bytes, protect=protect)
        with self._lock:
            self._evicted["count"] += removed["count"]
            self._evicted["bytes"] += removed["bytes"]


def _result_row(result, benchmark: str, scheme: str, label: str) -> Dict[str, Any]:
    """One simulation result as a flat JSON-ready counter row."""
    metrics = result.metrics
    accuracy = result.accuracy
    return {
        "benchmark": benchmark,
        "scheme": scheme,
        "label": label,
        "ipc": metrics.ipc,
        "cycles": metrics.cycles,
        "instructions": metrics.committed_instructions,
        "branches": accuracy.branches,
        "misprediction_rate": accuracy.misprediction_rate,
    }
