"""The experiment service: a job daemon over the experiment engine.

``repro serve`` turns the repository's batch engine into a long-lived
service: clients POST scenario or cell documents to a versioned HTTP+JSON
API, a scheduler runs them through the existing planner/executor (lane
batching, artifact cache and all), and duplicate in-flight submissions
**coalesce** — two clients asking for the same cell key share one
simulation, with the second served entirely from the store.

Two layers:

* :mod:`repro.serve.service` — :class:`ExperimentService`, the in-process
  scheduler: worker threads, job records, request coalescing and
  size-gated LRU eviction (``--max-store-bytes``);
* :mod:`repro.serve.http` — the stdlib HTTP daemon exposing it under
  ``/v1/...`` (:func:`make_server`, :func:`serve_until_shutdown`).

Clients talk to a running daemon via :class:`repro.client.ServeClient` or
the ``repro submit`` CLI.
"""

from repro.serve.http import (
    API_VERSION,
    ServeHTTPServer,
    make_server,
    serve_until_shutdown,
)
from repro.serve.service import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    ExperimentService,
    JobRecord,
    SubmitError,
)

__all__ = [
    "API_VERSION",
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "ExperimentService",
    "JobRecord",
    "ServeHTTPServer",
    "SubmitError",
    "make_server",
    "serve_until_shutdown",
]
