"""Global and local history structures with speculative update and repair.

The history machinery is where the conventional and the predicate-prediction
schemes differ most (section 3.3 of the paper):

* A conventional predictor speculatively updates the global history register
  (GHR) at prediction time and the *same branch* repairs it on a
  misprediction, so no correct-path instruction ever observes a stale bit.
* The predicate predictor's GHR is updated by *compare* instructions, but
  recovery is triggered by the predicate *consumer* (a branch or an
  if-converted instruction).  Compares fetched between the producer and the
  consumer observe the corrupted bit — a genuine accuracy cost that the
  idealized experiments remove.

:class:`GlobalHistoryRegister` therefore assigns a *token* to every pushed
bit so a scheme can later repair exactly that bit (if it is still within the
register) when the computed value disagrees with the prediction.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.predictors.base import fold_pc


class GlobalHistoryRegister:
    """A fixed-width shift register of branch/predicate outcome bits."""

    __slots__ = ("bits", "_value", "_next_token", "_tokens")

    def __init__(self, bits: int) -> None:
        if bits < 1:
            raise ValueError("history register needs at least one bit")
        self.bits = bits
        self._value = 0
        self._next_token = 0
        #: tokens of the bits currently in the register, oldest first.  A
        #: bounded deque makes every push O(1) (a plain list pays an O(bits)
        #: ``pop(0)`` once the register is full).
        self._tokens: Deque[int] = deque(maxlen=bits)

    # ------------------------------------------------------------------
    @property
    def value(self) -> int:
        """Current contents as an integer (bit 0 = most recent outcome)."""
        return self._value

    def snapshot(self) -> Tuple[int, Tuple[int, ...]]:
        """Checkpoint the register (contents + bit tokens)."""
        return self._value, tuple(self._tokens)

    def restore(self, snapshot: Tuple[int, Tuple[int, ...]]) -> None:
        """Restore a previously captured checkpoint."""
        self._value, tokens = snapshot
        self._tokens = deque(tokens, maxlen=self.bits)

    # ------------------------------------------------------------------
    def push(self, outcome: bool) -> int:
        """Shift ``outcome`` in and return the token identifying this bit."""
        token = self._next_token
        self._next_token += 1
        self._value = ((self._value << 1) | (1 if outcome else 0)) & ((1 << self.bits) - 1)
        self._tokens.append(token)  # maxlen evicts the oldest token
        return token

    def push_resolved(self, outcome: bool) -> None:
        """Shift in an already-resolved outcome (no token bookkeeping).

        A conventional predictor's speculative push of its prediction,
        repaired by the *same branch* before any younger instruction reads
        the register, is net-equivalent to pushing the architectural
        outcome.  The lane-batched prediction prepass replays branches in
        program order with resolved outcomes in hand, so it uses this
        collapsed form instead of push-then-repair.
        """
        self._value = (
            (self._value << 1) | (1 if outcome else 0)
        ) & ((1 << self.bits) - 1)
        self._tokens.append(self._next_token)  # keep repair() positions valid
        self._next_token += 1

    def repair(self, token: int, correct_outcome: bool) -> bool:
        """Correct the bit identified by ``token`` if it is still present.

        Returns ``True`` when the bit was found and corrected.  Bits that
        have already been shifted out cannot be repaired — by then they have
        stopped influencing predictions anyway.
        """
        try:
            position_from_old = self._tokens.index(token)
        except ValueError:
            return False
        # tokens list is oldest-first; bit 0 of _value is the newest bit.
        shift = len(self._tokens) - 1 - position_from_old
        mask = 1 << shift
        if correct_outcome:
            self._value |= mask
        else:
            self._value &= ~mask
        return True

    def __repr__(self) -> str:
        return f"<GHR {self._value:0{self.bits}b}>"


class LocalHistoryTable:
    """A table of per-PC local history registers.

    The paper's second-level perceptron uses a 10-bit local history; PEP-PA
    uses 14-bit local histories.  Following the paper's own simplification,
    local histories are updated with resolved outcomes ("updated
    speculatively and correctly recovered on a branch misprediction"), which
    in a correct-path, trace-driven simulation is equivalent to updating with
    the actual outcome at prediction time.
    """

    __slots__ = ("entries", "bits", "_histories", "_mask", "_pc_index")

    def __init__(self, entries: int, bits: int) -> None:
        self.entries = entries
        self.bits = bits
        self._histories: List[int] = [0] * entries
        self._mask = (1 << bits) - 1
        # Pure memo of the pc -> index hash: the set of keys is bounded by
        # the static instructions of a program, and the hash is hot (every
        # perceptron access folds a PC through here).
        self._pc_index: Dict[int, int] = {}

    def _index(self, pc: int) -> int:
        index = self._pc_index.get(pc)
        if index is None:
            index = fold_pc(pc, 16) % self.entries
            self._pc_index[pc] = index
        return index

    def read(self, pc: int) -> int:
        return self._histories[self._index(pc)]

    def update(self, pc: int, outcome: bool) -> None:
        i = self._index(pc)
        self._histories[i] = ((self._histories[i] << 1) | (1 if outcome else 0)) & self._mask

    def read_then_update(self, pc: int, outcome: bool) -> int:
        """Return the current history of ``pc``, then shift ``outcome`` in.

        One index lookup instead of two for the predict-train-adjacent
        access pattern of the lane-batched prediction prepass (the
        perceptron reads the local history to form its input, trains, and
        immediately records the resolved outcome).
        """
        i = self._index(pc)
        history = self._histories[i]
        self._histories[i] = ((history << 1) | (1 if outcome else 0)) & self._mask
        return history

    def storage_bits(self) -> int:
        return self.entries * self.bits

    def __len__(self) -> int:
        return self.entries


class HistorySnapshotManager:
    """Bookkeeping of per-instruction history checkpoints.

    Schemes create a checkpoint when a prediction is made and either discard
    it (correct prediction) or use it during recovery.  Checkpoints are keyed
    by an opaque id chosen by the scheme (the dynamic sequence number).
    """

    def __init__(self) -> None:
        self._snapshots: Dict[int, Tuple[int, Tuple[int, ...]]] = {}

    def save(self, key: int, ghr: GlobalHistoryRegister) -> None:
        self._snapshots[key] = ghr.snapshot()

    def restore(self, key: int, ghr: GlobalHistoryRegister) -> bool:
        snapshot = self._snapshots.pop(key, None)
        if snapshot is None:
            return False
        ghr.restore(snapshot)
        return True

    def discard(self, key: int) -> None:
        self._snapshots.pop(key, None)

    def discard_before(self, key: int) -> None:
        """Drop all snapshots older than ``key`` (retired instructions)."""
        stale = [k for k in self._snapshots if k < key]
        for k in stale:
            del self._snapshots[k]

    def __len__(self) -> int:
        return len(self._snapshots)
