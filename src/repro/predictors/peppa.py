"""PEP-PA: Predicate Enhanced Prediction (August et al., HPCA 1997).

The comparison predictor of section 4.3.  PEP-PA improves a local-history
branch predictor by correlating with the *previous definition* of the
branch's guarding predicate: each branch entry keeps **two** local history
registers, and the previous architectural value of the guarding predicate
register selects which one is used — both for making the prediction and for
updating it afterwards.

On an in-order machine the "previous definition" is well defined; on the
out-of-order core modelled here the logical predicate register file is
written at writeback time, out of program order, which can make the selector
stale or premature.  The paper attributes PEP-PA's poor showing on the
out-of-order core exactly to this effect ("it may be produced by the
out-of-order writing of the predicate registers, which causes it to choose
the local history with a wrong predicate"); the scheme layer reproduces that
behaviour by feeding this structure the logical predicate value as seen at
fetch time of the branch, which reflects whatever writebacks happened to
have completed by then.

The configuration defaults reproduce the 144 KB / 14-bit-local-history
predictor the paper simulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.predictors.base import PredictorSizeReport, fold_pc
from repro.predictors.counters import CounterTable


@dataclass(frozen=True)
class PEPPAConfig:
    """Geometry of the PEP-PA predictor (144 KB by default)."""

    local_bits: int = 14
    branch_entries: int = 40960
    pht_counter_bits: int = 2

    @property
    def pht_entries(self) -> int:
        return 1 << self.local_bits

    def storage_bits(self) -> int:
        histories = self.branch_entries * 2 * self.local_bits
        pht = self.pht_entries * self.pht_counter_bits
        return histories + pht


class PEPPAPredictor:
    """Local-history predictor with predicate-selected dual histories."""

    def __init__(self, config: PEPPAConfig = PEPPAConfig()) -> None:
        self.config = config
        # Two local histories per branch entry, selected by the previous
        # value of the guarding predicate (False -> 0, True -> 1).
        self._histories: List[List[int]] = [
            [0, 0] for _ in range(config.branch_entries)
        ]
        self.pht = CounterTable(config.pht_entries, bits=config.pht_counter_bits, initial=1)
        # Pure memos of the per-PC hashes (bounded by static branch count).
        self._entry_cache: dict = {}
        self._fold_cache: dict = {}

    # ------------------------------------------------------------------
    def _entry_index(self, pc: int) -> int:
        index = self._entry_cache.get(pc)
        if index is None:
            index = fold_pc(pc, 24) % self.config.branch_entries
            self._entry_cache[pc] = index
        return index

    def _pht_index(self, pc: int, history: int) -> int:
        fold = self._fold_cache.get(pc)
        if fold is None:
            fold = fold_pc(pc, self.config.local_bits)
            self._fold_cache[pc] = fold
        return (history ^ fold) & (self.config.pht_entries - 1)

    # ------------------------------------------------------------------
    def predict(self, pc: int, predicate_value: bool) -> bool:
        """Predict the branch at ``pc`` given the previous value of its
        guarding predicate register (as currently visible in the logical
        predicate register file)."""
        entry = self._histories[self._entry_index(pc)]
        history = entry[1 if predicate_value else 0]
        return self.pht.taken(self._pht_index(pc, history))

    def update(self, pc: int, predicate_value: bool, outcome: bool) -> None:
        """Train with the resolved outcome, using the same selector that was
        used for the prediction."""
        index = self._entry_index(pc)
        selector = 1 if predicate_value else 0
        history = self._histories[index][selector]
        self.pht.train(self._pht_index(pc, history), outcome)
        mask = (1 << self.config.local_bits) - 1
        self._histories[index][selector] = ((history << 1) | (1 if outcome else 0)) & mask

    # ------------------------------------------------------------------
    def size_report(self) -> PredictorSizeReport:
        cfg = self.config
        report = PredictorSizeReport()
        report.add("peppa-local-histories", cfg.branch_entries * 2 * cfg.local_bits)
        report.add("peppa-pht", cfg.pht_entries * cfg.pht_counter_bits)
        return report
