"""Perceptron predictor (Jiménez & Lin, HPCA 2001) with global + local history.

This is the paper's second-level branch predictor and — re-indexed by compare
PC — the basis of the predicate predictor (section 3.3): "The Perceptron
branch predictor ... obtains a very high accuracy ... the slow computation
time of the prediction function may suppose an important drawback to use
perceptrons as a single cycle branch predictor.  As explained before, our
scheme supports multicycle predicate predictions, so it makes the perceptron
a good candidate."

The implementation follows the original algorithm:

* each table entry holds one signed weight per history bit plus a bias
  weight;
* the prediction is the sign of the dot product between the weights and the
  bipolar (+1/−1) history bits;
* training bumps each weight towards agreement with the outcome whenever the
  prediction was wrong or the magnitude of the output was below the
  threshold θ = ⌊1.93·h + 14⌋.

The history input concatenates ``global_bits`` bits of global history with
``local_bits`` bits of per-PC local history (Table 1: 30-bit GHR, 10-bit
LHR).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.perf.flags import resolve_optimized
from repro.predictors.base import DirectionPredictor, PredictorSizeReport, fold_pc
from repro.predictors.history import LocalHistoryTable


@dataclass(frozen=True)
class PerceptronConfig:
    """Geometry of a perceptron predictor.

    The default values reproduce the 148 KB configuration of Table 1:
    30 bits of global history, 10 bits of local history, 8-bit weights and
    as many entries as fit in the 148 KB budget
    (table + local-history storage together come to ~148 KB at 3634 entries).
    """

    global_bits: int = 30
    local_bits: int = 10
    weight_bits: int = 8
    entries: int = 3634
    local_history_entries: int = 2048

    @property
    def num_weights(self) -> int:
        return self.global_bits + self.local_bits + 1

    @property
    def theta(self) -> int:
        history_length = self.global_bits + self.local_bits
        return int(1.93 * history_length + 14)

    @property
    def weight_min(self) -> int:
        return -(1 << (self.weight_bits - 1))

    @property
    def weight_max(self) -> int:
        return (1 << (self.weight_bits - 1)) - 1

    def storage_bits(self) -> int:
        table = self.entries * self.num_weights * self.weight_bits
        local = self.local_history_entries * self.local_bits
        return table + local + self.global_bits


#: Pure memo of the pc -> table-entry hash, shared by every predictor
#: instance and every lane of a batched run: the fold is a pure function of
#: ``(pc, entries)`` and the key set is bounded by the static branch PCs of
#: the simulated programs.
_ENTRY_INDEX_MEMO: dict = {}


def entry_index(pc: int, entries: int) -> int:
    """The perceptron table entry of ``pc`` (memoised fold-and-mod hash)."""
    key = (pc, entries)
    index = _ENTRY_INDEX_MEMO.get(key)
    if index is None:
        index = fold_pc(pc, 24) % entries
        _ENTRY_INDEX_MEMO[key] = index
    return index


def perceptron_output(row: List[int], combined_history: int) -> int:
    """Dot product of a weight row with bipolar history bits (+ bias).

    ``row[0]`` is the bias weight; history bit ``i`` maps to ``row[i + 1]``.
    Shared by the branch perceptron and the predicate perceptron.
    """
    total = row[0]
    history = combined_history
    for i in range(1, len(row)):
        if history & 1:
            total += row[i]
        else:
            total -= row[i]
        history >>= 1
    return total


def perceptron_train(
    row: List[int],
    combined_history: int,
    outcome: bool,
    weight_min: int,
    weight_max: int,
) -> None:
    """Apply the perceptron learning rule to one weight row in place."""
    delta = 1 if outcome else -1
    row[0] = min(weight_max, max(weight_min, row[0] + delta))
    history = combined_history
    for i in range(1, len(row)):
        bit_agrees = bool(history & 1) == outcome
        step = 1 if bit_agrees else -1
        row[i] = min(weight_max, max(weight_min, row[i] + step))
        history >>= 1


def flat_perceptron_output(
    weights: List[int], base: int, num_weights: int, combined_history: int
) -> int:
    """:func:`perceptron_output` over one row of a flat weight table.

    ``weights[base]`` is the bias weight of the row; history bit ``i`` maps
    to ``weights[base + 1 + i]``.  Identical arithmetic to the row-based
    reference, without the per-row list indirection.
    """
    total = weights[base]
    history = combined_history
    for i in range(base + 1, base + num_weights):
        if history & 1:
            total += weights[i]
        else:
            total -= weights[i]
        history >>= 1
    return total


def flat_perceptron_train(
    weights: List[int],
    base: int,
    num_weights: int,
    combined_history: int,
    outcome: bool,
    weight_min: int,
    weight_max: int,
) -> None:
    """:func:`perceptron_train` over one row of a flat weight table."""
    delta = 1 if outcome else -1
    weights[base] = min(weight_max, max(weight_min, weights[base] + delta))
    history = combined_history
    for i in range(base + 1, base + num_weights):
        bit_agrees = bool(history & 1) == outcome
        step = 1 if bit_agrees else -1
        weights[i] = min(weight_max, max(weight_min, weights[i] + step))
        history >>= 1


class PerceptronPredictor(DirectionPredictor):
    """A global+local perceptron predictor.

    Weight storage has two backends sharing identical arithmetic: the
    reference list-of-rows layout, and (by default — see
    :mod:`repro.perf.flags`) one flat list indexed by
    ``entry * num_weights``, which removes a list indirection and a function
    call from every prediction.  The hypothesis parity tests drive both
    backends with common random streams and assert identical predictions
    and weight state.
    """

    def __init__(
        self,
        config: Optional[PerceptronConfig] = None,
        optimized: Optional[bool] = None,
    ) -> None:
        self.config = config or PerceptronConfig()
        cfg = self.config
        self.optimized = resolve_optimized(optimized)
        self._num_weights = cfg.num_weights
        self._global_mask = (1 << cfg.global_bits) - 1
        self._local_mask = (1 << cfg.local_bits) - 1
        if self.optimized:
            self._flat: Optional[List[int]] = [0] * (cfg.entries * cfg.num_weights)
            self._rows: Optional[List[List[int]]] = None
        else:
            self._flat = None
            self._rows = [[0] * cfg.num_weights for _ in range(cfg.entries)]
        self.local_histories = LocalHistoryTable(cfg.local_history_entries, cfg.local_bits)
        self._pc_index: dict = {}

    # ------------------------------------------------------------------
    @property
    def _weights(self) -> List[List[int]]:
        """Row view of the weight table (both backends), for introspection."""
        if self._rows is not None:
            return self._rows
        nw = self._num_weights
        flat = self._flat
        return [flat[base : base + nw] for base in range(0, len(flat), nw)]

    def weight_row(self, index: int) -> List[int]:
        """A copy of the weights of entry ``index`` (parity tests)."""
        if self._rows is not None:
            return list(self._rows[index])
        base = index * self._num_weights
        return self._flat[base : base + self._num_weights]

    # ------------------------------------------------------------------
    def _index(self, pc: int) -> int:
        index = self._pc_index.get(pc)
        if index is None:
            index = entry_index(pc, self.config.entries)
            self._pc_index[pc] = index
        return index

    def _output(self, row: List[int], combined_history: int) -> int:
        return perceptron_output(row, combined_history)

    def _combined_history(self, pc: int, global_history: int) -> int:
        global_part = global_history & self._global_mask
        local_part = self.local_histories.read(pc) & self._local_mask
        return (local_part << self.config.global_bits) | global_part

    # ------------------------------------------------------------------
    def predict_with_output(self, pc: int, global_history: int) -> Tuple[bool, int]:
        """Return (direction, raw perceptron output)."""
        combined = self._combined_history(pc, global_history)
        if self._flat is not None:
            base = self._index(pc) * self._num_weights
            output = flat_perceptron_output(self._flat, base, self._num_weights, combined)
        else:
            output = self._output(self._rows[self._index(pc)], combined)
        return output >= 0, output

    def predict(self, pc: int, global_history: int) -> bool:
        taken, _ = self.predict_with_output(pc, global_history)
        return taken

    def update(self, pc: int, global_history: int, outcome: bool) -> None:
        """Train the entry for ``pc`` and update its local history."""
        cfg = self.config
        combined = self._combined_history(pc, global_history)
        if self._flat is not None:
            nw = self._num_weights
            base = self._index(pc) * nw
            output = flat_perceptron_output(self._flat, base, nw, combined)
            if (output >= 0) != outcome or abs(output) <= cfg.theta:
                flat_perceptron_train(
                    self._flat, base, nw, combined, outcome, cfg.weight_min, cfg.weight_max
                )
        else:
            row = self._rows[self._index(pc)]
            output = self._output(row, combined)
            prediction = output >= 0
            if prediction != outcome or abs(output) <= cfg.theta:
                self._train_row(row, combined, outcome)
        self.local_histories.update(pc, outcome)

    def _train_row(self, row: List[int], combined_history: int, outcome: bool) -> None:
        cfg = self.config
        perceptron_train(row, combined_history, outcome, cfg.weight_min, cfg.weight_max)

    # ------------------------------------------------------------------
    def size_report(self) -> PredictorSizeReport:
        cfg = self.config
        report = PredictorSizeReport()
        report.add("perceptron-table", cfg.entries * cfg.num_weights * cfg.weight_bits)
        report.add("local-history-table", self.local_histories.storage_bits())
        report.add("ghr", cfg.global_bits)
        return report
