"""Perceptron predictor (Jiménez & Lin, HPCA 2001) with global + local history.

This is the paper's second-level branch predictor and — re-indexed by compare
PC — the basis of the predicate predictor (section 3.3): "The Perceptron
branch predictor ... obtains a very high accuracy ... the slow computation
time of the prediction function may suppose an important drawback to use
perceptrons as a single cycle branch predictor.  As explained before, our
scheme supports multicycle predicate predictions, so it makes the perceptron
a good candidate."

The implementation follows the original algorithm:

* each table entry holds one signed weight per history bit plus a bias
  weight;
* the prediction is the sign of the dot product between the weights and the
  bipolar (+1/−1) history bits;
* training bumps each weight towards agreement with the outcome whenever the
  prediction was wrong or the magnitude of the output was below the
  threshold θ = ⌊1.93·h + 14⌋.

The history input concatenates ``global_bits`` bits of global history with
``local_bits`` bits of per-PC local history (Table 1: 30-bit GHR, 10-bit
LHR).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.predictors.base import DirectionPredictor, PredictorSizeReport, fold_pc
from repro.predictors.history import LocalHistoryTable


@dataclass(frozen=True)
class PerceptronConfig:
    """Geometry of a perceptron predictor.

    The default values reproduce the 148 KB configuration of Table 1:
    30 bits of global history, 10 bits of local history, 8-bit weights and
    as many entries as fit in the 148 KB budget
    (table + local-history storage together come to ~148 KB at 3634 entries).
    """

    global_bits: int = 30
    local_bits: int = 10
    weight_bits: int = 8
    entries: int = 3634
    local_history_entries: int = 2048

    @property
    def num_weights(self) -> int:
        return self.global_bits + self.local_bits + 1

    @property
    def theta(self) -> int:
        history_length = self.global_bits + self.local_bits
        return int(1.93 * history_length + 14)

    @property
    def weight_min(self) -> int:
        return -(1 << (self.weight_bits - 1))

    @property
    def weight_max(self) -> int:
        return (1 << (self.weight_bits - 1)) - 1

    def storage_bits(self) -> int:
        table = self.entries * self.num_weights * self.weight_bits
        local = self.local_history_entries * self.local_bits
        return table + local + self.global_bits


def perceptron_output(row: List[int], combined_history: int) -> int:
    """Dot product of a weight row with bipolar history bits (+ bias).

    ``row[0]`` is the bias weight; history bit ``i`` maps to ``row[i + 1]``.
    Shared by the branch perceptron and the predicate perceptron.
    """
    total = row[0]
    history = combined_history
    for i in range(1, len(row)):
        if history & 1:
            total += row[i]
        else:
            total -= row[i]
        history >>= 1
    return total


def perceptron_train(
    row: List[int],
    combined_history: int,
    outcome: bool,
    weight_min: int,
    weight_max: int,
) -> None:
    """Apply the perceptron learning rule to one weight row in place."""
    delta = 1 if outcome else -1
    row[0] = min(weight_max, max(weight_min, row[0] + delta))
    history = combined_history
    for i in range(1, len(row)):
        bit_agrees = bool(history & 1) == outcome
        step = 1 if bit_agrees else -1
        row[i] = min(weight_max, max(weight_min, row[i] + step))
        history >>= 1


class PerceptronPredictor(DirectionPredictor):
    """A global+local perceptron predictor."""

    def __init__(self, config: Optional[PerceptronConfig] = None) -> None:
        self.config = config or PerceptronConfig()
        cfg = self.config
        self._weights: List[List[int]] = [
            [0] * cfg.num_weights for _ in range(cfg.entries)
        ]
        self.local_histories = LocalHistoryTable(cfg.local_history_entries, cfg.local_bits)

    # ------------------------------------------------------------------
    def _index(self, pc: int) -> int:
        return fold_pc(pc, 24) % self.config.entries

    def _output(self, row: List[int], combined_history: int) -> int:
        return perceptron_output(row, combined_history)

    def _combined_history(self, pc: int, global_history: int) -> int:
        cfg = self.config
        global_part = global_history & ((1 << cfg.global_bits) - 1)
        local_part = self.local_histories.read(pc) & ((1 << cfg.local_bits) - 1)
        return (local_part << cfg.global_bits) | global_part

    # ------------------------------------------------------------------
    def predict_with_output(self, pc: int, global_history: int) -> Tuple[bool, int]:
        """Return (direction, raw perceptron output)."""
        row = self._weights[self._index(pc)]
        output = self._output(row, self._combined_history(pc, global_history))
        return output >= 0, output

    def predict(self, pc: int, global_history: int) -> bool:
        taken, _ = self.predict_with_output(pc, global_history)
        return taken

    def update(self, pc: int, global_history: int, outcome: bool) -> None:
        """Train the entry for ``pc`` and update its local history."""
        cfg = self.config
        row = self._weights[self._index(pc)]
        combined = self._combined_history(pc, global_history)
        output = self._output(row, combined)
        prediction = output >= 0
        if prediction != outcome or abs(output) <= cfg.theta:
            self._train_row(row, combined, outcome)
        self.local_histories.update(pc, outcome)

    def _train_row(self, row: List[int], combined_history: int, outcome: bool) -> None:
        cfg = self.config
        perceptron_train(row, combined_history, outcome, cfg.weight_min, cfg.weight_max)

    # ------------------------------------------------------------------
    def size_report(self) -> PredictorSizeReport:
        cfg = self.config
        report = PredictorSizeReport()
        report.add("perceptron-table", cfg.entries * cfg.num_weights * cfg.weight_bits)
        report.add("local-history-table", self.local_histories.storage_bits())
        report.add("ghr", cfg.global_bits)
        return report
