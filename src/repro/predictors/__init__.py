"""Branch- and predicate-prediction structures.

The package contains the raw prediction structures; *schemes* (how the
pipeline drives them — when history is updated, how recovery works, how
predictions flow through the PPRF) live in :mod:`repro.core`.

Structures provided:

* :class:`~repro.predictors.counters.SaturatingCounter` and counter tables;
* :class:`~repro.predictors.history.GlobalHistoryRegister` and
  :class:`~repro.predictors.history.LocalHistoryTable` with speculative
  update, bit repair and checkpointing;
* :class:`~repro.predictors.gshare.GsharePredictor` — the fast first-level
  predictor of the two-level scheme (Table 1);
* :class:`~repro.predictors.perceptron.PerceptronPredictor` — the slow,
  highly accurate second-level predictor (global + local history);
* :class:`~repro.predictors.multilevel.TwoLevelOverridePredictor` — the
  Alpha/Power-style override organisation;
* :class:`~repro.predictors.peppa.PEPPAPredictor` — the Predicate Enhanced
  Prediction scheme of August et al. used as a comparison point;
* :class:`~repro.predictors.predicate_perceptron.PredicatePerceptronPredictor`
  — the paper's predictor: a perceptron indexed by *compare* PC producing two
  predicate predictions through two hash functions over a single PVT;
* :class:`~repro.predictors.confidence.ConfidenceEstimator` — the saturating
  counter confidence filter used by selective predicate prediction;
* :class:`~repro.predictors.tage.TAGEPredictor` — a TAGE-class geometric-
  history backend (tagged tables, provider/altpred selection, usefulness
  counters) usable as an alternative second level in any scheme, plus its
  predicate-slot adapter;
* :class:`~repro.predictors.predicate_aware.PredicateAwarePredictor` — the
  predicate-enhanced perceptron whose input mixes branch history with
  resolved predicate bits;
* idealized variants (no aliasing, oracle history) used by the paper's
  isolation experiments.
"""

from repro.predictors.base import DirectionPredictor, PredictorSizeReport
from repro.predictors.counters import SaturatingCounter, CounterTable
from repro.predictors.history import GlobalHistoryRegister, LocalHistoryTable
from repro.predictors.gshare import GsharePredictor
from repro.predictors.perceptron import PerceptronPredictor, PerceptronConfig
from repro.predictors.multilevel import TwoLevelOverridePredictor
from repro.predictors.peppa import PEPPAPredictor, PEPPAConfig
from repro.predictors.predicate_perceptron import (
    PredicatePerceptronPredictor,
    PredicatePredictorConfig,
)
from repro.predictors.confidence import ConfidenceEstimator
from repro.predictors.predicate_aware import (
    PredicateAwareConfig,
    PredicateAwarePredictor,
)
from repro.predictors.tage import TAGEConfig, TAGEPredictor, TagePredicatePredictor
from repro.predictors.ideal import (
    IdealHistoryOracle,
    NoAliasPerceptron,
    NoAliasPredicatePerceptron,
)

__all__ = [
    "DirectionPredictor",
    "PredictorSizeReport",
    "SaturatingCounter",
    "CounterTable",
    "GlobalHistoryRegister",
    "LocalHistoryTable",
    "GsharePredictor",
    "PerceptronPredictor",
    "PerceptronConfig",
    "TwoLevelOverridePredictor",
    "PEPPAPredictor",
    "PEPPAConfig",
    "PredicatePerceptronPredictor",
    "PredicatePredictorConfig",
    "ConfidenceEstimator",
    "PredicateAwareConfig",
    "PredicateAwarePredictor",
    "TAGEConfig",
    "TAGEPredictor",
    "TagePredicatePredictor",
    "IdealHistoryOracle",
    "NoAliasPerceptron",
    "NoAliasPredicatePerceptron",
]
