"""Confidence estimation for selective predicate prediction (section 3.2).

"In order to implement the confidence predictor, each predicate predictor
entry is extended with a saturated counter, that is incremented with every
correct prediction and zeroed if a misprediction occurs.  The prediction is
considered confident if its associated counter is saturated."
"""

from __future__ import annotations

from typing import List

from repro.predictors.base import PredictorSizeReport


class ConfidenceEstimator:
    """Per-entry saturating confidence counters.

    ``entries`` should match the predicate predictor's PVT entry count so
    that each perceptron row has exactly one associated confidence counter
    (the paper extends "each predicate predictor entry").
    """

    def __init__(self, entries: int, bits: int = 3) -> None:
        if entries < 1:
            raise ValueError("confidence estimator needs at least one entry")
        self.entries = entries
        self.bits = bits
        self._max = (1 << bits) - 1
        self._counters: List[int] = [0] * entries

    def _index(self, index: int) -> int:
        return index % self.entries

    # ------------------------------------------------------------------
    def is_confident(self, index: int) -> bool:
        """True when the counter for ``index`` is saturated."""
        return self._counters[self._index(index)] == self._max

    def value(self, index: int) -> int:
        return self._counters[self._index(index)]

    def record_correct(self, index: int) -> None:
        i = self._index(index)
        if self._counters[i] < self._max:
            self._counters[i] += 1

    def record_incorrect(self, index: int) -> None:
        self._counters[self._index(index)] = 0

    def record(self, index: int, correct: bool) -> None:
        if correct:
            self.record_correct(index)
        else:
            self.record_incorrect(index)

    # ------------------------------------------------------------------
    def size_report(self) -> PredictorSizeReport:
        report = PredictorSizeReport()
        report.add("confidence-counters", self.entries * self.bits)
        return report
