"""Gshare: the fast, single-cycle first-level predictor (Table 1).

A pattern history table of 2-bit counters indexed by the exclusive-or of the
folded branch PC and the global history register.  The paper's first level
is a 4 KB gshare with a 14-bit GHR: 16384 two-bit counters.
"""

from __future__ import annotations

from repro.predictors.base import DirectionPredictor, PredictorSizeReport, fold_pc
from repro.predictors.counters import CounterTable


class GsharePredictor(DirectionPredictor):
    """Classic gshare with n-bit counters."""

    def __init__(self, history_bits: int = 14, counter_bits: int = 2) -> None:
        self.history_bits = history_bits
        self.counter_bits = counter_bits
        self.entries = 1 << history_bits
        self.table = CounterTable(self.entries, bits=counter_bits, initial=1)

    # ------------------------------------------------------------------
    def _index(self, pc: int, global_history: int) -> int:
        mask = self.entries - 1
        return (fold_pc(pc, self.history_bits) ^ (global_history & mask)) & mask

    def predict(self, pc: int, global_history: int) -> bool:
        return self.table.taken(self._index(pc, global_history))

    def update(self, pc: int, global_history: int, outcome: bool) -> None:
        self.table.train(self._index(pc, global_history), outcome)

    def size_report(self) -> PredictorSizeReport:
        report = PredictorSizeReport()
        report.add("gshare-pht", self.entries * self.counter_bits)
        report.add("gshare-ghr", self.history_bits)
        return report
