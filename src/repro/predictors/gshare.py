"""Gshare: the fast, single-cycle first-level predictor (Table 1).

A pattern history table of 2-bit counters indexed by the exclusive-or of the
folded branch PC and the global history register.  The paper's first level
is a 4 KB gshare with a 14-bit GHR: 16384 two-bit counters.

The predictor has two access paths over one table state: the reference path
goes through :class:`~repro.predictors.counters.CounterTable`, while the
optimized path (the default, see :mod:`repro.perf.flags`) indexes the
backing counter list directly with mask arithmetic.  Both paths share the
same list, so they are bit-identical by construction; the property-based
parity tests drive both with common random branch streams to prove it.
"""

from __future__ import annotations

from typing import Optional

from repro.perf.flags import resolve_optimized
from repro.predictors.base import DirectionPredictor, PredictorSizeReport, fold_pc
from repro.predictors.counters import CounterTable


class GsharePredictor(DirectionPredictor):
    """Classic gshare with n-bit counters."""

    def __init__(
        self,
        history_bits: int = 14,
        counter_bits: int = 2,
        optimized: Optional[bool] = None,
    ) -> None:
        self.history_bits = history_bits
        self.counter_bits = counter_bits
        self.entries = 1 << history_bits
        self.table = CounterTable(self.entries, bits=counter_bits, initial=1)
        self.optimized = resolve_optimized(optimized)
        # Array fast path: direct access to the table's backing list.  The
        # entry count is a power of two, so ``% entries`` is ``& mask``, and
        # ``fold_pc`` already masks to ``history_bits`` bits, which makes
        # ``(f ^ (g & mask)) & mask`` equal to ``(f ^ g) & mask``.
        self._values = self.table.values
        self._mask = self.entries - 1
        self._threshold = 1 << (counter_bits - 1)
        self._cmax = (1 << counter_bits) - 1

    # ------------------------------------------------------------------
    def _index(self, pc: int, global_history: int) -> int:
        mask = self.entries - 1
        return (fold_pc(pc, self.history_bits) ^ (global_history & mask)) & mask

    def predict(self, pc: int, global_history: int) -> bool:
        if self.optimized:
            index = (fold_pc(pc, self.history_bits) ^ global_history) & self._mask
            return self._values[index] >= self._threshold
        return self.table.taken(self._index(pc, global_history))

    def update(self, pc: int, global_history: int, outcome: bool) -> None:
        if self.optimized:
            values = self._values
            index = (fold_pc(pc, self.history_bits) ^ global_history) & self._mask
            value = values[index]
            if outcome:
                if value < self._cmax:
                    values[index] = value + 1
            elif value > 0:
                values[index] = value - 1
            return
        self.table.train(self._index(pc, global_history), outcome)

    def step(self, pc: int, global_history: int, outcome: bool) -> bool:
        """Predict and immediately train one branch (one index computation).

        Equivalent to ``predict`` followed by ``update`` with the same
        arguments.  Used by the lane-batched prediction prepass
        (:mod:`repro.predictors.batched`), where a branch's prediction and
        its training are adjacent in the replayed stream, so the folded
        index only needs computing once.
        """
        values = self._values
        index = (fold_pc(pc, self.history_bits) ^ global_history) & self._mask
        value = values[index]
        if outcome:
            if value < self._cmax:
                values[index] = value + 1
        elif value > 0:
            values[index] = value - 1
        return value >= self._threshold

    def size_report(self) -> PredictorSizeReport:
        report = PredictorSizeReport()
        report.add("gshare-pht", self.entries * self.counter_bits)
        report.add("gshare-ghr", self.history_bits)
        return report
