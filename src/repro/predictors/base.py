"""Common predictor interfaces and hardware-budget accounting."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class PredictorSizeReport:
    """Hardware budget of a predictor, in bits, broken down by structure.

    The paper compares predictors of equal size (148 KB conventional vs
    148 KB predicate predictor, 144 KB PEP-PA); this report lets the
    experiment setup assert that the configurations are in fact comparable.
    """

    components: Dict[str, int] = field(default_factory=dict)

    def add(self, name: str, bits: int) -> None:
        self.components[name] = self.components.get(name, 0) + int(bits)

    @property
    def total_bits(self) -> int:
        return sum(self.components.values())

    @property
    def total_kib(self) -> float:
        return self.total_bits / 8 / 1024

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}b" for k, v in self.components.items())
        return f"<PredictorSizeReport {self.total_kib:.1f} KiB ({parts})>"


class DirectionPredictor(abc.ABC):
    """Interface of a branch-direction predictor.

    The raw predictors are *stateless with respect to history*: global and
    local history values are passed in by the scheme layer, which owns the
    speculative-update and recovery policy.  This keeps the same structure
    reusable for branch prediction (indexed by branch PC) and predicate
    prediction (indexed by compare PC).
    """

    @abc.abstractmethod
    def predict(self, pc: int, global_history: int) -> bool:
        """Predict taken/true (``True``) or not-taken/false (``False``)."""

    @abc.abstractmethod
    def update(self, pc: int, global_history: int, outcome: bool) -> None:
        """Train the predictor with the resolved outcome."""

    @abc.abstractmethod
    def size_report(self) -> PredictorSizeReport:
        """Return the hardware budget of this predictor."""


def fold_pc(pc: int, bits: int) -> int:
    """Fold a program counter into ``bits`` bits by xor-ing 16-bit chunks.

    Instruction addresses are 4-byte aligned, so the two low bits are dropped
    first.  This is the hash every table-indexed structure uses, keeping
    aliasing behaviour consistent across predictors.
    """
    value = pc >> 2
    folded = 0
    while value:
        folded ^= value & 0xFFFF
        value >>= 16
    mask = (1 << bits) - 1
    return (folded ^ (folded >> bits)) & mask if bits < 16 else folded & mask
