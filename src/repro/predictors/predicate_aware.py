"""Predicate-enhanced branch prediction (Simon, Calder & Ferrante, HPCA 2003).

If-conversion removes branches but the *predicates* those branches tested
keep flowing through the pipeline — and they carry exactly the correlation
the removed branches used to feed into the global history.  A predicate-
aware predictor folds that information back in: its input vector is the
branch-outcome global history *interleaved with resolved predicate bits*
(the hosting scheme pushes compare-computed values into the shared history
register) plus a snapshot of the most recently resolved predicate values.

The structure is a perceptron (the second level of the conventional
scheme's override organisation) whose combined input concatenates

* ``global_bits`` of the mixed branch/predicate global history,
* ``predicate_bits`` of the recent-predicate-value snapshot, and
* ``local_bits`` of per-PC local history,

so the learning rule can weight each resolved predicate independently of
the branch outcomes around it.  Like
:class:`~repro.predictors.perceptron.PerceptronPredictor`, weight storage
has a reference list-of-rows backend and an optimized flat backend with
identical arithmetic (see :mod:`repro.perf.flags`), and both are driven by
the hypothesis parity tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.perf.flags import resolve_optimized
from repro.predictors.base import PredictorSizeReport
from repro.predictors.history import LocalHistoryTable
from repro.predictors.perceptron import (
    entry_index,
    flat_perceptron_output,
    flat_perceptron_train,
    perceptron_output,
    perceptron_train,
)


@dataclass(frozen=True)
class PredicateAwareConfig:
    """Geometry of the predicate-aware perceptron.

    The default splits the conventional second level's 30 history bits into
    24 bits of mixed global history plus a 6-bit resolved-predicate
    snapshot, keeping the input width — and therefore the table budget —
    comparable to the paper's 148 KB perceptron.
    """

    global_bits: int = 24
    predicate_bits: int = 6
    local_bits: int = 10
    weight_bits: int = 8
    entries: int = 3634
    local_history_entries: int = 2048

    @property
    def num_weights(self) -> int:
        return self.global_bits + self.predicate_bits + self.local_bits + 1

    @property
    def theta(self) -> int:
        history_length = self.global_bits + self.predicate_bits + self.local_bits
        return int(1.93 * history_length + 14)

    @property
    def weight_min(self) -> int:
        return -(1 << (self.weight_bits - 1))

    @property
    def weight_max(self) -> int:
        return (1 << (self.weight_bits - 1)) - 1

    def storage_bits(self) -> int:
        table = self.entries * self.num_weights * self.weight_bits
        local = self.local_history_entries * self.local_bits
        return table + local + self.global_bits + self.predicate_bits


class PredicateAwarePredictor:
    """Perceptron over mixed branch/predicate history + predicate snapshot."""

    def __init__(
        self,
        config: Optional[PredicateAwareConfig] = None,
        optimized: Optional[bool] = None,
    ) -> None:
        self.config = config or PredicateAwareConfig()
        cfg = self.config
        self.optimized = resolve_optimized(optimized)
        self._num_weights = cfg.num_weights
        self._global_mask = (1 << cfg.global_bits) - 1
        self._predicate_mask = (1 << cfg.predicate_bits) - 1
        self._local_mask = (1 << cfg.local_bits) - 1
        if self.optimized:
            self._flat: Optional[List[int]] = [0] * (cfg.entries * cfg.num_weights)
            self._rows: Optional[List[List[int]]] = None
        else:
            self._flat = None
            self._rows = [[0] * cfg.num_weights for _ in range(cfg.entries)]
        self.local_histories = LocalHistoryTable(cfg.local_history_entries, cfg.local_bits)
        self._pc_index: dict = {}

    # ------------------------------------------------------------------
    @property
    def _weights(self) -> List[List[int]]:
        """Row view of the weight table (both backends), for introspection."""
        if self._rows is not None:
            return self._rows
        nw = self._num_weights
        flat = self._flat
        return [flat[base : base + nw] for base in range(0, len(flat), nw)]

    def weight_row(self, index: int) -> List[int]:
        """A copy of the weights of entry ``index`` (parity tests)."""
        if self._rows is not None:
            return list(self._rows[index])
        base = index * self._num_weights
        return self._flat[base : base + self._num_weights]

    # ------------------------------------------------------------------
    def _index(self, pc: int) -> int:
        index = self._pc_index.get(pc)
        if index is None:
            index = entry_index(pc, self.config.entries)
            self._pc_index[pc] = index
        return index

    def _combined(self, pc: int, global_history: int, predicate_bits: int) -> int:
        cfg = self.config
        global_part = global_history & self._global_mask
        predicate_part = predicate_bits & self._predicate_mask
        local_part = self.local_histories.read(pc) & self._local_mask
        return (
            (local_part << (cfg.global_bits + cfg.predicate_bits))
            | (predicate_part << cfg.global_bits)
            | global_part
        )

    # ------------------------------------------------------------------
    def predict_with_output(
        self, pc: int, global_history: int, predicate_bits: int
    ) -> Tuple[bool, int]:
        """Return (direction, raw perceptron output)."""
        combined = self._combined(pc, global_history, predicate_bits)
        if self._flat is not None:
            base = self._index(pc) * self._num_weights
            output = flat_perceptron_output(self._flat, base, self._num_weights, combined)
        else:
            output = perceptron_output(self._rows[self._index(pc)], combined)
        return output >= 0, output

    def predict(self, pc: int, global_history: int, predicate_bits: int) -> bool:
        taken, _ = self.predict_with_output(pc, global_history, predicate_bits)
        return taken

    def update(
        self, pc: int, global_history: int, predicate_bits: int, outcome: bool
    ) -> None:
        """Train the entry for ``pc`` and update its local history."""
        cfg = self.config
        combined = self._combined(pc, global_history, predicate_bits)
        if self._flat is not None:
            nw = self._num_weights
            base = self._index(pc) * nw
            output = flat_perceptron_output(self._flat, base, nw, combined)
            if (output >= 0) != outcome or abs(output) <= cfg.theta:
                flat_perceptron_train(
                    self._flat, base, nw, combined, outcome, cfg.weight_min, cfg.weight_max
                )
        else:
            row = self._rows[self._index(pc)]
            output = perceptron_output(row, combined)
            if (output >= 0) != outcome or abs(output) <= cfg.theta:
                perceptron_train(row, combined, outcome, cfg.weight_min, cfg.weight_max)
        self.local_histories.update(pc, outcome)

    # ------------------------------------------------------------------
    def size_report(self) -> PredictorSizeReport:
        cfg = self.config
        report = PredictorSizeReport()
        report.add(
            "predicate-aware-table", cfg.entries * cfg.num_weights * cfg.weight_bits
        )
        report.add("local-history-table", self.local_histories.storage_bits())
        report.add("mixed-ghr", cfg.global_bits)
        report.add("predicate-snapshot", cfg.predicate_bits)
        return report
