"""Two-level override branch prediction (Alpha 21264 / POWER4 style).

Table 1 specifies the conventional branch predictor as a two-level scheme:
a fast 4 KB gshare that keeps the front end running at one prediction per
cycle, overridden by a slower (3-cycle) 148 KB perceptron.  When the two
levels disagree, the front end is flushed and refetched from the second
prediction, costing a few cycles but keeping the final accuracy that of the
perceptron.

The paper's predicate predictor replaces only the *second* level: the fast
first-level predictor still guesses at fetch, and the prediction read from
the PPRF at rename overrides it (section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.predictors.base import DirectionPredictor, PredictorSizeReport
from repro.predictors.gshare import GsharePredictor
from repro.predictors.perceptron import PerceptronConfig, PerceptronPredictor


@dataclass
class OverridePrediction:
    """The pair of predictions produced by the two levels."""

    fast: bool
    slow: bool

    @property
    def final(self) -> bool:
        return self.slow

    @property
    def overridden(self) -> bool:
        """True when the second level disagreed with the first."""
        return self.fast != self.slow


class TwoLevelOverridePredictor(DirectionPredictor):
    """Fast gshare + slow perceptron, second level wins."""

    def __init__(
        self,
        fast: Optional[GsharePredictor] = None,
        slow: Optional[PerceptronPredictor] = None,
        perceptron_config: Optional[PerceptronConfig] = None,
    ) -> None:
        self.fast = fast or GsharePredictor(history_bits=14)
        self.slow = slow or PerceptronPredictor(perceptron_config)
        self.override_count = 0
        self.prediction_count = 0

    # ------------------------------------------------------------------
    def predict_both(self, pc: int, global_history: int) -> OverridePrediction:
        """Predict with both levels and account for overrides."""
        fast = self.fast.predict(pc, global_history)
        slow = self.slow.predict(pc, global_history)
        prediction = OverridePrediction(fast=fast, slow=slow)
        self.prediction_count += 1
        if prediction.overridden:
            self.override_count += 1
        return prediction

    def predict(self, pc: int, global_history: int) -> bool:
        return self.predict_both(pc, global_history).final

    def update(self, pc: int, global_history: int, outcome: bool) -> None:
        self.fast.update(pc, global_history, outcome)
        self.slow.update(pc, global_history, outcome)

    # ------------------------------------------------------------------
    @property
    def override_rate(self) -> float:
        if not self.prediction_count:
            return 0.0
        return self.override_count / self.prediction_count

    def size_report(self) -> PredictorSizeReport:
        report = PredictorSizeReport()
        for name, bits in self.fast.size_report().components.items():
            report.add(name, bits)
        for name, bits in self.slow.size_report().components.items():
            report.add(name, bits)
        return report
