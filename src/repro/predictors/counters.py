"""Saturating counters and counter tables."""

from __future__ import annotations

from typing import List

from repro.predictors.base import PredictorSizeReport


class SaturatingCounter:
    """An n-bit up/down saturating counter.

    Used for pattern-history-table entries (2 bits) and for the confidence
    estimator of the selective predicate predictor (the paper increments on a
    correct prediction, zeroes on a misprediction, and considers the
    prediction confident only when the counter is saturated).
    """

    __slots__ = ("bits", "value")

    def __init__(self, bits: int = 2, initial: int = 0) -> None:
        if bits < 1:
            raise ValueError("counter needs at least one bit")
        self.bits = bits
        self.value = int(initial)
        if not 0 <= self.value <= self.maximum:
            raise ValueError(f"initial value {initial} out of range for {bits}-bit counter")

    @property
    def maximum(self) -> int:
        return (1 << self.bits) - 1

    @property
    def is_saturated(self) -> bool:
        return self.value == self.maximum

    @property
    def taken(self) -> bool:
        """Direction encoded by the counter (MSB set => taken)."""
        return self.value >= (1 << (self.bits - 1))

    def increment(self) -> None:
        if self.value < self.maximum:
            self.value += 1

    def decrement(self) -> None:
        if self.value > 0:
            self.value -= 1

    def reset(self) -> None:
        self.value = 0

    def train(self, outcome: bool) -> None:
        """Move the counter towards ``outcome``."""
        if outcome:
            self.increment()
        else:
            self.decrement()

    def __repr__(self) -> str:
        return f"<SaturatingCounter {self.value}/{self.maximum}>"


class CounterTable:
    """A table of n-bit saturating counters stored compactly as integers."""

    __slots__ = ("bits", "entries", "_values", "_max", "_threshold")

    def __init__(self, entries: int, bits: int = 2, initial: int = 1) -> None:
        if entries < 1:
            raise ValueError("table needs at least one entry")
        self.bits = bits
        self.entries = entries
        self._max = (1 << bits) - 1
        self._threshold = 1 << (bits - 1)
        initial = max(0, min(int(initial), self._max))
        self._values: List[int] = [initial] * entries

    def _index(self, index: int) -> int:
        return index % self.entries

    @property
    def values(self) -> List[int]:
        """The backing counter list.

        Shared with array-backed fast paths (see
        :class:`repro.predictors.gshare.GsharePredictor`) so both access
        paths observe one table state; also used by the parity tests.
        """
        return self._values

    def value(self, index: int) -> int:
        return self._values[self._index(index)]

    def taken(self, index: int) -> bool:
        return self._values[self._index(index)] >= self._threshold

    def train(self, index: int, outcome: bool) -> None:
        i = self._index(index)
        value = self._values[i]
        if outcome:
            if value < self._max:
                self._values[i] = value + 1
        elif value > 0:
            self._values[i] = value - 1

    def size_report(self, name: str = "counter-table") -> PredictorSizeReport:
        report = PredictorSizeReport()
        report.add(name, self.entries * self.bits)
        return report

    def __len__(self) -> int:
        return self.entries
