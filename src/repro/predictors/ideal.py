"""Idealized predictor variants used by the paper's isolation experiments.

Sections 4.2 and 4.3 repeat the main experiments with "idealized branch
predictor and predicate predictor schemes, without alias conflicts and with
perfect global-history update" to isolate the benefit of early-resolved
branches and correlation from the two negative side effects of predicate
prediction.  Two building blocks implement that idealization:

* :class:`NoAliasPerceptron` / :class:`NoAliasPredicatePerceptron` — the same
  perceptron algorithm, but each static PC (or PC/slot pair) gets a private
  weight row, so no two instructions ever share an entry;
* :class:`IdealHistoryOracle` — a marker policy consumed by the scheme layer
  meaning "update global history with architecturally correct outcomes at
  prediction time" (no corruption window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.predictors.base import PredictorSizeReport
from repro.predictors.history import LocalHistoryTable
from repro.predictors.perceptron import (
    PerceptronConfig,
    perceptron_output,
    perceptron_train,
)
from repro.predictors.predicate_perceptron import PredicatePredictorConfig


@dataclass(frozen=True)
class IdealHistoryOracle:
    """Marker policy: feed global history with oracle outcomes.

    When a scheme is configured with this policy it pushes the *computed*
    value of every condition into the history register at prediction time,
    eliminating the corruption window described in section 3.3.
    """

    description: str = "perfect global-history update"


class NoAliasPerceptron:
    """Branch perceptron with a private weight row per static branch."""

    def __init__(self, config: Optional[PerceptronConfig] = None) -> None:
        self.config = config or PerceptronConfig()
        self._rows: Dict[int, List[int]] = {}
        self.local_histories = LocalHistoryTable(
            self.config.local_history_entries, self.config.local_bits
        )

    def _row(self, pc: int) -> List[int]:
        row = self._rows.get(pc)
        if row is None:
            row = [0] * self.config.num_weights
            self._rows[pc] = row
        return row

    def _combined_history(self, pc: int, global_history: int) -> int:
        cfg = self.config
        global_part = global_history & ((1 << cfg.global_bits) - 1)
        local_part = self.local_histories.read(pc) & ((1 << cfg.local_bits) - 1)
        return (local_part << cfg.global_bits) | global_part

    def predict_with_output(self, pc: int, global_history: int) -> Tuple[bool, int]:
        output = perceptron_output(self._row(pc), self._combined_history(pc, global_history))
        return output >= 0, output

    def predict(self, pc: int, global_history: int) -> bool:
        return self.predict_with_output(pc, global_history)[0]

    def update(self, pc: int, global_history: int, outcome: bool) -> None:
        cfg = self.config
        row = self._row(pc)
        combined = self._combined_history(pc, global_history)
        output = perceptron_output(row, combined)
        if (output >= 0) != outcome or abs(output) <= cfg.theta:
            perceptron_train(row, combined, outcome, cfg.weight_min, cfg.weight_max)
        self.local_histories.update(pc, outcome)

    def size_report(self) -> PredictorSizeReport:
        report = PredictorSizeReport()
        report.add(
            "no-alias-perceptron (unbounded)",
            len(self._rows) * self.config.num_weights * self.config.weight_bits,
        )
        return report


class NoAliasPredicatePerceptron:
    """Predicate perceptron with a private weight row per (compare, slot)."""

    SLOT_FIRST = 0
    SLOT_SECOND = 1

    def __init__(self, config: Optional[PredicatePredictorConfig] = None) -> None:
        self.config = config or PredicatePredictorConfig()
        self._rows: Dict[Tuple[int, int], List[int]] = {}
        self.local_histories = LocalHistoryTable(
            self.config.local_history_entries, self.config.local_bits
        )

    def _row(self, pc: int, slot: int) -> List[int]:
        key = (pc, slot)
        row = self._rows.get(key)
        if row is None:
            row = [0] * self.config.num_weights
            self._rows[key] = row
        return row

    def index_for_slot(self, pc: int, slot: int) -> int:
        """Stable per-(pc, slot) index used for confidence-counter pairing."""
        return (pc << 1) | (slot & 1)

    def _local_key(self, pc: int, slot: int) -> int:
        return pc + (slot << 1)

    def _combined_history(self, pc: int, slot: int, global_history: int) -> int:
        cfg = self.config
        global_part = global_history & ((1 << cfg.global_bits) - 1)
        local_part = self.local_histories.read(self._local_key(pc, slot))
        local_part &= (1 << cfg.local_bits) - 1
        return (local_part << cfg.global_bits) | global_part

    def predict_slot(self, pc: int, slot: int, global_history: int) -> Tuple[bool, int]:
        row = self._row(pc, slot)
        output = perceptron_output(row, self._combined_history(pc, slot, global_history))
        return output >= 0, output

    def predict_compare(self, pc: int, global_history: int) -> Tuple[bool, bool]:
        return (
            self.predict_slot(pc, self.SLOT_FIRST, global_history)[0],
            self.predict_slot(pc, self.SLOT_SECOND, global_history)[0],
        )

    def update_slot(self, pc: int, slot: int, global_history: int, outcome: bool) -> None:
        cfg = self.config
        row = self._row(pc, slot)
        combined = self._combined_history(pc, slot, global_history)
        output = perceptron_output(row, combined)
        if (output >= 0) != outcome or abs(output) <= cfg.theta:
            perceptron_train(row, combined, outcome, cfg.weight_min, cfg.weight_max)
        self.local_histories.update(self._local_key(pc, slot), outcome)

    def size_report(self) -> PredictorSizeReport:
        report = PredictorSizeReport()
        report.add(
            "no-alias-pvt (unbounded)",
            len(self._rows) * self.config.num_weights * self.config.weight_bits,
        )
        return report
