"""Lane-axis predictor state: step N conventional predictors in lockstep.

The lane-batched kernel (:mod:`repro.pipeline.batched`) replays the branch
rows of one trace once per *timing-independent* scheme spec to obtain the
spec's prediction stream.  When a batch carries several such specs with the
same predictor geometry (e.g. ``conventional`` next to
``conventional(perfect_history=True)`` in an idealization study), their
evolutions differ only in predictor *state*, not in the access pattern: each
branch touches the same table entry, with the same history input, in every
lane.  :class:`ConventionalLaneBank` therefore keeps the divergent state —
the perceptron weight tables — as one ``(lanes, entries, num_weights)``
array and issues a single vectorized predict/train across all lanes per
branch.

State that is *provably identical* across lanes is deliberately stored
once, not per lane:

* the global history register — the scheme's speculative push + same-branch
  repair is net-equivalent to pushing the architectural outcome
  (:meth:`~repro.predictors.history.GlobalHistoryRegister.push_resolved`),
  which is lane-independent;
* the gshare table and the local history table — both train
  unconditionally toward the architectural outcome at trace-determined
  indices, so every lane would hold the same counters bit for bit.

Only the perceptron weights actually diverge: the training condition
(``wrong or |output| <= theta``) depends on each lane's own output.  The
arithmetic is exact integer arithmetic identical to
:func:`repro.predictors.perceptron.perceptron_output` /
:func:`~repro.predictors.perceptron.perceptron_train`; the hypothesis
parity tests drive a bank and independent scalar schemes with common random
branch streams and assert bit-identical predictions and records.

numpy is gated exactly like the columnar trace backend: callers check
:func:`lane_bank_supported` and fall back to per-spec scalar replay.
"""

from __future__ import annotations

from typing import List, Tuple

try:  # pragma: no cover - exercised implicitly by every test
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is part of the toolchain
    _np = None

from repro.predictors.gshare import GsharePredictor
from repro.predictors.history import GlobalHistoryRegister, LocalHistoryTable
from repro.predictors.perceptron import PerceptronConfig, entry_index


def lane_bank_supported() -> bool:
    """True when the lane-axis backend can be used (numpy importable)."""
    return _np is not None


class ConventionalLaneBank:
    """N same-geometry conventional predictors stepped in lockstep.

    ``profile`` is the geometry token produced by
    :meth:`repro.core.conventional.ConventionalScheme.lane_bank_profile`:
    ``(PerceptronConfig, gshare_history_bits, gshare_counter_bits)``.
    """

    def __init__(self, profile: Tuple[PerceptronConfig, int, int], lanes: int) -> None:
        if _np is None:  # pragma: no cover - guarded by lane_bank_supported
            raise RuntimeError("ConventionalLaneBank requires numpy")
        if lanes < 1:
            raise ValueError("a lane bank needs at least one lane")
        config, gshare_bits, gshare_counter_bits = profile
        self.config = config
        self.lanes = lanes
        self.gshare = GsharePredictor(
            history_bits=gshare_bits, counter_bits=gshare_counter_bits, optimized=True
        )
        self.ghr = GlobalHistoryRegister(config.global_bits)
        self.local_histories = LocalHistoryTable(
            config.local_history_entries, config.local_bits
        )
        #: The lane axis: per-lane weight tables, bias weight at column 0.
        self.weights = _np.zeros(
            (lanes, config.entries, config.num_weights), dtype=_np.int32
        )
        self._global_mask = (1 << config.global_bits) - 1
        self._local_mask = (1 << config.local_bits) - 1
        history_bits = config.num_weights - 1
        #: Bit-extraction shifts for the vectorized bipolar input (history
        #: lengths beyond int64 would need the per-bit fallback; the paper's
        #: geometries are 40 bits).
        if history_bits <= 62:
            self._shifts = _np.arange(history_bits, dtype=_np.int64)
        else:  # pragma: no cover - no evaluated geometry is this wide
            self._shifts = None

    # ------------------------------------------------------------------
    def _input_bits(self, combined: int):
        """The history input as a 0/1 vector (bit ``i`` -> weight ``i+1``)."""
        if self._shifts is not None:
            return (combined >> self._shifts) & 1
        bits = _np.empty(self.config.num_weights - 1, dtype=_np.int64)
        for i in range(bits.shape[0]):  # pragma: no cover - >62-bit fallback
            bits[i] = (combined >> i) & 1
        return bits

    def step(self, pc: int, actual: bool) -> Tuple[bool, List[bool], List[bool]]:
        """Predict and train one branch across all lanes.

        Returns ``(fast, finals, overrides)``: the (shared) first-level
        prediction, and the per-lane final predictions and override flags.
        Exactly equivalent to each lane's ``ConventionalScheme`` performing
        ``on_branch_rename`` immediately followed by ``on_branch_resolved``
        — the order the pipeline's one-pass loop calls them in.
        """
        config = self.config
        history = self.ghr.value
        # First level (shared): predict, then train toward the outcome —
        # the same (pc, history) index serves both, see GsharePredictor.step.
        fast = self.gshare.step(pc, history, actual)

        # Second level, all lanes at once.
        local = self.local_histories.read_then_update(pc, actual)
        combined = ((local & self._local_mask) << config.global_bits) | (
            history & self._global_mask
        )
        index = entry_index(pc, config.entries)
        rows = self.weights[:, index, :]  # (lanes, num_weights) view
        bits = self._input_bits(combined)
        bipolar = bits * 2 - 1
        outputs = rows[:, 0] + rows[:, 1:] @ bipolar
        finals = outputs >= 0

        # Train the lanes that were wrong or under-confident (exact
        # perceptron_train arithmetic: every weight steps +/-1 and saturates
        # at the configured width).
        train = (finals != actual) | (_np.abs(outputs) <= config.theta)
        if train.any():
            deltas = _np.empty(config.num_weights, dtype=_np.int32)
            deltas[0] = 1 if actual else -1
            if actual:
                deltas[1:] = bipolar
            else:
                deltas[1:] = -bipolar
            trained = rows[train] + deltas
            _np.clip(trained, config.weight_min, config.weight_max, out=trained)
            rows[train] = trained

        # Shared speculative-push-plus-repair, collapsed to the resolved bit.
        self.ghr.push_resolved(actual)

        finals_list = finals.tolist()
        return fast, finals_list, [final != fast for final in finals_list]

    # ------------------------------------------------------------------
    def weight_row(self, lane: int, index: int) -> List[int]:
        """A copy of one lane's weights at ``index`` (parity tests)."""
        return self.weights[lane, index, :].tolist()
